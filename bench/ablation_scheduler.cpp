// Experiment E10 (scheduler half) — scheduling-shape ablation.
//
// Part 1 (measured): static equispaced lanes (Algorithm 1 on ThreadPool)
// vs recursive median splitting (par_merge_recursive on the work-stealing
// TaskScheduler), wall clock and PRAM op counts, across the workloads
// where the shapes differ:
//   uniform    one big balanced merge — Corollary 7 territory, static's
//              best case; recursive pays log(n/grain) extra co-rank
//              searches and the steal protocol;
//   clustered  same sizes, skewed interleaving — balance still holds for
//              both (Merge Path partitions the *output*), isolates the
//              overhead term;
//   size-skew  m >> n — the diagonal searches are cheap (log min(m,n))
//              for both; checks neither shape degrades;
//   small ×64  a stream of merges far below per-core scale — static pays
//              a full p-lane fork-join barrier per merge, recursive runs
//              each as one sequential kernel call under the grain;
//   mixed ×16  alternating large/small merges — the pattern that
//              motivates work stealing: idle workers help the big
//              merges, small ones never fork.
// PRAM op counts (compare/move/search-step totals, the unit-cost work
// measure) are gathered in separate instrumented passes — per lane on the
// static pool, per deque slot on the scheduler — so the throughput gap
// can be attributed to scheduling, not to extra algorithmic work.
//
// Part 2 (modeled, the original E10c): static slices vs dynamically
// claimed tiles (tiled_parallel_merge) when per-element cost is NOT
// uniform. Corollary 7's perfect balance assumes every merge step costs
// the same. With irregular costs (expensive comparators on some values,
// cold pages) the static partition's makespan is the slowest slice. The
// harness assigns a deterministic synthetic cost to every output element
// (expensive inside a value band), then computes each scheduler's
// makespan exactly:
//   static: cost-sum of each lane's contiguous slice, max over lanes;
//   tiled:  list-scheduling of the tile cost sequence onto p lanes
//           (greedy earliest-available, the behaviour of the atomic
//           claim counter).
// No wall clock involved — exact, host-independent, reproducible.
//
// Flags: --elements N (per array, default 1Mi), --threads N (default 8),
//        --grain N (recursive leaf size, default 4096), --tile N
//        (default 4096), --expensive-factor F (default 16), --csv,
//        --seed, --trace F (exports sched.* spans for check_trace.py).

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/mergepath.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"
#include "util/tasksched.hpp"
#include "util/timer.hpp"

namespace {

using namespace mp;
using namespace mp::bench;

/// One named batch of merge problems (most workloads are a single pair;
/// the small/mixed streams hold many).
struct Workload {
  std::string name;
  std::vector<MergeInput> batch;
  std::size_t total_elements = 0;
};

Workload make_workload(std::string name, Dist dist,
                       const std::vector<std::pair<std::size_t, std::size_t>>&
                           sizes,
                       std::uint64_t seed) {
  Workload w;
  w.name = std::move(name);
  std::uint64_t s = seed;
  for (const auto& [m, n] : sizes) {
    w.batch.push_back(make_merge_input(dist, m, n, s++));
    w.total_elements += m + n;
  }
  return w;
}

double static_seconds(const Workload& w, unsigned p,
                      std::vector<std::int32_t>& out) {
  return time_best_of([&] {
    for (const auto& in : w.batch)
      parallel_merge(in.a.data(), in.a.size(), in.b.data(), in.b.size(),
                     out.data(), Executor{nullptr, p});
  });
}

double recursive_seconds(const Workload& w, const RecursiveConfig& cfg,
                         std::vector<std::int32_t>& out) {
  return time_best_of([&] {
    for (const auto& in : w.batch)
      par_merge_recursive(in.a.data(), in.a.size(), in.b.data(), in.b.size(),
                          out.data(), cfg);
  });
}

std::uint64_t static_ops(const Workload& w, unsigned p,
                         std::vector<std::int32_t>& out) {
  std::vector<OpCounts> instr(p);
  for (const auto& in : w.batch)
    parallel_merge(in.a.data(), in.a.size(), in.b.data(), in.b.size(),
                   out.data(), Executor{nullptr, p}, std::less<>{},
                   std::span<OpCounts>(instr));
  std::uint64_t total = 0;
  for (const auto& c : instr) total += c.total();
  return total;
}

std::uint64_t recursive_ops(const Workload& w, const RecursiveConfig& cfg,
                            std::vector<std::int32_t>& out) {
  std::vector<OpCounts> instr(cfg.resolve_scheduler().slots());
  for (const auto& in : w.batch)
    par_merge_recursive(in.a.data(), in.a.size(), in.b.data(), in.b.size(),
                        out.data(), cfg, std::less<>{},
                        std::span<OpCounts>(instr));
  std::uint64_t total = 0;
  for (const auto& c : instr) total += c.total();
  return total;
}

// Deterministic per-element cost: expensive when the merged value falls in
// a band (e.g. strings that need deep comparison, rows that decompress).
double element_cost(std::int32_t value, double expensive_factor) {
  const std::uint32_t u = static_cast<std::uint32_t>(value);
  return (u >> 27) == 5 ? expensive_factor : 1.0;  // 1/32 of the range
}

}  // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "E10/scheduler",
            "static lanes vs recursive splitting vs dynamic tiles");
  const std::size_t per_array =
      static_cast<std::size_t>(h.cli.get_int("elements", 1 << 20));
  const unsigned p = static_cast<unsigned>(h.cli.get_int("threads", 8));
  const std::size_t grain =
      static_cast<std::size_t>(h.cli.get_int("grain", 4096));
  const std::size_t tile =
      static_cast<std::size_t>(h.cli.get_int("tile", 4096));
  const double factor = h.cli.get_double("expensive-factor", 16.0);
  h.check_flags();

  // ---- Part 1: static lanes vs recursive splitting, measured. ----------
  TaskScheduler sched(static_cast<int>(p) - 1);  // run() caller is peer p
  const RecursiveConfig cfg{&sched, grain};

  std::vector<Workload> workloads;
  workloads.push_back(make_workload("uniform", Dist::kUniform,
                                    {{per_array, per_array}}, h.seed));
  workloads.push_back(make_workload("clustered", Dist::kClustered,
                                    {{per_array, per_array}}, h.seed));
  workloads.push_back(make_workload(
      "size-skew 64:1", Dist::kUniform,
      {{per_array, std::max<std::size_t>(1, per_array / 64)}}, h.seed));
  {
    std::vector<std::pair<std::size_t, std::size_t>> small(
        64, {per_array / 256, per_array / 256});
    workloads.push_back(
        make_workload("small x64", Dist::kUniform, small, h.seed));
  }
  {
    std::vector<std::pair<std::size_t, std::size_t>> mixed;
    for (int i = 0; i < 16; ++i) {
      const std::size_t s = (i % 2 == 0) ? per_array / 4 : per_array / 256;
      mixed.push_back({s, s});
    }
    workloads.push_back(
        make_workload("mixed x16", Dist::kUniform, mixed, h.seed));
  }

  Table measured({"workload", "elements", "static_ms", "recursive_ms",
                  "rec_vs_static", "static_pram_ops", "recursive_pram_ops"});
  for (const auto& w : workloads) {
    std::size_t max_out = 0;
    for (const auto& in : w.batch)
      max_out = std::max(max_out, in.a.size() + in.b.size());
    std::vector<std::int32_t> out_s(max_out), out_r(max_out);

    const double ts = static_seconds(w, p, out_s);
    const double tr = recursive_seconds(w, cfg, out_r);
    // Guard the bench itself: both shapes must produce the identical
    // stable merge (last batch entry is still in the buffers).
    if (out_s != out_r) {
      std::cerr << "error: scheduler outputs diverge on " << w.name << "\n";
      return 1;
    }
    const std::uint64_t ops_s = static_ops(w, p, out_s);
    const std::uint64_t ops_r = recursive_ops(w, cfg, out_r);
    measured.add_row({w.name, std::to_string(w.total_elements),
                      fmt_double(ts * 1e3, 3), fmt_double(tr * 1e3, 3),
                      fmt_ratio(ts / tr), std::to_string(ops_s),
                      std::to_string(ops_r)});
  }
  h.emit(measured);
  if (!h.csv) {
    const auto st = sched.stats();
    std::cout << "\nscheduler: " << sched.workers() << " workers, "
              << st.spawns << " spawns, " << st.steals << " steals, max "
              << "par_do depth " << st.max_depth
              << " (grain=" << grain << ")\n"
              << "rec_vs_static > 1.00x means the recursive shape is "
                 "faster; the op-count columns\nshow both schedulers do "
                 "the same algorithmic work (recursive adds only the\n"
                 "extra median co-rank searches).\n\n";
  }

  // ---- Part 2: modeled makespan under skewed element cost (E10c). ------
  const auto input =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
  std::vector<std::int32_t> merged(2 * per_array);
  parallel_merge(input.a.data(), per_array, input.b.data(), per_array,
                 merged.data(), Executor{nullptr, p});

  // Prefix sums of element costs over the merged output.
  std::vector<double> prefix(merged.size() + 1, 0.0);
  for (std::size_t i = 0; i < merged.size(); ++i)
    prefix[i + 1] = prefix[i] + element_cost(merged[i], factor);
  const double total_cost = prefix.back();
  auto range_cost = [&](std::size_t lo, std::size_t hi) {
    return prefix[hi] - prefix[lo];
  };

  Table table({"scheduler", "makespan", "vs_ideal", "note"});
  const double ideal = total_cost / p;

  // Static: lane k owns output [k·N/p, (k+1)·N/p).
  {
    double makespan = 0.0;
    for (unsigned k = 0; k < p; ++k) {
      const std::size_t lo = k * merged.size() / p;
      const std::size_t hi = (k + 1ull) * merged.size() / p;
      makespan = std::max(makespan, range_cost(lo, hi));
    }
    table.add_row({"static slices (Alg.1)", fmt_double(makespan, 0),
                   fmt_ratio(makespan / ideal), "slowest slice stalls all"});
  }

  // Tiled: greedy list scheduling of the tile sequence (lane takes the
  // next tile the moment it frees up — what the atomic counter does).
  {
    std::vector<double> lane_time(p, 0.0);
    for (std::size_t lo = 0; lo < merged.size(); lo += tile) {
      const std::size_t hi = std::min(lo + tile, merged.size());
      auto next =
          std::min_element(lane_time.begin(), lane_time.end());
      *next += range_cost(lo, hi);
    }
    const double makespan =
        *std::max_element(lane_time.begin(), lane_time.end());
    table.add_row({"dynamic tiles", fmt_double(makespan, 0),
                   fmt_ratio(makespan / ideal),
                   "tile=" + std::to_string(tile)});
  }
  table.add_row({"(ideal)", fmt_double(ideal, 0), "1.00x",
                 "perfect cost split"});
  h.emit(table);
  if (!h.csv)
    std::cout << "\nwith uniform costs both schedulers are 1.00x (that is "
                 "Corollary 7); the band\nskew above is where the tiled "
                 "variant earns its extra per-tile search.\n";
  return 0;
}
