// Experiment E10 (scheduler half) — static slices (Algorithm 1) vs
// dynamically claimed tiles (tiled_parallel_merge) when per-element cost
// is NOT uniform.
//
// Corollary 7's perfect balance assumes every merge step costs the same.
// With irregular costs (expensive comparators on some values, cold pages)
// the static partition's makespan is the slowest slice. The harness
// assigns a deterministic synthetic cost to every output element
// (expensive inside a value band), then computes each scheduler's
// makespan exactly:
//   static: cost-sum of each lane's contiguous slice, max over lanes;
//   tiled:  list-scheduling of the tile cost sequence onto p lanes
//           (greedy earliest-available, the behaviour of the atomic
//           claim counter).
// No wall clock involved — exact, host-independent, reproducible.
//
// Flags: --elements N (per array, default 1Mi), --threads N (default 8),
//        --tile N (default 4096), --expensive-factor F (default 16),
//        --csv, --seed.

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/mergepath.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"

namespace {

using namespace mp;
using namespace mp::bench;

// Deterministic per-element cost: expensive when the merged value falls in
// a band (e.g. strings that need deep comparison, rows that decompress).
double element_cost(std::int32_t value, double expensive_factor) {
  const std::uint32_t u = static_cast<std::uint32_t>(value);
  return (u >> 27) == 5 ? expensive_factor : 1.0;  // 1/32 of the range
}

}  // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "E10/scheduler",
            "static slices vs dynamic tiles under skewed element cost");
  const std::size_t per_array =
      static_cast<std::size_t>(h.cli.get_int("elements", 1 << 20));
  const unsigned p = static_cast<unsigned>(h.cli.get_int("threads", 8));
  const std::size_t tile =
      static_cast<std::size_t>(h.cli.get_int("tile", 4096));
  const double factor = h.cli.get_double("expensive-factor", 16.0);
  h.check_flags();

  const auto input =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
  std::vector<std::int32_t> merged(2 * per_array);
  parallel_merge(input.a.data(), per_array, input.b.data(), per_array,
                 merged.data(), Executor{nullptr, p});

  // Prefix sums of element costs over the merged output.
  std::vector<double> prefix(merged.size() + 1, 0.0);
  for (std::size_t i = 0; i < merged.size(); ++i)
    prefix[i + 1] = prefix[i] + element_cost(merged[i], factor);
  const double total_cost = prefix.back();
  auto range_cost = [&](std::size_t lo, std::size_t hi) {
    return prefix[hi] - prefix[lo];
  };

  Table table({"scheduler", "makespan", "vs_ideal", "note"});
  const double ideal = total_cost / p;

  // Static: lane k owns output [k·N/p, (k+1)·N/p).
  {
    double makespan = 0.0;
    for (unsigned k = 0; k < p; ++k) {
      const std::size_t lo = k * merged.size() / p;
      const std::size_t hi = (k + 1ull) * merged.size() / p;
      makespan = std::max(makespan, range_cost(lo, hi));
    }
    table.add_row({"static slices (Alg.1)", fmt_double(makespan, 0),
                   fmt_ratio(makespan / ideal), "slowest slice stalls all"});
  }

  // Tiled: greedy list scheduling of the tile sequence (lane takes the
  // next tile the moment it frees up — what the atomic counter does).
  {
    std::vector<double> lane_time(p, 0.0);
    for (std::size_t lo = 0; lo < merged.size(); lo += tile) {
      const std::size_t hi = std::min(lo + tile, merged.size());
      auto next =
          std::min_element(lane_time.begin(), lane_time.end());
      *next += range_cost(lo, hi);
    }
    const double makespan =
        *std::max_element(lane_time.begin(), lane_time.end());
    table.add_row({"dynamic tiles", fmt_double(makespan, 0),
                   fmt_ratio(makespan / ideal),
                   "tile=" + std::to_string(tile)});
  }
  table.add_row({"(ideal)", fmt_double(ideal, 0), "1.00x",
                 "perfect cost split"});
  h.emit(table);
  if (!h.csv)
    std::cout << "\nwith uniform costs both schedulers are 1.00x (that is "
                 "Corollary 7); the band\nskew above is where the tiled "
                 "variant earns its extra per-tile search.\n";
  return 0;
}
