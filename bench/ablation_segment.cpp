// Experiment E10 (ablation half) — segment-length ablation for Algorithm 2.
//
// The paper fixes L = C/3. This harness sweeps L and shows the tension the
// rule resolves: small L multiplies barriers and staging overhead (see the
// op counts and modelled time), large L overflows the cache (see the
// simulated misses, which jump once 3L elements exceed capacity).
//
// Flags: --elements N (per array, default 256Ki), --cache-bytes N
// (default 32 KiB), --threads N (default 8), --csv, --seed.

#include <iostream>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/traced_merge.hpp"
#include "core/mergepath.hpp"
#include "harness_common.hpp"
#include "pram/simulate.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::cachesim;

  Harness h(argc, argv, "E10/ablation", "SPM segment length L sweep");
  const std::size_t per_array = static_cast<std::size_t>(
      h.cli.get_int("elements", h.full ? (1 << 20) : (256 << 10)));
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(h.cli.get_int("cache-bytes", 32 * 1024));
  const unsigned threads = static_cast<unsigned>(h.cli.get_int("threads", 8));
  h.check_flags();

  const auto input =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
  const std::size_t total = 2 * per_array;
  const std::size_t c_elems = cache_bytes / 4;
  const std::size_t paper_rule = c_elems / 3;

  const auto model = pram::MachineModel::paper_x5670();
  CacheConfig cache_config;
  cache_config.size_bytes = cache_bytes;
  cache_config.associativity = 8;
  const MergeLayout layout{0, cache_bytes * 1024, 2 * cache_bytes * 1024};

  Table table({"L_elems", "L_vs_C/3", "segments", "modeled_ms",
               "sim_miss_per_1k", "conflict+capacity"});
  for (double factor : {1.0 / 16, 1.0 / 4, 1.0, 2.0, 8.0}) {
    const auto L = static_cast<std::size_t>(
        static_cast<double>(paper_rule) * factor);
    if (L == 0) continue;

    SegmentedConfig config;
    config.segment_length = L;
    const auto sim = pram::simulate_segmented_merge(input.a, input.b,
                                                    threads, model, config);

    Cache cache(cache_config);
    const auto traced = trace_segmented_merge(input.a, input.b, threads, L,
                                              layout, cache);
    const CacheStats& s = traced.stats;
    table.add_row(
        {fmt_count(L), fmt_double(factor, 3),
         fmt_count((total + L - 1) / L), fmt_double(sim.time_ns / 1e6, 2),
         fmt_double(static_cast<double>(s.misses) * 1000.0 /
                        static_cast<double>(total),
                    1),
         fmt_count(s.conflict_misses + s.capacity_misses)});
  }
  h.emit(table);
  if (!h.csv)
    std::cout << "\nthe paper's rule L = C/3 = " << fmt_count(paper_rule)
              << " elements sits at the knee: shorter L pays barriers, "
                 "longer L pays\ncache misses (Section IV.B).\n";
  return 0;
}
