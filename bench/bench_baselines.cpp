// Experiment E7 (throughput half) — google-benchmark wall-clock comparison
// of the parallel merge algorithms and the sequential baselines on this
// host. Absolute numbers reflect the container (see DESIGN.md section 2);
// the PRAM-modelled comparison lives in table_balance / fig5_speedup.

#include <benchmark/benchmark.h>

#include "baselines/baselines.hpp"
#include "core/mergepath.hpp"
#include "util/data_gen.hpp"

namespace {

using namespace mp;
using namespace mp::baselines;

constexpr unsigned kThreads = 4;

MergeInput input_for(const benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  return make_merge_input(Dist::kUniform, n, n, 42);
}

void BM_ClassicSequentialMerge(benchmark::State& state) {
  const auto input = input_for(state);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  for (auto _ : state) {
    classic_merge(input.a.data(), input.a.size(), input.b.data(),
                  input.b.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassicSequentialMerge)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_StdMerge(benchmark::State& state) {
  const auto input = input_for(state);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  for (auto _ : state) {
    std::merge(input.a.begin(), input.a.end(), input.b.begin(),
               input.b.end(), out.begin());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StdMerge)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_MergePath(benchmark::State& state) {
  const auto input = input_for(state);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  for (auto _ : state) {
    parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                   input.b.size(), out.data(), Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MergePath)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_SegmentedMergePath(benchmark::State& state) {
  const auto input = input_for(state);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  SegmentedConfig config;  // host-derived L = C/3
  for (auto _ : state) {
    segmented_parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                             input.b.size(), out.data(), config,
                             Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SegmentedMergePath)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_ShiloachVishkin(benchmark::State& state) {
  const auto input = input_for(state);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  for (auto _ : state) {
    shiloach_vishkin_merge(input.a.data(), input.a.size(), input.b.data(),
                           input.b.size(), out.data(),
                           Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShiloachVishkin)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_AklSantoro(benchmark::State& state) {
  const auto input = input_for(state);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  for (auto _ : state) {
    akl_santoro_merge(input.a.data(), input.a.size(), input.b.data(),
                      input.b.size(), out.data(),
                      Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AklSantoro)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_DeoSarkar(benchmark::State& state) {
  const auto input = input_for(state);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  for (auto _ : state) {
    deo_sarkar_merge(input.a.data(), input.a.size(), input.b.data(),
                     input.b.size(), out.data(), Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DeoSarkar)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_BitonicMerge(benchmark::State& state) {
  const auto input = input_for(state);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  for (auto _ : state) {
    bitonic_merge(input.a.data(), input.a.size(), input.b.data(),
                  input.b.size(), out.data(), Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitonicMerge)->Arg(1 << 16)->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelMergeSort(benchmark::State& state) {
  const auto values =
      make_unsorted_values(static_cast<std::size_t>(state.range(0)), 42);
  std::vector<std::int32_t> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = values;
    state.ResumeTiming();
    parallel_merge_sort(data.data(), data.size(),
                        Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(values.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParallelMergeSort)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelRadixSort(benchmark::State& state) {
  const auto values =
      make_unsorted_values(static_cast<std::size_t>(state.range(0)), 42);
  std::vector<std::int32_t> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = values;
    state.ResumeTiming();
    parallel_radix_sort(data.data(), data.size(),
                        Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(values.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParallelRadixSort)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_StdSort(benchmark::State& state) {
  const auto values =
      make_unsorted_values(static_cast<std::size_t>(state.range(0)), 42);
  std::vector<std::int32_t> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = values;
    state.ResumeTiming();
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(values.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StdSort)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
