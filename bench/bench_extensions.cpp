// Throughput microbenchmarks for the extension APIs (S19/S8): set
// operations, key/value and SoA merging, top-k, the stream merger, the
// adaptive kernel on run-structured data, multiway merging, and the radix
// sort — one registry so regressions in the extension surface show up in
// the same sweep as the core.

#include <benchmark/benchmark.h>

#include "baselines/radix_sort.hpp"
#include "core/mergepath.hpp"
#include "util/data_gen.hpp"

namespace {

using namespace mp;

constexpr unsigned kThreads = 4;

void BM_SetUnion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kFewDuplicates, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel_set_union(input.a.data(), n, input.b.data(), n, out.data(),
                           Executor{nullptr, kThreads}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SetUnion)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void BM_SetIntersection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kFewDuplicates, n, n, 42);
  std::vector<std::int32_t> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel_set_intersection(
        input.a.data(), n, input.b.data(), n, out.data(),
        Executor{nullptr, kThreads}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SetIntersection)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void BM_MergeByKey(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::uint64_t> va(n), vb(n);
  std::vector<std::int32_t> keys_out(2 * n);
  std::vector<std::uint64_t> vals_out(2 * n);
  for (auto _ : state) {
    parallel_merge_by_key(input.a.data(), va.data(), n, input.b.data(),
                          vb.data(), n, keys_out.data(), vals_out.data(),
                          Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(keys_out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MergeByKey)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void BM_MergeSoaTwoColumns(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::uint32_t> ca(n), cb(n), c_out(2 * n);
  std::vector<double> da(n), db(n), d_out(2 * n);
  std::vector<std::int32_t> keys_out(2 * n);
  for (auto _ : state) {
    parallel_merge_soa(
        input.a.data(), n, input.b.data(), n, keys_out.data(),
        std::tuple{
            SoaColumn<std::uint32_t>{ca.data(), cb.data(), c_out.data()},
            SoaColumn<double>{da.data(), db.data(), d_out.data()}},
        Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(keys_out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MergeSoaTwoColumns)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void BM_MergeFirstK(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::int32_t> out(k);
  for (auto _ : state) {
    merge_first_k(input.a.data(), n, input.b.data(), n, out.data(), k,
                  Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MergeFirstK)->Arg(16)->Arg(4096)->Arg(1 << 18);

void BM_StreamMergerChunked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kClustered, n, n, 42);
  std::vector<std::int32_t> sink(2 * n);
  for (auto _ : state) {
    StreamMerger<std::int32_t> merger;
    std::size_t fa = 0, fb = 0, written = 0;
    const std::size_t chunk = 8192;
    while (written < 2 * n) {
      if (fa < n) {
        const std::size_t len = std::min(chunk, n - fa);
        merger.push_a(std::span<const std::int32_t>(input.a.data() + fa,
                                                    len));
        fa += len;
        if (fa == n) merger.close_a();
      }
      if (fb < n) {
        const std::size_t len = std::min(chunk, n - fb);
        merger.push_b(std::span<const std::int32_t>(input.b.data() + fb,
                                                    len));
        fb += len;
        if (fb == n) merger.close_b();
      }
      written += merger.pull(
          std::span<std::int32_t>(sink.data() + written, 2 * n - written));
    }
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamMergerChunked)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void BM_AdaptiveVsClassicOnRuns(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kOrganPipe, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    adaptive_merge(input.a.data(), n, input.b.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdaptiveVsClassicOnRuns)->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

void BM_MultiwayMergeSort(benchmark::State& state) {
  const auto values =
      make_unsorted_values(static_cast<std::size_t>(state.range(0)), 42);
  std::vector<std::int32_t> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = values;
    state.ResumeTiming();
    multiway_merge_sort(data.data(), data.size(),
                        Executor{nullptr, kThreads});
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(values.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultiwayMergeSort)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

}  // namespace
