// Experiment E10 (micro half) — google-benchmark microbenchmarks of the
// primitives: the diagonal binary search vs the Deo-Sarkar halving
// selection, the full path partition, the three sequential merge kernels,
// the loser tree, and multiway selection.

#include <benchmark/benchmark.h>

#include "baselines/deo_sarkar.hpp"
#include "core/mergepath.hpp"
#include "core/multiway_merge.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace mp;

void BM_DiagonalIntersection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    const std::size_t diag = rng.bounded(2 * n + 1);
    benchmark::DoNotOptimize(diagonal_intersection(
        input.a.data(), n, input.b.data(), n, diag));
  }
}
BENCHMARK(BM_DiagonalIntersection)->Arg(1 << 16)->Arg(1 << 24);

void BM_DeoSarkarSelection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    const std::size_t k = rng.bounded(2 * n + 1);
    benchmark::DoNotOptimize(baselines::kth_element_split(
        input.a.data(), n, input.b.data(), n, k));
  }
}
BENCHMARK(BM_DeoSarkarSelection)->Arg(1 << 16)->Arg(1 << 24);

void BM_PartitionMergePath(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  const auto parts = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_merge_path(
        input.a.data(), n, input.b.data(), n, parts));
  }
}
BENCHMARK(BM_PartitionMergePath)->Arg(2)->Arg(12)->Arg(128);

void BM_MergeStepsKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    std::size_t i = 0, j = 0;
    merge_steps(input.a.data(), n, input.b.data(), n, &i, &j, out.data(),
                2 * n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MergeStepsKernel)->Arg(1 << 16);

void BM_ClassicMergeKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    classic_merge(input.a.data(), n, input.b.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassicMergeKernel)->Arg(1 << 16);

void BM_AdaptiveMergeKernel(benchmark::State& state) {
  // organ_pipe: the run-structured input where galloping pays.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kOrganPipe, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    adaptive_merge(input.a.data(), n, input.b.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdaptiveMergeKernel)->Arg(1 << 16);

void BM_ClassicMergeKernelOrganPipe(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kOrganPipe, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    classic_merge(input.a.data(), n, input.b.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassicMergeKernelOrganPipe)->Arg(1 << 16);

void BM_BranchlessMergeKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    std::size_t i = 0, j = 0, written = 0;
    while (written < 2 * n) {
      const std::size_t safe =
          branchless_safe_steps(n, n, i, j, 2 * n - written);
      if (safe == 0) {
        merge_steps(input.a.data(), n, input.b.data(), n, &i, &j,
                    out.data() + written, 2 * n - written);
        break;
      }
      branchless_merge_steps(input.a.data(), input.b.data(), &i, &j,
                             out.data() + written, safe);
      written += safe;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BranchlessMergeKernel)->Arg(1 << 16);

void BM_LoserTreePopN(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::int32_t>> runs(k);
  Xoshiro256 rng(9);
  const std::size_t per_run = (1u << 16) / k;
  for (auto& run : runs) {
    run.resize(per_run);
    for (auto& x : run) x = static_cast<std::int32_t>(rng.bounded(1 << 30));
    std::sort(run.begin(), run.end());
  }
  std::vector<std::int32_t> out(k * per_run);
  for (auto _ : state) {
    std::vector<LoserTree<std::int32_t>::Cursor> cursors(k);
    for (std::size_t t = 0; t < k; ++t)
      cursors[t] = {runs[t].data(), runs[t].data() + runs[t].size()};
    LoserTree<std::int32_t> tree(std::move(cursors));
    tree.pop_n(out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LoserTreePopN)->Arg(2)->Arg(8)->Arg(64);

void BM_MultiwaySelect(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::int32_t>> runs(k);
  Xoshiro256 rng(11);
  for (auto& run : runs) {
    run.resize((1u << 20) / k);
    for (auto& x : run) x = static_cast<std::int32_t>(rng.bounded(1 << 30));
    std::sort(run.begin(), run.end());
  }
  std::vector<std::span<const std::int32_t>> views;
  for (const auto& run : runs) views.emplace_back(run.data(), run.size());
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();
  for (auto _ : state) {
    const std::size_t rank = rng.bounded(total + 1);
    benchmark::DoNotOptimize(multiway_select(
        std::span<const std::span<const std::int32_t>>(views), rank));
  }
}
BENCHMARK(BM_MultiwaySelect)->Arg(2)->Arg(8)->Arg(64);

}  // namespace
