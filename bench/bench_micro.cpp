// Experiment E10 (micro half) — google-benchmark microbenchmarks of the
// primitives: the diagonal binary search vs the Deo-Sarkar halving
// selection, the full path partition, the sequential merge kernels, the
// loser tree, and multiway selection — plus the kernel ablation family
// (BM_KernelMerge32/64/F32/F64 and BM_SortSmall24) that
// scripts/bench_kernels.py turns into BENCH_5.json. Carries its own
// main(): --kernel <name> is stripped before google-benchmark sees argv,
// forces the dispatch choice for every benchmark, and restricts the
// ablation family to that kernel. An unknown name exits 2; a
// known-but-unsupported one prints a skip notice and exits 0 so CI can
// request avx2/avx512 unconditionally.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/deo_sarkar.hpp"
#include "core/merge_sort.hpp"
#include "core/mergepath.hpp"
#include "core/multiway_merge.hpp"
#include "core/segmented_merge.hpp"
#include "kernels/kernels.hpp"
#include "kernels/sort_network.hpp"
#include "obs/fastclock.hpp"
#include "obs/flight.hpp"
#include "obs/percentiles.hpp"
#include "obs/trace.hpp"
#include "util/data_gen.hpp"
#include "util/hw.hpp"
#include "util/rng.hpp"

namespace {

using namespace mp;

void BM_DiagonalIntersection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    const std::size_t diag = rng.bounded(2 * n + 1);
    benchmark::DoNotOptimize(diagonal_intersection(
        input.a.data(), n, input.b.data(), n, diag));
  }
}
BENCHMARK(BM_DiagonalIntersection)->Arg(1 << 16)->Arg(1 << 24);

void BM_DeoSarkarSelection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    const std::size_t k = rng.bounded(2 * n + 1);
    benchmark::DoNotOptimize(baselines::kth_element_split(
        input.a.data(), n, input.b.data(), n, k));
  }
}
BENCHMARK(BM_DeoSarkarSelection)->Arg(1 << 16)->Arg(1 << 24);

void BM_PartitionMergePath(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  const auto parts = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_merge_path(
        input.a.data(), n, input.b.data(), n, parts));
  }
}
BENCHMARK(BM_PartitionMergePath)->Arg(2)->Arg(12)->Arg(128);

void BM_MergeStepsKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    std::size_t i = 0, j = 0;
    merge_steps(input.a.data(), n, input.b.data(), n, &i, &j, out.data(),
                2 * n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MergeStepsKernel)->Arg(1 << 16);

void BM_ClassicMergeKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    classic_merge(input.a.data(), n, input.b.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassicMergeKernel)->Arg(1 << 16);

void BM_AdaptiveMergeKernel(benchmark::State& state) {
  // organ_pipe: the run-structured input where galloping pays.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kOrganPipe, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    adaptive_merge(input.a.data(), n, input.b.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdaptiveMergeKernel)->Arg(1 << 16);

void BM_ClassicMergeKernelOrganPipe(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kOrganPipe, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    classic_merge(input.a.data(), n, input.b.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassicMergeKernelOrganPipe)->Arg(1 << 16);

void BM_BranchlessMergeKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_merge_input(Dist::kUniform, n, n, 42);
  std::vector<std::int32_t> out(2 * n);
  for (auto _ : state) {
    // The first-class tail-fallback contract (src/kernels): branchless
    // prefix, scalar remainder. This used to be a hand-rolled padding
    // loop here.
    std::size_t i = 0, j = 0;
    const std::size_t written = kernels::branchless_merge_bounded(
        input.a.data(), n, input.b.data(), n, &i, &j, out.data(), 2 * n);
    merge_steps(input.a.data(), n, input.b.data(), n, &i, &j,
                out.data() + written, 2 * n - written);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BranchlessMergeKernel)->Arg(1 << 16);

void BM_LoserTreePopN(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::int32_t>> runs(k);
  Xoshiro256 rng(9);
  const std::size_t per_run = (1u << 16) / k;
  for (auto& run : runs) {
    run.resize(per_run);
    for (auto& x : run) x = static_cast<std::int32_t>(rng.bounded(1 << 30));
    std::sort(run.begin(), run.end());
  }
  std::vector<std::int32_t> out(k * per_run);
  for (auto _ : state) {
    std::vector<LoserTree<std::int32_t>::Cursor> cursors(k);
    for (std::size_t t = 0; t < k; ++t)
      cursors[t] = {runs[t].data(), runs[t].data() + runs[t].size()};
    LoserTree<std::int32_t> tree(std::move(cursors));
    tree.pop_n(out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(out.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LoserTreePopN)->Arg(2)->Arg(8)->Arg(64);

void BM_MultiwaySelect(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::int32_t>> runs(k);
  Xoshiro256 rng(11);
  for (auto& run : runs) {
    run.resize((1u << 20) / k);
    for (auto& x : run) x = static_cast<std::int32_t>(rng.bounded(1 << 30));
    std::sort(run.begin(), run.end());
  }
  std::vector<std::span<const std::int32_t>> views;
  for (const auto& run : runs) views.emplace_back(run.data(), run.size());
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();
  for (auto _ : state) {
    const std::size_t rank = rng.bounded(total + 1);
    benchmark::DoNotOptimize(multiway_select(
        std::span<const std::span<const std::int32_t>>(views), rank));
  }
}
BENCHMARK(BM_MultiwaySelect)->Arg(2)->Arg(8)->Arg(64);

// --- Ring-window linearization (SPM) -------------------------------------
// Prices SegmentedConfig::linearize_wrapped: the same serial segmented
// merge with wrapped ring windows either copied flat (vector segment
// loop) or walked through CyclicView (scalar segment loop). L = 192 is
// deliberately not a power of two so most windows wrap.

void run_segmented_linearize(benchmark::State& state, bool linearize) {
  constexpr std::size_t kN = 256 << 10;
  const auto input = make_merge_input(Dist::kUniform, kN, kN, 42);
  std::vector<std::int32_t> out(2 * kN);
  SegmentedConfig config;
  config.segment_length = 192;
  config.linearize_wrapped = linearize;
  for (auto _ : state) {
    segmented_parallel_merge(input.a.data(), kN, input.b.data(), kN,
                             out.data(), config, Executor{nullptr, 1});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * kN) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_SegmentedLinearize_On(benchmark::State& state) {
  run_segmented_linearize(state, true);
}
BENCHMARK(BM_SegmentedLinearize_On);

void BM_SegmentedLinearize_Off(benchmark::State& state) {
  run_segmented_linearize(state, false);
}
BENCHMARK(BM_SegmentedLinearize_Off);

// --- Span overhead -------------------------------------------------------
// Prices one obs::Span construct/destruct edge under every consumer
// configuration the combined state byte can express, plus both clock
// sources for the fully-armed case. "disarmed" is what every instrumented
// region pays when nothing records (one atomic load); "compiled_out" is
// the MP_TRACE=0 call site (NullSpan). The trace_tsc / trace_steady pair
// isolates the clock cost: same consumers, different timestamp source.

struct SpanOverheadConfig {
  bool trace = false;
  bool stats = false;
  bool flight = false;
  obs::ClockMode clock = obs::ClockMode::kAuto;
};

void run_span_overhead(benchmark::State& state,
                       const SpanOverheadConfig& config) {
  // All consumer/clock switches are control-plane operations; flip them
  // outside the timed loop and restore the process defaults afterwards.
  const bool flight_was = obs::flight_enabled();
  obs::FastClock::set_mode(config.clock);
  obs::set_flight_enabled(config.flight);
  if (config.trace)
    obs::arm_tracing();
  else
    obs::disarm_tracing();
  obs::reset_span_stats();
  if (config.stats)
    obs::arm_span_stats();
  else
    obs::disarm_span_stats();
  for (auto _ : state) {
    obs::Span span("bench.span_overhead");
    benchmark::DoNotOptimize(&span);
  }
  obs::disarm_tracing();
  obs::reset_tracing();
  obs::disarm_span_stats();
  obs::reset_span_stats();
  obs::set_flight_enabled(flight_was);
  obs::FastClock::set_mode(obs::ClockMode::kAuto);
}

void BM_SpanOverhead_Disarmed(benchmark::State& state) {
  run_span_overhead(state, {});
}
BENCHMARK(BM_SpanOverhead_Disarmed);

void BM_SpanOverhead_FlightOnly(benchmark::State& state) {
  run_span_overhead(state, {.flight = true});
}
BENCHMARK(BM_SpanOverhead_FlightOnly);

void BM_SpanOverhead_StatsOnly(benchmark::State& state) {
  run_span_overhead(state, {.stats = true});
}
BENCHMARK(BM_SpanOverhead_StatsOnly);

void BM_SpanOverhead_TraceTsc(benchmark::State& state) {
  run_span_overhead(
      state, {.trace = true, .stats = true, .flight = true,
              .clock = obs::ClockMode::kTsc});
}
BENCHMARK(BM_SpanOverhead_TraceTsc);

void BM_SpanOverhead_TraceSteady(benchmark::State& state) {
  run_span_overhead(
      state, {.trace = true, .stats = true, .flight = true,
              .clock = obs::ClockMode::kSteady});
}
BENCHMARK(BM_SpanOverhead_TraceSteady);

void BM_SpanOverhead_CompiledOut(benchmark::State& state) {
  // The MP_TRACE=0 call-site shape, selectable in any build: NullSpan
  // swallows its arguments and carries no state.
  for (auto _ : state) {
    obs::detail::NullSpan span("bench.span_overhead");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanOverhead_CompiledOut);

// --- Kernel ablation (BENCH_5) -------------------------------------------
// One benchmark per dispatchable kernel on a pinned input (uniform, seed
// 42, m = n = 64 Ki — in-L2 so the measurement is kernel-bound, not
// DRAM-bound). scripts/bench_kernels.py runs this family with
// --benchmark_format=json and emits results/BENCH_5.json (ns/element per
// kernel, speedup vs scalar).

constexpr std::size_t kAblationN = 1 << 16;

void run_kernel_merge32(benchmark::State& state, kernels::Kernel kernel) {
  const auto input = make_merge_input(Dist::kUniform, kAblationN, kAblationN,
                                      42);
  std::vector<std::int32_t> out(2 * kAblationN);
  const kernels::Kernel previous = kernels::selected_kernel();
  kernels::set_kernel(kernel);
  for (auto _ : state) {
    std::size_t i = 0, j = 0;
    kernels::merge_steps_auto(input.a.data(), kAblationN, input.b.data(),
                              kAblationN, &i, &j, out.data(),
                              2 * kAblationN);
    benchmark::DoNotOptimize(out.data());
  }
  kernels::set_kernel(previous);
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * kAblationN) *
                          static_cast<std::int64_t>(state.iterations()));
}

void run_kernel_merge64(benchmark::State& state, kernels::Kernel kernel) {
  // Same pinned keys widened to 64 bits (order-preserving), exercising
  // the half-width lane variants.
  const auto input = make_merge_input(Dist::kUniform, kAblationN, kAblationN,
                                      42);
  std::vector<std::int64_t> a(kAblationN), b(kAblationN);
  for (std::size_t k = 0; k < kAblationN; ++k) {
    a[k] = static_cast<std::int64_t>(input.a[k]) << 16;
    b[k] = static_cast<std::int64_t>(input.b[k]) << 16;
  }
  std::vector<std::int64_t> out(2 * kAblationN);
  const kernels::Kernel previous = kernels::selected_kernel();
  kernels::set_kernel(kernel);
  for (auto _ : state) {
    std::size_t i = 0, j = 0;
    kernels::merge_steps_auto(a.data(), kAblationN, b.data(), kAblationN, &i,
                              &j, out.data(), 2 * kAblationN);
    benchmark::DoNotOptimize(out.data());
  }
  kernels::set_kernel(previous);
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * kAblationN) *
                          static_cast<std::int64_t>(state.iterations()));
}

void run_kernel_merge_f32(benchmark::State& state, kernels::Kernel kernel) {
  // Total-order float mode row: the pinned keys as floats (monotone
  // conversion; mantissa rounding adds extra ties, which is the harder
  // case), merged under TotalOrderLess so dispatch admits the vector
  // path via the sign-flip key bijection.
  const auto input = make_merge_input(Dist::kUniform, kAblationN, kAblationN,
                                      42);
  std::vector<float> a(kAblationN), b(kAblationN);
  for (std::size_t k = 0; k < kAblationN; ++k) {
    a[k] = static_cast<float>(input.a[k]);
    b[k] = static_cast<float>(input.b[k]);
  }
  std::vector<float> out(2 * kAblationN);
  const kernels::Kernel previous = kernels::selected_kernel();
  kernels::set_kernel(kernel);
  for (auto _ : state) {
    std::size_t i = 0, j = 0;
    kernels::merge_steps_auto(a.data(), kAblationN, b.data(), kAblationN, &i,
                              &j, out.data(), 2 * kAblationN,
                              kernels::TotalOrderLess{});
    benchmark::DoNotOptimize(out.data());
  }
  kernels::set_kernel(previous);
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * kAblationN) *
                          static_cast<std::int64_t>(state.iterations()));
}

void run_kernel_merge_f64(benchmark::State& state, kernels::Kernel kernel) {
  const auto input = make_merge_input(Dist::kUniform, kAblationN, kAblationN,
                                      42);
  std::vector<double> a(kAblationN), b(kAblationN);
  for (std::size_t k = 0; k < kAblationN; ++k) {
    a[k] = static_cast<double>(input.a[k]) * 1.25;
    b[k] = static_cast<double>(input.b[k]) * 1.25;
  }
  std::vector<double> out(2 * kAblationN);
  const kernels::Kernel previous = kernels::selected_kernel();
  kernels::set_kernel(kernel);
  for (auto _ : state) {
    std::size_t i = 0, j = 0;
    kernels::merge_steps_auto(a.data(), kAblationN, b.data(), kAblationN, &i,
                              &j, out.data(), 2 * kAblationN,
                              kernels::TotalOrderLess{});
    benchmark::DoNotOptimize(out.data());
  }
  kernels::set_kernel(previous);
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * kAblationN) *
                          static_cast<std::int64_t>(state.iterations()));
}

// Sort base case at the merge-sort grain: 64 Ki keys sorted as
// independent kInsertionSortThreshold-element runs, fresh (unsorted)
// bytes every iteration via a timed memcpy both variants pay
// identically. The "insertion" row calls the fallback directly; the
// per-kernel rows go through sort_small_auto, which takes the network
// path under any vector kernel.
void run_sort_small(benchmark::State& state, kernels::Kernel kernel,
                    bool force_insertion) {
  // Unsorted keys, not make_merge_input (whose arrays are pre-sorted —
  // insertion sort would run its O(n) best case and the comparison would
  // be meaningless).
  std::vector<std::int32_t> pristine(kAblationN);
  Xoshiro256 rng(42);
  for (auto& x : pristine) x = static_cast<std::int32_t>(rng.bounded(1u << 30));
  std::vector<std::int32_t> data(kAblationN);
  const kernels::Kernel previous = kernels::selected_kernel();
  kernels::set_kernel(kernel);
  constexpr std::size_t kGrain = detail::kInsertionSortThreshold;
  for (auto _ : state) {
    std::memcpy(data.data(), pristine.data(),
                kAblationN * sizeof(std::int32_t));
    for (std::size_t begin = 0; begin < kAblationN; begin += kGrain) {
      const std::size_t len = std::min(kGrain, kAblationN - begin);
      if (force_insertion) {
        kernels::detail::insertion_sort_fallback(
            data.data() + begin, len, std::less<>{},
            static_cast<NoInstrument*>(nullptr));
      } else {
        kernels::sort_small_auto(data.data() + begin, len);
      }
    }
    benchmark::DoNotOptimize(data.data());
  }
  kernels::set_kernel(previous);
  state.SetItemsProcessed(static_cast<std::int64_t>(kAblationN) *
                          static_cast<std::int64_t>(state.iterations()));
}

void register_kernel_ablation(bool restrict_to_selected) {
  benchmark::RegisterBenchmark(
      "BM_SortSmall24/insertion", [](benchmark::State& state) {
        run_sort_small(state, kernels::Kernel::kScalar, true);
      });
  for (const kernels::Kernel kernel : kernels::kAllKernels) {
    if (!kernels::kernel_supported(kernel)) continue;
    if (restrict_to_selected && kernel != kernels::selected_kernel())
      continue;
    const std::string name = kernels::to_string(kernel);
    benchmark::RegisterBenchmark(
        ("BM_KernelMerge32/" + name).c_str(),
        [kernel](benchmark::State& state) {
          run_kernel_merge32(state, kernel);
        });
    benchmark::RegisterBenchmark(
        ("BM_KernelMerge64/" + name).c_str(),
        [kernel](benchmark::State& state) {
          run_kernel_merge64(state, kernel);
        });
    benchmark::RegisterBenchmark(
        ("BM_KernelMergeF32/" + name).c_str(),
        [kernel](benchmark::State& state) {
          run_kernel_merge_f32(state, kernel);
        });
    benchmark::RegisterBenchmark(
        ("BM_KernelMergeF64/" + name).c_str(),
        [kernel](benchmark::State& state) {
          run_kernel_merge_f64(state, kernel);
        });
    benchmark::RegisterBenchmark(
        ("BM_SortSmall24/" + name).c_str(),
        [kernel](benchmark::State& state) {
          run_sort_small(state, kernel, false);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Pre-parse --kernel: google-benchmark rejects flags it doesn't know,
  // and the dispatch choice must be applied before registration.
  std::string forced;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernel") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --kernel needs a value "
                             "(scalar|branchless|sse4|avx2|avx512)\n");
        return 2;
      }
      forced = argv[++i];
    } else if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      forced = argv[i] + 9;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!forced.empty()) {
    const auto kernel = kernels::parse_kernel(forced);
    if (!kernel) {
      std::fprintf(stderr,
                   "error: unknown --kernel '%s' "
                   "(scalar|branchless|sse4|avx2|avx512)\n",
                   forced.c_str());
      return 2;
    }
    if (!kernels::set_kernel(*kernel)) {
      // Graceful skip: CI asks for avx2 unconditionally and treats a
      // host without it as "nothing to measure", not a failure.
      std::printf("bench_micro: kernel %s not supported on this host/build "
                  "(%s); skipping\n",
                  forced.c_str(), kernels::kernel_banner().c_str());
      return 0;
    }
  }
  // stderr: --benchmark_format=json readers own stdout.
  std::fprintf(stderr, "bench_micro: %s; host: %s\n",
               kernels::kernel_banner().c_str(),
               describe(host_info()).c_str());
  register_kernel_ablation(!forced.empty());

  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
