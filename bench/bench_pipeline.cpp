/// \file bench_pipeline.cpp
/// E18 — crash-consistent pipeline: double-buffering overlap win and
/// checkpoint overhead (BENCH_9).
///
/// Three runs of the identical sharded external sort on a device with
/// realize_scale > 0 (transfers really sleep for a scaled fraction of
/// their modeled cost — modeled time is a pure sum and cannot show
/// overlap; wall-clock can):
///
///   serial        double_buffer=false: every transfer inline on the
///                 caller, the PR's own baseline
///   overlapped    double_buffer=true: transfers on the I/O thread,
///                 prefetch/flush overlap the sort and merge compute
///   no-checkpoint overlapped with checkpoints=false: isolates what the
///                 manifest writes cost
///
/// overlap_speedup = serial / overlapped wall time; checkpoint overhead =
/// (overlapped - no-checkpoint) / no-checkpoint. Every run's output is
/// verified against std::sort before a number is reported.
///
/// Flags (beyond the harness_common set):
///   --n N               elements (default 1 Mi; --full 4 Mi)
///   --shards N          pipeline shards / exchange ranks (default 3)
///   --memory N          elements per formed run (default 64 Ki)
///   --segment-blocks N  merge-segment redo grain (default 4)
///   --realize S         realize_scale: sleep fraction of modeled cost
///                       (default 0.2; --full 0.4)
///   --threads N         lanes for the in-memory sorts (default 0 = all)
///   --json PATH         write the BENCH_9 artifact
///                       (schema mergepath-bench-pipeline-v1)

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "extmem/block_device.hpp"
#include "extmem/run_file.hpp"
#include "harness_common.hpp"
#include "pipeline/pipeline.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mp::bench {
namespace {

struct ModeResult {
  std::string mode;
  double wall_ms = 0;
  double modeled_io_us = 0;
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;
  pipeline::PipelineReport report;
};

ModeResult run_mode(const std::string& mode,
                    const std::vector<std::int32_t>& values,
                    const std::vector<std::int32_t>& expected,
                    const extmem::DeviceConfig& device_config,
                    const pipeline::PipelineConfig& cfg) {
  extmem::BlockDevice device(device_config);
  extmem::RunWriter<std::int32_t> writer(device);
  writer.append(values.data(), values.size());
  const extmem::RunHandle input = writer.finish();
  const extmem::DeviceStats before = device.stats();

  auto pipe = pipeline::Pipeline<std::int32_t>::start(device, input, cfg);
  Timer timer;
  ModeResult out;
  out.mode = mode;
  out.report = pipe.run();
  out.wall_ms = timer.seconds() * 1e3;
  out.modeled_io_us = device.modeled_io_us();
  out.block_reads = device.stats().block_reads - before.block_reads;
  out.block_writes = device.stats().block_writes - before.block_writes;

  extmem::RunReader<std::int32_t> reader(device, out.report.output);
  std::size_t at = 0;
  while (!reader.empty()) {
    if (at >= expected.size() || reader.next() != expected[at]) {
      std::cerr << "error: " << mode << " output mismatch at element " << at
                << "\n";
      std::exit(1);
    }
    ++at;
  }
  if (at != expected.size()) {
    std::cerr << "error: " << mode << " output truncated (" << at << " of "
              << expected.size() << ")\n";
    std::exit(1);
  }
  return out;
}

void write_artifact(const std::string& path, std::uint64_t n,
                    const extmem::DeviceConfig& device_config,
                    const pipeline::PipelineConfig& cfg, std::uint64_t seed,
                    const std::vector<ModeResult>& modes,
                    double overlap_speedup, double checkpoint_overhead_pct) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(1);
  }
  os << "{\n"
     << "  \"schema\": \"mergepath-bench-pipeline-v1\",\n"
     << "  \"experiment\": \"E18\",\n"
     << "  \"host\": \"" << describe(host_info()) << "\",\n"
     << "  \"seed\": " << seed << ",\n"
     << "  \"n\": " << n << ",\n"
     << "  \"shards\": " << cfg.shards << ",\n"
     << "  \"memory_elems\": " << cfg.memory_elems << ",\n"
     << "  \"segment_blocks\": " << cfg.segment_blocks << ",\n"
     << "  \"block_bytes\": " << device_config.block_bytes << ",\n"
     << "  \"realize_scale\": " << device_config.realize_scale << ",\n"
     << "  \"overlap_speedup\": " << overlap_speedup << ",\n"
     << "  \"checkpoint_overhead_pct\": " << checkpoint_overhead_pct
     << ",\n"
     << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    os << "    {\n"
       << "      \"mode\": \"" << m.mode << "\",\n"
       << "      \"wall_ms\": " << m.wall_ms << ",\n"
       << "      \"modeled_io_us\": " << m.modeled_io_us << ",\n"
       << "      \"block_reads\": " << m.block_reads << ",\n"
       << "      \"block_writes\": " << m.block_writes << ",\n"
       << "      \"steps\": " << m.report.steps << ",\n"
       << "      \"checkpoints\": " << m.report.checkpoints << ",\n"
       << "      \"runs_formed\": " << m.report.runs_formed << ",\n"
       << "      \"segments_merged\": " << m.report.segments_merged << ",\n"
       << "      \"ranks_exchanged\": " << m.report.ranks_exchanged
       << "\n    }" << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cerr << "artifact written to " << path << "\n";
}

}  // namespace
}  // namespace mp::bench

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;

  Harness h(argc, argv, "E18",
            "crash-consistent pipeline: I/O overlap + checkpoint overhead");
  const auto n = static_cast<std::uint64_t>(
      h.cli.get_int("n", h.full ? 4 << 20 : 1 << 20));
  const auto shards = static_cast<unsigned>(h.cli.get_int("shards", 3));
  const auto memory =
      static_cast<std::uint64_t>(h.cli.get_int("memory", 64 << 10));
  const auto segment_blocks =
      static_cast<std::uint64_t>(h.cli.get_int("segment-blocks", 4));
  const double realize =
      h.cli.get_double("realize", h.full ? 0.4 : 0.2);
  const auto threads = static_cast<unsigned>(h.cli.get_int("threads", 0));
  const std::string json_path = h.cli.get("json", "");
  (void)h.cli.get("benchmark_min_time", "");
  h.check_flags();

  Xoshiro256 rng(h.seed);
  std::vector<std::int32_t> values(static_cast<std::size_t>(n));
  for (auto& x : values) x = static_cast<std::int32_t>(rng());
  std::vector<std::int32_t> expected = values;
  std::sort(expected.begin(), expected.end());

  extmem::DeviceConfig device_config;
  device_config.realize_scale = realize;

  pipeline::PipelineConfig cfg;
  cfg.shards = shards;
  cfg.memory_elems = memory;
  cfg.segment_blocks = segment_blocks;
  cfg.exec = Executor{nullptr, threads};

  // Serial first: if warm-up drift favours anyone, it favours the
  // baseline we bet against.
  std::vector<ModeResult> modes;
  {
    pipeline::PipelineConfig serial = cfg;
    serial.double_buffer = false;
    modes.push_back(run_mode("serial", values, expected, device_config,
                             serial));
  }
  modes.push_back(run_mode("overlapped", values, expected, device_config,
                           cfg));
  {
    pipeline::PipelineConfig nockpt = cfg;
    nockpt.checkpoints = false;
    modes.push_back(run_mode("no-checkpoint", values, expected,
                             device_config, nockpt));
  }
  const ModeResult& serial = modes[0];
  const ModeResult& overlapped = modes[1];
  const ModeResult& nockpt = modes[2];

  Table table({"mode", "wall_ms", "modeled_io_ms", "reads", "writes",
               "checkpoints", "steps"});
  for (const ModeResult& m : modes) {
    table.add_row({m.mode, fmt_double(m.wall_ms, 2),
                   fmt_double(m.modeled_io_us / 1e3, 2),
                   std::to_string(m.block_reads),
                   std::to_string(m.block_writes),
                   std::to_string(m.report.checkpoints),
                   std::to_string(m.report.steps)});
  }
  h.emit(table);

  const double overlap_speedup =
      overlapped.wall_ms > 0.0 ? serial.wall_ms / overlapped.wall_ms : 0.0;
  const double checkpoint_overhead_pct =
      nockpt.wall_ms > 0.0
          ? (overlapped.wall_ms - nockpt.wall_ms) / nockpt.wall_ms * 100.0
          : 0.0;
  if (!h.csv) {
    std::cout << "double-buffer overlap win: "
              << fmt_double(overlap_speedup, 2) << "x\n"
              << "checkpoint overhead: "
              << fmt_double(checkpoint_overhead_pct, 1) << "%\n";
  }
  if (!json_path.empty())
    write_artifact(json_path, n, device_config, cfg, h.seed, modes,
                   overlap_speedup, checkpoint_overhead_pct);
  return 0;
}
