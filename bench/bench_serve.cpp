/// \file bench_serve.cpp
/// E17 — merge-as-a-service: cross-request batching throughput (BENCH_8).
///
/// Closed-loop load against two servers that differ in exactly one bit:
/// ServerConfig::batching. Same seed, same skewed 4–64 Ki request mix,
/// same executor thread count — so the throughput ratio isolates what
/// coalescing buys: one segmented fork-join (one barrier, one checkout)
/// across many small sorts instead of a parallel sort dispatched
/// per-request.
///
/// Flags (beyond the harness_common set):
///   --requests N          closed-loop requests per mode (default 768;
///                         --full 3072)
///   --sessions N          concurrent sessions (default 32)
///   --window N            per-session outstanding window (default 8)
///   --threads N           executor lanes, equal in both modes (default 40)
///   --min-elements N      smallest request (default 4096)
///   --max-elements N      largest request (default 65536)
///   --skew S              size skew exponent, higher = smaller requests
///                         dominate (default 8)
///   --merge-fraction F    fraction of requests that are merges
///                         (default 0; merges never coalesce, so they
///                         break batch-assembly runs — dial in to study)
///   --width64-fraction F  fraction of 64-bit-key requests (default 0;
///                         width changes also break runs)
///   --json PATH           write the BENCH_8 artifact
///                         (schema mergepath-bench-serve-v1)
///
/// Default shape, deliberately serving-flavoured: a deep closed loop
/// (32 sessions x window 8) over a Zipf-ish 4-64 Ki mix where small
/// requests dominate, against a worker pool sized like a service's
/// (40 lanes), not like this host. That is the regime the tentpole
/// targets: per-request fork-join dispatch pays the full barrier +
/// checkout + oversubscription cost per request, while the batched
/// server pays it once per ~64-request segmented job. On a many-core
/// host the same amortization shows up at lower thread counts with
/// cheaper barriers; the ratio is the point, not the absolute rps.
///
/// The p50/p99 columns come from two independent surfaces and should
/// roughly agree: the load generator's own end-to-end latencies and the
/// PR 7 span-percentile surface (`serve.request`).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness_common.hpp"
#include "obs/percentiles.hpp"
#include "serve/loadgen.hpp"
#include "serve/serve.hpp"
#include "util/hw.hpp"
#include "util/threading.hpp"

namespace mp::bench {
namespace {

struct ModeResult {
  std::string mode;
  serve::LoadGenReport rep;
  obs::SpanStat request{};     ///< serve.request span percentiles
  obs::SpanStat queue_wait{};  ///< serve.queue_wait span percentiles
  std::uint64_t batches = 0;
};

ModeResult run_mode(bool batching, unsigned threads,
                    const serve::LoadGenConfig& lg) {
  obs::reset_span_stats();
  obs::arm_span_stats();

  ThreadPool pool(threads);
  serve::ServerConfig cfg;
  cfg.exec = Executor{&pool, threads};
  cfg.batching = batching;
  cfg.record_batch_sizes = true;

  ModeResult out;
  out.mode = batching ? "batched" : "unbatched";
  {
    serve::Server server(cfg);
    out.rep = serve::run_closed_loop(server, lg);
    server.shutdown();
    out.batches = server.stats().batches;
  }
  obs::disarm_span_stats();
  for (const obs::SpanStat& s : obs::span_stats_snapshot()) {
    if (s.name == std::string("serve.request")) out.request = s;
    if (s.name == std::string("serve.queue_wait")) out.queue_wait = s;
  }
  return out;
}

void write_artifact(const std::string& path, const serve::LoadGenConfig& lg,
                    unsigned threads, const ModeResult& batched,
                    const ModeResult& unbatched, double speedup) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(1);
  }
  const auto mode_json = [&](const ModeResult& m) {
    os << "    {\n"
       << "      \"mode\": \"" << m.mode << "\",\n"
       << "      \"completed\": " << m.rep.completed << ",\n"
       << "      \"batched_responses\": " << m.rep.batched << ",\n"
       << "      \"batches\": " << m.batches << ",\n"
       << "      \"throughput_rps\": " << m.rep.throughput_rps() << ",\n"
       << "      \"throughput_elems_per_s\": " << m.rep.throughput_elems_s()
       << ",\n"
       << "      \"p50_us\": " << m.rep.latency_ns(0.50) / 1e3 << ",\n"
       << "      \"p99_us\": " << m.rep.latency_ns(0.99) / 1e3 << ",\n"
       << "      \"p999_us\": " << m.rep.latency_ns(0.999) / 1e3 << ",\n"
       << "      \"span_request_p50_us\": " << m.request.p50_ns / 1e3
       << ",\n"
       << "      \"span_request_p99_us\": " << m.request.p99_ns / 1e3
       << "\n    }";
  };
  os << "{\n"
     << "  \"schema\": \"mergepath-bench-serve-v1\",\n"
     << "  \"experiment\": \"E17\",\n"
     << "  \"host\": \"" << describe(host_info()) << "\",\n"
     << "  \"seed\": " << lg.seed << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"requests\": " << lg.requests << ",\n"
     << "  \"sessions\": " << lg.sessions << ",\n"
     << "  \"window\": " << lg.window << ",\n"
     << "  \"min_elements\": " << lg.mix.min_elements << ",\n"
     << "  \"max_elements\": " << lg.mix.max_elements << ",\n"
     << "  \"size_skew\": " << lg.mix.size_skew << ",\n"
     << "  \"merge_fraction\": " << lg.mix.merge_fraction << ",\n"
     << "  \"width64_fraction\": " << lg.mix.width64_fraction << ",\n"
     << "  \"speedup_batched_vs_unbatched\": " << speedup << ",\n"
     << "  \"modes\": [\n";
  mode_json(batched);
  os << ",\n";
  mode_json(unbatched);
  os << "\n  ]\n}\n";
  std::cerr << "artifact written to " << path << "\n";
}

}  // namespace
}  // namespace mp::bench

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;

  Harness h(argc, argv, "E17",
            "merge-as-a-service: cross-request batching throughput");
  const auto requests = static_cast<std::size_t>(
      h.cli.get_int("requests", h.full ? 3072 : 768));
  const auto sessions =
      static_cast<std::size_t>(h.cli.get_int("sessions", 32));
  const auto window = static_cast<std::size_t>(h.cli.get_int("window", 8));
  const auto threads = static_cast<unsigned>(h.cli.get_int("threads", 40));
  serve::LoadGenConfig lg;
  lg.seed = h.seed;
  lg.sessions = sessions;
  lg.window = window;
  lg.requests = requests;
  lg.mix.min_elements =
      static_cast<std::size_t>(h.cli.get_int("min-elements", 4096));
  lg.mix.max_elements =
      static_cast<std::size_t>(h.cli.get_int("max-elements", 65536));
  lg.mix.size_skew = h.cli.get_double("skew", 8.0);
  lg.mix.merge_fraction = h.cli.get_double("merge-fraction", 0.0);
  lg.mix.width64_fraction = h.cli.get_double("width64-fraction", 0.0);
  const std::string json_path = h.cli.get("json", "");
  // The CI bench sweep passes --benchmark_min_time to every bench_*
  // binary; this harness isn't google-benchmark, so accept and ignore it.
  (void)h.cli.get("benchmark_min_time", "");
  h.check_flags();

  // Unbatched first so the batched run cannot ride a warmed allocator
  // unfairly — if anything the ordering favours the mode we bet against.
  const ModeResult unbatched = run_mode(false, threads, lg);
  const ModeResult batched = run_mode(true, threads, lg);

  for (const ModeResult* m : {&unbatched, &batched}) {
    if (!m->rep.ok()) {
      std::cerr << "error: " << m->mode
                << " run failed verification (conservation="
                << m->rep.conservation_ok << " ordering=" << m->rep.ordering_ok
                << " payload=" << m->rep.payload_ok
                << " failed=" << m->rep.failed << ")\n";
      return 1;
    }
  }

  Table table({"mode", "completed", "batches", "rps", "Melems/s", "p50_ms",
               "p99_ms", "p999_ms", "span_p50_ms", "span_p99_ms"});
  for (const ModeResult* m : {&unbatched, &batched}) {
    table.add_row(
        {m->mode, std::to_string(m->rep.completed),
         std::to_string(m->batches), fmt_double(m->rep.throughput_rps(), 1),
         fmt_double(m->rep.throughput_elems_s() / 1e6, 2),
         fmt_double(static_cast<double>(m->rep.latency_ns(0.50)) / 1e6, 3),
         fmt_double(static_cast<double>(m->rep.latency_ns(0.99)) / 1e6, 3),
         fmt_double(static_cast<double>(m->rep.latency_ns(0.999)) / 1e6, 3),
         fmt_double(static_cast<double>(m->request.p50_ns) / 1e6, 3),
         fmt_double(static_cast<double>(m->request.p99_ns) / 1e6, 3)});
  }
  h.emit(table);

  const double speedup = unbatched.rep.throughput_rps() > 0.0
                             ? batched.rep.throughput_rps() /
                                   unbatched.rep.throughput_rps()
                             : 0.0;
  if (!h.csv)
    std::cout << "batched vs unbatched throughput: " << fmt_double(speedup, 2)
              << "x\n";
  if (!json_path.empty())
    write_artifact(json_path, lg, threads, batched, unbatched, speedup);
  return 0;
}
