// Experiment E1 — Figure 5 of the paper: speedup of the basic Parallel
// Merge (Algorithm 1) versus thread count, one series per input-array
// size.
//
// The paper measured 1M/4M/16M/64M/256M-element arrays (32-bit ints, size
// per input array) on a 12-core Xeon X5670 box, reporting near-linear
// speedup (~11.7x at 12 threads) with a slight droop for the largest
// arrays. This harness reproduces the figure under the CREW PRAM cost
// model (DESIGN.md section 2 explains the substitution); pass --wallclock
// to also print host wall-clock numbers, which on a single-core container
// are reported for honesty, not for shape.
//
// Flags: --full (all five paper sizes; default 1M/4M/16M), --threads-max N
// (default 12), --wallclock, --csv, --seed.

#include <iostream>
#include <vector>

#include "core/mergepath.hpp"
#include "harness_common.hpp"
#include "pram/speedup.hpp"
#include "util/data_gen.hpp"
#include "util/timer.hpp"

namespace {

using namespace mp;
using namespace mp::bench;
using namespace mp::pram;

double wallclock_merge_seconds(const MergeInput& input, unsigned threads) {
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  return time_best_of([&] {
    parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                   input.b.size(), out.data(), Executor{nullptr, threads});
  });
}

}  // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "E1/Figure 5",
            "Parallel Merge speedup vs threads (PRAM cost model)");
  const unsigned threads_max =
      static_cast<unsigned>(h.cli.get_int("threads-max", 12));
  const bool wallclock = h.cli.get_bool("wallclock");
  h.check_flags();

  std::vector<std::size_t> sizes{1u << 20, 4u << 20, 16u << 20};
  if (h.full) {
    sizes.push_back(64u << 20);
    sizes.push_back(256u << 20);
  }
  std::vector<unsigned> threads;
  for (unsigned p = 1; p <= threads_max; ++p) threads.push_back(p);

  const auto model = MachineModel::paper_x5670();
  Table table({"elements_per_array", "threads", "modeled_ms", "speedup",
               "compute_ms", "memory_ms", "barrier_us"});
  for (std::size_t size : sizes) {
    const SpeedupCurve curve =
        merge_speedup_curve(size, threads, model, h.seed);
    for (const CurvePoint& pt : curve.points) {
      table.add_row({fmt_count(size), std::to_string(pt.threads),
                     fmt_double(pt.sim.time_ns / 1e6, 2),
                     fmt_ratio(pt.speedup),
                     fmt_double(pt.sim.compute_ns / 1e6, 2),
                     fmt_double(pt.sim.memory_ns / 1e6, 2),
                     fmt_double(pt.sim.barrier_ns / 1e3, 1)});
    }
  }
  h.emit(table);

  if (!h.csv) {
    std::cout << "\npaper reference: near-linear speedup, ~11.7x at 12 "
                 "threads, slightly\nlower for the largest arrays "
                 "(Section VI, Figure 5).\n";
  }

  // Data-independence check (Corollary 7: every path step costs the same,
  // so the partition balances REGARDLESS of the input interleaving): the
  // modelled 12-thread speedup per adversarial distribution.
  if (!h.csv)
    std::cout << "\nload balance is data-independent — speedup at p = 12 "
                 "by input shape (1M/array):\n";
  {
    Table dists({"distribution", "speedup@12", "max/mean_elements",
                 "max/mean_op_cost"});
    for (Dist dist : kAllDists) {
      const auto input = make_merge_input(dist, 1u << 20, 1u << 20, h.seed);
      const auto base =
          mp::pram::simulate_parallel_merge(input.a, input.b, 1, model);
      const auto run =
          mp::pram::simulate_parallel_merge(input.a, input.b, 12, model);
      ThreadPool serial(0);
      std::vector<OpCounts> counts(12);
      std::vector<std::int32_t> out(input.a.size() + input.b.size());
      parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                     input.b.size(), out.data(), Executor{&serial, 12},
                     std::less<>{}, std::span<OpCounts>(counts));
      std::uint64_t max_elems = 0, sum_elems = 0, max_ops = 0, sum_ops = 0;
      for (const auto& c : counts) {
        max_elems = std::max(max_elems, c.moves);
        sum_elems += c.moves;
        max_ops = std::max(max_ops, c.total());
        sum_ops += c.total();
      }
      dists.add_row({to_string(dist),
                     fmt_ratio(base.time_ns / run.time_ns),
                     fmt_double(static_cast<double>(max_elems) * 12.0 /
                                    static_cast<double>(sum_elems),
                                3),
                     fmt_double(static_cast<double>(max_ops) * 12.0 /
                                    static_cast<double>(sum_ops),
                                3)});
    }
    h.emit(dists);
    if (!h.csv)
      std::cout
          << "\nelements per lane are exactly equal on every input "
             "(Corollary 7). The op-cost\nspread on degenerate shapes "
             "(disjoint/all-equal) is a kernel OPTIMISATION, not\nan "
             "imbalance: lanes whose slice is a pure copy skip the "
             "comparison entirely\nand finish EARLY — the paper's uniform-"
             "step model treats every step as\nread+compare+write, which "
             "the uniform rows match at 1.000/1.000.\n";
  }

  if (wallclock) {
    Table wc({"elements_per_array", "threads", "wall_ms", "speedup_vs_p1"});
    for (std::size_t size : sizes) {
      if (size > (16u << 20)) continue;  // keep host memory sane
      const auto input =
          make_merge_input(Dist::kUniform, size, size, h.seed);
      const double base = wallclock_merge_seconds(input, 1);
      for (unsigned p : {1u, 2u, 4u, 8u, 12u}) {
        if (p > threads_max) break;
        const double t = wallclock_merge_seconds(input, p);
        wc.add_row({fmt_count(size), std::to_string(p),
                    fmt_double(t * 1e3, 2), fmt_ratio(base / t)});
      }
    }
    if (!h.csv)
      std::cout << "\nhost wall clock (" << host_info().logical_cpus
                << "-core container; shape not comparable to Figure 5):\n";
    h.emit(wc);
  }
  return 0;
}
