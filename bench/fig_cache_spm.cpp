// Experiments E4 + E5 — Section IV of the paper on the cache simulator.
//
// E4: cache behaviour of the basic parallel merge vs the Segmented
//     Parallel Merge when the shared cache is small. The basic algorithm's
//     p lanes stream from 3p data windows at data-dependent addresses; SPM
//     confines each segment's working set to 3 windows of L = C/3. The
//     table reports misses per element and the classification breakdown.
//
// E5: the Section IV.B Remark — "3-way associativity suffices to guarantee
//     collision freedom". Associativity sweep at constant capacity with
//     worst-case window alignment: conflict misses collapse to ~zero at
//     3 ways and stay there.
//
// Flags: --elements N (per array, default 64Ki; --full = 1Mi),
//        --cache-bytes N (default 12 KiB, the X5670 L3 scaled shape),
//        --threads N (default 8), --csv, --seed.

#include <iostream>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/traced_merge.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"

namespace {

using namespace mp;
using namespace mp::bench;
using namespace mp::cachesim;

std::string miss_per_kilo_element(const CacheStats& stats,
                                  std::size_t elements) {
  return fmt_double(static_cast<double>(stats.misses) * 1000.0 /
                        static_cast<double>(elements),
                    1);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "E4+E5/Section IV",
            "cache behaviour of basic vs segmented merge; associativity");
  const std::size_t per_array = static_cast<std::size_t>(
      h.cli.get_int("elements", h.full ? (1 << 20) : (1 << 16)));
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(h.cli.get_int("cache-bytes", 12 * 1024));
  const unsigned threads =
      static_cast<unsigned>(h.cli.get_int("threads", 8));
  h.check_flags();

  const auto input =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
  const std::size_t total = 2 * per_array;
  const std::size_t L = cache_bytes / 3 / MergeLayout::kElem;  // L = C/3
  // Worst-case placement: all arrays congruent modulo every set range
  // (any multiple of the capacity aligns them; see cache.hpp).
  const MergeLayout layout{0, cache_bytes * 1024, 2 * cache_bytes * 1024};

  // ---- E4: algorithm comparison on the simple (3-way) cache the paper's
  // segmented algorithm targets (Section VII: "many-core systems with
  // lightweight compute cores ... simple caches"). The basic algorithm's p
  // lanes each stream 3 windows scattered over the whole arrays — up to 3p
  // lines contending per set under adversarial alignment — while SPM keeps
  // every lane inside the same three L-long windows, needing exactly 3
  // ways no matter how large p grows.
  CacheConfig config;
  config.size_bytes = cache_bytes;
  config.line_bytes = 64;
  config.associativity = 3;

  Table e4({"algorithm", "accesses", "misses", "miss_rate",
            "misses_per_1k_elems", "compulsory", "conflict", "capacity"});
  auto add_run = [&](const char* name, const TraceResult& result) {
    const CacheStats& s = result.stats;
    e4.add_row({name, fmt_count(s.accesses), fmt_count(s.misses),
                fmt_percent(s.miss_rate()),
                miss_per_kilo_element(s, total), fmt_count(s.compulsory_misses),
                fmt_count(s.conflict_misses), fmt_count(s.capacity_misses)});
  };
  {
    Cache cache(config);
    add_run("sequential",
            trace_sequential_merge(input.a, input.b, layout, cache));
  }
  {
    Cache cache(config);
    add_run("parallel_basic (Alg.1)",
            trace_parallel_merge(input.a, input.b, threads, layout, cache));
  }
  {
    Cache cache(config);
    add_run("segmented windows (Alg.2 path)",
            trace_segmented_merge(input.a, input.b, threads, L, layout,
                                  cache));
  }
  {
    Cache cache(config);
    add_run("segmented staged (Alg.2 full)",
            trace_segmented_staged_merge(input.a, input.b, threads, L,
                                         layout, 3 * cache_bytes * 1024,
                                         cache));
  }
  if (!h.csv)
    std::cout << "cache: " << fmt_bytes(config.size_bytes) << " "
              << config.associativity << "-way, 64B lines; p = " << threads
              << ", L = C/3 = " << L << " elements\n";
  h.emit(e4);

  // ---- E5: associativity sweep, constant capacity, worst-case alignment.
  if (!h.csv)
    std::cout << "\nE5: associativity sweep (segmented windows, p = 1, "
                 "adversarial alignment)\n";
  Table e5({"ways", "misses", "compulsory", "conflict", "capacity",
            "conflict_free"});
  for (std::uint32_t ways : {1u, 2u, 3u, 4u, 6u}) {
    CacheConfig swept;
    swept.size_bytes = cache_bytes;
    swept.line_bytes = 64;
    swept.associativity = ways;
    if (!swept.valid()) continue;
    Cache cache(swept);
    const auto result =
        trace_segmented_merge(input.a, input.b, 1, L, layout, cache);
    const CacheStats& s = result.stats;
    const bool clean =
        s.conflict_misses + s.capacity_misses <= s.compulsory_misses / 50;
    e5.add_row({std::to_string(ways), fmt_count(s.misses),
                fmt_count(s.compulsory_misses), fmt_count(s.conflict_misses),
                fmt_count(s.capacity_misses), clean ? "yes" : "no"});
  }
  h.emit(e5);
  if (!h.csv)
    std::cout << "\npaper reference: \"3-way associativity suffices to "
                 "guarantee collision\nfreedom\" (Section IV.B remark).\n";
  return 0;
}
