// Experiment E14 (extension) — Merge Path on the SIMT memory model: the
// design question its GPU descendants (GPU Merge Path, ModernGPU,
// Thrust/CUB merge) answered with shared-memory staging.
//
// Both simulated kernels partition identically (grid-level tile bounds,
// then per-thread diagonals — the paper's machinery verbatim); they differ
// only in where the scattered per-thread cursor traffic lands:
//
//   direct: merge loop reads/writes global memory; a warp's 32 cursors
//           scatter, and once VT*4B >= the 128B transaction size every
//           lane pays its own transaction;
//   staged: tile windows are loaded/stored cooperatively (coalesced) and
//           the scattered traffic happens in shared memory.
//
// The table sweeps items-per-thread (VT) and reports global transactions
// per merged element plus the modelled-time ratio.
//
// Flags: --elements N (per array, default 64Ki; --full 1Mi),
//        --cta-threads N (default 128), --csv, --seed.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "simt/gpu_merge.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::simt;

  Harness h(argc, argv, "E14/GPU descendants",
            "SIMT coalescing: direct vs shared-staged merge kernels");
  const std::size_t per_array = static_cast<std::size_t>(
      h.cli.get_int("elements", h.full ? (1 << 20) : (1 << 16)));
  const unsigned cta_threads =
      static_cast<unsigned>(h.cli.get_int("cta-threads", 128));
  h.check_flags();

  const auto input =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);

  Table table({"items_per_thread", "direct_txn_per_elem",
               "staged_txn_per_elem", "traffic_ratio", "modeled_speedup",
               "staged_bank_conflict_extra"});
  for (unsigned vt : {4u, 7u, 15u, 32u}) {
    GpuMergeConfig config;
    config.simt.cta_threads = cta_threads;
    config.items_per_thread = vt;
    const auto direct = gpu_merge_direct(input.a, input.b, config);
    const auto staged = gpu_merge_staged(input.a, input.b, config);
    if (direct.output != staged.output) {
      std::cerr << "KERNEL OUTPUT MISMATCH\n";
      return 1;
    }
    table.add_row(
        {std::to_string(vt), fmt_double(direct.transactions_per_element(), 3),
         fmt_double(staged.transactions_per_element(), 3),
         fmt_ratio(static_cast<double>(
                       direct.kernel.totals.global_transactions) /
                   static_cast<double>(
                       staged.kernel.totals.global_transactions)),
         fmt_ratio(direct.kernel.modeled_time / staged.kernel.modeled_time),
         fmt_count(staged.kernel.totals.bank_conflict_extra)});
  }
  h.emit(table);

  if (!h.csv)
    std::cout << "\nfull GPU merge sort (blocksort + staged merge tree):\n";
  {
    GpuMergeConfig config;
    config.simt.cta_threads = cta_threads;
    const auto unsorted = make_unsorted_values(2 * per_array, h.seed);
    const auto sorted = gpu_merge_sort(unsorted, config);
    Table sort_table({"phase", "global_txns", "txn_per_elem",
                      "shared_accesses", "ctas"});
    sort_table.add_row(
        {"blocksort",
         fmt_count(sorted.blocksort.totals.global_transactions),
         fmt_double(static_cast<double>(
                        sorted.blocksort.totals.global_transactions) /
                        static_cast<double>(unsorted.size()),
                    3),
         fmt_count(sorted.blocksort.totals.shared_accesses),
         fmt_count(sorted.blocksort.ctas)});
    sort_table.add_row(
        {"merge tree (" + std::to_string(sorted.rounds) + " rounds)",
         fmt_count(sorted.merge_rounds.totals.global_transactions),
         fmt_double(sorted.merge_transactions_per_element(), 3),
         fmt_count(sorted.merge_rounds.totals.shared_accesses),
         fmt_count(sorted.merge_rounds.ctas)});
    h.emit(sort_table);
  }

  if (!h.csv) {
    std::cout
        << "\nthe partition is identical in both kernels — what staging "
           "buys is moving the\nscattered per-cursor traffic from global "
           "(transaction-granular) to shared\nmemory, exactly the design "
           "adopted by the GPU Merge Path line of work that\ngrew out of "
           "this paper.\n";
  }
  return 0;
}
