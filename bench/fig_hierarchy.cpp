// Experiment E11 (extension) — the paper's two target memory systems side
// by side, Section IV/VI/VII:
//
//   * x86 shape (Section VI testbed): private L1 per core + big shared
//     LLC. The basic Algorithm 1 runs at the compulsory floor — lanes
//     cannot interfere, which is why the authors ran the basic version on
//     the Xeon box and "left [caching] to the hardware".
//   * simple-cache manycore shape (Section VII, Hypercore): one small,
//     low-associativity shared cache. The basic algorithm degrades as p
//     grows (3p contending windows); Segmented Parallel Merge holds the
//     compulsory floor at every p.
//
// This is the quantitative form of the paper's closing argument for why
// SPM exists even though the x86 numbers (Figure 5) never needed it.
//
// Flags: --elements N (per array, default 16Ki), --csv, --seed.

#include <iostream>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "cachesim/traced_merge.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::cachesim;

  Harness h(argc, argv, "E11/Sections IV+VII",
            "shared simple cache vs private-L1 hierarchy, by lane count");
  const std::size_t per_array = static_cast<std::size_t>(
      h.cli.get_int("elements", h.full ? (1 << 18) : (1 << 14)));
  h.check_flags();

  const auto input =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
  const std::uint64_t cache_bytes = 12 * 1024;
  const std::size_t L = cache_bytes / 3 / MergeLayout::kElem;
  const MergeLayout layout{0, cache_bytes * 1024, 2 * cache_bytes * 1024};

  CacheConfig simple;
  simple.size_bytes = cache_bytes;
  simple.associativity = 3;

  const HierarchyConfig hier_config = HierarchyConfig::paper_x5670(8 << 20);

  Table table({"lanes", "shared_basic_missrate", "shared_spm_missrate",
               "hier_L1_missrate", "hier_LLC_misses"});
  for (unsigned lanes : {1u, 2u, 4u, 8u, 12u}) {
    Cache c_basic(simple);
    const auto basic =
        trace_parallel_merge(input.a, input.b, lanes, layout, c_basic);

    Cache c_spm(simple);
    const auto spm =
        trace_segmented_merge(input.a, input.b, lanes, L, layout, c_spm);

    CacheHierarchy hier(hier_config, lanes);
    const auto x86 =
        trace_parallel_merge_hier(input.a, input.b, lanes, layout, hier);
    const double l1_rate =
        static_cast<double>(x86.stats.l1.misses) /
        static_cast<double>(x86.stats.l1.accesses);

    table.add_row({std::to_string(lanes),
                   fmt_percent(basic.stats.miss_rate()),
                   fmt_percent(spm.stats.miss_rate()), fmt_percent(l1_rate),
                   fmt_count(x86.stats.shared.misses)});
  }
  h.emit(table);
  if (!h.csv) {
    std::cout
        << "\nshared cache: " << fmt_bytes(simple.size_bytes)
        << " 3-way (simple-manycore shape); hierarchy: 32KiB 8-way "
           "private L1 per lane\n+ 8MiB shared LLC (x86 shape). paper "
           "reference: the basic algorithm suffices on\nthe x86 shape "
           "(Section VI), SPM is for the simple-cache shape (Section "
           "VII);\nnote hier_LLC_misses is p-invariant — no inter-core "
           "communication.\n";
  }
  return 0;
}
