// Experiment E12 (extension) — the Hypercore projection, Sections VI/VII.
//
// The paper implemented both algorithms on a "semi-stable prototype of
// Hypercore, a many-core architecture with shared L1 cache that is
// effectively a CREW PRAM", but could not report end-to-end numbers due to
// an incomplete cache system. The substitution here (DESIGN.md §2) is the
// PRAM cost model with a Hypercore-shaped parameterisation: many slow
// lanes, near-free fine-grain barriers, a small shared cache. The harness
// projects the merge and sort speedups to 64 lanes — the "much more cost-
// and power-efficient many-core" argument of the conclusion — and shows
// that Algorithm 2's extra barriers are affordable on this machine shape.
//
// Flags: --elements N (per array, default 1Mi), --csv, --seed.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "pram/baselines_sim.hpp"
#include "pram/simulate.hpp"
#include "pram/speedup.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::pram;

  Harness h(argc, argv, "E12/Section VII",
            "Hypercore-shape projection: merge speedup to 64 lanes");
  const std::size_t per_array =
      static_cast<std::size_t>(h.cli.get_int("elements", 1 << 20));
  h.check_flags();

  const MachineModel hyper = hypercore_model();
  const std::vector<unsigned> threads{1, 2, 4, 8, 16, 32, 48, 64};

  const SpeedupCurve curve =
      merge_speedup_curve(per_array, threads, hyper, h.seed);
  Table table({"lanes", "modeled_ms", "speedup"});
  for (const CurvePoint& pt : curve.points)
    table.add_row({std::to_string(pt.threads),
                   fmt_double(pt.sim.time_ns / 1e6, 2),
                   fmt_ratio(pt.speedup)});
  h.emit(table);

  if (!h.csv)
    std::cout << "\nbasic vs segmented at high lane counts (barriers are "
                 "near-free here):\n";
  Table seg({"lanes", "basic_ms", "segmented_ms", "segmented_penalty"});
  const auto input =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
  for (unsigned p : {8u, 32u, 64u}) {
    const auto basic = simulate_parallel_merge(input.a, input.b, p, hyper);
    SegmentedConfig config;
    config.cache_bytes = static_cast<std::size_t>(hyper.llc_bytes);
    const auto segmented =
        simulate_segmented_merge(input.a, input.b, p, hyper, config);
    seg.add_row({std::to_string(p), fmt_double(basic.time_ns / 1e6, 2),
                 fmt_double(segmented.time_ns / 1e6, 2),
                 fmt_ratio(segmented.time_ns / basic.time_ns)});
  }
  h.emit(seg);
  if (!h.csv)
    std::cout << "\npaper reference: \"the efficient segmented version of "
                 "our algorithm is very\npromising, as it can operate "
                 "efficiently with simple caches\" (Section VII);\nits "
                 "cache-miss advantage on this machine shape is experiment "
                 "E4/E11.\n";
  return 0;
}
