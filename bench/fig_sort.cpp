// Experiment E6 — Section III / IV.C: parallel merge sort and the
// cache-efficient parallel sort.
//
// Reports, under the PRAM cost model: the sort speedup curve (the sort
// companion to Figure 5) and the plain-vs-cache-efficient comparison —
// modelled time, barrier counts, and (from the cache simulator's
// standpoint) why the segmented variant trades extra work for residency.
//
// Flags: --elements N (default 256Ki; --full = 4Mi), --threads-max N
// (default 12), --csv, --seed.

#include <iostream>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/traced_merge.hpp"
#include "harness_common.hpp"
#include "pram/simulate.hpp"
#include "pram/speedup.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::pram;

  Harness h(argc, argv, "E6/Sections III+IV.C",
            "parallel merge sort and cache-efficient sort (PRAM model)");
  const std::size_t elements = static_cast<std::size_t>(
      h.cli.get_int("elements", h.full ? (4 << 20) : (256 << 10)));
  const unsigned threads_max =
      static_cast<unsigned>(h.cli.get_int("threads-max", 12));
  h.check_flags();

  const auto model = MachineModel::paper_x5670();
  std::vector<unsigned> threads;
  for (unsigned p = 1; p <= threads_max; p = p < 4 ? p + 1 : p + 2)
    threads.push_back(p);

  const SpeedupCurve curve =
      sort_speedup_curve(elements, threads, model, h.seed);
  Table sort_table({"elements", "threads", "modeled_ms", "speedup"});
  for (const CurvePoint& pt : curve.points) {
    sort_table.add_row({fmt_count(elements), std::to_string(pt.threads),
                        fmt_double(pt.sim.time_ns / 1e6, 2),
                        fmt_ratio(pt.speedup)});
  }
  h.emit(sort_table);

  if (!h.csv)
    std::cout << "\nplain parallel sort vs cache-efficient sort "
                 "(Section IV.C) vs one-pass k-way\n(extension), p sweep:\n";
  Table cmp({"threads", "plain_ms", "cache_ms", "kway_ms", "plain_barriers",
             "cache_barriers", "cache_work_ratio"});
  const auto values = make_unsorted_values(elements, h.seed);
  for (unsigned p : {1u, 4u, 8u, 12u}) {
    if (p > threads_max) break;
    const auto plain = simulate_merge_sort(values, p, model);
    const auto cache = simulate_cache_sort(values, p, model,
                                           32 * 1024 /* L1-sized blocks */);
    const auto kway = simulate_multiway_sort(values, p, model);
    cmp.add_row({std::to_string(p), fmt_double(plain.time_ns / 1e6, 2),
                 fmt_double(cache.time_ns / 1e6, 2),
                 fmt_double(kway.time_ns / 1e6, 2),
                 fmt_count(plain.phases), fmt_count(cache.phases),
                 fmt_ratio(static_cast<double>(cache.work_ops) /
                           static_cast<double>(plain.work_ops))});
  }
  h.emit(cmp);

  // Cache behaviour of the merge rounds (the part Section IV.C changes),
  // on the simple shared cache the segmented variant targets.
  if (!h.csv)
    std::cout << "\nmerge-round cache traffic on a 12KiB 3-way shared "
                 "cache (simulated, p = 8):\n";
  {
    using namespace mp::cachesim;
    const std::size_t n = std::min<std::size_t>(elements, 1 << 17);
    const auto sort_input = make_unsorted_values(n, h.seed);
    const std::uint64_t cache_bytes = 12 * 1024;
    const std::size_t L = cache_bytes / 3 / 4;
    const std::size_t block = 4096;
    const MergeLayout layout{0, 0, cache_bytes * 1024};

    CacheConfig cc;
    cc.size_bytes = cache_bytes;
    cc.associativity = 3;
    Table miss({"sort_variant", "accesses", "misses", "miss_rate",
                "conflict+capacity"});
    {
      Cache cache(cc);
      const auto plain =
          trace_sort_rounds(sort_input, 8, block, 0, layout, cache);
      miss.add_row({"plain rounds (Alg.1 merges)",
                    fmt_count(plain.stats.accesses),
                    fmt_count(plain.stats.misses),
                    fmt_percent(plain.stats.miss_rate()),
                    fmt_count(plain.stats.conflict_misses +
                              plain.stats.capacity_misses)});
    }
    {
      Cache cache(cc);
      const auto seg =
          trace_sort_rounds(sort_input, 8, block, L, layout, cache);
      miss.add_row({"cache-efficient rounds (Alg.2 merges)",
                    fmt_count(seg.stats.accesses),
                    fmt_count(seg.stats.misses),
                    fmt_percent(seg.stats.miss_rate()),
                    fmt_count(seg.stats.conflict_misses +
                              seg.stats.capacity_misses)});
    }
    h.emit(miss);
  }

  if (!h.csv)
    std::cout << "\npaper reference: the cache-efficient sort trades "
                 "slightly higher op complexity\n(N/C·logC·logp extra) for "
                 "in-cache merge rounds — justified when a miss is\n"
                 "expensive (Section IV.C). The miss table above shows the "
                 "payoff on the simple\nshared cache; single-merge detail "
                 "is experiment E4 (fig_cache_spm).\n";
  return 0;
}
