#pragma once
/// \file harness_common.hpp
/// Shared plumbing for the experiment harnesses: banner, --csv switch,
/// unknown-flag rejection, and size-scaling conventions.
///
/// Conventions, applied uniformly:
///   --csv          emit CSV instead of the aligned table
///   --full         paper-scale sizes (slow, memory-hungry); default is a
///                  scaled-down sweep that keeps the whole bench directory
///                  runnable in seconds
///   --seed N       workload seed (default 42)
///   --trace F      write a Chrome/Perfetto trace of the whole run to F
///   --lane-metrics F  write the per-lane metrics report (JSON) to F
///   --kernel K     force the per-lane merge kernel
///                  (scalar|branchless|sse4|avx2); unknown or unsupported
///                  names exit 2. The banner always names the kernel in
///                  effect and the detected ISA.
/// Every harness exits non-zero on unknown flags so sweep typos surface.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/hw.hpp"
#include "util/table.hpp"

namespace mp::bench {

/// Parses argv, prints the experiment banner, and rejects unknown flags at
/// scope exit (call `finish` after all get()s).
struct Harness {
  Cli cli;
  bool csv = false;
  bool full = false;
  std::uint64_t seed = 42;
  std::string trace_path;
  std::string lane_metrics_path;
  /// Set when --kernel forced a dispatch choice (harnesses that sweep
  /// kernels, like table_overhead, restrict their sweep to it).
  std::optional<kernels::Kernel> forced_kernel;

  Harness(int argc, const char* const* argv, const char* experiment_id,
          const char* title)
      : cli(argc, argv) {
    if (!cli.ok()) {
      std::cerr << "error: " << cli.error() << "\n";
      std::exit(2);
    }
    csv = cli.get_bool("csv");
    full = cli.get_bool("full");
    seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    trace_path = cli.get("trace", "");
    lane_metrics_path = cli.get("lane-metrics", "");
    const std::string kernel_name = cli.get("kernel", "");
    if (!kernel_name.empty()) {
      const auto kernel = kernels::parse_kernel(kernel_name);
      if (!kernel) {
        std::cerr << "error: unknown --kernel '" << kernel_name
                  << "' (scalar|branchless|sse4|avx2)\n";
        std::exit(2);
      }
      if (!kernels::set_kernel(*kernel)) {
        std::cerr << "error: --kernel " << kernel_name
                  << " is not supported on this host/build ("
                  << isa_string(cpu_features())
                  << (kernels::kSimdCompiledIn ? "" : ", SIMD compiled out")
                  << ")\n";
        std::exit(2);
      }
      forced_kernel = *kernel;
    }
    if (!trace_path.empty()) obs::arm_tracing();
    if (!lane_metrics_path.empty()) obs::LaneMetrics::instance().arm();
    if (!csv) {
      std::cout << "== " << experiment_id << ": " << title << " ==\n"
                << "host: " << describe(host_info()) << "\n"
                << kernels::kernel_banner() << "\n";
    }
  }

  /// Writes the requested observability artifacts once the harness (and
  /// hence every instrumented region) has finished.
  ~Harness() {
    if (!trace_path.empty()) {
      obs::disarm_tracing();
      if (obs::write_chrome_trace_file(trace_path))
        std::cerr << "trace written to " << trace_path << "\n";
    }
    if (!lane_metrics_path.empty()) {
      obs::LaneMetrics::instance().disarm();
      if (obs::write_metrics_json_file(lane_metrics_path))
        std::cerr << "lane metrics written to " << lane_metrics_path << "\n";
    }
  }

  /// Call after the last flag read; aborts on malformed values and on
  /// unconsumed (typo'd) flags.
  void check_flags() const {
    if (!cli.ok()) {
      std::cerr << "error: " << cli.error() << "\n";
      std::exit(2);
    }
    const auto leftover = cli.unconsumed();
    if (!leftover.empty()) {
      std::cerr << "error: unknown flag(s):";
      for (const auto& f : leftover) std::cerr << " --" << f;
      std::cerr << "\n";
      std::exit(2);
    }
  }

  void emit(const Table& table) const {
    if (csv)
      table.print_csv(std::cout);
    else
      table.print(std::cout);
  }
};

}  // namespace mp::bench
