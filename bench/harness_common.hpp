#pragma once
/// \file harness_common.hpp
/// Shared plumbing for the experiment harnesses: banner, --csv switch,
/// unknown-flag rejection, and size-scaling conventions.
///
/// Conventions, applied uniformly:
///   --csv          emit CSV instead of the aligned table
///   --full         paper-scale sizes (slow, memory-hungry); default is a
///                  scaled-down sweep that keeps the whole bench directory
///                  runnable in seconds
///   --seed N       workload seed (default 42)
///   --trace F      write a Chrome/Perfetto trace of the whole run to F
///   --lane-metrics F  write the per-lane metrics report (JSON) to F;
///                  also arms per-span duration percentiles (included in
///                  the JSON and printed as a table at exit)
///   --flight-dump F  keep the flight recorder armed and snapshot it to F
///                  at exit (without this flag the harness disables the
///                  recorder so measured numbers carry no recording cost)
///   --kernel K     force the per-lane merge kernel
///                  (scalar|branchless|sse4|avx2|avx512); unknown or unsupported
///                  names exit 2. The banner always names the kernel in
///                  effect and the detected ISA.
/// Every harness exits non-zero on unknown flags so sweep typos surface.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "kernels/kernels.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/percentiles.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/hw.hpp"
#include "util/table.hpp"

namespace mp::bench {

/// Parses argv, prints the experiment banner, and rejects unknown flags at
/// scope exit (call `finish` after all get()s).
struct Harness {
  Cli cli;
  bool csv = false;
  bool full = false;
  std::uint64_t seed = 42;
  std::string trace_path;
  std::string lane_metrics_path;
  std::string flight_dump_path;
  /// Set when --kernel forced a dispatch choice (harnesses that sweep
  /// kernels, like table_overhead, restrict their sweep to it).
  std::optional<kernels::Kernel> forced_kernel;
  bool flight_was_enabled = false;

  Harness(int argc, const char* const* argv, const char* experiment_id,
          const char* title)
      : cli(argc, argv) {
    if (!cli.ok()) {
      std::cerr << "error: " << cli.error() << "\n";
      std::exit(2);
    }
    csv = cli.get_bool("csv");
    full = cli.get_bool("full");
    seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    trace_path = cli.get("trace", "");
    lane_metrics_path = cli.get("lane-metrics", "");
    const std::string kernel_name = cli.get("kernel", "");
    if (!kernel_name.empty()) {
      const auto kernel = kernels::parse_kernel(kernel_name);
      if (!kernel) {
        std::cerr << "error: unknown --kernel '" << kernel_name
                  << "' (scalar|branchless|sse4|avx2|avx512)\n";
        std::exit(2);
      }
      if (!kernels::set_kernel(*kernel)) {
        std::cerr << "error: --kernel " << kernel_name
                  << " is not supported on this host/build ("
                  << isa_string(cpu_features())
                  << (kernels::kSimdCompiledIn ? "" : ", SIMD compiled out")
                  << ")\n";
        std::exit(2);
      }
      forced_kernel = *kernel;
    }
    flight_dump_path = cli.get("flight-dump", "");
    // Benches measure; the always-on flight recorder would tax every span
    // edge of every timed region. Disable it for the harness lifetime
    // unless the run explicitly asks for a dump (BM_SpanOverhead prices
    // the recorder's cost instead).
    flight_was_enabled = obs::flight_enabled();
    if (flight_dump_path.empty())
      obs::set_flight_enabled(false);
    else
      obs::set_flight_enabled(true);
    if (!trace_path.empty()) obs::arm_tracing();
    if (!lane_metrics_path.empty()) {
      obs::LaneMetrics::instance().arm();
      obs::reset_span_stats();
      obs::arm_span_stats();
    }
    if (!csv) {
      std::cout << "== " << experiment_id << ": " << title << " ==\n"
                << "host: " << describe(host_info()) << "\n"
                << kernels::kernel_banner() << "\n";
    }
  }

  /// Writes the requested observability artifacts once the harness (and
  /// hence every instrumented region) has finished.
  ~Harness() {
    if (!trace_path.empty()) {
      obs::disarm_tracing();
      if (obs::write_chrome_trace_file(trace_path))
        std::cerr << "trace written to " << trace_path << "\n";
    }
    if (!lane_metrics_path.empty()) {
      obs::LaneMetrics::instance().disarm();
      obs::disarm_span_stats();
      if (obs::write_metrics_json_file(lane_metrics_path))
        std::cerr << "lane metrics written to " << lane_metrics_path << "\n";
      const std::vector<obs::SpanStat> stats = obs::span_stats_snapshot();
      if (!stats.empty()) {
        Table table({"span", "count", "p50_us", "p95_us", "p99_us",
                     "max_us", "total_ms"});
        for (const obs::SpanStat& stat : stats)
          table.add_row(
              {stat.name, std::to_string(stat.count),
               fmt_double(static_cast<double>(stat.p50_ns) / 1e3, 2),
               fmt_double(static_cast<double>(stat.p95_ns) / 1e3, 2),
               fmt_double(static_cast<double>(stat.p99_ns) / 1e3, 2),
               fmt_double(static_cast<double>(stat.max_ns) / 1e3, 2),
               fmt_double(static_cast<double>(stat.sum_ns) / 1e6, 3)});
        table.print(std::cerr);
      }
    }
    if (!flight_dump_path.empty()) {
      obs::set_flight_dump_path(flight_dump_path);
      obs::flight_write_pending(/*force=*/true);
    }
    obs::set_flight_enabled(flight_was_enabled);
  }

  /// Call after the last flag read; aborts on malformed values and on
  /// unconsumed (typo'd) flags.
  void check_flags() const {
    if (!cli.ok()) {
      std::cerr << "error: " << cli.error() << "\n";
      std::exit(2);
    }
    const auto leftover = cli.unconsumed();
    if (!leftover.empty()) {
      std::cerr << "error: unknown flag(s):";
      for (const auto& f : leftover) std::cerr << " --" << f;
      std::cerr << "\n";
      std::exit(2);
    }
  }

  void emit(const Table& table) const {
    if (csv)
      table.print_csv(std::cout);
    else
      table.print(std::cout);
  }
};

}  // namespace mp::bench
