#pragma once
/// \file harness_common.hpp
/// Shared plumbing for the experiment harnesses: banner, --csv switch,
/// unknown-flag rejection, and size-scaling conventions.
///
/// Conventions, applied uniformly:
///   --csv          emit CSV instead of the aligned table
///   --full         paper-scale sizes (slow, memory-hungry); default is a
///                  scaled-down sweep that keeps the whole bench directory
///                  runnable in seconds
///   --seed N       workload seed (default 42)
/// Every harness exits non-zero on unknown flags so sweep typos surface.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/hw.hpp"
#include "util/table.hpp"

namespace mp::bench {

/// Parses argv, prints the experiment banner, and rejects unknown flags at
/// scope exit (call `finish` after all get()s).
struct Harness {
  Cli cli;
  bool csv = false;
  bool full = false;
  std::uint64_t seed = 42;

  Harness(int argc, const char* const* argv, const char* experiment_id,
          const char* title)
      : cli(argc, argv) {
    if (!cli.ok()) {
      std::cerr << "error: " << cli.error() << "\n";
      std::exit(2);
    }
    csv = cli.get_bool("csv");
    full = cli.get_bool("full");
    seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    if (!csv) {
      std::cout << "== " << experiment_id << ": " << title << " ==\n"
                << "host: " << describe(host_info()) << "\n";
    }
  }

  /// Call after the last flag read; aborts on unconsumed (typo'd) flags.
  void check_flags() const {
    const auto leftover = cli.unconsumed();
    if (!leftover.empty()) {
      std::cerr << "error: unknown flag(s):";
      for (const auto& f : leftover) std::cerr << " --" << f;
      std::cerr << "\n";
      std::exit(2);
    }
  }

  void emit(const Table& table) const {
    if (csv)
      table.print_csv(std::cout);
    else
      table.print(std::cout);
  }
};

}  // namespace mp::bench
