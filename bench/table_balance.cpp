// Experiment E7 (balance half) — the Section V load-balance comparison:
//
//   "[Shiloach-Vishkin] does not feature perfect load balancing; ... a
//    processor may be assigned as many as 2N/p elements. ... such a load
//    imbalance can cause a 2X increase in latency!"
//
// For each partitioning scheme the harness reports max-assigned /
// mean-assigned across processors (1.00 = perfect) on several input
// shapes, plus the dependent-round count of the partition stage (Merge
// Path and Deo-Sarkar: 1 independent round; Akl-Santoro: log p dependent
// rounds).
//
// Flags: --elements N (per array, default 1Mi), --threads N (default 8),
//        --csv, --seed.
//
// Fault/recovery half (E7b): with --fault-rate R > 0 the harness also
// measures what lane-level recovery costs — the same merge and merge sort
// run clean on a dedicated pool and again with a seeded lane-fault
// schedule attached (--fault-seed), straggler hedging armed, and injected
// stalls of --straggler-delay microseconds. The overhead column is the
// honest price of surviving the schedule; outputs are verified identical
// to the clean run. With the default --fault-rate 0 this section is
// skipped entirely and the bench is byte-for-byte the pre-fault workload.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/mergepath.hpp"
#include "fault/fault.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"
#include "util/timer.hpp"

namespace {

using namespace mp;
using namespace mp::bench;
using namespace mp::baselines;

double ratio_of(const std::vector<std::size_t>& assigned) {
  std::size_t max_v = 0, sum = 0;
  for (std::size_t v : assigned) {
    max_v = std::max(max_v, v);
    sum += v;
  }
  return sum == 0 ? 1.0
                  : static_cast<double>(max_v) * assigned.size() /
                        static_cast<double>(sum);
}

/// The merged "pool.lane" percentile row from the armed span stats
/// (zero-count when tracing is compiled out).
obs::SpanStat lane_span_stat() {
  for (const obs::SpanStat& stat : obs::span_stats_snapshot())
    if (stat.name == "pool.lane") return stat;
  return {};
}

std::string fmt_lane_us(std::uint64_t ns, std::uint64_t count) {
  return count == 0 ? "-"
                    : mp::fmt_double(static_cast<double>(ns) / 1e3, 1);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "E7/Section V", "partition load balance comparison");
  const std::size_t per_array =
      static_cast<std::size_t>(h.cli.get_int("elements", 1 << 20));
  const unsigned p = static_cast<unsigned>(h.cli.get_int("threads", 8));
  const double fault_rate = h.cli.get_double("fault-rate", 0.0);
  const auto fault_seed =
      static_cast<std::uint64_t>(h.cli.get_int("fault-seed", 1));
  const double straggler_delay_us =
      h.cli.get_double("straggler-delay", 2000.0);
  h.check_flags();

  Table table({"input_shape", "scheme", "max/mean", "partition_rounds"});
  for (Dist dist : {Dist::kUniform, Dist::kDisjointLow, Dist::kClustered,
                    Dist::kFewDuplicates}) {
    const auto input = make_merge_input(dist, per_array, per_array, h.seed);
    const std::size_t m = input.a.size(), n = input.b.size();
    std::vector<std::int32_t> out(m + n);
    const Executor exec{nullptr, p};

    // Merge Path: segment k covers diagonals [k·N/p, (k+1)·N/p).
    {
      const auto points =
          partition_merge_path(input.a.data(), m, input.b.data(), n, p);
      std::vector<std::size_t> assigned(p);
      for (unsigned k = 0; k < p; ++k)
        assigned[k] = points[k + 1].diagonal() - points[k].diagonal();
      table.add_row({to_string(dist), "merge_path",
                     fmt_double(ratio_of(assigned), 2), "1"});
    }
    // Deo-Sarkar: identical split points, also one independent round.
    {
      std::vector<std::size_t> assigned(p);
      for (unsigned k = 0; k < p; ++k) {
        const auto lo = kth_element_split(input.a.data(), m, input.b.data(),
                                          n, k * (m + n) / p);
        const auto hi = kth_element_split(input.a.data(), m, input.b.data(),
                                          n, (k + 1ull) * (m + n) / p);
        assigned[k] = (hi.i + hi.j) - (lo.i + lo.j);
      }
      table.add_row({to_string(dist), "deo_sarkar",
                     fmt_double(ratio_of(assigned), 2), "1"});
    }
    // Shiloach-Vishkin: fixed blocks in both arrays, two data-dependent
    // segments per processor (up to 2N/p).
    {
      const SvPartition part = shiloach_vishkin_merge(
          input.a.data(), m, input.b.data(), n, out.data(), exec);
      table.add_row({to_string(dist), "shiloach_vishkin",
                     fmt_double(ratio_of(part.assigned), 2), "1"});
    }
    // Akl-Santoro: recursive medians, log2(p) dependent rounds; with p a
    // power of two the leaves are equal, but the rounds serialise.
    {
      const auto segments = akl_santoro_merge(
          input.a.data(), m, input.b.data(), n, out.data(), exec);
      std::vector<std::size_t> assigned(p, 0);
      for (std::size_t s = 0; s < segments.size(); ++s)
        assigned[s % p] += segments[s].total();
      unsigned rounds = 0;
      while ((1u << rounds) < p) ++rounds;
      table.add_row({to_string(dist), "akl_santoro",
                     fmt_double(ratio_of(assigned), 2),
                     std::to_string(rounds) + " (dependent)"});
    }
  }
  h.emit(table);
  if (!h.csv)
    std::cout << "\npaper reference: Merge Path / [2] are perfectly "
                 "balanced (1.00); [6] can reach\n~2.00 on skewed inputs; "
                 "[5] balances but needs log p dependent partition rounds"
                 "\n(Section V).\n";

  if (fault_rate > 0.0) {
    // E7b: lane-fault recovery overhead. One dedicated pool so the armed
    // schedule cannot touch the shared pool; clean runs detach the plan.
    ThreadPool pool(static_cast<int>(p) - 1);
    const Executor rexec{&pool, p};
    const auto input =
        make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
    const std::size_t m = input.a.size(), n = input.b.size();
    std::vector<std::int32_t> reference(m + n), out(m + n);
    parallel_merge(input.a.data(), m, input.b.data(), n, reference.data(),
                   rexec);
    std::vector<std::int32_t> sorted_reference = reference;

    fault::FaultConfig fault_config{fault_seed, fault_rate, 250.0,
                                    straggler_delay_us};
    RecoveryConfig recovery;
    recovery.hedge.enabled = true;

    // Span stats stay armed across clean AND faulty timings so both carry
    // the same (tiny) recording cost and the overhead column stays honest;
    // the lane percentile columns report the faulty run's distribution —
    // recovery's tail, which mean lane time hides.
    Table rt({"algorithm", "clean_ms", "faulty_ms", "overhead", "faults",
              "retries", "hedges", "fallbacks", "lane_p50_us",
              "lane_p99_us"});

    {  // Algorithm 1 under fire.
      obs::reset_span_stats();
      obs::arm_span_stats();
      const double clean_s = time_best_of([&] {
        parallel_merge(input.a.data(), m, input.b.data(), n, out.data(),
                       rexec);
      });
      fault::FaultPlan plan(fault_config);
      fault::ScopedInjector injector(pool, plan);
      RecoveryReport report;
      obs::reset_span_stats();
      const double faulty_s = time_best_of([&] {
        report.absorb(resilient_parallel_merge(input.a.data(), m,
                                               input.b.data(), n, out.data(),
                                               rexec, std::less<>{},
                                               recovery));
      });
      obs::disarm_span_stats();
      if (out != reference) {
        std::cerr << "E7b: recovered merge output diverged from clean run\n";
        return 1;
      }
      const obs::SpanStat lane = lane_span_stat();
      rt.add_row({"parallel_merge", fmt_double(clean_s * 1e3, 2),
                  fmt_double(faulty_s * 1e3, 2),
                  fmt_double((faulty_s / clean_s - 1.0) * 100.0, 1) + "%",
                  std::to_string(report.injected_faults),
                  std::to_string(report.retried_lanes),
                  std::to_string(report.hedges),
                  std::to_string(report.fallback_lanes),
                  fmt_lane_us(lane.p50_ns, lane.count),
                  fmt_lane_us(lane.p99_ns, lane.count)});
    }
    {  // Section III sort under fire.
      std::vector<std::int32_t> shuffled(m + n);
      std::copy(input.a.begin(), input.a.end(), shuffled.begin());
      std::copy(input.b.begin(), input.b.end(),
                shuffled.begin() + static_cast<std::ptrdiff_t>(m));
      std::vector<std::int32_t> work;
      obs::reset_span_stats();
      obs::arm_span_stats();
      const double clean_s = time_best_of([&] {
        work = shuffled;
        parallel_merge_sort(work.data(), work.size(), rexec);
      });
      std::sort(sorted_reference.begin(), sorted_reference.end());
      fault::FaultPlan plan(fault_config);
      fault::ScopedInjector injector(pool, plan);
      RecoveryReport report;
      obs::reset_span_stats();
      const double faulty_s = time_best_of([&] {
        work = shuffled;
        report.absorb(resilient_parallel_merge_sort(
            work.data(), work.size(), rexec, std::less<>{}, recovery));
      });
      obs::disarm_span_stats();
      if (work != sorted_reference) {
        std::cerr << "E7b: recovered sort output diverged from clean run\n";
        return 1;
      }
      const obs::SpanStat lane = lane_span_stat();
      rt.add_row({"parallel_merge_sort", fmt_double(clean_s * 1e3, 2),
                  fmt_double(faulty_s * 1e3, 2),
                  fmt_double((faulty_s / clean_s - 1.0) * 100.0, 1) + "%",
                  std::to_string(report.injected_faults),
                  std::to_string(report.retried_lanes),
                  std::to_string(report.hedges),
                  std::to_string(report.fallback_lanes),
                  fmt_lane_us(lane.p50_ns, lane.count),
                  fmt_lane_us(lane.p99_ns, lane.count)});
    }
    h.emit(rt);
    if (!h.csv)
      std::cout << "\nE7b: recovery overhead at lane-fault rate "
                << fault_rate << " (seed " << fault_seed
                << ", straggler delay " << straggler_delay_us
                << " us, hedging on). Outputs verified identical to the "
                   "clean runs.\n";
  }
  return 0;
}
