// Experiment E7 (balance half) — the Section V load-balance comparison:
//
//   "[Shiloach-Vishkin] does not feature perfect load balancing; ... a
//    processor may be assigned as many as 2N/p elements. ... such a load
//    imbalance can cause a 2X increase in latency!"
//
// For each partitioning scheme the harness reports max-assigned /
// mean-assigned across processors (1.00 = perfect) on several input
// shapes, plus the dependent-round count of the partition stage (Merge
// Path and Deo-Sarkar: 1 independent round; Akl-Santoro: log p dependent
// rounds).
//
// Flags: --elements N (per array, default 1Mi), --threads N (default 8),
//        --csv, --seed.

#include <algorithm>
#include <iostream>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/mergepath.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"

namespace {

using namespace mp;
using namespace mp::bench;
using namespace mp::baselines;

double ratio_of(const std::vector<std::size_t>& assigned) {
  std::size_t max_v = 0, sum = 0;
  for (std::size_t v : assigned) {
    max_v = std::max(max_v, v);
    sum += v;
  }
  return sum == 0 ? 1.0
                  : static_cast<double>(max_v) * assigned.size() /
                        static_cast<double>(sum);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "E7/Section V", "partition load balance comparison");
  const std::size_t per_array =
      static_cast<std::size_t>(h.cli.get_int("elements", 1 << 20));
  const unsigned p = static_cast<unsigned>(h.cli.get_int("threads", 8));
  h.check_flags();

  Table table({"input_shape", "scheme", "max/mean", "partition_rounds"});
  for (Dist dist : {Dist::kUniform, Dist::kDisjointLow, Dist::kClustered,
                    Dist::kFewDuplicates}) {
    const auto input = make_merge_input(dist, per_array, per_array, h.seed);
    const std::size_t m = input.a.size(), n = input.b.size();
    std::vector<std::int32_t> out(m + n);
    const Executor exec{nullptr, p};

    // Merge Path: segment k covers diagonals [k·N/p, (k+1)·N/p).
    {
      const auto points =
          partition_merge_path(input.a.data(), m, input.b.data(), n, p);
      std::vector<std::size_t> assigned(p);
      for (unsigned k = 0; k < p; ++k)
        assigned[k] = points[k + 1].diagonal() - points[k].diagonal();
      table.add_row({to_string(dist), "merge_path",
                     fmt_double(ratio_of(assigned), 2), "1"});
    }
    // Deo-Sarkar: identical split points, also one independent round.
    {
      std::vector<std::size_t> assigned(p);
      for (unsigned k = 0; k < p; ++k) {
        const auto lo = kth_element_split(input.a.data(), m, input.b.data(),
                                          n, k * (m + n) / p);
        const auto hi = kth_element_split(input.a.data(), m, input.b.data(),
                                          n, (k + 1ull) * (m + n) / p);
        assigned[k] = (hi.i + hi.j) - (lo.i + lo.j);
      }
      table.add_row({to_string(dist), "deo_sarkar",
                     fmt_double(ratio_of(assigned), 2), "1"});
    }
    // Shiloach-Vishkin: fixed blocks in both arrays, two data-dependent
    // segments per processor (up to 2N/p).
    {
      const SvPartition part = shiloach_vishkin_merge(
          input.a.data(), m, input.b.data(), n, out.data(), exec);
      table.add_row({to_string(dist), "shiloach_vishkin",
                     fmt_double(ratio_of(part.assigned), 2), "1"});
    }
    // Akl-Santoro: recursive medians, log2(p) dependent rounds; with p a
    // power of two the leaves are equal, but the rounds serialise.
    {
      const auto segments = akl_santoro_merge(
          input.a.data(), m, input.b.data(), n, out.data(), exec);
      std::vector<std::size_t> assigned(p, 0);
      for (std::size_t s = 0; s < segments.size(); ++s)
        assigned[s % p] += segments[s].total();
      unsigned rounds = 0;
      while ((1u << rounds) < p) ++rounds;
      table.add_row({to_string(dist), "akl_santoro",
                     fmt_double(ratio_of(assigned), 2),
                     std::to_string(rounds) + " (dependent)"});
    }
  }
  h.emit(table);
  if (!h.csv)
    std::cout << "\npaper reference: Merge Path / [2] are perfectly "
                 "balanced (1.00); [6] can reach\n~2.00 on skewed inputs; "
                 "[5] balances but needs log p dependent partition rounds"
                 "\n(Section V).\n";
  return 0;
}
