// Experiment E3 — validating the Section III complexity claims with
// measured operation counts:
//
//   work(p)  = O(N + p·log N)    (total ops across lanes)
//   time(p)  = O(N/p + log N)    (critical path: slowest lane)
//
// For each (size, threads) cell the harness runs the instrumented
// Algorithm 1, prints the measured totals next to the analytic bound, and
// flags any violation. Also prints the same for the Section IV.B segmented
// merge: work = O(N/C·p·log C + N).
//
// Flags: --full (larger sizes), --csv, --seed.

#include <cmath>
#include <iostream>
#include <vector>

#include "core/mergepath.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;

  Harness h(argc, argv, "E3/Section III",
            "measured op counts vs analytic work/time bounds");
  h.check_flags();

  std::vector<std::size_t> sizes{1u << 16, 1u << 20};
  if (h.full) sizes.push_back(1u << 24);
  const std::vector<unsigned> threads{1, 2, 4, 8, 12, 32};

  Table merge_table({"N_total", "p", "work_ops", "bound_N+2p·logN",
                     "crit_ops", "bound_2N/p+2logN", "ok"});
  for (std::size_t per_array : sizes) {
    const auto input =
        make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
    const std::size_t total = 2 * per_array;
    const double log_n = std::log2(static_cast<double>(per_array));
    for (unsigned p : threads) {
      ThreadPool serial(0);
      std::vector<OpCounts> counts(p);
      std::vector<std::int32_t> out(total);
      parallel_merge(input.a.data(), per_array, input.b.data(), per_array,
                     out.data(), Executor{&serial, p}, std::less<>{},
                     std::span<OpCounts>(counts));
      std::uint64_t work = 0, crit = 0;
      for (const auto& c : counts) {
        work += c.total();
        crit = std::max(crit, c.total());
      }
      // Bounds with explicit constants: each output element costs at most
      // one compare + one move (2N work), plus p searches of <= log2+1
      // steps; a lane's critical path is 2·(N/p + 1) + (log2+1).
      const double work_bound =
          2.0 * static_cast<double>(total) +
          2.0 * static_cast<double>(p) * (log_n + 1.0);
      const double crit_bound =
          2.0 * (static_cast<double>(total) / p + 1.0) + 2.0 * (log_n + 1.0);
      const bool ok = static_cast<double>(work) <= work_bound &&
                      static_cast<double>(crit) <= crit_bound;
      merge_table.add_row({fmt_count(total), std::to_string(p),
                           fmt_count(work), fmt_count(static_cast<std::uint64_t>(
                                                work_bound)),
                           fmt_count(crit),
                           fmt_count(static_cast<std::uint64_t>(crit_bound)),
                           ok ? "yes" : "NO"});
    }
  }
  h.emit(merge_table);

  if (!h.csv)
    std::cout << "\nsegmented merge (Algorithm 2), work = O(N/C·p·logC + N), "
                 "C = 3L elements:\n";
  Table seg_table({"N_total", "p", "L", "work_ops", "bound", "ok"});
  const std::size_t per_array = sizes.back();
  const auto input =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
  const std::size_t total = 2 * per_array;
  for (unsigned p : {1u, 4u, 12u}) {
    for (std::size_t L : {std::size_t{1} << 10, std::size_t{1} << 13}) {
      ThreadPool serial(0);
      std::vector<OpCounts> counts(p);
      std::vector<std::int32_t> out(total);
      SegmentedConfig config;
      config.segment_length = L;
      segmented_parallel_merge(input.a.data(), per_array, input.b.data(),
                               per_array, out.data(), config,
                               Executor{&serial, p}, std::less<>{},
                               std::span<OpCounts>(counts));
      std::uint64_t work = 0;
      for (const auto& c : counts) work += c.total();
      const double log_l = std::log2(static_cast<double>(L)) + 1.0;
      // Per element: <= 1 stage + 1 compare + 2 moves (= 4N), plus per
      // segment p+1 searches of <= 2·log2(L)+2 steps.
      const double segments =
          std::ceil(static_cast<double>(total) / static_cast<double>(L));
      const double bound = 4.0 * static_cast<double>(total) +
                           segments * (p + 1.0) * 2.0 * log_l;
      seg_table.add_row({fmt_count(total), std::to_string(p), fmt_count(L),
                         fmt_count(work),
                         fmt_count(static_cast<std::uint64_t>(bound)),
                         static_cast<double>(work) <= bound ? "yes" : "NO"});
    }
  }
  h.emit(seg_table);
  return 0;
}
