// Experiment E16 (extension) — distributed-memory merging under the
// alpha-beta network model: what the paper's partition buys on a cluster.
//
// The abstract claims the algorithm "is easily adaptable to additional
// architectures"; on distributed memory the adaptation is direct — the
// p-1 diagonal searches become a handful of tiny remote probes, after
// which ONE personalized exchange delivers every rank exactly its
// output slice's inputs (balanced at N/p per rank, total <= N elements).
// The classical alternatives move multiples of N and/or concentrate
// traffic: a binary merge tree ships ~(N/2)·log p with late-round
// hotspots; gather-at-root ships 2N through one NIC.
//
// Flags: --elements N (per array, default 1Mi), --ack-window W (cumulative
//        ack every W delivered messages per flow; 0 = acks-free model,
//        1 = naive per-message acks), --csv, --seed.

#include <iostream>
#include <vector>

#include "dist/distributed_merge.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::dist;

  Harness h(argc, argv, "E16/distributed",
            "distributed merge: traffic and modelled time vs ranks");
  const std::size_t per_array =
      static_cast<std::size_t>(h.cli.get_int("elements", 1 << 20));
  NetConfig net_config;
  net_config.ack_window =
      static_cast<unsigned>(h.cli.get_int("ack-window",
                                          static_cast<int>(net_config.ack_window)));
  h.check_flags();

  const std::uint64_t n_bytes = 2ull * per_array * 4;

  Table table({"shape", "ranks", "algorithm", "bytes_moved", "vs_N",
               "rounds", "acks", "max_rank_recv", "modeled_ms"});
  // uniform: co-ranks coincide with shard boundaries, so the exchange is
  // nearly free (everything is already in place). disjoint: co-ranks
  // diverge maximally — the exchange's worst case, still bounded by N.
  for (Dist dist : {Dist::kUniform, Dist::kDisjointLow}) {
  const auto input =
      make_merge_input(dist, per_array, per_array, h.seed);
  for (unsigned ranks : {2u, 8u, 64u}) {
    const DistArray da = distribute(input.a, ranks);
    const DistArray db = distribute(input.b, ranks);
    struct Row {
      const char* name;
      DistMergeResult result;
    };
    Row rows[] = {
        {"merge_path_exchange", merge_path_exchange(da, db, net_config)},
        {"tree_merge", tree_merge(da, db, net_config)},
        {"gather_at_root", gather_at_root(da, db, net_config)},
    };
    for (const Row& row : rows) {
      const NetStats& net = row.result.net;
      table.add_row({to_string(dist), std::to_string(ranks), row.name,
                     fmt_bytes(net.bytes),
                     fmt_ratio(static_cast<double>(net.bytes) /
                               static_cast<double>(n_bytes)),
                     fmt_count(net.rounds), fmt_count(net.acks),
                     fmt_bytes(net.max_rank_recv_bytes),
                     fmt_double(net.modeled_time_us / 1e3, 2)});
    }
  }
  }
  h.emit(table);

  if (!h.csv)
    std::cout << "\ndistributed SORT by exact splitters (multiway co-rank "
                 "+ one exchange):\n";
  {
    const auto values = make_unsorted_values(2 * per_array, h.seed);
    Table sort_table({"ranks", "bytes_moved", "vs_N", "rounds", "acks",
                      "max_rank_recv", "modeled_ms"});
    for (unsigned ranks : {4u, 16u, 64u}) {
      const auto result =
          distributed_sort(distribute(values, ranks), net_config);
      const NetStats& net = result.net;
      sort_table.add_row(
          {std::to_string(ranks), fmt_bytes(net.bytes),
           fmt_ratio(static_cast<double>(net.bytes) /
                     static_cast<double>(n_bytes)),
           fmt_count(net.rounds), fmt_count(net.acks),
           fmt_bytes(net.max_rank_recv_bytes),
           fmt_double(net.modeled_time_us / 1e3, 2)});
    }
    h.emit(sort_table);
  }

  if (!h.csv)
    std::cout << "\nmerge-path exchange: near-zero traffic when co-ranks "
                 "align with the block\ndistribution (uniform), bounded by "
                 "~1x N on the adversarial shape — always 2\nrounds and "
                 "balanced receives. The tree grows with log p; gather "
                 "funnels\neverything through the root's NIC. Acks are "
                 "cumulative per flow (window "
              << net_config.ack_window
              << "),\ncharged one alpha each — shrink --ack-window toward 1 "
                 "to watch the latency\nterm of chatty protocols grow.\n";
  return 0;
}
