// Experiment E13 (extension) — the I/O-model view the paper reaches for
// when citing Aggarwal & Vitter [10]: external merge sort's block
// transfers versus memory size and fan-in, against the
// O(N/B · log_{M/B}(N/M)) bound.
//
// Flags: --elements N (default 1Mi; --full 8Mi), --csv, --seed.
//   --fault-rate P / --fault-seed S arm the deterministic fault injector on
//   the simulated device for every row (same schedule seed per row, so rows
//   stay comparable); the table then reports the retries each configuration
//   absorbed and the bound check still holds on the successful transfers.

#include <cmath>
#include <iostream>
#include <optional>
#include <vector>

#include "extmem/external_sort.hpp"
#include "fault/fault.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::extmem;

  Harness h(argc, argv, "E13/I-O model",
            "external merge sort transfers vs the Aggarwal-Vitter bound");
  const std::size_t elements = static_cast<std::size_t>(
      h.cli.get_int("elements", h.full ? (8 << 20) : (1 << 20)));
  const double fault_rate = h.cli.get_double("fault-rate", 0.0);
  const auto fault_seed =
      static_cast<std::uint64_t>(h.cli.get_int("fault-seed", 1));
  h.check_flags();
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    std::cerr << "error: --fault-rate must be in [0, 1], got " << fault_rate
              << "\n";
    return 2;
  }
  if (fault_rate > 0.0 && !fault::kFaultCompiledIn) {
    std::cerr << "error: built with MERGEPATH_FAULT=OFF; --fault-rate "
                 "has no effect\n";
    return 2;
  }

  const auto data = make_unsorted_values(elements, h.seed);

  Table table({"memory_elems", "fan_in", "runs", "passes", "transfers",
               "bound", "retries", "faults", "modeled_io_ms"});
  for (std::size_t memory : {std::size_t{8} << 10, std::size_t{32} << 10,
                             std::size_t{128} << 10}) {
    for (std::size_t fan : {std::size_t{0}, std::size_t{2},
                            std::size_t{4}}) {
      DeviceConfig dev_config;
      dev_config.block_bytes = 16 * 1024;  // 4Ki int32 per block
      BlockDevice device(dev_config);
      // Every row replays the same fault schedule seed so the sweep stays
      // an apples-to-apples comparison of memory/fan-in, not of luck.
      fault::FaultPlan plan({fault_seed, fault_rate, 250.0});
      std::optional<fault::ScopedInjector<BlockDevice>> inject;
      if (fault_rate > 0.0) inject.emplace(device, plan);
      ExternalSortConfig config;
      config.memory_elems = memory;
      config.fan_in = fan;
      ExternalSortReport report;
      const auto sorted =
          external_sort_vector(device, data, config, &report);
      if (!std::is_sorted(sorted.begin(), sorted.end())) {
        std::cerr << "SORT FAILED\n";
        return 1;
      }
      const double per_block = 4096.0;
      const double blocks = std::ceil(static_cast<double>(elements) /
                                      per_block);
      const double runs = static_cast<double>(report.initial_runs);
      const double passes = runs <= 1.0
                                ? 0.0
                                : std::ceil(std::log(runs) /
                                            std::log(static_cast<double>(
                                                report.fan_in)));
      const double bound =
          2.0 * blocks * (passes + 1.0) + 2.0 * runs + 4.0;
      table.add_row({fmt_count(memory), std::to_string(report.fan_in),
                     fmt_count(report.initial_runs),
                     fmt_count(report.merge_passes),
                     fmt_count(report.io.transfers()),
                     fmt_count(static_cast<std::uint64_t>(bound)),
                     fmt_count(report.io_retries),
                     fmt_count(report.faults_injected),
                     fmt_double(report.modeled_io_us / 1e3, 1)});
    }
  }
  h.emit(table);
  if (!h.csv) {
    if (fault_rate > 0.0)
      std::cout << "\nfault injection armed (seed " << fault_seed << ", rate "
                << fault_rate
                << "): retried transfers are extra work on top of the "
                   "fault-free\nAggarwal-Vitter bound, so transfers may "
                   "exceed it by roughly the retry count.\n";
    else
      std::cout << "\nevery row satisfies transfers <= bound; larger memory "
                   "or fan-in cuts the\npass count exactly as "
                   "O(N/B·log_{M/B}(N/M)) predicts [Aggarwal-Vitter,\nref "
                   "10 of the paper].\n";
  }
  return 0;
}
