// Experiment E13 (extension) — the I/O-model view the paper reaches for
// when citing Aggarwal & Vitter [10]: external merge sort's block
// transfers versus memory size and fan-in, against the
// O(N/B · log_{M/B}(N/M)) bound.
//
// Flags: --elements N (default 1Mi; --full 8Mi), --csv, --seed.

#include <cmath>
#include <iostream>
#include <vector>

#include "extmem/external_sort.hpp"
#include "harness_common.hpp"
#include "util/data_gen.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::extmem;

  Harness h(argc, argv, "E13/I-O model",
            "external merge sort transfers vs the Aggarwal-Vitter bound");
  const std::size_t elements = static_cast<std::size_t>(
      h.cli.get_int("elements", h.full ? (8 << 20) : (1 << 20)));
  h.check_flags();

  const auto data = make_unsorted_values(elements, h.seed);

  Table table({"memory_elems", "fan_in", "runs", "passes", "transfers",
               "bound", "modeled_io_ms"});
  for (std::size_t memory : {std::size_t{8} << 10, std::size_t{32} << 10,
                             std::size_t{128} << 10}) {
    for (std::size_t fan : {std::size_t{0}, std::size_t{2},
                            std::size_t{4}}) {
      DeviceConfig dev_config;
      dev_config.block_bytes = 16 * 1024;  // 4Ki int32 per block
      BlockDevice device(dev_config);
      ExternalSortConfig config;
      config.memory_elems = memory;
      config.fan_in = fan;
      ExternalSortReport report;
      const auto sorted =
          external_sort_vector(device, data, config, &report);
      if (!std::is_sorted(sorted.begin(), sorted.end())) {
        std::cerr << "SORT FAILED\n";
        return 1;
      }
      const double per_block = 4096.0;
      const double blocks = std::ceil(static_cast<double>(elements) /
                                      per_block);
      const double runs = static_cast<double>(report.initial_runs);
      const double passes = runs <= 1.0
                                ? 0.0
                                : std::ceil(std::log(runs) /
                                            std::log(static_cast<double>(
                                                report.fan_in)));
      const double bound =
          2.0 * blocks * (passes + 1.0) + 2.0 * runs + 4.0;
      table.add_row({fmt_count(memory), std::to_string(report.fan_in),
                     fmt_count(report.initial_runs),
                     fmt_count(report.merge_passes),
                     fmt_count(report.io.transfers()),
                     fmt_count(static_cast<std::uint64_t>(bound)),
                     fmt_double(report.modeled_io_us / 1e3, 1)});
    }
  }
  h.emit(table);
  if (!h.csv)
    std::cout << "\nevery row satisfies transfers <= bound; larger memory "
                 "or fan-in cuts the\npass count exactly as "
                 "O(N/B·log_{M/B}(N/M)) predicts [Aggarwal-Vitter,\nref "
                 "10 of the paper].\n";
  return 0;
}
