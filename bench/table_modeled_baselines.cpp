// Experiment E7 (modelled-time half) — Section V's latency claims priced
// under the PRAM machine model. The balance table (table_balance) shows
// max/mean element counts; this harness converts the same runs into
// modelled time, making the "2X increase in latency" claim about
// Shiloach-Vishkin and the log·log partition cost of Akl-Santoro directly
// visible against Merge Path.
//
// Flags: --elements N (per array, default 1Mi), --csv, --seed.

#include <iostream>
#include <vector>

#include <algorithm>
#include <limits>

#include "harness_common.hpp"
#include "pram/baselines_sim.hpp"
#include "pram/simulate.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  using namespace mp::pram;

  Harness h(argc, argv, "E7/Section V (modelled time)",
            "baseline merge algorithms under the PRAM cost model");
  const std::size_t per_array =
      static_cast<std::size_t>(h.cli.get_int("elements", 1 << 20));
  h.check_flags();

  const auto model = MachineModel::paper_x5670();
  Table table({"input_shape", "p", "algorithm", "modeled_ms",
               "vs_merge_path", "barriers"});

  // Skew case: B's values concentrate in a narrow band of A's range, so
  // the whole of B ranks between two adjacent Shiloach-Vishkin A-block
  // boundaries. The interleaving inside the band is still fine-grained
  // (real comparisons, unlike fully disjoint inputs where merging
  // degenerates to copying), which is what realises the latency cost of
  // the imbalance rather than just the element-count skew.
  const auto make_narrow_b = [&](std::size_t n) {
    MergeInput input = make_merge_input(Dist::kUniform, n, n, h.seed);
    const std::int32_t lo = std::numeric_limits<std::int32_t>::max() / 16 * 6;
    const std::int32_t hi = std::numeric_limits<std::int32_t>::max() / 16 * 7;
    Xoshiro256 rng(h.seed + 1);
    for (auto& x : input.b)
      x = lo + static_cast<std::int32_t>(
                   rng.bounded(static_cast<std::uint64_t>(hi - lo)));
    std::sort(input.b.begin(), input.b.end());
    return input;
  };

  struct Shape {
    const char* name;
    MergeInput input;
  };
  Shape shapes[] = {
      {"uniform",
       make_merge_input(Dist::kUniform, per_array, per_array, h.seed)},
      {"narrow_b", make_narrow_b(per_array)},
  };
  for (const Shape& shape : shapes) {
    const MergeInput& input = shape.input;
    for (unsigned p : {4u, 12u}) {
      const SimResult mp_run =
          simulate_parallel_merge(input.a, input.b, p, model);
      struct Row {
        const char* name;
        SimResult sim;
      };
      const Row rows[] = {
          {"merge_path", mp_run},
          {"deo_sarkar", simulate_deo_sarkar(input.a, input.b, p, model)},
          {"shiloach_vishkin",
           simulate_shiloach_vishkin(input.a, input.b, p, model)},
          {"akl_santoro",
           simulate_akl_santoro(input.a, input.b, p, model)},
          {"bitonic", simulate_bitonic_merge(input.a, input.b, p, model)},
      };
      for (const Row& row : rows) {
        table.add_row({shape.name, std::to_string(p), row.name,
                       fmt_double(row.sim.time_ns / 1e6, 3),
                       fmt_ratio(row.sim.time_ns / mp_run.time_ns),
                       fmt_count(row.sim.phases)});
      }
    }
  }
  h.emit(table);
  if (!h.csv) {
    std::cout
        << "\npaper reference (Section V): [6] pays up to 2x latency from "
           "imbalance on\nskewed inputs; [5] pays log p dependent partition "
           "rounds; [2] matches Merge\nPath to constant factors; bitonic "
           "pays the O(N logN) work blow-up.\n";
  }
  return 0;
}
