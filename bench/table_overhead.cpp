// Experiment E2 — the Section VI remark: "the single-thread execution time
// of our algorithm was some 6% longer than a truly sequential merge".
//
// Unlike the speedup figure, this is a single-thread comparison, so the
// wall-clock numbers measured on this host are directly meaningful. Both
// the real measurement and the PRAM-modelled op-count ratio are printed.
//
// Flags: --full (adds 64M), --reps N, --csv, --seed.

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/mergepath.hpp"
#include "harness_common.hpp"
#include "pram/simulate.hpp"
#include "util/data_gen.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;

  Harness h(argc, argv, "E2/Section VI remark",
            "single-thread Merge Path vs plain sequential merge");
  const int reps = static_cast<int>(h.cli.get_int("reps", 3));
  h.check_flags();

  std::vector<std::size_t> sizes{1u << 20, 4u << 20, 16u << 20};
  if (h.full) sizes.push_back(64u << 20);

  const auto model = pram::MachineModel::paper_x5670();
  Table table({"elements_per_array", "seq_ms", "mergepath_p1_ms",
               "wall_overhead", "modeled_overhead"});
  for (std::size_t size : sizes) {
    const auto input = make_merge_input(Dist::kUniform, size, size, h.seed);
    std::vector<std::int32_t> out(2 * size);
    // Touch every output page before timing: the first writer otherwise
    // pays the fault cost and the comparison silently skews.
    for (std::size_t i = 0; i < out.size(); i += 1024) out[i] = 1;

    // Single-thread Algorithm 1 = the full lane machinery — diagonal
    // search (trivial at p=1) plus the step-budgeted resumable kernel —
    // against the lean classic loop. The two are measured in alternating
    // rounds (best-of per side) so ordering and frequency drift cannot
    // bias the comparison; at these kernel speeds the remaining delta is
    // dominated by code layout, so treat single-digit percentages as the
    // honest resolution.
    double seq = 1e300, mp1 = 1e300;
    for (int round = 0; round < 2 * reps + 3; ++round) {
      seq = std::min(seq, time_best_of(
                              [&] {
                                classic_merge(input.a.data(), size,
                                              input.b.data(), size,
                                              out.data());
                              },
                              1, 0.0));
      mp1 = std::min(
          mp1, time_best_of(
                   [&] {
                     const MergeSlice slice = merge_slice_for_lane(
                         input.a.data(), size, input.b.data(), size, 0, 1);
                     std::size_t i = slice.a_begin, j = slice.b_begin;
                     merge_steps(input.a.data(), size, input.b.data(), size,
                                 &i, &j, out.data() + slice.out_begin,
                                 slice.steps);
                   },
                   1, 0.0));
    }

    const auto sim_seq = pram::simulate_sequential_merge(input.a, input.b,
                                                         model);
    const auto sim_mp1 = pram::simulate_parallel_merge(input.a, input.b, 1,
                                                       model);
    table.add_row(
        {fmt_count(size), fmt_double(seq * 1e3, 2), fmt_double(mp1 * 1e3, 2),
         fmt_percent(mp1 / seq - 1.0),
         fmt_percent(sim_mp1.time_ns / sim_seq.time_ns - 1.0)});
  }
  h.emit(table);
  if (!h.csv) {
    std::cout
        << "\npaper reference: ~6% single-thread overhead (Section VI "
           "remark). The remark\nattributes it to \"a few extra "
           "instructions, and possibly also to overhead of\nOpenMP\"; with "
           "this library's codegen the bounded kernel matches the classic\n"
           "loop to within noise, so the measured overhead sits near 0% — "
           "same sign and\norder, smaller constant. modeled_overhead "
           "counts only algorithmic extra ops\n(the partition search).\n";
  }
  return 0;
}
