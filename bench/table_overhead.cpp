// Experiment E2 — the Section VI remark: "the single-thread execution time
// of our algorithm was some 6% longer than a truly sequential merge".
//
// Unlike the speedup figure, this is a single-thread comparison, so the
// wall-clock numbers measured on this host are directly meaningful. Both
// the real measurement and the PRAM-modelled op-count ratio are printed.
//
// With the vectorized kernels (S24) the remark gets a second reading: the
// per-lane primitive is no longer pinned to the scalar loop, so the table
// carries one row per available kernel and the "overhead" column turns into
// a speedup for the SIMD rows (negative overhead = faster than the classic
// sequential loop). modeled_overhead is a property of the scalar op-count
// model, so it is only printed on the scalar rows.
//
// Flags: --full (adds 64M), --reps N, --kernel K (restrict to one kernel),
// --csv, --seed.

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/mergepath.hpp"
#include "harness_common.hpp"
#include "kernels/kernels.hpp"
#include "pram/simulate.hpp"
#include "util/data_gen.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;

  Harness h(argc, argv, "E2/Section VI remark",
            "single-thread Merge Path vs plain sequential merge");
  const int reps = static_cast<int>(h.cli.get_int("reps", 3));
  h.check_flags();

  std::vector<std::size_t> sizes{1u << 20, 4u << 20, 16u << 20};
  if (h.full) sizes.push_back(64u << 20);

  std::vector<kernels::Kernel> sweep;
  if (h.forced_kernel) {
    sweep.push_back(*h.forced_kernel);
  } else {
    for (kernels::Kernel k : kernels::kAllKernels)
      if (kernels::kernel_supported(k)) sweep.push_back(k);
  }

  const auto model = pram::MachineModel::paper_x5670();
  Table table({"elements_per_array", "kernel", "seq_ms", "mergepath_p1_ms",
               "wall_overhead", "modeled_overhead"});
  for (std::size_t size : sizes) {
    const auto input = make_merge_input(Dist::kUniform, size, size, h.seed);
    std::vector<std::int32_t> out(2 * size);
    // Touch every output page before timing: the first writer otherwise
    // pays the fault cost and the comparison silently skews.
    for (std::size_t i = 0; i < out.size(); i += 1024) out[i] = 1;

    // The sequential side is kernel-independent; measure it once per size.
    double seq = 1e300;
    for (int round = 0; round < 2 * reps + 3; ++round) {
      seq = std::min(seq, time_best_of(
                              [&] {
                                classic_merge(input.a.data(), size,
                                              input.b.data(), size,
                                              out.data());
                              },
                              1, 0.0));
    }

    const auto sim_seq = pram::simulate_sequential_merge(input.a, input.b,
                                                         model);
    const auto sim_mp1 = pram::simulate_parallel_merge(input.a, input.b, 1,
                                                       model);

    for (kernels::Kernel kernel : sweep) {
      // Single-thread Algorithm 1 = the full lane machinery — diagonal
      // search (trivial at p=1) plus the step-budgeted resumable kernel —
      // against the lean classic loop. Rounds alternate with the seq side
      // above only across sizes, so pin the best-of count the same way; at
      // these kernel speeds single-digit percentages are the honest
      // resolution for the scalar rows.
      const kernels::Kernel previous = kernels::selected_kernel();
      kernels::set_kernel(kernel);
      double mp1 = 1e300;
      for (int round = 0; round < 2 * reps + 3; ++round) {
        mp1 = std::min(
            mp1, time_best_of(
                     [&] {
                       const MergeSlice slice = merge_slice_for_lane(
                           input.a.data(), size, input.b.data(), size, 0, 1);
                       std::size_t i = slice.a_begin, j = slice.b_begin;
                       kernels::merge_steps_auto(
                           input.a.data(), size, input.b.data(), size, &i, &j,
                           out.data() + slice.out_begin, slice.steps);
                     },
                     1, 0.0));
      }
      kernels::set_kernel(previous);

      const bool scalar_model = kernel == kernels::Kernel::kScalar;
      table.add_row(
          {fmt_count(size), std::string(kernels::to_string(kernel)),
           fmt_double(seq * 1e3, 2), fmt_double(mp1 * 1e3, 2),
           fmt_percent(mp1 / seq - 1.0),
           scalar_model
               ? fmt_percent(sim_mp1.time_ns / sim_seq.time_ns - 1.0)
               : std::string("-")});
    }
  }
  h.emit(table);
  if (!h.csv) {
    std::cout
        << "\npaper reference: ~6% single-thread overhead (Section VI "
           "remark). The remark\nattributes it to \"a few extra "
           "instructions, and possibly also to overhead of\nOpenMP\"; with "
           "this library's codegen the bounded scalar kernel matches the\n"
           "classic loop to within noise, so the scalar rows sit near 0% — "
           "same sign and\norder, smaller constant — while the sse4/avx2 "
           "rows go negative: the per-lane\nprimitive now beats the "
           "sequential baseline outright. modeled_overhead counts\nonly "
           "algorithmic extra ops (the partition search) and applies to the "
           "scalar\nkernel, so it is shown on those rows only.\n";
  }
  return 0;
}
