// Experiment E15 (methodology) — sensitivity of the reproduction's
// conclusions to the PRAM machine-model calibration.
//
// The speedup curves (E1) and baseline rankings (E7) are produced under a
// calibrated cost model; a fair question is whether the paper-matching
// conclusions depend on the exact constants. This harness perturbs each
// model parameter by 4x in both directions and reports the two headline
// quantities under every perturbation:
//
//   - merge speedup at p = 12 (Figure 5's endpoint);
//   - the modelled-latency ratio Shiloach-Vishkin / Merge Path on the
//     skewed input (Section V's imbalance claim).
//
// The conclusions are robust: speedup stays near-linear under all
// perturbations except extreme bandwidth starvation (which the paper's
// own large-array droop already exhibits), and the SV ratio stays > 1.
//
// Flags: --elements N (per array, default 256Ki), --csv, --seed.

#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "harness_common.hpp"
#include "pram/baselines_sim.hpp"
#include "pram/simulate.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace mp;
using namespace mp::bench;
using namespace mp::pram;

MergeInput narrow_b(std::size_t n, std::uint64_t seed) {
  MergeInput input = make_merge_input(Dist::kUniform, n, n, seed);
  const std::int32_t lo = std::numeric_limits<std::int32_t>::max() / 16 * 6;
  const std::int32_t hi = std::numeric_limits<std::int32_t>::max() / 16 * 7;
  Xoshiro256 rng(seed + 1);
  for (auto& x : input.b)
    x = lo + static_cast<std::int32_t>(
                 rng.bounded(static_cast<std::uint64_t>(hi - lo)));
  std::sort(input.b.begin(), input.b.end());
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "E15/methodology",
            "sensitivity of conclusions to machine-model calibration");
  const std::size_t per_array =
      static_cast<std::size_t>(h.cli.get_int("elements", 256 << 10));
  h.check_flags();

  const auto uniform =
      make_merge_input(Dist::kUniform, per_array, per_array, h.seed);
  const auto skew = narrow_b(per_array, h.seed);

  struct Variant {
    const char* name;
    MachineModel model;
  };
  std::vector<Variant> variants;
  const MachineModel base = MachineModel::paper_x5670();
  variants.push_back({"calibrated", base});
  {
    MachineModel m = base;
    m.ns_per_search_step *= 4;
    variants.push_back({"search 4x costlier", m});
  }
  {
    MachineModel m = base;
    m.barrier_base_ns *= 4;
    m.barrier_per_lane_ns *= 4;
    variants.push_back({"barriers 4x costlier", m});
  }
  {
    MachineModel m = base;
    m.bytes_per_ns_per_lane /= 4;
    variants.push_back({"bandwidth / 4", m});
  }
  {
    MachineModel m = base;
    m.bytes_per_ns_per_lane *= 4;
    variants.push_back({"bandwidth x 4", m});
  }
  {
    MachineModel m = base;
    m.ns_per_compare *= 4;
    m.ns_per_move *= 4;
    variants.push_back({"compute 4x slower", m});
  }
  {
    MachineModel m = base;
    m.llc_bytes = 0;  // every byte pays DRAM
    variants.push_back({"no LLC at all", m});
  }

  Table table({"model_variant", "speedup@12", "near_linear",
               "SV/MP_latency_skew", "ranking_holds"});
  for (const Variant& v : variants) {
    const auto s1 = simulate_parallel_merge(uniform.a, uniform.b, 1,
                                            v.model);
    const auto s12 = simulate_parallel_merge(uniform.a, uniform.b, 12,
                                             v.model);
    const double speedup = s1.time_ns / s12.time_ns;
    const double sv_ratio =
        simulate_shiloach_vishkin(skew.a, skew.b, 12, v.model).time_ns /
        simulate_parallel_merge(skew.a, skew.b, 12, v.model).time_ns;
    table.add_row({v.name, fmt_ratio(speedup),
                   speedup > 8.0 ? "yes" : "NO",
                   fmt_ratio(sv_ratio), sv_ratio > 1.0 ? "yes" : "NO"});
  }
  h.emit(table);
  if (!h.csv)
    std::cout << "\nthe reproduction's two headline conclusions survive "
                 "4x perturbation of every\nmodel constant; only "
                 "bandwidth starvation bends the speedup — the same "
                 "effect\nFigure 5 itself shows for the largest arrays.\n";
  return 0;
}
