// Example: sort-merge join of two relations on a shared key.
//
//   build/examples/database_merge_join [--rows N]
//
// The scenario the paper's introduction motivates: merging sorted runs is
// the backbone of database sort-merge joins. Here two relations arrive
// unsorted, are sorted in parallel with the library's merge sort, and the
// join itself is partitioned with the SAME co-rank machinery Algorithm 1
// uses: each worker binary-searches its key-space split, so workers emit
// disjoint, contiguous slices of the join output with no coordination.
//
// Demonstrates: parallel_merge_sort on records, diagonal_intersection as a
// general partitioning tool, and stability (matching rows keep their
// within-relation order).

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <limits>
#include <vector>

#include "core/mergepath.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

struct Row {
  std::int32_t key;
  std::uint32_t row_id;

  friend bool operator<(const Row& lhs, const Row& rhs) {
    return lhs.key < rhs.key;
  }
};

struct JoinedRow {
  std::int32_t key;
  std::uint32_t left_row;
  std::uint32_t right_row;
};

std::vector<Row> make_relation(std::size_t rows, std::int32_t key_universe,
                               std::uint64_t seed) {
  mp::Xoshiro256 rng(seed);
  std::vector<Row> rel(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    rel[i].key = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(key_universe)));
    rel[i].row_id = static_cast<std::uint32_t>(i);
  }
  return rel;
}

// Joins the key-ranges [left_lo, left_hi) x [right_lo, right_hi), which
// the partition guarantees are key-aligned between the two relations.
void join_slice(const std::vector<Row>& left, const std::vector<Row>& right,
                std::size_t left_lo, std::size_t left_hi,
                std::size_t right_lo, std::size_t right_hi,
                std::vector<JoinedRow>& out) {
  std::size_t i = left_lo, j = right_lo;
  while (i < left_hi && j < right_hi) {
    if (left[i].key < right[j].key) {
      ++i;
    } else if (right[j].key < left[i].key) {
      ++j;
    } else {
      // Emit the cross product of this key group.
      const std::int32_t key = left[i].key;
      std::size_t j_end = j;
      while (j_end < right_hi && right[j_end].key == key) ++j_end;
      for (; i < left_hi && left[i].key == key; ++i)
        for (std::size_t jj = j; jj < j_end; ++jj)
          out.push_back({key, left[i].row_id, right[jj].row_id});
      j = j_end;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mp;
  Cli cli(argc, argv);
  const auto rows = static_cast<std::size_t>(cli.get_int("rows", 1 << 20));
  const auto key_universe =
      static_cast<std::int32_t>(cli.get_int("keys", 1 << 18));

  auto orders = make_relation(rows, key_universe, 7);
  auto invoices = make_relation(rows / 2, key_universe, 8);
  std::cout << "relations: orders = " << orders.size()
            << " rows, invoices = " << invoices.size() << " rows, "
            << key_universe << " distinct keys\n";

  // Phase 1: parallel sort both relations by key (stable: preserves
  // row_id order within equal keys).
  Timer timer;
  parallel_merge_sort(std::span<Row>(orders));
  parallel_merge_sort(std::span<Row>(invoices));
  std::cout << "sorted both relations in " << timer.seconds() * 1e3
            << " ms\n";

  // Phase 2: partition the join with merge-path co-ranks. A worker's slice
  // boundary must not split a key group, so each co-rank is snapped to the
  // start of its key group in both relations.
  const unsigned workers = Executor{}.resolve_threads();
  std::vector<std::size_t> lb(workers + 1), rb(workers + 1);
  lb[0] = rb[0] = 0;
  lb[workers] = orders.size();
  rb[workers] = invoices.size();
  for (unsigned w = 1; w < workers; ++w) {
    const std::size_t diag =
        w * (orders.size() + invoices.size()) / workers;
    const PathPoint pt = path_point_on_diagonal(
        orders.data(), orders.size(), invoices.data(), invoices.size(),
        diag);
    // The co-rank lands near the w/workers quantile of the combined key
    // stream; snap it to a whole key group by taking the key at the point
    // as this worker's splitter and lower-bounding it in both relations.
    Row splitter{};
    if (pt.i < orders.size())
      splitter = orders[pt.i];
    else if (pt.j < invoices.size())
      splitter = invoices[pt.j];
    else
      splitter.key = std::numeric_limits<std::int32_t>::max();
    lb[w] = static_cast<std::size_t>(
        std::lower_bound(orders.begin(), orders.end(), splitter) -
        orders.begin());
    rb[w] = static_cast<std::size_t>(
        std::lower_bound(invoices.begin(), invoices.end(), splitter) -
        invoices.begin());
  }

  // Phase 3: workers join their slices independently.
  timer.reset();
  std::vector<std::vector<JoinedRow>> partial(workers);
  ThreadPool::shared().parallel_for_lanes(workers, [&](unsigned w) {
    join_slice(orders, invoices, lb[w], lb[w + 1], rb[w], rb[w + 1],
               partial[w]);
  });
  std::size_t join_size = 0;
  for (const auto& p : partial) join_size += p.size();
  std::cout << "joined in " << timer.seconds() * 1e3 << " ms on " << workers
            << " worker(s): " << join_size << " matching row pairs\n";

  // Validation: single-threaded reference join.
  std::vector<JoinedRow> reference;
  join_slice(orders, invoices, 0, orders.size(), 0, invoices.size(),
             reference);
  std::cout << "reference join: " << reference.size() << " pairs, "
            << (reference.size() == join_size ? "MATCH" : "MISMATCH")
            << "\n";
  return reference.size() == join_size ? 0 : 1;
}
