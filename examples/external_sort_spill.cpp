// Example: sorting a dataset that does not fit in memory.
//
//   build/examples/external_sort_spill [--elements N] [--memory M]
//
// The classic pipeline a database or log processor runs when a sort
// spills: form memory-sized sorted runs (each sorted in-memory with the
// paper's parallel merge sort), then merge the runs fan-in at a time.
// Storage is the simulated block device (src/extmem), so the example
// also prints the I/O story — block transfers, seeks, modelled disk time
// — next to the Aggarwal-Vitter expectation.

#include <cmath>
#include <iostream>
#include <vector>

#include "extmem/external_sort.hpp"
#include "util/cli.hpp"
#include "util/data_gen.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::extmem;
  Cli cli(argc, argv);
  const auto elements =
      static_cast<std::size_t>(cli.get_int("elements", 4 << 20));
  const auto memory =
      static_cast<std::size_t>(cli.get_int("memory", 128 << 10));

  BlockDevice device;  // 64 KiB blocks, HDD-ish latency model
  const std::size_t per_block =
      device.config().block_bytes / sizeof(std::int32_t);

  std::cout << "dataset: " << elements << " int32 ("
            << fmt_bytes(elements * 4) << "), memory budget: " << memory
            << " elements (" << fmt_bytes(memory * 4) << "), block "
            << fmt_bytes(device.config().block_bytes) << "\n";

  const auto data = make_unsorted_values(elements, 77);
  ExternalSortConfig config;
  config.memory_elems = memory;

  Timer timer;
  ExternalSortReport report;
  const auto sorted = external_sort_vector(device, data, config, &report);
  const double cpu_s = timer.seconds();

  const bool ok = std::is_sorted(sorted.begin(), sorted.end()) &&
                  sorted.size() == elements;
  std::cout << "\nsorted correctly: " << std::boolalpha << ok << "\n\n"
            << "run formation: " << report.initial_runs << " runs of <= "
            << memory << " elements\n"
            << "merge passes:  " << report.merge_passes << " at fan-in "
            << report.fan_in << "\n"
            << "block I/O:     " << fmt_count(report.io.block_reads)
            << " reads + " << fmt_count(report.io.block_writes)
            << " writes, " << fmt_count(report.io.seeks) << " seeks\n"
            << "modeled disk:  " << fmt_double(report.modeled_io_us / 1e3, 1)
            << " ms   (host CPU: " << fmt_double(cpu_s * 1e3, 1) << " ms)\n";

  // The I/O lower bound for comparison.
  const double blocks = std::ceil(static_cast<double>(elements) /
                                  static_cast<double>(per_block));
  const double ratio = std::log(static_cast<double>(report.initial_runs)) /
                       std::log(static_cast<double>(report.fan_in));
  std::cout << "\nAggarwal-Vitter shape: ~2·N/B·(1 + ceil(log_k(runs))) = "
            << fmt_count(static_cast<std::uint64_t>(
                   2.0 * blocks * (1.0 + std::ceil(std::max(0.0, ratio)))))
            << " transfers\n";
  return ok ? 0 : 1;
}
