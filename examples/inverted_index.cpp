// Example: posting-list algebra for a tiny search engine.
//
//   build/examples/inverted_index [--docs N]
//
// An inverted index stores, per term, the sorted list of document ids
// containing it. Boolean queries are sorted-set algebra over those
// posting lists: AND = intersection, OR = union, AND NOT = difference —
// all parallelised here with the Merge Path partition (core/set_ops.hpp).
// The k-way union of several posting lists additionally shows the
// multiway machinery.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/multiway_merge.hpp"
#include "core/set_ops.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using DocId = std::int32_t;
using PostingList = std::vector<DocId>;

// Term appears in a document with term-specific probability; posting
// lists come out sorted by construction.
PostingList make_postings(std::size_t docs, unsigned permille,
                          std::uint64_t seed) {
  mp::Xoshiro256 rng(seed);
  PostingList out;
  for (std::size_t doc = 0; doc < docs; ++doc)
    if (rng.bounded(1000) < permille) out.push_back(static_cast<DocId>(doc));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mp;
  Cli cli(argc, argv);
  const auto docs = static_cast<std::size_t>(cli.get_int("docs", 2'000'000));

  // A small vocabulary with very different selectivities.
  struct Term {
    const char* text;
    unsigned permille;
    PostingList postings;
  };
  std::vector<Term> terms{
      {"database", 80, {}},  {"parallel", 50, {}}, {"merge", 30, {}},
      {"gpu", 15, {}},       {"xeon", 5, {}},
  };
  for (std::size_t t = 0; t < terms.size(); ++t)
    terms[t].postings = make_postings(docs, terms[t].permille, 1000 + t);

  std::cout << "index over " << docs << " documents:\n";
  for (const Term& term : terms)
    std::cout << "  '" << term.text << "': " << term.postings.size()
              << " postings\n";

  Timer timer;
  // Query 1: database AND parallel.
  const auto q1 =
      parallel_set_intersection(terms[0].postings, terms[1].postings);
  // Query 2: (database AND parallel) AND merge.
  const auto q2 = parallel_set_intersection(q1, terms[2].postings);
  // Query 3: parallel AND NOT gpu.
  const auto q3 =
      parallel_set_difference(terms[1].postings, terms[3].postings);
  // Query 4: merge OR gpu OR xeon — k-way union via the multiway merge
  // followed by duplicate collapse (ids are unique per list, so equal
  // neighbours are cross-list duplicates).
  auto q4 = parallel_multiway_merge(std::vector<PostingList>{
      terms[2].postings, terms[3].postings, terms[4].postings});
  q4.erase(std::unique(q4.begin(), q4.end()), q4.end());
  const double ms = timer.seconds() * 1e3;

  std::cout << "\nqueries (" << ms << " ms total):\n"
            << "  database AND parallel:            " << q1.size()
            << " docs\n"
            << "  ... AND merge:                    " << q2.size()
            << " docs\n"
            << "  parallel AND NOT gpu:             " << q3.size()
            << " docs\n"
            << "  merge OR gpu OR xeon:             " << q4.size()
            << " docs\n";

  // Validate against the std:: reference on the most selective query.
  PostingList reference;
  std::set_intersection(q1.begin(), q1.end(), terms[2].postings.begin(),
                        terms[2].postings.end(),
                        std::back_inserter(reference));
  std::cout << "\nreference check (AND chain): "
            << (reference == q2 ? "MATCH" : "MISMATCH") << "\n";
  return reference == q2 ? 0 : 1;
}
