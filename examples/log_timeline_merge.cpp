// Example: building a global event timeline from per-service log streams.
//
//   build/examples/log_timeline_merge [--streams K] [--events N]
//
// K services each emit a time-ordered event stream; the task is one
// globally time-ordered timeline. This is the k-way generalisation of the
// paper's problem, solved here with parallel_multiway_merge: every worker
// locates its slice of the global timeline with multisequence selection
// (the k-way co-rank) and merges it with a loser tree — no locks, no
// inter-worker traffic, perfect balance regardless of how bursty the
// individual streams are.
//
// Stability matters in this domain: events with the same timestamp must
// keep a deterministic order (here: by stream id, then emission order),
// which the library's tie-breaking guarantees.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "core/multiway_merge.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

struct Event {
  std::int64_t timestamp_us;
  std::uint32_t stream;
  std::uint32_t seq;  // emission order within the stream

  friend bool operator<(const Event& lhs, const Event& rhs) {
    return lhs.timestamp_us < rhs.timestamp_us;
  }
};

// Bursty stream: quiet stretches then clumps of events, with ties.
std::vector<Event> make_stream(std::uint32_t id, std::size_t events,
                               std::uint64_t seed) {
  mp::Xoshiro256 rng(seed);
  std::vector<Event> stream(events);
  std::int64_t now = 0;
  for (std::size_t i = 0; i < events; ++i) {
    if (rng.bounded(100) < 5) now += static_cast<std::int64_t>(
        rng.bounded(1'000'000));              // quiet gap
    else if (rng.bounded(100) < 40) now += 0;  // burst: identical stamp
    else now += static_cast<std::int64_t>(rng.bounded(500));
    stream[i] = {now, id, static_cast<std::uint32_t>(i)};
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mp;
  Cli cli(argc, argv);
  const auto k = static_cast<std::size_t>(cli.get_int("streams", 12));
  const auto events =
      static_cast<std::size_t>(cli.get_int("events", 200'000));

  std::vector<std::vector<Event>> streams;
  streams.reserve(k);
  for (std::size_t s = 0; s < k; ++s)
    streams.push_back(
        make_stream(static_cast<std::uint32_t>(s), events, 100 + s));
  std::cout << "merging " << k << " streams x " << events << " events\n";

  std::vector<std::span<const Event>> views;
  for (const auto& s : streams) views.emplace_back(s.data(), s.size());
  std::vector<Event> timeline(k * events);

  Timer timer;
  parallel_multiway_merge(std::span<const std::span<const Event>>(views),
                          timeline.data());
  const double ms = timer.seconds() * 1e3;

  // Validate: globally time-ordered, and deterministic within ties
  // (stream ids ascending, emission order preserved per stream).
  bool ordered = true, stable = true;
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    const Event& prev = timeline[i - 1];
    const Event& cur = timeline[i];
    if (cur.timestamp_us < prev.timestamp_us) ordered = false;
    if (cur.timestamp_us == prev.timestamp_us) {
      if (cur.stream < prev.stream) stable = false;
      if (cur.stream == prev.stream && cur.seq <= prev.seq) stable = false;
    }
  }
  std::cout << "merged " << timeline.size() << " events in " << ms
            << " ms\n"
            << "time-ordered: " << std::boolalpha << ordered
            << ", deterministic tie order: " << stable << "\n";

  // Show a readable slice around a burst.
  std::cout << "sample timeline slice:\n";
  for (std::size_t i = timeline.size() / 2;
       i < timeline.size() / 2 + 6 && i < timeline.size(); ++i) {
    std::cout << "  t=" << timeline[i].timestamp_us << "us  service-"
              << timeline[i].stream << "  event#" << timeline[i].seq
              << "\n";
  }
  return ordered && stable ? 0 : 1;
}
