// Example: a batch sorting service — choosing between the plain parallel
// merge sort (Section III) and the cache-efficient sort (Section IV.C).
//
//   build/examples/parallel_sort_service [--elements N]
//
// A telemetry pipeline receives batches of unsorted samples and must sort
// them before downstream aggregation. The example sorts the same batch
// with both algorithms, verifies they agree, and reports throughput —
// showing how the cache budget is configured and when the segmented
// variant is worth its extra data movement (machines where a miss is
// expensive; see bench/fig_cache_spm for the simulated-miss evidence).

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/mergepath.hpp"
#include "util/cli.hpp"
#include "util/data_gen.hpp"
#include "util/hw.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  Cli cli(argc, argv);
  const auto elements =
      static_cast<std::size_t>(cli.get_int("elements", 4 << 20));

  const auto batch = make_unsorted_values(elements, 2026);
  std::cout << "batch: " << elements << " samples ("
            << fmt_bytes(elements * sizeof(std::int32_t)) << ")\n"
            << "host:  " << describe(host_info()) << "\n\n";

  // Plain parallel merge sort: p block sorts + flattened merge rounds.
  auto plain = batch;
  Timer timer;
  parallel_merge_sort(std::span<std::int32_t>(plain));
  const double plain_s = timer.seconds();
  std::cout << "parallel_merge_sort:          " << plain_s * 1e3 << " ms ("
            << fmt_double(static_cast<double>(elements) / plain_s / 1e6, 1)
            << " Melem/s)\n";

  // Cache-efficient sort: L1-sized blocks, segmented merge rounds.
  auto cache_sorted = batch;
  CacheSortConfig config;
  config.cache_bytes = host_info().l1d_bytes();
  timer.reset();
  cache_efficient_parallel_sort(std::span<std::int32_t>(cache_sorted),
                                config);
  const double cache_s = timer.seconds();
  std::cout << "cache_efficient_parallel_sort: " << cache_s * 1e3 << " ms ("
            << fmt_double(static_cast<double>(elements) / cache_s / 1e6, 1)
            << " Melem/s), cache budget "
            << fmt_bytes(config.cache_bytes) << "\n";

  // Reference: std::sort.
  auto reference = batch;
  timer.reset();
  std::sort(reference.begin(), reference.end());
  std::cout << "std::sort (1 thread):          " << timer.seconds() * 1e3
            << " ms\n\n";

  const bool ok = plain == reference && cache_sorted == reference;
  std::cout << "all three outputs identical: " << std::boolalpha << ok
            << "\n";
  if (!ok) return 1;

  std::cout << "\nnote: on big multi-socket machines the segmented variant "
               "trades ~30% more\ndata movement for an in-cache working "
               "set; on this host the hardware\nprefetcher already hides "
               "the streaming misses, which is why the paper's own\nx86 "
               "evaluation used the basic algorithm (Section VI) and kept "
               "the segmented\none for simple-cache manycores "
               "(Section VII).\n";
  return 0;
}
