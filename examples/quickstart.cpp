// Quickstart: the five-minute tour of the Merge Path library.
//
//   build/examples/quickstart
//
// Covers: Algorithm 1 (parallel merge), why the naive equal split fails
// (the paper's introduction, experiment E8), custom comparators, the
// parallel merge sort, and controlling the thread pool.

#include <algorithm>
#include <iostream>
#include <string>

#include "baselines/naive_split.hpp"
#include "core/mergepath.hpp"
#include "util/data_gen.hpp"

int main() {
  using namespace mp;

  std::cout << "merge-path library " << version() << "\n\n";

  // --- 1. Merge two sorted arrays in parallel (Algorithm 1). -------------
  const auto input = make_merge_input(Dist::kUniform, 1 << 20, 1 << 20, 1);
  std::vector<std::int32_t> merged =
      parallel_merge(input.a, input.b);  // shared pool, all host threads
  std::cout << "1. parallel_merge: merged " << input.a.size() << " + "
            << input.b.size() << " elements, sorted = " << std::boolalpha
            << std::is_sorted(merged.begin(), merged.end()) << "\n";

  // --- 2. Why naive equal-split "merging" is wrong (Section I). ----------
  // All of A greater than all of B: chunk pairs interleave wrongly.
  const auto adversarial =
      make_merge_input(Dist::kDisjointHigh, 1 << 16, 1 << 16, 2);
  // Force several lanes even on a small host — with one lane the naive
  // scheme degenerates to a correct sequential merge and hides the bug.
  const Executor four_lanes{nullptr, 4};
  const auto naive =
      baselines::naive_split_merge(adversarial.a, adversarial.b, four_lanes);
  const auto correct = parallel_merge(adversarial.a, adversarial.b,
                                      four_lanes);
  std::cout << "2. adversarial input (every A > every B):\n"
            << "   naive equal-split output sorted?  "
            << std::is_sorted(naive.begin(), naive.end()) << "\n"
            << "   merge-path output sorted?         "
            << std::is_sorted(correct.begin(), correct.end()) << "\n";

  // --- 3. Custom comparators and element types. --------------------------
  std::vector<std::string> words_a{"ant", "bison", "elephant"};
  std::vector<std::string> words_b{"bee", "cat", "dormouse"};
  const auto by_length = [](const std::string& x, const std::string& y) {
    return x.size() < y.size();
  };
  std::vector<std::string> by_len(6);
  parallel_merge(words_a.data(), words_a.size(), words_b.data(),
                 words_b.size(), by_len.data(), Executor{}, by_length);
  std::cout << "3. merge by length:";
  for (const auto& w : by_len) std::cout << ' ' << w;
  std::cout << "\n   (ties keep first-input order: the merge is stable)\n";

  // --- 4. Parallel merge sort (Section III). ------------------------------
  auto values = make_unsorted_values(1 << 20, 3);
  parallel_merge_sort(std::span<std::int32_t>(values));
  std::cout << "4. parallel_merge_sort: " << values.size()
            << " values, sorted = "
            << std::is_sorted(values.begin(), values.end()) << "\n";

  // --- 5. Explicit executor: your own pool and thread count. --------------
  ThreadPool pool(3);          // 3 workers + the calling thread
  Executor exec{&pool, 4};     // run the next call on exactly 4 lanes
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                 input.b.size(), out.data(), exec);
  std::cout << "5. explicit Executor{pool, 4 threads}: sorted = "
            << std::is_sorted(out.begin(), out.end()) << "\n";

  // --- 6. Cache-sized segments (Algorithm 2). ------------------------------
  SegmentedConfig config;  // L defaults to (host L1d / element) / 3
  const auto segged = segmented_parallel_merge(input.a, input.b, config);
  std::cout << "6. segmented_parallel_merge (L = C/3): equal to Alg.1 output "
            << (segged == merged) << "\n";
  return 0;
}
