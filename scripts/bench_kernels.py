#!/usr/bin/env python3
"""Runs the bench_micro kernel ablation and emits BENCH_5.json.

Usage:
    bench_kernels.py [--bench PATH] [--out BENCH_5.json] [--repetitions N]
    bench_kernels.py --check [BENCH_5.json]

The run mode drives bench_micro's ablation families
(BM_KernelMerge32/64/F32/F64 and BM_SortSmall24) on the pinned inputs
(uniform 32-bit keys, seed 42, m = n = 65536, plus the order-preserving
64-bit widening and the monotone float/double conversions merged under
TotalOrderLess — see bench/bench_micro.cpp) once per compiled+supported
kernel, then writes one JSON document:

    {
      "schema": "mergepath-kernel-bench-v2",
      "host_isa": "sse4.2+avx2+avx512",
      "input": {...pinned-generator description...},
      "kernels": {
        "scalar": {"key32_ns_per_element": ..., "key64_ns_per_element": ...,
                   "f32_ns_per_element": ..., "f64_ns_per_element": ...,
                   "speedup32_vs_scalar": 1.0, ...},
        "avx512": {...}
      },
      "sort_small": {
        "grain": 24,
        "insertion_ns_per_element": ...,
        "kernels": {"scalar": {...}, "avx512": {...,
                    "speedup_vs_insertion": ...}}
      }
    }

ns/element = 1e9 / items_per_second as reported by google-benchmark, so
the numbers regenerate with nothing but this script and the bench binary.
The seeded perf trajectory (ROADMAP): future PRs re-run this script and
diff the speedup columns.

--check validates the schema instead of running anything: the scalar
baseline must be present with speedups exactly 1.0, every kernel row must
carry positive timings, and any sse4/avx2/avx512 rows must not be slower
than scalar by more than 2x (a vector kernel that lost that badly means
the dispatch default is wrong). The sort_small block, when present, needs
a positive insertion baseline and positive per-kernel timings. Exit 0 on
success, 1 with a diagnostic.
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA = "mergepath-kernel-bench-v2"
KERNELS = ["scalar", "branchless", "sse4", "avx2", "avx512"]
MERGE_FAMILIES = {
    "BM_KernelMerge32": "key32",
    "BM_KernelMerge64": "key64",
    "BM_KernelMergeF32": "f32",
    "BM_KernelMergeF64": "f64",
}
SORT_FAMILY = "BM_SortSmall24"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO_ROOT, "build", "bench", "bench_micro")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_5.json")

# What bench_micro pins for the ablation families (kAblationN etc.);
# recorded in the artifact so a reader does not need the source to
# interpret it.
PINNED_INPUT = {
    "distribution": "uniform",
    "seed": 42,
    "elements_per_array": 65536,
    "key32": "int32 from the pinned generator",
    "key64": "int64 widening (key << 16) of the same keys",
    "f32": "float(key) merged under TotalOrderLess (monotone, adds ties)",
    "f64": "double(key) * 1.25 merged under TotalOrderLess",
    "sort_small": "64 Ki unsorted int32 (xoshiro, seed 42) sorted as "
                  "independent 24-key runs (timed memcpy refreshes the "
                  "bytes each iteration)",
}


def fail(message):
    print(f"bench_kernels: {message}", file=sys.stderr)
    sys.exit(1)


def run_bench(bench_path, repetitions):
    """Runs the ablation families once; returns (merge, sort) result maps."""
    if not os.path.exists(bench_path):
        fail(f"bench binary not found at {bench_path} (build first, or pass --bench)")
    families = "|".join(list(MERGE_FAMILIES) + [SORT_FAMILY])
    cmd = [
        bench_path,
        f"--benchmark_filter=^({families})/",
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=true",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    doc = json.loads(proc.stdout)

    merge, sort_small = {}, {}
    for row in doc.get("benchmarks", []):
        # Aggregate rows are named BM_KernelMerge32/<kernel>_mean etc.;
        # take the mean (with repetitions=1 the raw row is the only row).
        name = row["name"]
        if repetitions > 1 and row.get("aggregate_name") != "mean":
            continue
        base = name.removesuffix("_mean")
        try:
            family, kernel = base.split("/", 1)
        except ValueError:
            continue
        ips = row.get("items_per_second")
        if family in MERGE_FAMILIES or family == SORT_FAMILY:
            if not ips or ips <= 0:
                fail(f"{name}: missing items_per_second")
        if family in MERGE_FAMILIES:
            merge.setdefault(kernel, {})[MERGE_FAMILIES[family]] = 1e9 / ips
        elif family == SORT_FAMILY:
            sort_small[kernel] = 1e9 / ips
    if "scalar" not in merge:
        fail("no scalar baseline in benchmark output (wrong filter or binary?)")
    if "insertion" not in sort_small:
        fail("no insertion baseline in BM_SortSmall24 output")
    return merge, sort_small


def host_isa(bench_path):
    """The 'isa ...' part of the bench_micro banner line."""
    proc = subprocess.run(
        [bench_path, "--kernel", "scalar", "--benchmark_filter=NothingMatches"],
        capture_output=True,
        text=True,
    )
    banner = (proc.stderr or "").splitlines()
    for line in banner:
        if "(isa " in line:
            return line.split("(isa ", 1)[1].split(")", 1)[0]
    return "unknown"


def write_artifact(out_path, isa, merge, sort_small):
    scalar = merge["scalar"]
    kernels = {}
    for kernel in KERNELS:
        if kernel not in merge:
            continue  # not compiled in / not supported on this host
        row = merge[kernel]
        entry = {}
        for bits in MERGE_FAMILIES.values():
            entry[f"{bits}_ns_per_element"] = round(row[bits], 4)
        entry["speedup32_vs_scalar"] = round(scalar["key32"] / row["key32"], 3)
        entry["speedup64_vs_scalar"] = round(scalar["key64"] / row["key64"], 3)
        entry["speedup_f32_vs_scalar"] = round(scalar["f32"] / row["f32"], 3)
        entry["speedup_f64_vs_scalar"] = round(scalar["f64"] / row["f64"], 3)
        kernels[kernel] = entry
    insertion = sort_small["insertion"]
    sort_doc = {
        "grain": 24,
        "insertion_ns_per_element": round(insertion, 4),
        "kernels": {
            kernel: {
                "ns_per_element": round(ns, 4),
                "speedup_vs_insertion": round(insertion / ns, 3),
            }
            for kernel, ns in sort_small.items()
            if kernel != "insertion"
        },
    }
    doc = {
        "schema": SCHEMA,
        "host_isa": isa,
        "input": PINNED_INPUT,
        "kernels": kernels,
        "sort_small": sort_doc,
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    return doc


def check(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not doc.get("host_isa"):
        fail(f"{path}: missing host_isa")
    kernels = doc.get("kernels")
    if not isinstance(kernels, dict) or "scalar" not in kernels:
        fail(f"{path}: kernels must be an object with a scalar baseline")
    timing_keys = [f"{bits}_ns_per_element" for bits in MERGE_FAMILIES.values()]
    speedup_keys = [
        "speedup32_vs_scalar",
        "speedup64_vs_scalar",
        "speedup_f32_vs_scalar",
        "speedup_f64_vs_scalar",
    ]
    for name, row in kernels.items():
        if name not in KERNELS:
            fail(f"{path}: unknown kernel {name!r}")
        for key in timing_keys + speedup_keys:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{path}: kernels.{name}.{key} must be > 0, got {value!r}")
    for key in speedup_keys:
        if kernels["scalar"][key] != 1.0:
            fail(f"{path}: scalar {key} must be exactly 1.0")
    for name in ("sse4", "avx2", "avx512"):
        if name in kernels and kernels[name]["speedup32_vs_scalar"] < 0.5:
            fail(f"{path}: {name} is >2x slower than scalar — dispatch default is wrong")
    sort_small = doc.get("sort_small")
    if sort_small is not None:
        insertion = sort_small.get("insertion_ns_per_element")
        if not isinstance(insertion, (int, float)) or insertion <= 0:
            fail(f"{path}: sort_small.insertion_ns_per_element must be > 0")
        rows = sort_small.get("kernels")
        if not isinstance(rows, dict) or not rows:
            fail(f"{path}: sort_small.kernels must be a non-empty object")
        for name, row in rows.items():
            if name not in KERNELS:
                fail(f"{path}: unknown sort_small kernel {name!r}")
            for key in ("ns_per_element", "speedup_vs_insertion"):
                value = row.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    fail(f"{path}: sort_small.kernels.{name}.{key} must be > 0")
    print(f"{path}: ok ({', '.join(sorted(kernels))}; isa {doc['host_isa']})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default=DEFAULT_BENCH,
                        help="path to the bench_micro binary")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the artifact")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="benchmark repetitions to average over")
    parser.add_argument("--check", nargs="?", const=DEFAULT_OUT, default=None,
                        metavar="BENCH_5.json",
                        help="validate an existing artifact instead of running")
    args = parser.parse_args()

    if args.check is not None:
        check(args.check)
        return

    merge, sort_small = run_bench(args.bench, args.repetitions)
    doc = write_artifact(args.out, host_isa(args.bench), merge, sort_small)
    print(f"wrote {args.out}")
    for name, row in doc["kernels"].items():
        print(
            f"  {name:10s} {row['key32_ns_per_element']:8.3f} ns/elem (32-bit, "
            f"{row['speedup32_vs_scalar']:.2f}x)  "
            f"{row['key64_ns_per_element']:8.3f} ns/elem (64-bit, "
            f"{row['speedup64_vs_scalar']:.2f}x)  "
            f"{row['f32_ns_per_element']:8.3f} ns/elem (f32, "
            f"{row['speedup_f32_vs_scalar']:.2f}x)"
        )
    sort_doc = doc["sort_small"]
    print(f"  sort_small grain={sort_doc['grain']} insertion "
          f"{sort_doc['insertion_ns_per_element']:.3f} ns/elem")
    for name, row in sort_doc["kernels"].items():
        print(
            f"    {name:10s} {row['ns_per_element']:8.3f} ns/elem "
            f"({row['speedup_vs_insertion']:.2f}x vs insertion)"
        )


if __name__ == "__main__":
    main()
