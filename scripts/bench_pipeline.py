#!/usr/bin/env python3
"""Runs the E18 pipeline bench and emits BENCH_9.json.

Usage:
    bench_pipeline.py [--bench PATH] [--out BENCH_9.json] [--full]
                      [extra bench flags...]
    bench_pipeline.py --check [BENCH_9.json]

The run mode drives `bench_pipeline --json <out>` (the harness itself
writes the artifact after verifying every mode's output against
std::sort) and echoes the summary lines. The artifact records three runs
of the identical checkpointed sharded external sort — serial I/O,
double-buffered, and double-buffered without intermediate checkpoints —
plus the two derived headline numbers:

    overlap_speedup          serial wall / overlapped wall
    checkpoint_overhead_pct  (overlapped - no-checkpoint) / no-checkpoint

--check validates the schema instead of running anything: all three modes
must be present with positive wall times, the block read/write counts of
serial and overlapped must be identical (double-buffering may not change
WHAT is transferred, only WHEN), the no-checkpoint run must write fewer
blocks and record exactly 1 checkpoint (the final completion manifest),
and the derived numbers must be consistent with the per-mode wall times.
Exit 0 on success, 1 with a diagnostic.
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA = "mergepath-bench-pipeline-v1"
MODES = ["serial", "overlapped", "no-checkpoint"]
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO_ROOT, "build", "bench", "bench_pipeline")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_9.json")


def fail(message):
    print(f"bench_pipeline: {message}", file=sys.stderr)
    sys.exit(1)


def run_bench(bench_path, out_path, extra):
    if not os.path.exists(bench_path):
        fail(f"bench binary not found at {bench_path} (build first, or pass --bench)")
    cmd = [bench_path, "--json", out_path] + extra
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    sys.stdout.write(proc.stdout)


def check(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for key in ("host", "n", "shards", "memory_elems", "block_bytes"):
        if not doc.get(key):
            fail(f"{path}: missing {key}")
    if not (isinstance(doc.get("realize_scale"), (int, float))
            and doc["realize_scale"] > 0):
        fail(f"{path}: realize_scale must be > 0 (else overlap is unmeasurable)")

    modes = {m.get("mode"): m for m in doc.get("modes", [])}
    if sorted(modes) != sorted(MODES):
        fail(f"{path}: modes must be exactly {MODES}, got {sorted(modes)}")
    for name, row in modes.items():
        for key in ("wall_ms", "modeled_io_us", "block_reads", "block_writes",
                    "steps", "runs_formed", "segments_merged",
                    "ranks_exchanged"):
            value = row.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{path}: modes.{name}.{key} must be > 0, got {value!r}")

    serial, overlapped, nockpt = (modes[m] for m in MODES)
    # Double-buffering changes WHEN blocks move, never WHAT moves.
    for key in ("block_reads", "block_writes", "steps", "checkpoints",
                "runs_formed", "segments_merged", "ranks_exchanged"):
        if serial[key] != overlapped[key]:
            fail(f"{path}: serial vs overlapped disagree on {key} "
                 f"({serial[key]} vs {overlapped[key]})")
    # checkpoints=false still writes the final completion manifest.
    if nockpt.get("checkpoints") != 1:
        fail(f"{path}: no-checkpoint run must record exactly 1 checkpoint, "
             f"got {nockpt.get('checkpoints')!r}")
    if overlapped["checkpoints"] <= 1:
        fail(f"{path}: checkpointed runs recorded no intermediate checkpoints")
    if nockpt["block_writes"] >= overlapped["block_writes"]:
        fail(f"{path}: no-checkpoint run must write fewer blocks "
             f"({nockpt['block_writes']} vs {overlapped['block_writes']})")

    speedup = doc.get("overlap_speedup")
    overhead = doc.get("checkpoint_overhead_pct")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        fail(f"{path}: overlap_speedup must be > 0, got {speedup!r}")
    if not isinstance(overhead, (int, float)):
        fail(f"{path}: checkpoint_overhead_pct missing")
    want = serial["wall_ms"] / overlapped["wall_ms"]
    if abs(speedup - want) > 0.02 * want:
        fail(f"{path}: overlap_speedup {speedup} inconsistent with wall "
             f"times (want {want:.4f})")
    if speedup < 0.8:
        fail(f"{path}: double-buffering lost >20% vs serial — the overlap "
             "machinery is costing more than it hides")
    print(f"{path}: ok (overlap {speedup:.2f}x, checkpoint overhead "
          f"{overhead:.1f}%)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default=DEFAULT_BENCH,
                        help="path to the bench_pipeline binary")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the artifact")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale sizes (slower)")
    parser.add_argument("--check", nargs="?", const=DEFAULT_OUT, default=None,
                        metavar="BENCH_9.json",
                        help="validate an existing artifact instead of running")
    args, extra = parser.parse_known_args()

    if args.check is not None:
        check(args.check)
        return

    if args.full:
        extra = ["--full"] + extra
    run_bench(args.bench, args.out, extra)
    check(args.out)


if __name__ == "__main__":
    main()
