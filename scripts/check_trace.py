#!/usr/bin/env python3
"""Validates the observability artifacts the library emits.

Usage:
    check_trace.py TRACE.json [--metrics METRICS.json ...] [--min-events N]
                   [--require-known-names] [--min-span-depth N]
                   [--flight] [--require-span-stats]
                   [--traceprof PROF.json ...]

TRACE.json is a Chrome/Perfetto trace_event file written by
`mpsort --trace`, a bench harness's `--trace` flag, or (with --flight) a
flight-recorder snapshot from `--flight-dump` / MP_FLIGHT_DUMP; each
--metrics argument is a metrics report written by `--metrics-json` /
`--lane-metrics`; each --traceprof argument is a `traceprof --json`
report. Checks (schema reference: docs/OBSERVABILITY.md):

  trace:   parses as JSON; has traceEvents; every event carries the
           required keys for its phase; timestamps are non-negative and
           sorted; per-thread "X" spans nest properly (no partial overlap,
           which would indicate a corrupted snapshot); otherData.clock
           names the timestamp source that stamped the file.
  flight:  with --flight, the trace must declare itself a flight-recorder
           snapshot (otherData.flight_recorder true) and carry the
           degradation reason key.
  metrics: schema tag mergepath-lane-metrics-v1; every lane row carries
           the op-count channels; the lane_time summary is present and
           self-consistent (max >= min, imbalance >= 1 when any lane
           recorded time). When span_stats is present each row's
           percentiles must be ordered (p50 <= p95 <= p99 <= max) and
           consistent with count/sum; --require-span-stats makes a
           missing or empty span_stats section a failure.
  profile: each --traceprof report must carry the
           mergepath-traceprof-v1 schema, a positive wall-clock, a
           non-empty critical path whose attributed time does not exceed
           the total, and per-worker rows whose busy/idle split is
           self-consistent.
  names:   with --require-known-names, every non-metadata event name must
           belong to the library's span taxonomy below, so a renamed or
           typo'd span fails CI instead of silently vanishing from
           dashboards.

Exit status 0 on success, 1 with a diagnostic on the first failure.
"""

import argparse
import json
import sys


# Every span/instant/counter name the library emits (docs/OBSERVABILITY.md).
# Grouped by subsystem; extend this set in the same change that adds a span.
KNOWN_NAMES = {
    # thread pool (incl. the lane-fault recovery surface)
    "pool.checkout", "pool.lane", "pool.job", "pool.barrier",
    "pool.recover", "pool.lane_fault", "pool.hedge", "pool.fallback",
    # two-array merge (core)
    "merge", "merge.partition", "merge.segment",
    # recursive splitting on the work-stealing scheduler
    "merge.rec", "sort.rec",
    # work-stealing task scheduler (sched.spawn / sched.steal are both
    # instants and counters; sched.max_depth is a counter; sched.idle wraps
    # a worker's condvar sleep)
    "sched.run", "sched.task", "sched.spawn", "sched.steal",
    "sched.max_depth", "sched.idle",
    # flight recorder: instant marking the moment recovery degraded
    "flight.degraded",
    # segmented (cache-aware) merge
    "spm", "spm.fetch", "spm.segment", "spm.segment_len", "spm.flush",
    # multiway merge
    "mwm", "mwm.select", "mwm.merge", "mwm.sort", "mwm.block",
    # in-memory merge sort
    "sort", "sort.round", "sort.round_slice", "sort.partition",
    "sort.block", "sort.copyback", "sort.round_index",
    # streaming merger
    "stream.pull", "stream.push",
    # external-memory sort (extmem)
    "xsort", "xsort.run", "xsort.pass", "xsort.merge", "xsort.retry",
    # distributed merge (dist)
    "dist.exchange", "dist.tree", "dist.gather", "dist.sort",
    "dist.segment_retry",
    # SIMT cost-model kernels (simt)
    "simt.direct", "simt.staged", "simt.sort", "simt.tile",
    "simt.blocksort", "simt.round",
    # serving layer (serve): serve.batch wraps each dispatched batch;
    # serve.reject / serve.shed / serve.merge_fallback are instants;
    # serve.request / serve.queue_wait / serve.service are
    # record_span_duration percentile names surfaced via --metrics-json
    # span_stats (listed here so the taxonomy stays one set).
    "serve.batch", "serve.request", "serve.queue_wait", "serve.service",
    "serve.reject", "serve.shed", "serve.merge_fallback",
    # crash-consistent pipeline (pipeline): pipe.sort wraps the whole
    # drive; pipe.form / pipe.segment / pipe.exchange / pipe.select /
    # pipe.checkpoint / pipe.io are phase and unit spans; pipe.crash /
    # pipe.resume / pipe.retry are instants; pipe.runs_formed /
    # pipe.segments_merged / pipe.ranks_exchanged / pipe.checkpoints /
    # pipe.crashes / pipe.resumes are counters.
    "pipe.sort", "pipe.form", "pipe.segment", "pipe.exchange",
    "pipe.select", "pipe.checkpoint", "pipe.io",
    "pipe.crash", "pipe.resume", "pipe.retry",
    "pipe.runs_formed", "pipe.segments_merged", "pipe.ranks_exchanged",
    "pipe.checkpoints", "pipe.crashes", "pipe.resumes",
}


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str, min_events: int,
                require_known_names: bool = False,
                min_span_depth: int = 0,
                flight: bool = False) -> None:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    if "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")

    other = doc.get("otherData", {})
    clock = other.get("clock")
    if not isinstance(clock, dict) or clock.get("source") not in ("tsc",
                                                                  "steady"):
        fail(f"{path}: otherData.clock missing or invalid: {clock!r}")
    if flight:
        if other.get("flight_recorder") is not True:
            fail(f"{path}: expected a flight-recorder snapshot but "
                 f"otherData.flight_recorder is {other.get('flight_recorder')!r}")
        if "reason" not in other:
            fail(f"{path}: flight snapshot missing the degradation reason")

    required = {
        "X": {"name", "ph", "ts", "dur", "pid", "tid"},
        "C": {"name", "ph", "ts", "pid", "args"},
        "i": {"name", "ph", "ts", "pid", "tid"},
        "M": {"name", "ph", "pid"},
    }
    payload = [e for e in events if e.get("ph") != "M"]
    if len(payload) < min_events:
        fail(f"{path}: {len(payload)} non-metadata events, "
             f"expected at least {min_events}")

    last_ts = {}
    spans_by_tid = {}
    for k, e in enumerate(events):
        ph = e.get("ph")
        if ph not in required:
            fail(f"{path}: event {k} has unknown phase {ph!r}")
        missing = required[ph] - set(e)
        if missing:
            fail(f"{path}: event {k} ({ph}) missing keys {sorted(missing)}")
        if ph == "M":
            continue
        ts = e["ts"]
        if ts < 0:
            fail(f"{path}: event {k} has negative ts {ts}")
        tid = e.get("tid", 0)
        if ts < last_ts.get(tid, 0):
            fail(f"{path}: event {k} breaks per-thread ts order "
                 f"({ts} after {last_ts[tid]} on tid {tid})")
        last_ts[tid] = ts
        if ph == "X":
            if e["dur"] < 0:
                fail(f"{path}: span {k} has negative dur")
            spans_by_tid.setdefault(tid, []).append((ts, ts + e["dur"],
                                                     e["name"]))

    # Spans on one thread must nest: a span starting inside another must
    # also end inside it. The exporter sorts ties parent-first, so a simple
    # stack sweep suffices. The same sweep measures the deepest nesting
    # (for --min-span-depth: a trace of a nested fork-join run must show
    # spans inside spans, or the scheduler instrumentation regressed).
    max_depth = 0
    for tid, spans in spans_by_tid.items():
        stack = []
        for begin, end, name in spans:
            while stack and begin >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1] + 1e-9:
                fail(f"{path}: span {name!r} [{begin}, {end}) on tid {tid} "
                     f"partially overlaps {stack[-1][2]!r} "
                     f"[{stack[-1][0]}, {stack[-1][1]})")
            stack.append((begin, end, name))
            max_depth = max(max_depth, len(stack))
    if min_span_depth > 0 and max_depth < min_span_depth:
        fail(f"{path}: deepest span nesting is {max_depth}, expected at "
             f"least {min_span_depth} (nested fork-join spans missing?)")

    names = sorted({e["name"] for e in payload})
    if require_known_names:
        unknown = [n for n in names if n not in KNOWN_NAMES]
        if unknown:
            fail(f"{path}: event name(s) outside the span taxonomy: "
                 f"{', '.join(unknown)} (update KNOWN_NAMES and "
                 f"docs/OBSERVABILITY.md together)")
    print(f"check_trace: {path}: OK "
          f"({len(payload)} events, {len(spans_by_tid)} thread(s), "
          f"span depth {max_depth}, "
          f"names: {', '.join(names[:12])}{'...' if len(names) > 12 else ''})")


def check_span_stats(path: str, doc: dict, required: bool) -> None:
    stats = doc.get("span_stats")
    if stats is None or not stats:
        if required:
            fail(f"{path}: span_stats missing or empty "
                 f"(--require-span-stats)")
        return
    for row in stats:
        for key in ("name", "count", "sum_ns", "p50_ns", "p95_ns",
                    "p99_ns", "max_ns"):
            if key not in row:
                fail(f"{path}: span_stats row missing {key!r}: {row}")
        if row["count"] <= 0:
            fail(f"{path}: span_stats row {row['name']!r} has count 0")
        if not (row["p50_ns"] <= row["p95_ns"] <= row["p99_ns"]
                <= row["max_ns"]):
            fail(f"{path}: span_stats row {row['name']!r} has unordered "
                 f"percentiles: {row}")
        if row["sum_ns"] < row["max_ns"]:
            fail(f"{path}: span_stats row {row['name']!r}: sum < max")
    print(f"check_trace: {path}: span_stats OK ({len(stats)} span name(s): "
          f"{', '.join(r['name'] for r in stats[:8])}"
          f"{'...' if len(stats) > 8 else ''})")


def check_metrics(path: str, require_span_stats: bool = False) -> None:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    check_span_stats(path, doc, require_span_stats)
    report = doc.get("lane_report", doc)
    if report.get("schema") != "mergepath-lane-metrics-v1":
        fail(f"{path}: bad or missing schema tag: {report.get('schema')!r}")
    for key in ("jobs", "barrier", "lanes", "lane_time"):
        if key not in report:
            fail(f"{path}: lane_report missing {key!r}")
    for key in ("waits", "wait_ns", "checkouts", "checkout_ns"):
        if key not in report["barrier"]:
            fail(f"{path}: barrier section missing {key!r}")
    if not report["lanes"]:
        fail(f"{path}: no lanes recorded anything")
    for row in report["lanes"]:
        for key in ("lane", "runs", "lane_ns", "compares", "moves",
                    "search_steps", "stages"):
            if key not in row:
                fail(f"{path}: lane row missing {key!r}: {row}")
    summary = report["lane_time"]
    for key in ("max_ns", "min_ns", "mean_ns", "imbalance"):
        if key not in summary:
            fail(f"{path}: lane_time missing {key!r}")
    if summary["max_ns"] < summary["min_ns"]:
        fail(f"{path}: lane_time max < min")
    timed = any(row["lane_ns"] > 0 for row in report["lanes"])
    if timed and summary["imbalance"] < 1.0:
        fail(f"{path}: imbalance {summary['imbalance']} < 1 with timed lanes")
    print(f"check_trace: {path}: OK ({len(report['lanes'])} lane(s), "
          f"imbalance {summary['imbalance']})")


def check_traceprof(path: str) -> None:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    if doc.get("schema") != "mergepath-traceprof-v1":
        fail(f"{path}: bad or missing schema tag: {doc.get('schema')!r}")
    if doc.get("wall_ns", 0) <= 0:
        fail(f"{path}: wall_ns must be positive: {doc.get('wall_ns')!r}")
    if doc.get("clock") not in ("tsc", "steady", "unknown"):
        fail(f"{path}: bad clock source: {doc.get('clock')!r}")
    cp = doc.get("critical_path")
    if not isinstance(cp, dict) or "total_ns" not in cp:
        fail(f"{path}: critical_path section missing")
    entries = cp.get("entries", [])
    if not entries:
        fail(f"{path}: critical path is empty (no spans attributed)")
    attributed = 0
    for entry in entries:
        for key in ("name", "ns", "segments"):
            if key not in entry:
                fail(f"{path}: critical-path entry missing {key!r}: {entry}")
        attributed += entry["ns"]
    if attributed > cp["total_ns"]:
        fail(f"{path}: critical-path entries sum to {attributed} ns > "
             f"total {cp['total_ns']} ns")
    if cp["total_ns"] > doc["wall_ns"]:
        fail(f"{path}: critical path {cp['total_ns']} ns exceeds wall "
             f"{doc['wall_ns']} ns")
    workers = doc.get("workers", [])
    if not workers:
        fail(f"{path}: no per-worker rows")
    for worker in workers:
        for key in ("tid", "busy_ns", "idle_ns", "sleep_ns", "tasks",
                    "steals", "spawns"):
            if key not in worker:
                fail(f"{path}: worker row missing {key!r}: {worker}")
        if worker["busy_ns"] + worker["idle_ns"] > doc["wall_ns"] * 1.001 + 1:
            fail(f"{path}: worker {worker['tid']}: busy+idle exceeds wall")
    print(f"check_trace: {path}: OK (critical path "
          f"{cp['total_ns']} ns across {len(entries)} span name(s), "
          f"{len(workers)} worker(s))")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--metrics", action="append", default=[],
                        help="metrics JSON report(s) to validate")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum non-metadata trace events")
    parser.add_argument("--require-known-names", action="store_true",
                        help="reject event names outside the span taxonomy")
    parser.add_argument("--min-span-depth", type=int, default=0,
                        help="minimum nesting depth the span tree must "
                             "reach (nested fork-join traces are > 1)")
    parser.add_argument("--flight", action="store_true",
                        help="require the trace to be a flight-recorder "
                             "snapshot (otherData.flight_recorder)")
    parser.add_argument("--require-span-stats", action="store_true",
                        help="fail if a --metrics report lacks span "
                             "percentiles")
    parser.add_argument("--traceprof", action="append", default=[],
                        help="traceprof --json report(s) to validate")
    args = parser.parse_args()
    check_trace(args.trace, args.min_events, args.require_known_names,
                args.min_span_depth, args.flight)
    for path in args.metrics:
        check_metrics(path, args.require_span_stats)
    for path in args.traceprof:
        check_traceprof(path)


if __name__ == "__main__":
    main()
