#!/usr/bin/env bash
# Regenerates every experiment into results/ (one .txt and one .csv per
# harness; google-benchmark binaries as .txt). Pass --full to forward the
# paper-scale flag to the harnesses.
set -u
cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
OUT=results
FULL=${1:-}
mkdir -p "$OUT"

harnesses=(fig5_speedup table_overhead table_complexity fig_cache_spm
           fig_sort table_balance table_modeled_baselines ablation_segment
           ablation_scheduler fig_hierarchy fig_hypercore table_external_io
           fig_gpu_coalescing table_sensitivity table_distributed)
for h in "${harnesses[@]}"; do
  echo "== $h"
  "$BUILD/bench/$h" $FULL          | tee "$OUT/$h.txt"   >/dev/null || exit 1
  "$BUILD/bench/$h" $FULL --csv    >    "$OUT/$h.csv"               || exit 1
done

for g in bench_baselines bench_micro; do
  echo "== $g"
  "$BUILD/bench/$g" | tee "$OUT/$g.txt" >/dev/null || exit 1
done
echo "results written to $OUT/"
