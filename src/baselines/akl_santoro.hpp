#pragma once
/// \file akl_santoro.hpp
/// Baseline S12 — Akl & Santoro's merge via recursive median partitioning
/// [5] ("Optimal Parallel Merging and Sorting Without Memory Conflicts",
/// IEEE ToC 1987), as characterised in Section V of the Merge Path paper.
///
/// Scheme: find the output median of (A, B) — the pair of positions (i, j)
/// with i + j = (|A|+|B|)/2 splitting both arrays consistently — then
/// recurse on the two halves, log2(p) rounds in total, producing 2^ceil(lg p)
/// segments that are merged sequentially in parallel. The rounds are
/// inherently sequential (a half can only be split after its parent), which
/// is where the extra log(N)·log(p) term of their complexity
/// O(N/p + log N·log p) comes from — the cost the paper's Section V
/// contrasts with Merge Path's independent, single-round partition.
///
/// The median search is the same co-rank computation as the diagonal
/// intersection (the paper notes the similarity); what differs is the
/// *dependency structure* of the searches. The instrumented run exposes
/// that: search steps here contribute to log p successive phases instead
/// of one.
///
/// For p not a power of two the 2^ceil(lg p) segments are distributed
/// round-robin over the p lanes, which degrades balance — an honest
/// property of the method, reported by experiment E7.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/sequential_merge.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::baselines {

/// One leaf segment of the recursive partition.
struct AsSegment {
  std::size_t a_begin = 0, a_end = 0;
  std::size_t b_begin = 0, b_end = 0;
  std::size_t out_begin = 0;

  std::size_t total() const { return (a_end - a_begin) + (b_end - b_begin); }
};

/// Builds the recursive median partition down to `rounds` levels (2^rounds
/// leaves). Each round's splits are computed as one parallel phase.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
std::vector<AsSegment> akl_santoro_partition(const T* a, std::size_t m,
                                             const T* b, std::size_t n,
                                             unsigned rounds,
                                             Executor exec = {},
                                             Comp comp = {},
                                             std::span<Instr> instr = {}) {
  std::vector<AsSegment> segments{AsSegment{0, m, 0, n, 0}};
  const unsigned lanes = exec.resolve_threads();
  for (unsigned r = 0; r < rounds; ++r) {
    std::vector<AsSegment> next(2 * segments.size());
    exec.resolve_pool().parallel_for_lanes(
        static_cast<unsigned>(segments.size()), [&](unsigned idx) {
          Instr* li =
              instr.empty() ? nullptr : &instr[idx % lanes];
          const AsSegment seg = segments[idx];
          const std::size_t sm = seg.a_end - seg.a_begin;
          const std::size_t sn = seg.b_end - seg.b_begin;
          const std::size_t half = (sm + sn) / 2;
          const PathPoint mid = path_point_on_diagonal(
              a + seg.a_begin, sm, b + seg.b_begin, sn, half, comp, li);
          next[2 * idx] = AsSegment{seg.a_begin, seg.a_begin + mid.i,
                                    seg.b_begin, seg.b_begin + mid.j,
                                    seg.out_begin};
          next[2 * idx + 1] =
              AsSegment{seg.a_begin + mid.i, seg.a_end, seg.b_begin + mid.j,
                        seg.b_end, seg.out_begin + half};
        });
    segments = std::move(next);
  }
  return segments;
}

/// Full Akl-Santoro merge: partition into 2^ceil(lg p) segments over
/// ceil(lg p) dependent rounds, then merge the segments with the p lanes
/// (round-robin assignment). Returns the leaf segments (for E7).
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
std::vector<AsSegment> akl_santoro_merge(const T* a, std::size_t m,
                                         const T* b, std::size_t n, T* out,
                                         Executor exec = {}, Comp comp = {},
                                         std::span<Instr> instr = {}) {
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  unsigned rounds = 0;
  while ((1u << rounds) < lanes) ++rounds;

  std::vector<AsSegment> segments =
      akl_santoro_partition(a, m, b, n, rounds, exec, comp, instr);

  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    for (std::size_t s = lane; s < segments.size(); s += lanes) {
      const AsSegment& seg = segments[s];
      const std::size_t sm = seg.a_end - seg.a_begin;
      const std::size_t sn = seg.b_end - seg.b_begin;
      std::size_t i = 0, j = 0;
      merge_steps(a + seg.a_begin, sm, b + seg.b_begin, sn, &i, &j,
                  out + seg.out_begin, sm + sn, comp, li);
    }
  });
  return segments;
}

/// Convenience vector front-end.
template <typename T, typename Comp = std::less<>>
std::vector<T> akl_santoro_merge(const std::vector<T>& a,
                                 const std::vector<T>& b, Executor exec = {},
                                 Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  akl_santoro_merge(a.data(), a.size(), b.data(), b.size(), out.data(), exec,
                    comp);
  return out;
}

}  // namespace mp::baselines
