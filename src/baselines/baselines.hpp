#pragma once
/// \file baselines.hpp
/// Umbrella header for the related-work baselines (DESIGN.md S11-S15).

#include "baselines/akl_santoro.hpp"       // IWYU pragma: export
#include "baselines/bitonic.hpp"           // IWYU pragma: export
#include "baselines/deo_sarkar.hpp"        // IWYU pragma: export
#include "baselines/naive_split.hpp"       // IWYU pragma: export
#include "baselines/radix_sort.hpp"        // IWYU pragma: export
#include "baselines/shiloach_vishkin.hpp"  // IWYU pragma: export

namespace mp::baselines {

/// Identifier list used by benches to iterate the comparable (correct)
/// parallel merge baselines.
enum class MergeAlgo {
  kMergePath,
  kShiloachVishkin,
  kAklSantoro,
  kDeoSarkar,
  kBitonic,
};

inline const char* to_string(MergeAlgo algo) {
  switch (algo) {
    case MergeAlgo::kMergePath: return "merge_path";
    case MergeAlgo::kShiloachVishkin: return "shiloach_vishkin";
    case MergeAlgo::kAklSantoro: return "akl_santoro";
    case MergeAlgo::kDeoSarkar: return "deo_sarkar";
    case MergeAlgo::kBitonic: return "bitonic";
  }
  return "unknown";
}

}  // namespace mp::baselines
