#pragma once
/// \file bitonic.hpp
/// Baseline S14 — Batcher's bitonic sorting/merging network [4], the
/// representative of the "problem-size dependent number of processors"
/// family Section V contrasts with Merge Path.
///
/// Work complexity is O(N·log^2 N) for the sort and O(N·log N) for a
/// single merge, versus the merge's lower bound of Θ(N) — the blow-up the
/// baseline comparison (E7) quantifies. The compensation is a fully
/// data-independent schedule. Stages are parallelised over the available
/// lanes (each stage's N/2 compare-exchanges are independent).
///
/// Notes: bitonic networks are not stable, and require power-of-two
/// lengths; non-power inputs are handled by padding with the minimum
/// element on the descending flank (keeps the sequence bitonic), and the
/// pad prefix is dropped on output.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "core/instrument.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::baselines {

namespace detail {

inline std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// One half-cleaner pass: for every index pair (i, i^j) with i < (i^j),
/// orders the pair ascending when (i & k) == 0 and descending otherwise
/// (k == 0 means "always ascending" — the merge network case).
template <typename T, typename Comp, typename Instr>
void bitonic_pass(T* data, std::size_t n2, std::size_t k, std::size_t j,
                  Executor exec, Comp comp, std::span<Instr> instr) {
  const unsigned lanes = exec.resolve_threads();
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    const std::size_t begin = lane * n2 / lanes;
    const std::size_t end = (lane + 1ull) * n2 / lanes;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t partner = i ^ j;
      if (partner <= i) continue;
      const bool ascending = k == 0 || (i & k) == 0;
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (li) li->compare();
      }
      if (comp(data[partner], data[i]) == ascending) {
        std::swap(data[i], data[partner]);
        if constexpr (!std::is_same_v<Instr, NoInstrument>) {
          if (li) li->move(2);
        }
      }
    }
  });
}

}  // namespace detail

/// Sorts a power-of-two-sized buffer in place with the full bitonic
/// network. Exposed for tests; general callers use bitonic_sort().
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void bitonic_sort_pow2(T* data, std::size_t n2, Executor exec = {},
                       Comp comp = {}, std::span<Instr> instr = {}) {
  MP_CHECK(n2 != 0 && (n2 & (n2 - 1)) == 0);
  for (std::size_t k = 2; k <= n2; k <<= 1)
    for (std::size_t j = k >> 1; j > 0; j >>= 1)
      detail::bitonic_pass(data, n2, k, j, exec, comp, instr);
}

/// Sorts arbitrary-length data (unstable). Pads internally to a power of
/// two using the minimum element.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void bitonic_sort(std::span<T> data, Executor exec = {}, Comp comp = {},
                  std::span<Instr> instr = {}) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::size_t n2 = detail::next_pow2(n);
  if (n2 == n) {
    bitonic_sort_pow2(data.data(), n2, exec, comp, instr);
    return;
  }
  const T pad = *std::min_element(data.begin(), data.end(), comp);
  std::vector<T> buf(n2, pad);
  std::copy(data.begin(), data.end(), buf.begin());
  bitonic_sort_pow2(buf.data(), n2, exec, comp, instr);
  std::copy(buf.begin() + static_cast<std::ptrdiff_t>(n2 - n), buf.end(),
            data.begin());
}

/// Merges two sorted arrays with the bitonic merge network (unstable,
/// O(N log N) work): concatenates A with reversed B — a bitonic sequence —
/// and runs the log2(N) half-cleaner stages.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void bitonic_merge(const T* a, std::size_t m, const T* b, std::size_t n,
                   T* out, Executor exec = {}, Comp comp = {},
                   std::span<Instr> instr = {}) {
  const std::size_t total = m + n;
  if (total == 0) return;
  if (m == 0) {
    std::copy(b, b + n, out);
    return;
  }
  if (n == 0) {
    std::copy(a, a + m, out);
    return;
  }
  const std::size_t n2 = detail::next_pow2(total);
  // Layout: [A ascending | B descending | pad descending-to-min]; the pad
  // value continues the descending flank, keeping the sequence bitonic.
  const T pad = comp(a[0], b[0]) ? a[0] : b[0];
  std::vector<T> buf(n2, pad);
  std::copy(a, a + m, buf.begin());
  std::reverse_copy(b, b + n, buf.begin() + static_cast<std::ptrdiff_t>(m));
  for (std::size_t j = n2 >> 1; j > 0; j >>= 1)
    detail::bitonic_pass(buf.data(), n2, std::size_t{0}, j, exec, comp,
                         instr);
  std::copy(buf.begin() + static_cast<std::ptrdiff_t>(n2 - total), buf.end(),
            out);
}

/// Convenience vector front-end.
template <typename T, typename Comp = std::less<>>
std::vector<T> bitonic_merge(const std::vector<T>& a, const std::vector<T>& b,
                             Executor exec = {}, Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  bitonic_merge(a.data(), a.size(), b.data(), b.size(), out.data(), exec,
                comp);
  return out;
}

}  // namespace mp::baselines
