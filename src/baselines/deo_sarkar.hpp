#pragma once
/// \file deo_sarkar.hpp
/// Baseline S13 — Deo & Sarkar's merge via multiselection [2] ("Parallel
/// algorithms for merging and sorting", Information Sciences 1991), the
/// algorithm Section V of the Merge Path paper calls "very similar" to its
/// own: p-1 equispaced output ranks are located independently (CREW), then
/// the sub-array pairs are merged sequentially in parallel.
///
/// The difference from Merge Path is the *search procedure*: instead of
/// bisecting a cross diagonal of the merge matrix, the k-th smallest
/// element of the union is found with the classic two-array selection that
/// discards ~k/2 candidates per iteration. Same O(log N) bound, different
/// constant factors and access pattern — which is precisely what the
/// partition-cost ablation (E10) and baseline comparison (E7) measure.
///
/// Tie handling matches the library convention (stable, A-priority), so
/// the split points coincide exactly with diagonal_intersection's; tests
/// assert that equivalence.

#include <cstddef>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/sequential_merge.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::baselines {

/// Finds the stable split (i, j), i + j = k, such that the prefixes
/// a[0,i) and b[0,j) are exactly the k smallest elements of the union
/// (ties favouring A). Classic halving selection: each iteration commits
/// roughly k/2 elements from one of the arrays.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
PathPoint kth_element_split(const T* a, std::size_t m, const T* b,
                            std::size_t n, std::size_t k, Comp comp = {},
                            Instr* instr = nullptr) {
  MP_CHECK(k <= m + n);
  std::size_t i = 0, j = 0;
  std::size_t remaining = k;
  while (remaining > 0) {
    if (i >= m) {
      j += remaining;
      break;
    }
    if (j >= n) {
      i += remaining;
      break;
    }
    if (remaining == 1) {
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (instr) instr->search_step();
      }
      if (!comp(b[j], a[i]))
        ++i;  // a[i] <= b[j]: stable, take A
      else
        ++j;
      break;
    }
    std::size_t ia = std::min(remaining / 2, m - i);
    if (ia == 0) ia = 1;  // m - i >= 1 here, remaining/2 >= 1
    std::size_t ib = remaining - ia;
    if (ib > n - j) {
      ib = n - j;
      ia = remaining - ib;  // fits: remaining <= (m-i) + (n-j)
    }
    MP_ASSERT(ia >= 1 && ia <= m - i && ib >= 1 && ib <= n - j);
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->search_step();
    }
    if (!comp(b[j + ib - 1], a[i + ia - 1])) {
      // a[i+ia-1] <= b[j+ib-1]: all ia elements of A stably precede the
      // b-candidate, hence lie inside the k-smallest prefix.
      i += ia;
      remaining -= ia;
    } else {
      j += ib;
      remaining -= ib;
    }
  }
  return PathPoint{i, j};
}

/// Deo-Sarkar parallel merge: p-1 independent multiselections at ranks
/// k·N/p, then p sequential merges. Output identical to the stable merge.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void deo_sarkar_merge(const T* a, std::size_t m, const T* b, std::size_t n,
                      T* out, Executor exec = {}, Comp comp = {},
                      std::span<Instr> instr = {}) {
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  const std::size_t total = m + n;

  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    const std::size_t r0 = lane * total / lanes;
    const std::size_t r1 = (lane + 1ull) * total / lanes;
    const PathPoint start = kth_element_split(a, m, b, n, r0, comp, li);
    std::size_t i = start.i;
    std::size_t j = start.j;
    merge_steps(a, m, b, n, &i, &j, out + r0, r1 - r0, comp, li);
  });
}

/// Convenience vector front-end.
template <typename T, typename Comp = std::less<>>
std::vector<T> deo_sarkar_merge(const std::vector<T>& a,
                                const std::vector<T>& b, Executor exec = {},
                                Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  deo_sarkar_merge(a.data(), a.size(), b.data(), b.size(), out.data(), exec,
                   comp);
  return out;
}

}  // namespace mp::baselines
