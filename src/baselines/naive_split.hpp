#pragma once
/// \file naive_split.hpp
/// Baseline S15 — the *incorrect* naive parallel merge from the paper's
/// introduction: partition each input into p equal contiguous chunks,
/// merge same-numbered chunk pairs independently, and concatenate.
///
/// "Unfortunately, this is incorrect. (To see this, consider the case
///  wherein all the elements of A are greater than all those of B.)"
///                                                       — Section I
///
/// The function is kept in the library deliberately: the test suite and
/// the quickstart example use it to *demonstrate* the failure mode the
/// Merge Path partition exists to solve. It produces a permutation of the
/// input that is sorted only when the chunk pairs happen to align.

#include <cstddef>
#include <functional>
#include <vector>

#include "core/sequential_merge.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::baselines {

/// The naive equal-split "merge". Output is always a permutation of the
/// union of A and B, but in general NOT sorted.
template <typename T, typename Comp = std::less<>>
void naive_split_merge(const T* a, std::size_t m, const T* b, std::size_t n,
                       T* out, Executor exec = {}, Comp comp = {}) {
  const unsigned lanes = exec.resolve_threads();
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    const std::size_t a0 = lane * m / lanes;
    const std::size_t a1 = (lane + 1ull) * m / lanes;
    const std::size_t b0 = lane * n / lanes;
    const std::size_t b1 = (lane + 1ull) * n / lanes;
    std::size_t i = 0, j = 0;
    merge_steps(a + a0, a1 - a0, b + b0, b1 - b0, &i, &j, out + a0 + b0,
                (a1 - a0) + (b1 - b0), comp);
  });
}

/// Convenience vector front-end.
template <typename T, typename Comp = std::less<>>
std::vector<T> naive_split_merge(const std::vector<T>& a,
                                 const std::vector<T>& b, Executor exec = {},
                                 Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  naive_split_merge(a.data(), a.size(), b.data(), b.size(), out.data(), exec,
                    comp);
  return out;
}

}  // namespace mp::baselines
