#pragma once
/// \file radix_sort.hpp
/// Baseline S15b — parallel LSD radix sort, the comparison-free sorting
/// family Section V's GPU discussion cites (Satish et al. [8] built their
/// GPU sorter around radix + a merge tree).
///
/// Implementation: least-significant-digit radix over 8-bit digits with
/// the classic two-phase parallel pass per digit:
///   1. each lane histograms its contiguous chunk (no communication);
///   2. an exclusive prefix over the p×256 histogram grid assigns every
///      (lane, digit) cell its disjoint output cursor;
///   3. each lane scatters its chunk — stable, because cell cursors
///      advance in input order within a lane and lanes are ordered by the
///      prefix.
/// Signed keys are handled by biasing the top byte (two's-complement
/// order == unsigned order of key XOR sign bit).
///
/// Serves the sort benchmarks as the "when comparisons are not needed"
/// counterpoint: O(N·passes) work, no comparator generality, stable.

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::baselines {

namespace detail {

/// Order-preserving map to unsigned: flip the sign bit.
inline std::uint32_t radix_key(std::int32_t v) {
  return static_cast<std::uint32_t>(v) ^ 0x80000000u;
}

}  // namespace detail

/// Stable parallel LSD radix sort of 32-bit integers.
template <typename Instr = NoInstrument>
void parallel_radix_sort(std::int32_t* data, std::size_t n,
                         Executor exec = {}, std::span<Instr> instr = {}) {
  if (n <= 1) return;
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  constexpr unsigned kPasses = 4;
  constexpr unsigned kBuckets = 256;

  std::vector<std::int32_t> scratch(n);
  std::int32_t* src = data;
  std::int32_t* dst = scratch.data();

  // p x 256 histogram/cursor grid, rebuilt per pass.
  std::vector<std::array<std::uint64_t, kBuckets>> grid(lanes);

  for (unsigned pass = 0; pass < kPasses; ++pass) {
    const unsigned shift = 8 * pass;

    exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
      auto& hist = grid[lane];
      hist.fill(0);
      const std::size_t begin = lane * n / lanes;
      const std::size_t end = (lane + 1ull) * n / lanes;
      for (std::size_t i = begin; i < end; ++i)
        ++hist[(detail::radix_key(src[i]) >> shift) & 0xffu];
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (!instr.empty()) instr[lane].move(end - begin);
      }
    });

    // Exclusive prefix in (digit-major, lane-minor) order: all of digit
    // d's output precedes digit d+1's; within a digit, lane order keeps
    // stability. Serial — 256·p cells, negligible.
    std::uint64_t running = 0;
    for (unsigned digit = 0; digit < kBuckets; ++digit) {
      for (unsigned lane = 0; lane < lanes; ++lane) {
        const std::uint64_t count = grid[lane][digit];
        grid[lane][digit] = running;
        running += count;
      }
    }
    MP_ASSERT(running == n);

    exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
      auto& cursor = grid[lane];
      const std::size_t begin = lane * n / lanes;
      const std::size_t end = (lane + 1ull) * n / lanes;
      for (std::size_t i = begin; i < end; ++i) {
        const unsigned digit =
            (detail::radix_key(src[i]) >> shift) & 0xffu;
        dst[cursor[digit]++] = src[i];
      }
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (!instr.empty()) instr[lane].move(end - begin);
      }
    });
    std::swap(src, dst);
  }
  // kPasses is even, so the result is back in `data` already.
  static_assert(kPasses % 2 == 0);
  MP_ASSERT(src == data);
}

/// Span front-end.
inline void parallel_radix_sort(std::span<std::int32_t> data,
                                Executor exec = {}) {
  parallel_radix_sort(data.data(), data.size(), exec);
}

}  // namespace mp::baselines
