#pragma once
/// \file shiloach_vishkin.hpp
/// Baseline S11 — the partitioned merge of Shiloach & Vishkin [6]
/// ("Finding the maximum, merging, and sorting in a parallel computation
/// model", J. Algorithms 1981), as characterised in Section V of the Merge
/// Path paper.
///
/// Scheme: both arrays are cut into p equal blocks; every block boundary
/// is located in the *other* array by binary search, giving 2p boundary
/// path points. The 2p-1 segments between consecutive boundary points are
/// assigned two-per-processor. Each segment spans at most one A block and
/// one B block, i.e. at most N/p elements, so a processor receives at most
/// 2N/p — the bound the paper quotes: load is balanced only *on average*
/// (N/p), and the worst case costs "a 2X increase in latency" (Section V).
/// Experiment E7 measures the realised max/mean ratio per input shape.
///
/// Tie handling follows the library convention (stable, A-priority), so
/// every boundary is a genuine merge-path point and the output equals the
/// stable merge.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/sequential_merge.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::baselines {

/// Rank of value `v` in [b, b+n): number of elements strictly less than v.
template <typename T, typename IterB, typename Comp,
          typename Instr = NoInstrument>
std::size_t rank_in(const T& v, IterB b, std::size_t n, Comp comp,
                    Instr* instr = nullptr) {
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->search_step();
    }
    if (comp(b[mid], v))
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Rank counting less-or-equal: number of elements of [a, a+m) that are
/// <= v (first index whose element is strictly greater).
template <typename T, typename IterA, typename Comp,
          typename Instr = NoInstrument>
std::size_t rank_upper_in(const T& v, IterA a, std::size_t m, Comp comp,
                          Instr* instr = nullptr) {
  std::size_t lo = 0, hi = m;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->search_step();
    }
    if (!comp(v, a[mid]))  // a[mid] <= v
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// The boundary path points (sorted by diagonal) and the per-processor
/// assigned totals of the last partition, for the balance experiment.
struct SvPartition {
  std::vector<PathPoint> points;       ///< 2p boundary points incl. ends
  std::vector<std::size_t> assigned;   ///< total elements per processor

  std::size_t max_total() const {
    std::size_t best = 0;
    for (std::size_t v : assigned) best = std::max(best, v);
    return best;
  }
};

/// Shiloach-Vishkin style parallel merge. Output layout is identical to
/// the stable merge. Returns the partition used (for E7).
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
SvPartition shiloach_vishkin_merge(const T* a, std::size_t m, const T* b,
                                   std::size_t n, T* out, Executor exec = {},
                                   Comp comp = {},
                                   std::span<Instr> instr = {}) {
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);

  SvPartition part;
  // 2p boundary points: the ends plus p-1 block boundaries per array, each
  // ranked into the other array (one independent parallel phase).
  part.points.assign(2 * lanes, PathPoint{});
  part.points[0] = PathPoint{0, 0};
  part.points[2 * lanes - 1] = PathPoint{m, n};
  if (lanes > 1) {
    exec.resolve_pool().parallel_for_lanes(
        2 * (lanes - 1), [&](unsigned idx) {
          Instr* li = instr.empty() ? nullptr : &instr[idx % lanes];
          const unsigned k = idx / 2 + 1;
          if (idx % 2 == 0) {
            // A boundary: i = k*m/p, j = #B strictly below A[i]; at i == m
            // (degenerate tiny A) every B element precedes the end.
            const std::size_t i = k * m / lanes;
            const std::size_t j =
                i < m ? rank_in(a[i], b, n, comp, li) : n;
            part.points[2 * k - 1] = PathPoint{i, j};
          } else {
            // B boundary: j = k*n/p, i = #A less-or-equal B[j] (equals go
            // to A first under the stable order).
            const std::size_t j = k * n / lanes;
            const std::size_t i =
                j < n ? rank_upper_in(b[j], a, m, comp, li) : m;
            part.points[2 * k] = PathPoint{i, j};
          }
        });
  }
  // All boundaries lie on the single merge path, so ordering by diagonal
  // (ties impossible: one path point per diagonal) restores monotonicity.
  std::sort(part.points.begin(), part.points.end(),
            [](const PathPoint& x, const PathPoint& y) {
              return x.diagonal() < y.diagonal();
            });
  MP_ASSERT(validate_partition(a, m, b, n, part.points, comp));

  // Segments between consecutive points, two per processor.
  part.assigned.assign(lanes, 0);
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    std::size_t assigned = 0;
    for (std::size_t seg = 2 * lane;
         seg < std::min<std::size_t>(2 * lane + 2, part.points.size() - 1);
         ++seg) {
      const PathPoint lo = part.points[seg];
      const PathPoint hi = part.points[seg + 1];
      const std::size_t sm = hi.i - lo.i;
      const std::size_t sn = hi.j - lo.j;
      std::size_t i = 0, j = 0;
      merge_steps(a + lo.i, sm, b + lo.j, sn, &i, &j, out + lo.diagonal(),
                  sm + sn, comp, li);
      assigned += sm + sn;
    }
    part.assigned[lane] = assigned;
  });
  return part;
}

/// Convenience vector front-end.
template <typename T, typename Comp = std::less<>>
std::vector<T> shiloach_vishkin_merge(const std::vector<T>& a,
                                      const std::vector<T>& b,
                                      Executor exec = {}, Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  shiloach_vishkin_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                         exec, comp);
  return out;
}

}  // namespace mp::baselines
