#include "cachesim/cache.hpp"

#include "util/assert.hpp"

namespace mp::cachesim {
namespace {

bool is_power_of_two(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

bool CacheConfig::valid() const {
  // Set count need not be a power of two (the index is a modulo), which
  // lets experiments sweep associativity at constant capacity — e.g. a
  // 12 KiB cache at 1/2/3/4/6 ways for the Section IV.B 3-way claim.
  return line_bytes > 0 && is_power_of_two(line_bytes) && associativity > 0 &&
         size_bytes >= static_cast<std::uint64_t>(line_bytes) * associativity &&
         size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                       associativity) ==
             0;
}

Cache::Cache(const CacheConfig& config) : config_(config) {
  MP_CHECK(config_.valid());
  ways_.resize(config_.num_sets() * config_.associativity);
}

std::uint64_t Cache::access(std::uint64_t addr, std::uint32_t bytes,
                            bool write) {
  MP_CHECK(bytes > 0);
  const std::uint64_t line = config_.line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;
  std::uint64_t misses = 0;
  for (std::uint64_t l = first; l <= last; ++l) {
    ++stats_.accesses;
    if (write)
      ++stats_.writes;
    else
      ++stats_.reads;
    const bool hit = touch_line(l, write);
    const bool shadow_hit =
        config_.classify_misses ? shadow_touch(l) : false;
    if (!hit) {
      ++stats_.misses;
      ++misses;
      if (config_.classify_misses) {
        if (!touched_.contains(l)) {
          ++stats_.compulsory_misses;
        } else if (shadow_hit) {
          ++stats_.conflict_misses;
        } else {
          ++stats_.capacity_misses;
        }
      }
    }
    if (config_.classify_misses) touched_.insert(l);
  }
  return misses;
}

bool Cache::touch_line(std::uint64_t line_addr, bool /*write*/) {
  const std::uint64_t sets = config_.num_sets();
  const std::uint64_t set = line_addr % sets;
  const std::uint64_t tag = line_addr / sets;
  Way* base = &ways_[set * config_.associativity];
  ++tick_;

  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  if (victim->valid) ++stats_.evictions;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

bool Cache::shadow_touch(std::uint64_t line_addr) {
  auto it = shadow_map_.find(line_addr);
  if (it != shadow_map_.end()) {
    shadow_lru_.splice(shadow_lru_.begin(), shadow_lru_, it->second);
    return true;
  }
  shadow_lru_.push_front(line_addr);
  shadow_map_[line_addr] = shadow_lru_.begin();
  if (shadow_lru_.size() > config_.num_lines()) {
    shadow_map_.erase(shadow_lru_.back());
    shadow_lru_.pop_back();
  }
  return false;
}

void Cache::reset() {
  for (Way& way : ways_) way = Way{};
  tick_ = 0;
  stats_ = CacheStats{};
  touched_.clear();
  shadow_lru_.clear();
  shadow_map_.clear();
}

void Cache::reset_stats() { stats_ = CacheStats{}; }

}  // namespace mp::cachesim
