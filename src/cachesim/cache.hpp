#pragma once
/// \file cache.hpp
/// Set-associative LRU cache simulator.
///
/// Substrate for the Section IV experiments (DESIGN.md S10, E4/E5): the
/// paper's cache claims — Algorithm 2's working set stays resident, and
/// "3-way associativity suffices to guarantee collision freedom" — are
/// about hit/miss behaviour, which this model measures exactly without
/// needing hardware performance counters.
///
/// Misses are classified three ways, in the standard manner:
///  - compulsory: the line was never touched before;
///  - conflict:   a same-capacity fully-associative LRU cache (simulated in
///                shadow) would have hit;
///  - capacity:   everything else.

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mp::cachesim {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;  ///< ways per set
  bool classify_misses = true;      ///< maintain the shadow FA cache

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const {
    const std::uint64_t lines = num_lines();
    return associativity == 0 ? 0 : lines / associativity;
  }
  bool valid() const;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t misses = 0;
  std::uint64_t compulsory_misses = 0;
  std::uint64_t conflict_misses = 0;
  std::uint64_t capacity_misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t hits() const { return accesses - misses; }
  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// One cache level with LRU replacement. Addresses are raw byte addresses
/// (callers lay out virtual arrays; see traced_merge.hpp).
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Accesses `bytes` bytes starting at `addr` (may span lines). Returns
  /// the number of line misses incurred.
  std::uint64_t access(std::uint64_t addr, std::uint32_t bytes, bool write);

  std::uint64_t read(std::uint64_t addr, std::uint32_t bytes) {
    return access(addr, bytes, false);
  }
  std::uint64_t write(std::uint64_t addr, std::uint32_t bytes) {
    return access(addr, bytes, true);
  }

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

  /// Clears contents, the shadow cache, the first-touch set and statistics.
  void reset();
  /// Clears statistics only; contents stay warm.
  void reset_stats();

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< last-use timestamp
    bool valid = false;
  };

  bool touch_line(std::uint64_t line_addr, bool write);
  bool shadow_touch(std::uint64_t line_addr);

  CacheConfig config_;
  std::vector<Way> ways_;  ///< num_sets x associativity, row-major
  std::uint64_t tick_ = 0;
  CacheStats stats_;

  // Miss classification state.
  std::unordered_set<std::uint64_t> touched_;         // ever-seen lines
  std::list<std::uint64_t> shadow_lru_;               // FA shadow, MRU front
  std::unordered_map<std::uint64_t,
                     std::list<std::uint64_t>::iterator>
      shadow_map_;
};

}  // namespace mp::cachesim
