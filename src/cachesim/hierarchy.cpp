#include "cachesim/hierarchy.hpp"

#include "util/assert.hpp"

namespace mp::cachesim {

HierarchyConfig HierarchyConfig::paper_x5670(std::uint64_t shared_bytes) {
  HierarchyConfig config;
  config.l1.size_bytes = 32u << 10;
  config.l1.line_bytes = 64;
  config.l1.associativity = 8;
  config.l1.classify_misses = false;  // per-lane shadow caches add little
  config.shared.size_bytes = shared_bytes;
  config.shared.line_bytes = 64;
  config.shared.associativity = 16;
  config.shared.classify_misses = true;
  return config;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config, unsigned lanes)
    : shared_(config.shared) {
  MP_CHECK(lanes >= 1);
  l1_.reserve(lanes);
  for (unsigned i = 0; i < lanes; ++i) l1_.emplace_back(config.l1);
}

void CacheHierarchy::access(unsigned lane, std::uint64_t addr,
                            std::uint32_t bytes, bool is_write) {
  MP_CHECK(lane < l1_.size());
  const std::uint64_t l1_misses = l1_[lane].access(addr, bytes, is_write);
  // Only L1 line misses propagate (whole lines; the line count IS the
  // access count at the next level).
  if (l1_misses > 0) {
    const std::uint32_t line = l1_[lane].config().line_bytes;
    // Refill each missed line from the shared level.
    const std::uint64_t first = addr / line;
    const std::uint64_t last = (addr + bytes - 1) / line;
    for (std::uint64_t l = first; l <= last; ++l)
      shared_.access(l * line, line, is_write);
  }
}

HierarchyStats CacheHierarchy::stats() const {
  HierarchyStats out;
  for (const Cache& c : l1_) {
    const CacheStats& s = c.stats();
    out.l1.accesses += s.accesses;
    out.l1.reads += s.reads;
    out.l1.writes += s.writes;
    out.l1.misses += s.misses;
    out.l1.compulsory_misses += s.compulsory_misses;
    out.l1.conflict_misses += s.conflict_misses;
    out.l1.capacity_misses += s.capacity_misses;
    out.l1.evictions += s.evictions;
  }
  out.shared = shared_.stats();
  return out;
}

}  // namespace mp::cachesim
