#pragma once
/// \file hierarchy.hpp
/// Two-level cache hierarchy: private per-lane L1 caches over a shared
/// last-level cache — the x86 shape of the paper's Section VI testbed
/// (private 32 KiB L1d per core, shared L3), as opposed to the shared
/// simple cache of the Hypercore/PRAM discussion.
///
/// Coherence: the merge algorithms write disjoint output regions and only
/// share read-only inputs, so no invalidation traffic is modelled — which
/// is itself one of the paper's selling points (no inter-core
/// communication). The hierarchy counts, per level, the same hit/miss
/// statistics as the single-level simulator.

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"

namespace mp::cachesim {

struct HierarchyConfig {
  CacheConfig l1;      ///< geometry of EACH private L1
  CacheConfig shared;  ///< geometry of the shared LLC

  /// The paper machine's shape: 32 KiB 8-way private L1d, 12 MiB 16-way
  /// shared L3 (scaled variants are often more useful in experiments —
  /// pass a smaller shared size for tractable inputs).
  static HierarchyConfig paper_x5670(std::uint64_t shared_bytes = 12u << 20);
};

struct HierarchyStats {
  CacheStats l1;      ///< aggregated over all private L1s
  CacheStats shared;  ///< the LLC (sees only L1 misses)

  /// Accesses that missed every level (DRAM traffic).
  std::uint64_t dram_accesses() const { return shared.misses; }
};

/// Private-L1s + shared-LLC memory model, pluggable into the lockstep
/// kernels (read/write take the issuing lane).
class CacheHierarchy {
 public:
  CacheHierarchy(const HierarchyConfig& config, unsigned lanes);

  void read(unsigned lane, std::uint64_t addr, std::uint32_t bytes) {
    access(lane, addr, bytes, false);
  }
  void write(unsigned lane, std::uint64_t addr, std::uint32_t bytes) {
    access(lane, addr, bytes, true);
  }
  void access(unsigned lane, std::uint64_t addr, std::uint32_t bytes,
              bool is_write);

  HierarchyStats stats() const;
  unsigned lanes() const { return static_cast<unsigned>(l1_.size()); }

 private:
  std::vector<Cache> l1_;
  Cache shared_;
};

/// Adapter making a single shared Cache usable as a lockstep Memory (all
/// lanes hit the same cache — the CREW-PRAM / Hypercore shape).
struct SharedCacheMemory {
  Cache& cache;
  void read(unsigned, std::uint64_t addr, std::uint32_t bytes) {
    cache.read(addr, bytes);
  }
  void write(unsigned, std::uint64_t addr, std::uint32_t bytes) {
    cache.write(addr, bytes);
  }
};

}  // namespace mp::cachesim
