#pragma once
/// \file lockstep.hpp
/// Memory-model-generic lockstep merge kernels.
///
/// The traced algorithms (trace_*_merge) are written once here as
/// templates over a Memory policy:
///
///   struct Memory {
///     void read(unsigned lane, std::uint64_t addr, std::uint32_t bytes);
///     void write(unsigned lane, std::uint64_t addr, std::uint32_t bytes);
///   };
///
/// Two instantiations exist: a single shared cache (all lanes hit the same
/// Cache — the CREW-PRAM/Hypercore shape, traced_merge.cpp) and a
/// private-L1 + shared-LLC hierarchy (the x86 shape, hierarchy.hpp). The
/// PRAM-style interleaving — every simulated core performs one step per
/// global cycle, round-robin — is the same for both.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace mp::cachesim::detail {

constexpr std::uint32_t kElemBytes = 4;

/// Lockstep binary searches: one search per lane, all advancing one probe
/// per cycle. Indices are window-relative; addr_/val_ translate them.
struct LockstepSearch {
  struct Lane {
    std::size_t lo = 0, hi = 0, diag = 0;
  };
  std::vector<Lane> lanes;

  template <typename Mem, typename AddrA, typename AddrB, typename ValA,
            typename ValB>
  std::uint64_t run(Mem& mem, AddrA addr_a, AddrB addr_b, ValA val_a,
                    ValB val_b) {
    std::uint64_t cycles = 0;
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t k = 0; k < lanes.size(); ++k) {
        Lane& lane = lanes[k];
        if (lane.lo >= lane.hi) continue;
        const std::size_t mid = lane.lo + (lane.hi - lane.lo) / 2;
        const std::size_t bj = lane.diag - mid - 1;
        mem.read(static_cast<unsigned>(k), addr_a(mid), kElemBytes);
        mem.read(static_cast<unsigned>(k), addr_b(bj), kElemBytes);
        if (!(val_b(bj) < val_a(mid)))
          lane.lo = mid + 1;
        else
          lane.hi = mid;
        any = true;
      }
      if (any) ++cycles;
    }
    return cycles;
  }
};

/// Lockstep bounded merges: one output element per lane per cycle.
struct LockstepMerge {
  struct Lane {
    std::size_t i = 0, j = 0;  // window-relative positions
    std::size_t out = 0;       // absolute output element index
    std::size_t left = 0;      // remaining steps
  };
  std::vector<Lane> lanes;

  template <typename Mem, typename AddrA, typename AddrB, typename AddrOut,
            typename ValA, typename ValB>
  std::uint64_t run(Mem& mem, std::size_t win_a, std::size_t win_b,
                    AddrA addr_a, AddrB addr_b, AddrOut addr_out, ValA val_a,
                    ValB val_b) {
    std::uint64_t cycles = 0;
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t k = 0; k < lanes.size(); ++k) {
        Lane& lane = lanes[k];
        if (lane.left == 0) continue;
        const auto lane_id = static_cast<unsigned>(k);
        const bool has_a = lane.i < win_a;
        const bool has_b = lane.j < win_b;
        MP_ASSERT(has_a || has_b);
        bool take_b;
        if (has_a && has_b) {
          mem.read(lane_id, addr_a(lane.i), kElemBytes);
          mem.read(lane_id, addr_b(lane.j), kElemBytes);
          take_b = val_b(lane.j) < val_a(lane.i);
        } else if (has_a) {
          mem.read(lane_id, addr_a(lane.i), kElemBytes);
          take_b = false;
        } else {
          mem.read(lane_id, addr_b(lane.j), kElemBytes);
          take_b = true;
        }
        if (take_b)
          ++lane.j;
        else
          ++lane.i;
        mem.write(lane_id, addr_out(lane.out), kElemBytes);
        ++lane.out;
        --lane.left;
        any = true;
      }
      if (any) ++cycles;
    }
    return cycles;
  }
};

/// Full Algorithm 1 trace: lockstep partition searches, then lockstep
/// merges. Returns simulated cycles.
template <typename Mem>
std::uint64_t run_parallel_merge_trace(Mem& mem,
                                       const std::vector<std::int32_t>& a,
                                       const std::vector<std::int32_t>& b,
                                       unsigned lanes, std::uint64_t a_base,
                                       std::uint64_t b_base,
                                       std::uint64_t out_base) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t total = m + n;
  std::uint64_t cycles = 0;

  auto addr_a = [&](std::size_t i) { return a_base + i * kElemBytes; };
  auto addr_b = [&](std::size_t j) { return b_base + j * kElemBytes; };
  auto addr_out = [&](std::size_t o) { return out_base + o * kElemBytes; };
  auto val_a = [&](std::size_t i) { return a[i]; };
  auto val_b = [&](std::size_t j) { return b[j]; };

  LockstepSearch search;
  search.lanes.resize(lanes);
  for (unsigned k = 0; k < lanes; ++k) {
    const std::size_t diag = k * total / lanes;
    search.lanes[k].diag = diag;
    search.lanes[k].lo = diag > n ? diag - n : 0;
    search.lanes[k].hi = diag < m ? diag : m;
  }
  cycles += search.run(mem, addr_a, addr_b, val_a, val_b);

  LockstepMerge merge;
  merge.lanes.resize(lanes);
  for (unsigned k = 0; k < lanes; ++k) {
    const std::size_t diag = k * total / lanes;
    merge.lanes[k].i = search.lanes[k].lo;
    merge.lanes[k].j = diag - search.lanes[k].lo;
    merge.lanes[k].out = diag;
    merge.lanes[k].left = (k + 1ull) * total / lanes - diag;
  }
  cycles += merge.run(mem, m, n, addr_a, addr_b, addr_out, val_a, val_b);
  return cycles;
}

/// Windowed segmented trace (Algorithm 2's path segmentation applied to
/// the source arrays in place). Returns simulated cycles.
template <typename Mem>
std::uint64_t run_segmented_merge_trace(Mem& mem,
                                        const std::vector<std::int32_t>& a,
                                        const std::vector<std::int32_t>& b,
                                        unsigned lanes,
                                        std::size_t segment_length,
                                        std::uint64_t a_base,
                                        std::uint64_t b_base,
                                        std::uint64_t out_base) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t total = m + n;
  const std::size_t L = segment_length;
  std::uint64_t cycles = 0;

  std::size_t a_done = 0, b_done = 0, out_pos = 0;
  while (out_pos < total) {
    const std::size_t seg = std::min(L, total - out_pos);
    const std::size_t win_a = std::min(L, m - a_done);
    const std::size_t win_b = std::min(L, n - b_done);

    auto addr_a = [&](std::size_t i) {
      return a_base + (a_done + i) * kElemBytes;
    };
    auto addr_b = [&](std::size_t j) {
      return b_base + (b_done + j) * kElemBytes;
    };
    auto addr_out = [&](std::size_t o) {
      return out_base + o * kElemBytes;
    };
    auto val_a = [&](std::size_t i) { return a[a_done + i]; };
    auto val_b = [&](std::size_t j) { return b[b_done + j]; };

    LockstepSearch search;
    search.lanes.resize(lanes);
    for (unsigned k = 0; k < lanes; ++k) {
      const std::size_t diag = k * seg / lanes;
      search.lanes[k].diag = diag;
      search.lanes[k].lo = diag > win_b ? diag - win_b : 0;
      search.lanes[k].hi = diag < win_a ? diag : win_a;
    }
    cycles += search.run(mem, addr_a, addr_b, val_a, val_b);

    LockstepMerge merge;
    merge.lanes.resize(lanes);
    for (unsigned k = 0; k < lanes; ++k) {
      const std::size_t diag = k * seg / lanes;
      merge.lanes[k].i = search.lanes[k].lo;
      merge.lanes[k].j = diag - search.lanes[k].lo;
      merge.lanes[k].out = out_pos + diag;
      merge.lanes[k].left = (k + 1ull) * seg / lanes - diag;
    }
    cycles +=
        merge.run(mem, win_a, win_b, addr_a, addr_b, addr_out, val_a, val_b);

    std::size_t a_used = 0, b_used = 0;
    for (unsigned k = 0; k < lanes; ++k) {
      const std::size_t diag = k * seg / lanes;
      a_used += merge.lanes[k].i - search.lanes[k].lo;
      b_used += merge.lanes[k].j - (diag - search.lanes[k].lo);
    }
    a_done += a_used;
    b_done += b_used;
    out_pos += seg;
  }
  return cycles;
}

}  // namespace mp::cachesim::detail
