#include "cachesim/traced_merge.hpp"

#include <algorithm>

#include "cachesim/lockstep.hpp"
#include "util/assert.hpp"

namespace mp::cachesim {
namespace {

using detail::kElemBytes;
using detail::LockstepMerge;
using detail::LockstepSearch;

}  // namespace

TraceResult trace_sequential_merge(const std::vector<std::int32_t>& a,
                                   const std::vector<std::int32_t>& b,
                                   const MergeLayout& layout, Cache& cache) {
  return trace_parallel_merge(a, b, 1, layout, cache);
}

TraceResult trace_parallel_merge(const std::vector<std::int32_t>& a,
                                 const std::vector<std::int32_t>& b,
                                 unsigned lanes, const MergeLayout& layout,
                                 Cache& cache) {
  MP_CHECK(lanes >= 1);
  SharedCacheMemory mem{cache};
  TraceResult result;
  result.cycles = detail::run_parallel_merge_trace(
      mem, a, b, lanes, layout.a_base, layout.b_base, layout.out_base);
  result.stats = cache.stats();
  return result;
}

TraceResult trace_segmented_merge(const std::vector<std::int32_t>& a,
                                  const std::vector<std::int32_t>& b,
                                  unsigned lanes, std::size_t segment_length,
                                  const MergeLayout& layout, Cache& cache) {
  MP_CHECK(lanes >= 1 && segment_length >= 1);
  SharedCacheMemory mem{cache};
  TraceResult result;
  result.cycles = detail::run_segmented_merge_trace(
      mem, a, b, lanes, segment_length, layout.a_base, layout.b_base,
      layout.out_base);
  result.stats = cache.stats();
  return result;
}

TraceResult trace_sort_rounds(const std::vector<std::int32_t>& values,
                              unsigned lanes, std::size_t block_elems,
                              std::size_t segment_length,
                              const MergeLayout& layout, Cache& cache) {
  MP_CHECK(lanes >= 1 && block_elems >= 1);
  const std::size_t n = values.size();
  TraceResult result;

  // Sorted blocks (in-memory; the block-sort traffic is identical for
  // both sort variants and is therefore outside this comparison).
  struct Block {
    std::size_t begin, end;
  };
  std::vector<Block> blocks;
  std::vector<std::int32_t> data = values;
  for (std::size_t begin = 0; begin < n; begin += block_elems) {
    const std::size_t end = std::min(begin + block_elems, n);
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(begin),
              data.begin() + static_cast<std::ptrdiff_t>(end));
    blocks.push_back({begin, end});
  }

  // Merge tree: each round's pairs alternate between the two virtual
  // buffers (src rounds even at layout.a_base-side, dst at out_base),
  // mirroring the real ping-pong. Addresses: element e of the current
  // source buffer lives at src_base + e*4.
  std::uint64_t src_base = layout.a_base;
  std::uint64_t dst_base = layout.out_base;
  while (blocks.size() > 1) {
    std::vector<Block> next;
    for (std::size_t t = 0; 2 * t < blocks.size(); ++t) {
      const Block a = blocks[2 * t];
      if (2 * t + 1 >= blocks.size()) {
        // Unpaired trailing block: traced copy to the other buffer.
        for (std::size_t e = a.begin; e < a.end; ++e) {
          cache.read(src_base + e * 4, 4);
          cache.write(dst_base + e * 4, 4);
          ++result.cycles;
        }
        next.push_back(a);
        continue;
      }
      const Block b = blocks[2 * t + 1];
      const std::vector<std::int32_t> lhs(
          data.begin() + static_cast<std::ptrdiff_t>(a.begin),
          data.begin() + static_cast<std::ptrdiff_t>(a.end));
      const std::vector<std::int32_t> rhs(
          data.begin() + static_cast<std::ptrdiff_t>(b.begin),
          data.begin() + static_cast<std::ptrdiff_t>(b.end));
      SharedCacheMemory mem{cache};
      if (segment_length == 0) {
        result.cycles += detail::run_parallel_merge_trace(
            mem, lhs, rhs, lanes, src_base + a.begin * 4,
            src_base + b.begin * 4, dst_base + a.begin * 4);
      } else {
        result.cycles += detail::run_segmented_merge_trace(
            mem, lhs, rhs, lanes, segment_length, src_base + a.begin * 4,
            src_base + b.begin * 4, dst_base + a.begin * 4);
      }
      // Keep the data itself merged so later rounds trace real paths.
      std::merge(lhs.begin(), lhs.end(), rhs.begin(), rhs.end(),
                 data.begin() + static_cast<std::ptrdiff_t>(a.begin));
      next.push_back({a.begin, b.end});
    }
    blocks = std::move(next);
    std::swap(src_base, dst_base);
  }
  result.stats = cache.stats();
  return result;
}

HierTraceResult trace_parallel_merge_hier(const std::vector<std::int32_t>& a,
                                          const std::vector<std::int32_t>& b,
                                          unsigned lanes,
                                          const MergeLayout& layout,
                                          CacheHierarchy& hierarchy) {
  MP_CHECK(lanes >= 1 && lanes <= hierarchy.lanes());
  HierTraceResult result;
  result.cycles = detail::run_parallel_merge_trace(
      hierarchy, a, b, lanes, layout.a_base, layout.b_base, layout.out_base);
  result.stats = hierarchy.stats();
  return result;
}

HierTraceResult trace_segmented_merge_hier(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b,
    unsigned lanes, std::size_t segment_length, const MergeLayout& layout,
    CacheHierarchy& hierarchy) {
  MP_CHECK(lanes >= 1 && lanes <= hierarchy.lanes());
  HierTraceResult result;
  result.cycles = detail::run_segmented_merge_trace(
      hierarchy, a, b, lanes, segment_length, layout.a_base, layout.b_base,
      layout.out_base);
  result.stats = hierarchy.stats();
  return result;
}

TraceResult trace_segmented_staged_merge(const std::vector<std::int32_t>& a,
                                         const std::vector<std::int32_t>& b,
                                         unsigned lanes,
                                         std::size_t segment_length,
                                         const MergeLayout& layout,
                                         std::uint64_t stage_base,
                                         Cache& cache) {
  MP_CHECK(lanes >= 1 && segment_length >= 1);
  SharedCacheMemory mem{cache};
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t total = m + n;
  const std::size_t L = segment_length;
  TraceResult result;

  // Staging layout: [ring A | ring B | segment out], L elements each — the
  // 3L = C working set of Algorithm 2.
  const std::uint64_t ring_a = stage_base;
  const std::uint64_t ring_b = stage_base + L * kElemBytes;
  const std::uint64_t seg_out = stage_base + 2 * L * kElemBytes;

  std::size_t a_done = 0, b_done = 0, out_pos = 0;
  std::size_t a_staged = 0, b_staged = 0;
  while (out_pos < total) {
    // Step 1 (serial, attributed to lane 0): refill the rings.
    const std::size_t want_a = std::min(L, m - a_done);
    while (a_staged - a_done < want_a) {
      mem.read(0, layout.a_base + a_staged * kElemBytes, kElemBytes);
      mem.write(0, ring_a + (a_staged % L) * kElemBytes, kElemBytes);
      ++a_staged;
      ++result.cycles;
    }
    const std::size_t want_b = std::min(L, n - b_done);
    while (b_staged - b_done < want_b) {
      mem.read(0, layout.b_base + b_staged * kElemBytes, kElemBytes);
      mem.write(0, ring_b + (b_staged % L) * kElemBytes, kElemBytes);
      ++b_staged;
      ++result.cycles;
    }

    const std::size_t seg = std::min(L, total - out_pos);
    const std::size_t win_a = a_staged - a_done;
    const std::size_t win_b = b_staged - b_done;

    auto addr_a = [&](std::size_t i) {
      return ring_a + ((a_done + i) % L) * kElemBytes;
    };
    auto addr_b = [&](std::size_t j) {
      return ring_b + ((b_done + j) % L) * kElemBytes;
    };
    auto addr_seg = [&](std::size_t o) {
      return seg_out + (o - out_pos) * kElemBytes;
    };
    auto val_a = [&](std::size_t i) { return a[a_done + i]; };
    auto val_b = [&](std::size_t j) { return b[b_done + j]; };

    // Step 2: lockstep partition + merge into the staging output.
    LockstepSearch search;
    search.lanes.resize(lanes);
    for (unsigned k = 0; k < lanes; ++k) {
      const std::size_t diag = k * seg / lanes;
      search.lanes[k].diag = diag;
      search.lanes[k].lo = diag > win_b ? diag - win_b : 0;
      search.lanes[k].hi = diag < win_a ? diag : win_a;
    }
    result.cycles += search.run(mem, addr_a, addr_b, val_a, val_b);

    LockstepMerge merge;
    merge.lanes.resize(lanes);
    for (unsigned k = 0; k < lanes; ++k) {
      const std::size_t diag = k * seg / lanes;
      merge.lanes[k].i = search.lanes[k].lo;
      merge.lanes[k].j = diag - search.lanes[k].lo;
      merge.lanes[k].out = out_pos + diag;
      merge.lanes[k].left = (k + 1ull) * seg / lanes - diag;
    }
    result.cycles += merge.run(mem, win_a, win_b, addr_a, addr_b, addr_seg,
                               val_a, val_b);

    std::size_t a_used = 0, b_used = 0;
    for (unsigned k = 0; k < lanes; ++k) {
      const std::size_t diag = k * seg / lanes;
      a_used += merge.lanes[k].i - search.lanes[k].lo;
      b_used += merge.lanes[k].j - (diag - search.lanes[k].lo);
    }
    a_done += a_used;
    b_done += b_used;

    // Step 3: lockstep write-back of the merged segment to memory.
    {
      std::vector<std::size_t> pos(lanes), end(lanes);
      for (unsigned k = 0; k < lanes; ++k) {
        pos[k] = k * seg / lanes;
        end[k] = (k + 1ull) * seg / lanes;
      }
      bool any = true;
      while (any) {
        any = false;
        for (unsigned k = 0; k < lanes; ++k) {
          if (pos[k] >= end[k]) continue;
          mem.read(k, seg_out + pos[k] * kElemBytes, kElemBytes);
          mem.write(k, layout.out_base + (out_pos + pos[k]) * kElemBytes,
                    kElemBytes);
          ++pos[k];
          any = true;
        }
        if (any) ++result.cycles;
      }
    }
    out_pos += seg;
  }
  result.stats = cache.stats();
  return result;
}

}  // namespace mp::cachesim
