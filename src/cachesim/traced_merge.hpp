#pragma once
/// \file traced_merge.hpp
/// Trace-driven merge kernels: the library's merge algorithms re-expressed
/// as explicit memory-access sequences fed to the cache simulator.
///
/// Parallel execution on a shared cache is emulated in PRAM-style lockstep:
/// each simulated core performs one step of its work per global cycle,
/// round-robin, which is the access interleaving a CREW PRAM (and,
/// approximately, an SMT/multi-core sharing a cache level) produces. All
/// kernels operate on *virtual* base addresses chosen by the experiment, so
/// array placement — which determines conflict behaviour — is a controlled
/// variable (experiment E5 aligns A, B and S to the same set index to
/// reproduce the worst case behind the paper's 3-way-associativity remark).
///
/// Kernels:
///  - trace_sequential_merge():  single core, plain merge.
///  - trace_parallel_merge():    Algorithm 1, p cores in lockstep.
///  - trace_segmented_merge():   the merge path processed in L-length
///    segments, all cores in lockstep inside a segment ("windowed" SPM:
///    operates on the source arrays in place — the variant whose working
///    set is three L-long windows, the shape the associativity claim is
///    about).
///  - trace_segmented_staged_merge(): full Algorithm 2 with cyclic staging
///    buffers placed at a caller-chosen address.
///
/// Element values are required (not just sizes) because the merge path —
/// and therefore the address sequence — is data-dependent.

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"

namespace mp::cachesim {

/// Virtual placement of the three arrays of a merge. Sizes are element
/// counts of the int32 workload arrays.
struct MergeLayout {
  std::uint64_t a_base = 0;
  std::uint64_t b_base = 0;
  std::uint64_t out_base = 0;
  static constexpr std::uint32_t kElem = 4;
};

/// Result of a traced run: simulator stats captured after the run plus the
/// number of simulated "cycles" (lockstep rounds), a crude time proxy.
struct TraceResult {
  CacheStats stats;
  std::uint64_t cycles = 0;
};

TraceResult trace_sequential_merge(const std::vector<std::int32_t>& a,
                                   const std::vector<std::int32_t>& b,
                                   const MergeLayout& layout, Cache& cache);

TraceResult trace_parallel_merge(const std::vector<std::int32_t>& a,
                                 const std::vector<std::int32_t>& b,
                                 unsigned lanes, const MergeLayout& layout,
                                 Cache& cache);

TraceResult trace_segmented_merge(const std::vector<std::int32_t>& a,
                                  const std::vector<std::int32_t>& b,
                                  unsigned lanes, std::size_t segment_length,
                                  const MergeLayout& layout, Cache& cache);

TraceResult trace_segmented_staged_merge(const std::vector<std::int32_t>& a,
                                         const std::vector<std::int32_t>& b,
                                         unsigned lanes,
                                         std::size_t segment_length,
                                         const MergeLayout& layout,
                                         std::uint64_t stage_base,
                                         Cache& cache);

/// Traced merge-sort rounds (experiment E6's cache angle): the input is
/// block-sorted in memory (identical work for both variants, not traced),
/// then the binary merge tree is traced round by round on `cache` — each
/// pair merged with the basic parallel algorithm when segment_length == 0,
/// or with the windowed segmented algorithm (L = segment_length)
/// otherwise. This isolates exactly the traffic Section IV.C's
/// cache-efficient sort changes: the merge rounds.
TraceResult trace_sort_rounds(const std::vector<std::int32_t>& values,
                              unsigned lanes, std::size_t block_elems,
                              std::size_t segment_length,
                              const MergeLayout& layout, Cache& cache);

/// Hierarchy variants: the same traced algorithms on private per-lane L1s
/// over a shared LLC (the x86 shape; see hierarchy.hpp). The hierarchy
/// must have been constructed with at least `lanes` lanes.
struct HierTraceResult {
  HierarchyStats stats;
  std::uint64_t cycles = 0;
};

HierTraceResult trace_parallel_merge_hier(const std::vector<std::int32_t>& a,
                                          const std::vector<std::int32_t>& b,
                                          unsigned lanes,
                                          const MergeLayout& layout,
                                          CacheHierarchy& hierarchy);

HierTraceResult trace_segmented_merge_hier(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b,
    unsigned lanes, std::size_t segment_length, const MergeLayout& layout,
    CacheHierarchy& hierarchy);

}  // namespace mp::cachesim
