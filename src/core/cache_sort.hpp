#pragma once
/// \file cache_sort.hpp
/// Cache-efficient parallel sort — Section IV.C of the paper.
///
/// Stage 1: partition the unsorted input into equisized blocks whose size is
/// a fraction of the cache capacity C, and sort the blocks one after the
/// other, each with the (in-cache) parallel merge sort on all p lanes
/// (Fig. 4 of the paper).
///
/// Stage 2: a binary tree of merge rounds; every pair of sorted blocks is
/// merged with the cache-efficient Segmented Parallel Merge (Algorithm 2),
/// one pair at a time, all p lanes cooperating inside each pair.
///
/// Complexity (paper): O(N/p·log N + N/C·log p·log C) time.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_sort.hpp"
#include "core/segmented_merge.hpp"
#include "util/assert.hpp"
#include "util/hw.hpp"
#include "util/threading.hpp"

namespace mp {

struct CacheSortConfig {
  /// Cache capacity in bytes the working set should fit; 0 = host L1d.
  std::size_t cache_bytes = 0;
  /// Fraction of the cache one block may occupy in stage 1. A block is
  /// sorted out-of-place (block + scratch), so 1/2 keeps the working set
  /// within the cache.
  double block_fraction = 0.5;
  /// Configuration forwarded to the stage-2 segmented merges. Its
  /// cache_bytes defaults to this struct's value when left at 0.
  SegmentedConfig merge;

  template <typename T>
  std::size_t resolve_block_elems() const {
    const std::size_t bytes =
        cache_bytes > 0 ? cache_bytes : host_info().l1d_bytes();
    auto elems = static_cast<std::size_t>(
        static_cast<double>(bytes / sizeof(T)) * block_fraction);
    return elems >= 2 ? elems : 2;
  }
};

/// Sorts [data, data+n) stably. `instr` (optional, per lane) accumulates
/// operation counts over both stages.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void cache_efficient_parallel_sort(T* data, std::size_t n,
                                   CacheSortConfig config = {},
                                   Executor exec = {}, Comp comp = {},
                                   std::span<Instr> instr = {}) {
  if (n <= 1) return;
  const std::size_t block = config.resolve_block_elems<T>();
  SegmentedConfig merge_cfg = config.merge;
  if (merge_cfg.cache_bytes == 0) merge_cfg.cache_bytes = config.cache_bytes;

  // Stage 1: sort cache-sized blocks one by one, each with all p lanes.
  std::vector<Run> runs;
  for (std::size_t begin = 0; begin < n; begin += block) {
    const std::size_t end = std::min(begin + block, n);
    parallel_merge_sort(data + begin, end - begin, exec, comp, instr);
    runs.push_back(Run{begin, end});
  }

  // Stage 2: binary merge tree; each pair merged with Algorithm 2.
  std::vector<T> scratch(n);
  T* src = data;
  T* dst = scratch.data();
  while (runs.size() > 1) {
    std::vector<Run> merged;
    merged.reserve((runs.size() + 1) / 2);
    for (std::size_t t = 0; 2 * t < runs.size(); ++t) {
      const Run a = runs[2 * t];
      if (2 * t + 1 < runs.size()) {
        const Run b = runs[2 * t + 1];
        MP_ASSERT(b.begin == a.end);
        segmented_parallel_merge(src + a.begin, a.size(), src + b.begin,
                                 b.size(), dst + a.begin, merge_cfg, exec,
                                 comp, instr);
        merged.push_back(Run{a.begin, b.end});
      } else {
        // Unpaired trailing run: carry it over to the other buffer.
        for (std::size_t i = a.begin; i < a.end; ++i) dst[i] = src[i];
        if constexpr (!std::is_same_v<Instr, NoInstrument>) {
          if (!instr.empty()) instr[0].move(a.size());
        }
        merged.push_back(a);
      }
    }
    runs = std::move(merged);
    std::swap(src, dst);
  }
  if (src != data) {
    const unsigned lanes = exec.resolve_threads();
    exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
      const std::size_t begin = lane * n / lanes;
      const std::size_t end = (lane + 1ull) * n / lanes;
      for (std::size_t i = begin; i < end; ++i) data[i] = std::move(src[i]);
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (!instr.empty()) instr[lane].move(end - begin);
      }
    });
  }
}

/// Convenience span front-end.
template <typename T, typename Comp = std::less<>>
void cache_efficient_parallel_sort(std::span<T> data,
                                   CacheSortConfig config = {},
                                   Executor exec = {}, Comp comp = {}) {
  cache_efficient_parallel_sort(data.data(), data.size(), config, exec, comp);
}

}  // namespace mp
