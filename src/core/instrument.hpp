#pragma once
/// \file instrument.hpp
/// Operation-counting hooks threaded through the algorithm templates.
///
/// Every algorithm in src/core is templated on an instrument policy. The
/// default NoInstrument inlines to nothing, so production calls pay zero
/// cost. The PRAM cost-model simulator (src/pram) passes OpCounts, one per
/// lane, and derives modelled parallel time from the per-lane totals; this
/// is how the repository reproduces the paper's speedup figures on a host
/// with fewer cores than the authors' testbed (see DESIGN.md section 2).
///
/// Counted events:
///  - compare:     one key comparison (merge kernel or binary search)
///  - move:        one element copied to an output or staging buffer
///  - search_step: one iteration of the diagonal binary search
///                 (distinguished from `compare` so the parallelisation
///                 overhead term "p·log N" of the work complexity can be
///                 reported separately)
///  - stage:       one element staged into a cyclic buffer (Algorithm 2)

#include <cstdint>

namespace mp {

/// Zero-cost default instrument.
struct NoInstrument {
  void compare(std::uint64_t = 1) {}
  void move(std::uint64_t = 1) {}
  void search_step(std::uint64_t = 1) {}
  void stage(std::uint64_t = 1) {}
};

/// Plain per-lane operation counters.
struct OpCounts {
  std::uint64_t compares = 0;
  std::uint64_t moves = 0;
  std::uint64_t search_steps = 0;
  std::uint64_t stages = 0;

  void compare(std::uint64_t n = 1) { compares += n; }
  void move(std::uint64_t n = 1) { moves += n; }
  void search_step(std::uint64_t n = 1) { search_steps += n; }
  void stage(std::uint64_t n = 1) { stages += n; }

  /// Total countable operations (used as the unit-cost PRAM work measure).
  std::uint64_t total() const {
    return compares + moves + search_steps + stages;
  }

  OpCounts& operator+=(const OpCounts& other) {
    compares += other.compares;
    moves += other.moves;
    search_steps += other.search_steps;
    stages += other.stages;
    return *this;
  }
};

}  // namespace mp
