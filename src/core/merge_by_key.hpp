#pragma once
/// \file merge_by_key.hpp
/// Key/value parallel merge and bounded ("first-k") merges.
///
/// Two extensions every production consumer of Merge Path ends up needing
/// (both ship in the algorithm's descendants, e.g. ModernGPU / CUB):
///
///  - parallel_merge_by_key(): merge two sorted key arrays while carrying
///    a value payload per element, without materialising (key, value)
///    structs. The partition is computed on the keys only; each lane then
///    moves keys and values through the same slice. Stable with
///    A-priority like everything in this library.
///
///  - merge_first_k(): produce only the first k elements of the merged
///    output in O(k/p + log min(|A|,|B|)) parallel time. The co-rank at
///    diagonal k (one binary search) bounds the inputs, after which the
///    job is an ordinary parallel merge of the two prefixes. This is the
///    top-k building block: k smallest of two sorted arrays.
///
///  - kth_smallest(): order statistic of the merged sequence without
///    merging, in O(log min(|A|,|B|)) — a direct read of the co-rank.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/parallel_merge.hpp"
#include "core/sequential_merge.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp {

namespace detail {

/// Bounded key/value merge kernel: the merge_steps() twin that moves a
/// value alongside every key.
template <typename KeyIt, typename ValIt, typename KeyIt2, typename ValIt2,
          typename KeyOut, typename ValOut, typename Comp, typename Instr>
void merge_by_key_steps(KeyIt ka, ValIt va, std::size_t m, KeyIt2 kb,
                        ValIt2 vb, std::size_t n, std::size_t* a_pos,
                        std::size_t* b_pos, KeyOut key_out, ValOut val_out,
                        std::size_t steps, Comp comp, Instr* instr) {
  std::size_t i = *a_pos;
  std::size_t j = *b_pos;
  MP_ASSERT(steps <= (m - i) + (n - j));
  std::size_t remaining = steps;
  while (remaining > 0 && i < m && j < n) {
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->compare();
    }
    if (comp(kb[j], ka[i])) {
      *key_out++ = kb[j];
      *val_out++ = vb[j];
      ++j;
    } else {
      *key_out++ = ka[i];
      *val_out++ = va[i];
      ++i;
    }
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->move(2);
    }
    --remaining;
  }
  while (remaining > 0 && i < m) {
    *key_out++ = ka[i];
    *val_out++ = va[i];
    ++i;
    --remaining;
  }
  while (remaining > 0 && j < n) {
    *key_out++ = kb[j];
    *val_out++ = vb[j];
    ++j;
    --remaining;
  }
  *a_pos = i;
  *b_pos = j;
}

}  // namespace detail

/// Merges (keys_a, values_a) and (keys_b, values_b) — both sorted by key —
/// into (keys_out, values_out). Stable with A-priority. The partition is
/// computed on keys only; values are never compared.
template <typename KeyIt, typename ValIt, typename KeyIt2, typename ValIt2,
          typename KeyOut, typename ValOut, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void parallel_merge_by_key(KeyIt keys_a, ValIt values_a, std::size_t m,
                           KeyIt2 keys_b, ValIt2 values_b, std::size_t n,
                           KeyOut keys_out, ValOut values_out,
                           Executor exec = {}, Comp comp = {},
                           std::span<Instr> instr = {}) {
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  if (lanes == 1 || m + n <= lanes) {
    std::size_t i = 0, j = 0;
    Instr* li = instr.empty() ? nullptr : &instr[0];
    detail::merge_by_key_steps(keys_a, values_a, m, keys_b, values_b, n, &i,
                               &j, keys_out, values_out, m + n, comp, li);
    return;
  }
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    const MergeSlice slice =
        merge_slice_for_lane(keys_a, m, keys_b, n, lane, lanes, comp, li);
    std::size_t i = slice.a_begin;
    std::size_t j = slice.b_begin;
    detail::merge_by_key_steps(
        keys_a, values_a, m, keys_b, values_b, n, &i, &j,
        keys_out + static_cast<std::ptrdiff_t>(slice.out_begin),
        values_out + static_cast<std::ptrdiff_t>(slice.out_begin),
        slice.steps, comp, li);
  });
}

/// Convenience vector front-end; returns {keys, values}.
template <typename K, typename V, typename Comp = std::less<>>
std::pair<std::vector<K>, std::vector<V>> parallel_merge_by_key(
    const std::vector<K>& keys_a, const std::vector<V>& values_a,
    const std::vector<K>& keys_b, const std::vector<V>& values_b,
    Executor exec = {}, Comp comp = {}) {
  MP_CHECK(keys_a.size() == values_a.size());
  MP_CHECK(keys_b.size() == values_b.size());
  std::pair<std::vector<K>, std::vector<V>> out;
  out.first.resize(keys_a.size() + keys_b.size());
  out.second.resize(out.first.size());
  parallel_merge_by_key(keys_a.data(), values_a.data(), keys_a.size(),
                        keys_b.data(), values_b.data(), keys_b.size(),
                        out.first.data(), out.second.data(), exec, comp);
  return out;
}

/// Writes the first k elements of the merge of (A, B) to out — the k
/// smallest of the union, in order, stable. k must be <= m + n.
/// O(k/p + log min(m, n)) parallel time: one co-rank bounds the inputs,
/// then Algorithm 1 runs on the prefixes.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
void merge_first_k(IterA a, std::size_t m, IterB b, std::size_t n,
                   OutIter out, std::size_t k, Executor exec = {},
                   Comp comp = {}) {
  MP_CHECK(k <= m + n);
  if (k == 0) return;
  const PathPoint cut = path_point_on_diagonal(a, m, b, n, k, comp);
  parallel_merge(a, cut.i, b, cut.j, out, exec, comp);
}

/// The k-th smallest element (0-based rank) of the merged sequence,
/// without merging: O(log min(m, n)). rank must be < m + n.
template <typename IterA, typename IterB, typename Comp = std::less<>>
auto kth_smallest(IterA a, std::size_t m, IterB b, std::size_t n,
                  std::size_t rank, Comp comp = {}) {
  MP_CHECK(rank < m + n);
  // The element at output position `rank` is the one consumed by the path
  // step from diagonal `rank` to `rank + 1`.
  const PathPoint pt = path_point_on_diagonal(a, m, b, n, rank, comp);
  if (pt.i >= m) return b[pt.j];
  if (pt.j >= n) return a[pt.i];
  // Stable order: the next consumed element is A's when A[i] <= B[j].
  return comp(b[pt.j], a[pt.i]) ? b[pt.j] : a[pt.i];
}

}  // namespace mp
