#pragma once
/// \file merge_matrix.hpp
/// Explicit Merge Matrix and Merge Path construction (Section II of the
/// paper, Figures 1-2), materialised in O(|A|·|B|) space.
///
/// This is a *reference model*, not a production algorithm: the whole point
/// of the paper is that neither the matrix nor the path needs to be built
/// (Theorem 14). The test suite uses this model on small inputs to verify,
/// exhaustively, the paper's structural claims — Lemmas 1-4, Propositions
/// 10-13, Corollary 12 — and to cross-check the binary-search
/// implementation in merge_path.hpp against ground truth.

#include <cstddef>
#include <functional>
#include <vector>

#include "core/merge_path.hpp"
#include "util/assert.hpp"

namespace mp {

/// The binary Merge Matrix M[i,j] = A[i] > B[j] (Definition 1), stored
/// densely. Indices are 0-based (the paper is 1-based).
template <typename T, typename Comp = std::less<>>
class MergeMatrix {
 public:
  MergeMatrix(std::vector<T> a, std::vector<T> b, Comp comp = {})
      : a_(std::move(a)), b_(std::move(b)), comp_(comp),
        cells_(a_.size() * b_.size()) {
    for (std::size_t i = 0; i < a_.size(); ++i)
      for (std::size_t j = 0; j < b_.size(); ++j)
        cells_[i * b_.size() + j] = comp_(b_[j], a_[i]);  // A[i] > B[j]
  }

  std::size_t rows() const { return a_.size(); }
  std::size_t cols() const { return b_.size(); }

  bool at(std::size_t i, std::size_t j) const {
    MP_ASSERT(i < rows() && j < cols());
    return cells_[i * cols() + j];
  }

  /// Number of cross diagonals of the *grid* (path points run over
  /// diagonals 0..rows()+cols()).
  std::size_t grid_diagonals() const { return rows() + cols() + 1; }

  /// Entries of matrix cross diagonal d (cells with i + j == d), ordered
  /// from the bottom-left end (largest i, smallest j) to the top-right end
  /// (smallest i, largest j). Read in this order the sequence is
  /// monotonically non-increasing — all 1s then all 0s (Corollary 12) —
  /// and the 1→0 transition is the path crossing (Proposition 13).
  std::vector<bool> diagonal_entries(std::size_t d) const {
    std::vector<bool> out;
    if (rows() == 0 || cols() == 0) return out;
    const std::size_t j0 = d >= rows() ? d - rows() + 1 : 0;
    for (std::size_t j = j0; j <= d && j < cols(); ++j) {
      const std::size_t i = d - j;
      if (i >= rows()) continue;
      out.push_back(at(i, j));
    }
    return out;
  }

  /// Constructs the Merge Path by direct simulation of the construction in
  /// Section II.A: start at (0,0); at point (i,j), move right (consume B)
  /// if A[i] > B[j], else move down (consume A); at the edges proceed in
  /// the only possible direction. Returns all |A|+|B|+1 path points in
  /// order.
  std::vector<PathPoint> build_path() const {
    std::vector<PathPoint> path;
    path.reserve(rows() + cols() + 1);
    std::size_t i = 0, j = 0;
    path.push_back({0, 0});
    while (i < rows() || j < cols()) {
      if (i == rows()) {
        ++j;  // bottom edge: only rightward remains
      } else if (j == cols()) {
        ++i;  // right edge: only downward remains
      } else if (comp_(b_[j], a_[i])) {
        ++j;  // M[i,j] = 1: A[i] > B[j], take B, move right
      } else {
        ++i;  // M[i,j] = 0: take A, move down
      }
      path.push_back({i, j});
    }
    return path;
  }

  /// Ground-truth intersection of the path with grid diagonal d, by linear
  /// scan of the simulated path (Lemma 8 guarantees the d'th path point is
  /// on diagonal d).
  PathPoint path_point_reference(std::size_t d) const {
    MP_ASSERT(d <= rows() + cols());
    return build_path()[d];
  }

  const std::vector<T>& a() const { return a_; }
  const std::vector<T>& b() const { return b_; }

 private:
  std::vector<T> a_;
  std::vector<T> b_;
  Comp comp_;
  std::vector<bool> cells_;
};

}  // namespace mp
