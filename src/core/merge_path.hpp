#pragma once
/// \file merge_path.hpp
/// The paper's central primitive: locating the Merge Path on a cross
/// diagonal of the (implicit) Merge Matrix by binary search (Section II,
/// Theorem 14), and partitioning the path into equal segments (Theorem 9).
///
/// Geometry recap. For sorted arrays A (|A| = m) and B (|B| = n), the merge
/// corresponds to a monotone path on an m x n grid from the top-left to the
/// bottom-right corner: a downward step consumes the next element of A, a
/// rightward step consumes the next element of B (Lemma 1). The binary merge
/// matrix M[i,j] = (A[i] > B[j]) is non-increasing along every cross
/// diagonal (Corollary 12), and the path crosses diagonal d exactly at the
/// 1→0 transition (Proposition 13). A point on diagonal d is written as the
/// pair (i, j) with i + j = d, where i elements of A and j elements of B lie
/// above/left of the path — i is the "co-rank" of d.
///
/// Tie-breaking: we define M with strict comparison (A[i] > B[j]), which
/// makes the merge *stable with A-priority*: on equal keys the element of A
/// is consumed first. All algorithms in this repository inherit that
/// guarantee, matching std::merge semantics.

#include <cstddef>
#include <functional>
#include <iterator>
#include <type_traits>
#include <vector>

#include "core/instrument.hpp"
#include "util/assert.hpp"

namespace mp {

/// A point on the merge path: i elements of A and j elements of B consumed.
struct PathPoint {
  std::size_t i = 0;
  std::size_t j = 0;

  std::size_t diagonal() const { return i + j; }
  friend bool operator==(const PathPoint&, const PathPoint&) = default;
};

/// Finds the intersection of the merge path with cross diagonal `diag`
/// (Theorem 14). Returns the co-rank i, i.e. the number of elements of
/// [a, a+m) that precede the path point; the B-count is diag - i.
///
/// The search maintains the invariant that the answer lies in
/// [lo, hi] ⊆ [max(0, diag-n), min(diag, m)] and runs in
/// O(log min(m, n, diag, m+n-diag)) comparisons — at most
/// log2(min(m,n)) + 1, the bound quoted in the paper.
///
/// Requirements: diag <= m + n; `comp` is a strict weak ordering; both
/// ranges sorted by `comp`.
template <typename IterA, typename IterB, typename Comp = std::less<>,
          typename Instr = NoInstrument>
std::size_t diagonal_intersection(IterA a, std::size_t m, IterB b,
                                  std::size_t n, std::size_t diag,
                                  Comp comp = {}, Instr* instr = nullptr) {
  MP_ASSERT(diag <= m + n);
  std::size_t lo = diag > n ? diag - n : 0;
  std::size_t hi = diag < m ? diag : m;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    // Candidate split: A contributes `mid`, B contributes `diag - mid`.
    // The path lies below (i.e. more A consumed) iff the last B element of
    // the candidate, B[diag-mid-1], is NOT strictly smaller than A[mid]:
    // equal keys go to A first (stability).
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->search_step();
    }
    if (!comp(b[diag - mid - 1], a[mid]))
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Convenience: intersection as a PathPoint.
template <typename IterA, typename IterB, typename Comp = std::less<>,
          typename Instr = NoInstrument>
PathPoint path_point_on_diagonal(IterA a, std::size_t m, IterB b,
                                 std::size_t n, std::size_t diag,
                                 Comp comp = {}, Instr* instr = nullptr) {
  const std::size_t i = diagonal_intersection(a, m, b, n, diag, comp, instr);
  return PathPoint{i, diag - i};
}

/// Partitions the merge path of (A, B) into `parts` segments of (near-)equal
/// length (Theorem 9 / Corollary 7). Returns parts+1 path points; segment k
/// covers output positions [points[k].diagonal(), points[k+1].diagonal()).
///
/// Segment lengths differ by at most one: segment k starts at diagonal
/// floor(k * (m+n) / parts), the equispaced cross diagonals of the paper.
/// Each interior point costs one independent binary search, so the whole
/// partition is O(p log min(m,n)) work and — when the searches are executed
/// concurrently, as parallel_merge() does — O(log min(m,n)) time.
template <typename IterA, typename IterB, typename Comp = std::less<>,
          typename Instr = NoInstrument>
std::vector<PathPoint> partition_merge_path(IterA a, std::size_t m, IterB b,
                                            std::size_t n, std::size_t parts,
                                            Comp comp = {},
                                            Instr* instr = nullptr) {
  MP_CHECK(parts >= 1);
  std::vector<PathPoint> points(parts + 1);
  points[0] = PathPoint{0, 0};
  points[parts] = PathPoint{m, n};
  for (std::size_t k = 1; k < parts; ++k) {
    const std::size_t diag = k * (m + n) / parts;
    points[k] = path_point_on_diagonal(a, m, b, n, diag, comp, instr);
  }
  return points;
}

/// Verifies that `points` is a valid merge-path partition of (A, B): path
/// points are monotone in both coordinates, start at (0,0), end at (m,n),
/// and each point is a genuine path point (the two order conditions of the
/// co-rank characterisation hold). Used by tests and by the debug builds of
/// the parallel algorithms.
template <typename IterA, typename IterB, typename Comp = std::less<>>
bool validate_partition(IterA a, std::size_t m, IterB b, std::size_t n,
                        const std::vector<PathPoint>& points, Comp comp = {}) {
  if (points.empty() || points.front() != PathPoint{0, 0} ||
      points.back() != PathPoint{m, n})
    return false;
  for (std::size_t k = 1; k < points.size(); ++k) {
    if (points[k].i < points[k - 1].i || points[k].j < points[k - 1].j)
      return false;
  }
  for (const PathPoint& pt : points) {
    // Stability-aware path-point conditions:
    //   A[i-1] <= B[j]  (no pending smaller-or-equal A left behind)
    //   B[j-1] <  A[i]  (no pending strictly-smaller B left behind)
    if (pt.i > 0 && pt.j < n && comp(b[pt.j], a[pt.i - 1])) return false;
    if (pt.j > 0 && pt.i < m && !comp(b[pt.j - 1], a[pt.i])) return false;
  }
  return true;
}

}  // namespace mp
