#pragma once
/// \file merge_soa.hpp
/// Structure-of-arrays merging: one sorted key column plus any number of
/// parallel value columns, merged without materialising row structs.
///
/// Columnar engines (and GPU libraries, where SoA is the default layout)
/// need exactly this shape: the partition is computed on keys alone, and
/// every lane then moves its slice of EVERY column through the same
/// (i, j) cursor sequence. The key observation that makes the multi-column
/// walk cheap is that the cursor sequence is fully determined by the keys,
/// so it is computed once per slice and replayed as a *gather pattern*
/// over the value columns.
///
/// parallel_merge_soa() takes the two key ranges plus a tuple of column
/// pairs; each column pair is (source_a, source_b, destination) expressed
/// as pointers of any (per-column) type.

#include <cstddef>
#include <functional>
#include <span>
#include <tuple>
#include <vector>

#include "core/merge_path.hpp"
#include "core/parallel_merge.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp {

/// One value column of an SoA merge: a[] and b[] are the two inputs
/// (parallel to the key arrays), out[] the destination.
template <typename V>
struct SoaColumn {
  const V* a = nullptr;
  const V* b = nullptr;
  V* out = nullptr;
};

namespace detail {

/// Replays a take-pattern over one column: `takes` holds, per output
/// element of the slice, true = element came from B.
template <typename V>
void replay_column(const SoaColumn<V>& column, std::size_t a_begin,
                   std::size_t b_begin, std::size_t out_begin,
                   const std::vector<bool>& takes) {
  std::size_t i = a_begin, j = b_begin;
  for (std::size_t s = 0; s < takes.size(); ++s) {
    column.out[out_begin + s] = takes[s] ? column.b[j++] : column.a[i++];
  }
}

}  // namespace detail

/// Merges sorted key columns (keys_a, keys_b) into keys_out while carrying
/// every column in `columns` (a tuple of SoaColumn<V>), in parallel.
/// Stable with A-priority on the keys. Value columns are written in one
/// replay pass per column — sequential per column within a lane, so wide
/// tables stream column-at-a-time (cache-friendlier than row-interleaved
/// writes).
template <typename K, typename Comp = std::less<>, typename... Vs>
void parallel_merge_soa(const K* keys_a, std::size_t m, const K* keys_b,
                        std::size_t n, K* keys_out,
                        std::tuple<SoaColumn<Vs>...> columns,
                        Executor exec = {}, Comp comp = {}) {
  const unsigned lanes = exec.resolve_threads();
  const std::size_t total = m + n;
  if (total == 0) return;

  const unsigned used = lanes == 0 ? 1 : lanes;
  exec.resolve_pool().parallel_for_lanes(used, [&](unsigned lane) {
    const MergeSlice slice =
        merge_slice_for_lane(keys_a, m, keys_b, n, lane, used, comp);
    // Walk the keys once, recording the take pattern and writing keys.
    std::vector<bool> takes(slice.steps);
    std::size_t i = slice.a_begin, j = slice.b_begin;
    for (std::size_t s = 0; s < slice.steps; ++s) {
      const bool has_a = i < m;
      const bool has_b = j < n;
      const bool take_b = !has_a || (has_b && comp(keys_b[j], keys_a[i]));
      takes[s] = take_b;
      keys_out[slice.out_begin + s] = take_b ? keys_b[j++] : keys_a[i++];
    }
    // Replay over every value column.
    std::apply(
        [&](const auto&... column) {
          (detail::replay_column(column, slice.a_begin, slice.b_begin,
                                 slice.out_begin, takes),
           ...);
        },
        columns);
  });
}

}  // namespace mp
