#pragma once
/// \file merge_sort.hpp
/// Sequential merge sort (from scratch) and the paper's Parallel Merge Sort
/// (Section III).
///
/// Parallel scheme: the input is split into p equal blocks, each sorted
/// sequentially by its own lane; then log2(p) rounds of pairwise merges
/// follow, every round parallelised with the Merge Path partition. Rather
/// than assigning whole pair-merges to threads (which would idle threads in
/// the late rounds when few arrays remain — exactly the problem the paper's
/// introduction describes), each round is *flattened*: the round's total
/// output is divided into p equal global slices, and every lane maps its
/// slice onto the (possibly several) pair-merges it overlaps using one
/// diagonal binary search per overlapped pair. Load balance is therefore
/// perfect in every round, including the last one where a single pair
/// remains and all p lanes cooperate on it — Algorithm 1 as a special case.
///
/// Complexity (paper): O(N/p·log N + log p·log N) time.
///
/// Stability: blocks are contiguous and pair merges are A-priority stable,
/// so the overall sort is stable.

#include <cstddef>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/parallel_merge.hpp"
#include "core/sequential_merge.hpp"
#include "kernels/kernels.hpp"
#include "kernels/sort_network.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp {

/// Sorted-run descriptor inside a flat buffer: [begin, end).
struct Run {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

namespace detail {

inline constexpr std::size_t kInsertionSortThreshold = 24;

}  // namespace detail

/// Bottom-up stable merge sort of [data, data+n) using caller-provided
/// scratch of the same length. Runs of kInsertionSortThreshold are formed
/// by kernels::sort_small_auto — branchless 8/16 sorting networks plus a
/// kernel merge for the dispatch-certified key types, insertion sort for
/// everything else and for instrumented calls (see
/// kernels/sort_network.hpp) — then merged with doubling widths,
/// ping-ponging between the two buffers; the result always ends in
/// `data`.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void sequential_merge_sort(T* data, T* scratch, std::size_t n, Comp comp = {},
                           Instr* instr = nullptr) {
  if (n <= 1) return;

  for (std::size_t begin = 0; begin < n;
       begin += detail::kInsertionSortThreshold) {
    const std::size_t len =
        std::min(detail::kInsertionSortThreshold, n - begin);
    kernels::sort_small_auto(data + begin, len, comp, instr);
  }

  T* src = data;
  T* dst = scratch;
  for (std::size_t width = detail::kInsertionSortThreshold; width < n;
       width *= 2) {
    for (std::size_t begin = 0; begin < n; begin += 2 * width) {
      const std::size_t mid = std::min(begin + width, n);
      const std::size_t end = std::min(begin + 2 * width, n);
      std::size_t i = 0, j = 0;
      kernels::merge_steps_auto(src + begin, mid - begin, src + mid, end - mid,
                                &i, &j, dst + begin, end - begin, comp, instr);
    }
    std::swap(src, dst);
  }
  if (src != data) {
    for (std::size_t i = 0; i < n; ++i) data[i] = std::move(src[i]);
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->move(n);
    }
  }
}

/// Convenience overload allocating its own scratch.
template <typename T, typename Comp = std::less<>>
void sequential_merge_sort(std::span<T> data, Comp comp = {}) {
  std::vector<T> scratch(data.size());
  sequential_merge_sort(data.data(), scratch.data(), data.size(), comp);
}

namespace detail {

/// Engine of one flattened merge round, parameterised over the job runner
/// so the plain path (ThreadPool::parallel_for_lanes) and the fault-aware
/// path (core/recovery.hpp's run_lanes_with_recovery) share the partition
/// math and lane body. `run_job(lanes, fn)` must execute fn(lane) for every
/// lane in [0, lanes); the lane body only reads `src` and writes a disjoint
/// slice of `dst`, so re-executing a lane is idempotent.
template <typename T, typename Comp, typename Instr, typename RunJob>
std::vector<Run> merge_round_impl(const T* src, T* dst,
                                  const std::vector<Run>& runs,
                                  unsigned lanes, Comp comp,
                                  std::span<Instr> instr, RunJob&& run_job) {
  MP_CHECK(!runs.empty());
  // Pair descriptors: pair t merges runs[2t] (A) and runs[2t+1] (B, possibly
  // missing). Output starts at runs[2t].begin since runs tile the buffer.
  struct Pair {
    Run a, b;
    std::size_t out_begin, out_end;
  };
  std::vector<Pair> pairs;
  std::vector<Run> merged;
  pairs.reserve((runs.size() + 1) / 2);
  for (std::size_t t = 0; 2 * t < runs.size(); ++t) {
    const Run a = runs[2 * t];
    const Run b = 2 * t + 1 < runs.size() ? runs[2 * t + 1]
                                          : Run{a.end, a.end};
    MP_ASSERT(b.begin == a.end);
    pairs.push_back(Pair{a, b, a.begin, b.end});
    merged.push_back(Run{a.begin, b.end});
  }
  const std::size_t total = runs.back().end - runs.front().begin;
  const std::size_t base = runs.front().begin;
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  obs::Span round_span("sort.round", "runs", runs.size());

  run_job(lanes, [&](unsigned lane) {
    obs::Span span("sort.round_slice", "lane", lane);
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    const std::size_t g0 = base + lane * total / lanes;
    const std::size_t g1 = base + (lane + 1ull) * total / lanes;
    if (g0 == g1) return;
    // First pair whose output interval contains g0 (pairs are sorted by
    // out_begin and tile [base, base+total)).
    std::size_t t = 0;
    {
      std::size_t lo = 0, hi = pairs.size() - 1;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        if (pairs[mid].out_begin <= g0)
          lo = mid;
        else
          hi = mid - 1;
      }
      t = lo;
    }
    for (; t < pairs.size() && pairs[t].out_begin < g1; ++t) {
      const Pair& pr = pairs[t];
      const std::size_t s0 = std::max(g0, pr.out_begin);
      const std::size_t s1 = std::min(g1, pr.out_end);
      if (s0 >= s1) continue;
      const std::size_t m = pr.a.size();
      const std::size_t n2 = pr.b.size();
      const std::size_t local_diag = s0 - pr.out_begin;
      PathPoint start;
      {
        obs::Span search_span("sort.partition", "lane", lane);
        start = path_point_on_diagonal(src + pr.a.begin, m, src + pr.b.begin,
                                       n2, local_diag, comp, li);
      }
      std::size_t i = start.i;
      std::size_t j = start.j;
      kernels::merge_steps_auto(src + pr.a.begin, m, src + pr.b.begin, n2, &i,
                                &j, dst + s0, s1 - s0, comp, li);
    }
  });
  return merged;
}

}  // namespace detail

/// One flattened round: merges adjacent pairs of `runs` (runs must tile
/// [0, n) contiguously) from `src` into `dst`, dividing the round's total
/// output equally among `lanes` lanes. A trailing unpaired run is copied.
/// Returns the merged run list.
///
/// This is the building block shared by parallel_merge_sort and the
/// cache-efficient sort; it is exposed for tests.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
std::vector<Run> merge_round_balanced(const T* src, T* dst,
                                      const std::vector<Run>& runs,
                                      Executor exec = {}, Comp comp = {},
                                      std::span<Instr> instr = {}) {
  const unsigned lanes = exec.resolve_threads();
  return detail::merge_round_impl(
      src, dst, runs, lanes, comp, instr,
      [&](unsigned l, const std::function<void(unsigned)>& fn) {
        exec.resolve_pool().parallel_for_lanes(l, fn);
      });
}

/// The paper's Parallel Merge Sort (Section III). Sorts [data, data+n)
/// stably using `exec`. `instr`, when provided, must cover
/// exec.resolve_threads() lanes and accumulates per-lane operation counts
/// across the base sorts and all merge rounds.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void parallel_merge_sort(T* data, std::size_t n, Executor exec = {},
                         Comp comp = {}, std::span<Instr> instr = {}) {
  const unsigned lanes = exec.resolve_threads();
  if (n <= 1) return;
  obs::Span sort_span("sort", "n", n);
  std::vector<T> scratch(n);
  if (lanes == 1 || n <= lanes * detail::kInsertionSortThreshold) {
    Instr* li = instr.empty() ? nullptr : &instr[0];
    sequential_merge_sort(data, scratch.data(), n, comp, li);
    return;
  }

  // Phase 1: p blocks, each sorted sequentially by its own lane.
  std::vector<Run> runs(lanes);
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    obs::Span span("sort.block", "lane", lane);
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    const std::size_t begin = lane * n / lanes;
    const std::size_t end = (lane + 1ull) * n / lanes;
    runs[lane] = Run{begin, end};
    sequential_merge_sort(data + begin, scratch.data() + begin, end - begin,
                          comp, li);
  });

  // Phase 2: log2(p) flattened merge rounds, ping-ponging buffers. The
  // round-index counter brackets each sort.round span so a trace viewer
  // (and check_trace.py) can attribute per-lane imbalance to the round
  // that produced it — late rounds merge few, long runs and are where
  // skewed inputs bite.
  T* src = data;
  T* dst = scratch.data();
  std::uint64_t round = 0;
  while (runs.size() > 1) {
    obs::Span::counter("sort.round_index", round++);
    runs = merge_round_balanced(src, dst, runs, exec, comp, instr);
    std::swap(src, dst);
  }
  if (src != data) {
    // Result landed in scratch: parallel copy-back (counted as moves).
    exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
      obs::Span span("sort.copyback", "lane", lane);
      const std::size_t begin = lane * n / lanes;
      const std::size_t end = (lane + 1ull) * n / lanes;
      for (std::size_t i = begin; i < end; ++i) data[i] = std::move(src[i]);
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (!instr.empty()) instr[lane].move(end - begin);
      }
    });
  }
}

/// Convenience span front-end.
template <typename T, typename Comp = std::less<>>
void parallel_merge_sort(std::span<T> data, Executor exec = {},
                         Comp comp = {}) {
  parallel_merge_sort(data.data(), data.size(), exec, comp);
}

#ifdef _OPENMP
/// OpenMP backend of the Section III sort, mirroring the paper's own
/// implementation vehicle: one omp parallel region per phase (block sorts,
/// then each flattened merge round), lane = omp thread.
template <typename T, typename Comp = std::less<>>
void parallel_merge_sort_openmp(T* data, std::size_t n, unsigned threads = 0,
                                Comp comp = {});
#endif

}  // namespace mp

#ifdef _OPENMP
#include <omp.h>

namespace mp {

template <typename T, typename Comp>
void parallel_merge_sort_openmp(T* data, std::size_t n, unsigned threads,
                                Comp comp) {
  const int lanes =
      threads > 0 ? static_cast<int>(threads) : omp_get_max_threads();
  if (n <= 1) return;
  std::vector<T> scratch(n);
  if (lanes <= 1 ||
      n <= static_cast<std::size_t>(lanes) * detail::kInsertionSortThreshold) {
    sequential_merge_sort(data, scratch.data(), n, comp);
    return;
  }

  const auto ulanes = static_cast<unsigned>(lanes);
  std::vector<Run> runs(ulanes);
#pragma omp parallel num_threads(lanes)
  {
    const auto lane = static_cast<unsigned>(omp_get_thread_num());
    const auto actual = static_cast<unsigned>(omp_get_num_threads());
    if (lane < actual) {
      const std::size_t begin = lane * n / actual;
      const std::size_t end = (lane + 1ull) * n / actual;
      runs[lane] = Run{begin, end};
      sequential_merge_sort(data + begin, scratch.data() + begin,
                            end - begin, comp);
    }
  }
  runs.resize(std::min<std::size_t>(runs.size(), ulanes));

  T* src = data;
  T* dst = scratch.data();
  while (runs.size() > 1) {
    // Reuse the flattened round, driven by an OpenMP "pool" of one lane
    // each: simplest correct composition is to run the round's lane
    // function under omp for. merge_round_balanced already encapsulates
    // the slice math; replicate its pair loop here with omp lanes.
    std::vector<Run> merged;
    struct Pair {
      Run a, b;
    };
    std::vector<Pair> pairs;
    for (std::size_t t = 0; 2 * t < runs.size(); ++t) {
      const Run a = runs[2 * t];
      const Run b =
          2 * t + 1 < runs.size() ? runs[2 * t + 1] : Run{a.end, a.end};
      pairs.push_back(Pair{a, b});
      merged.push_back(Run{a.begin, b.end});
    }
    const std::size_t total = runs.back().end - runs.front().begin;
    const std::size_t base = runs.front().begin;
#pragma omp parallel num_threads(lanes)
    {
      const auto lane = static_cast<unsigned>(omp_get_thread_num());
      const auto actual = static_cast<unsigned>(omp_get_num_threads());
      const std::size_t g0 = base + lane * total / actual;
      const std::size_t g1 = base + (lane + 1ull) * total / actual;
      for (const Pair& pr : pairs) {
        const std::size_t out_begin = pr.a.begin;
        const std::size_t out_end = pr.b.end;
        const std::size_t s0 = std::max(g0, out_begin);
        const std::size_t s1 = std::min(g1, out_end);
        if (s0 >= s1) continue;
        const std::size_t m = pr.a.size();
        const std::size_t n2 = pr.b.size();
        const PathPoint start = path_point_on_diagonal(
            src + pr.a.begin, m, src + pr.b.begin, n2, s0 - out_begin,
            comp);
        std::size_t i = start.i;
        std::size_t j = start.j;
        kernels::merge_steps_auto(src + pr.a.begin, m, src + pr.b.begin, n2,
                                  &i, &j, dst + s0, s1 - s0, comp);
      }
    }
    runs = std::move(merged);
    std::swap(src, dst);
  }
  if (src != data) {
#pragma omp parallel for num_threads(lanes) schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i)
      data[i] = std::move(src[i]);
  }
}

}  // namespace mp
#endif
