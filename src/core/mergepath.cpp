#include "core/mergepath.hpp"

namespace mp {

const char* version() { return "1.0.0"; }

}  // namespace mp
