#pragma once
/// \file mergepath.hpp
/// Umbrella header: the complete public API of the Merge Path library.
///
/// Quick tour (see README.md for a guided version):
///
///   #include "core/mergepath.hpp"
///
///   std::vector<int> s = mp::parallel_merge(a, b);            // Algorithm 1
///   mp::parallel_merge_sort(std::span(v));                    // Section III
///   auto t = mp::segmented_parallel_merge(a, b);               // Algorithm 2
///   mp::cache_efficient_parallel_sort(std::span(v));           // Section IV.C
///   auto u = mp::parallel_multiway_merge(runs);                // k-way ext.
///
/// Thread count and pool are controlled with mp::Executor:
///
///   mp::ThreadPool pool(7);                       // 8-lane machine
///   mp::Executor exec{&pool, 8};
///   mp::parallel_merge(a.data(), a.size(), b.data(), b.size(),
///                      out.data(), exec);
///
/// All algorithms are stable (ties favour the first input / lower run
/// index), generic over random-access iterators and comparators, and
/// lock-free in the sense of the paper: lanes synchronise only at the
/// terminal fork-join barrier.

#include "core/cache_sort.hpp"        // IWYU pragma: export
#include "core/instrument.hpp"        // IWYU pragma: export
#include "core/merge_by_key.hpp"      // IWYU pragma: export
#include "core/merge_matrix.hpp"      // IWYU pragma: export
#include "core/merge_path.hpp"        // IWYU pragma: export
#include "core/merge_soa.hpp"         // IWYU pragma: export
#include "core/merge_sort.hpp"        // IWYU pragma: export
#include "core/multiway_merge.hpp"    // IWYU pragma: export
#include "core/parallel_merge.hpp"    // IWYU pragma: export
#include "core/recovery.hpp"          // IWYU pragma: export
#include "core/recursive_merge.hpp"   // IWYU pragma: export
#include "core/segmented_merge.hpp"   // IWYU pragma: export
#include "core/sequential_merge.hpp"  // IWYU pragma: export
#include "core/set_ops.hpp"           // IWYU pragma: export
#include "core/stream_merger.hpp"     // IWYU pragma: export
#include "core/tiled_merge.hpp"       // IWYU pragma: export
#include "core/verify.hpp"            // IWYU pragma: export

namespace mp {

/// Library version, set from the paper reproduction milestones.
const char* version();

}  // namespace mp
