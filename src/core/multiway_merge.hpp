#pragma once
/// \file multiway_merge.hpp
/// k-way merging built on the Merge Path machinery — the natural extension
/// of the paper's two-way algorithm (and the direction its successors, e.g.
/// GPU Merge Path, took).
///
/// Three components:
///  - LoserTree: classic sequential k-way merge in O(N log k) comparisons;
///    the per-lane kernel of the parallel k-way merge and a useful public
///    utility in its own right (external-sort style run merging).
///  - multiway_select(): multisequence selection — finds, for a global rank
///    r, the unique stable split positions across the k runs such that the
///    union of the prefixes is exactly the r smallest elements (ties broken
///    by run index, then position, consistent with the library's A-priority
///    stability). This generalises the two-array co-rank that
///    diagonal_intersection computes.
///  - parallel_multiway_merge(): p lanes; lane k spans global output ranks
///    [k·N/p, (k+1)·N/p), locates its start with multiway_select(), and
///    merges its quota with a LoserTree. Perfect load balance, no
///    inter-lane communication — Algorithm 1 generalised to k inputs.

#include <cstddef>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_sort.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp {

inline constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// A tournament (loser) tree over k cursors. Pop order is stable: ties are
/// won by the lower run index.
template <typename T, typename Comp = std::less<>>
class LoserTree {
 public:
  /// One input cursor: a [first, last) range the tree will consume.
  struct Cursor {
    const T* first = nullptr;
    const T* last = nullptr;
  };

  explicit LoserTree(std::vector<Cursor> runs, Comp comp = {})
      : runs_(std::move(runs)), comp_(comp) {
    k_ = runs_.size();
    slots_ = 1;
    while (slots_ < k_) slots_ *= 2;
    tree_.assign(slots_, kNone);
    if (k_ == 0) return;
    // Two-pass build: compute the winner at every internal node bottom-up,
    // storing the loser; the overall winner ends up in winner_.
    std::vector<std::size_t> winners(2 * slots_, kNone);
    for (std::size_t s = 0; s < slots_; ++s)
      winners[slots_ + s] = s < k_ ? s : kNone;
    for (std::size_t node = slots_ - 1; node >= 1; --node) {
      const std::size_t w1 = winners[2 * node];
      const std::size_t w2 = winners[2 * node + 1];
      const std::size_t win = play(w1, w2);
      tree_[node] = win == w1 ? w2 : w1;  // store the loser
      winners[node] = win;
    }
    winner_ = winners[1];
  }

  bool empty() const { return winner_ == kNone || exhausted(winner_); }

  /// Returns the smallest remaining element and advances its cursor.
  const T& pop() {
    MP_ASSERT(!empty());
    const std::size_t run = winner_;
    const T& value = *runs_[run].first++;
    replay(run);
    return value;
  }

  /// Pops exactly `steps` elements into out; counts ~log2(k) comparisons
  /// and one move per element on the instrument.
  template <typename OutIter, typename Instr = NoInstrument>
  OutIter pop_n(OutIter out, std::size_t steps, Instr* instr = nullptr) {
    for (std::size_t s = 0; s < steps; ++s) {
      *out++ = pop();
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (instr) {
          instr->move();
          instr->compare(tree_levels());
        }
      }
    }
    return out;
  }

  std::size_t tree_levels() const {
    std::size_t levels = 0, s = slots_;
    while (s > 1) {
      s /= 2;
      ++levels;
    }
    return levels;
  }

 private:
  bool exhausted(std::size_t run) const {
    return run >= k_ || runs_[run].first == runs_[run].last;
  }

  /// Winner between two run indices: the one with the smaller head; an
  /// exhausted/absent run always loses; ties go to the lower run index.
  std::size_t play(std::size_t x, std::size_t y) const {
    const bool xe = exhausted(x);
    const bool ye = exhausted(y);
    if (xe || ye) {
      if (xe && ye) return x < y ? x : y;
      return xe ? y : x;
    }
    const T& xv = *runs_[x].first;
    const T& yv = *runs_[y].first;
    if (comp_(xv, yv)) return x;
    if (comp_(yv, xv)) return y;
    return x < y ? x : y;  // stable: lower run wins ties
  }

  /// After consuming from `run`, replay its path to the root: the new head
  /// of `run` is matched against the stored losers level by level.
  void replay(std::size_t run) {
    std::size_t contender = run;
    for (std::size_t node = (slots_ + run) / 2; node >= 1; node /= 2) {
      const std::size_t winner = play(tree_[node], contender);
      if (winner != contender) std::swap(tree_[node], contender);
    }
    winner_ = contender;
  }

  std::vector<Cursor> runs_;
  Comp comp_;
  std::size_t k_ = 0;
  std::size_t slots_ = 1;
  std::vector<std::size_t> tree_;  // tree_[node] = losing run at that match
  std::size_t winner_ = kNone;
};

/// Multisequence selection: returns positions pos[t] (one per run, with
/// sum(pos) == rank) such that the prefixes runs[t][0, pos[t]) are exactly
/// the `rank` smallest elements of the union under the stable order
/// (value, run index, position).
///
/// Algorithm: greedy block advancement. While `remaining` elements are
/// still to be claimed, advance — by up to c = max(1, remaining/(2·k_act))
/// elements — the run whose c-th unclaimed element is smallest (ties to the
/// lowest run index). Safety: the claimed block's elements all stably
/// precede that candidate value v, and across the k_act active runs at most
/// k_act·c <= remaining/2 + k_act <= remaining unclaimed elements stably
/// precede v, so the block lies inside the remaining target prefix.
/// Runs in O(k·(k + log rank)) comparisons.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
std::vector<std::size_t> multiway_select(
    std::span<const std::span<const T>> runs, std::size_t rank,
    Comp comp = {}, Instr* instr = nullptr) {
  const std::size_t k = runs.size();
  std::vector<std::size_t> pos(k, 0);
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  MP_CHECK(rank <= total);

  std::size_t remaining = rank;
  while (remaining > 0) {
    std::size_t active = 0;
    for (std::size_t t = 0; t < k; ++t)
      if (pos[t] < runs[t].size()) ++active;
    MP_ASSERT(active > 0);
    const std::size_t c =
        remaining >= 2 * active ? remaining / (2 * active) : 1;

    // The run whose c'-th unclaimed element (c' = min(c, available)) is
    // smallest under (value, run index). A run shorter than c competes with
    // its final element and is advanced by fewer than c.
    std::size_t best = kNone;
    std::size_t best_take = 0;
    for (std::size_t t = 0; t < k; ++t) {
      const std::size_t avail = runs[t].size() - pos[t];
      if (avail == 0) continue;
      const std::size_t take = c < avail ? c : avail;
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (instr) instr->search_step();
      }
      if (best == kNone ||
          comp(runs[t][pos[t] + take - 1], runs[best][pos[best] + best_take - 1])) {
        best = t;
        best_take = take;
      }
    }
    const std::size_t take = best_take < remaining ? best_take : remaining;
    pos[best] += take;
    remaining -= take;
  }
  return pos;
}

/// Merges k sorted runs into `out` using p lanes; stable across runs (lower
/// run index wins ties). Time O((N/p)·log k) per lane plus the selection.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void parallel_multiway_merge(std::span<const std::span<const T>> runs, T* out,
                             Executor exec = {}, Comp comp = {},
                             std::span<Instr> instr = {}) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  if (total == 0) return;
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  obs::Span mwm_span("mwm", "n", total);

  if (runs.size() == 2 && instr.empty()) {
    // Pairwise fallback: two runs are exactly Algorithm 1, whose diagonal
    // search is cheaper than multiway selection and whose per-lane kernel
    // can take the dispatched vector path (LoserTree pops are inherently
    // scalar). Lower-run-wins tie breaking IS A-priority, so the output is
    // identical. Instrumented calls keep the LoserTree so the modelled
    // log-k compare counts stay honest.
    parallel_merge(runs[0].data(), runs[0].size(), runs[1].data(),
                   runs[1].size(), out, exec, comp);
    return;
  }

  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    const std::size_t r0 = lane * total / lanes;
    const std::size_t r1 = (lane + 1ull) * total / lanes;
    if (r0 == r1) return;
    std::vector<std::size_t> start;
    {
      obs::Span span("mwm.select", "lane", lane);
      start = multiway_select(runs, r0, comp, li);
    }
    obs::Span span("mwm.merge", "lane", lane);
    std::vector<typename LoserTree<T, Comp>::Cursor> cursors(runs.size());
    for (std::size_t t = 0; t < runs.size(); ++t) {
      cursors[t] = {runs[t].data() + start[t],
                    runs[t].data() + runs[t].size()};
    }
    LoserTree<T, Comp> tree(std::move(cursors), comp);
    tree.pop_n(out + r0, r1 - r0, li);
  });
}

/// One-pass multiway merge sort: p sequentially-sorted blocks fused by a
/// single parallel k-way merge (k = p), instead of the log2(p) pairwise
/// rounds of parallel_merge_sort. Two total passes over the data versus
/// 1 + log2(p) — the win the external-sort literature calls "fan-in": it
/// trades the merge tree's streaming passes for the loser tree's log k
/// compare factor. bench/fig_sort reports the crossover under the PRAM
/// model. Stable.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void multiway_merge_sort(T* data, std::size_t n, Executor exec = {},
                         Comp comp = {}, std::span<Instr> instr = {}) {
  const unsigned lanes = exec.resolve_threads();
  if (n <= 1) return;
  obs::Span sort_span("mwm.sort", "n", n);
  std::vector<T> scratch(n);
  if (lanes == 1 || n <= lanes * 32) {
    Instr* li = instr.empty() ? nullptr : &instr[0];
    sequential_merge_sort(data, scratch.data(), n, comp, li);
    return;
  }

  // Phase 1: p blocks, each sorted by its own lane (as in Section III).
  std::vector<std::span<const T>> runs(lanes);
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    obs::Span span("mwm.block", "lane", lane);
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    const std::size_t begin = lane * n / lanes;
    const std::size_t end = (lane + 1ull) * n / lanes;
    sequential_merge_sort(data + begin, scratch.data() + begin, end - begin,
                          comp, li);
    runs[lane] = std::span<const T>(data + begin, end - begin);
  });

  // Phase 2: ONE k-way merge of all blocks into scratch, then a parallel
  // copy back.
  parallel_multiway_merge(std::span<const std::span<const T>>(runs),
                          scratch.data(), exec, comp, instr);
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    const std::size_t begin = lane * n / lanes;
    const std::size_t end = (lane + 1ull) * n / lanes;
    for (std::size_t i = begin; i < end; ++i) data[i] = std::move(scratch[i]);
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (!instr.empty()) instr[lane].move(end - begin);
    }
  });
}

/// Span front-end.
template <typename T, typename Comp = std::less<>>
void multiway_merge_sort(std::span<T> data, Executor exec = {},
                         Comp comp = {}) {
  multiway_merge_sort(data.data(), data.size(), exec, comp);
}

/// Convenience front-end for vector-of-vectors input.
template <typename T, typename Comp = std::less<>>
std::vector<T> parallel_multiway_merge(const std::vector<std::vector<T>>& runs,
                                       Executor exec = {}, Comp comp = {}) {
  std::vector<std::span<const T>> views;
  views.reserve(runs.size());
  std::size_t total = 0;
  for (const auto& r : runs) {
    views.emplace_back(r.data(), r.size());
    total += r.size();
  }
  std::vector<T> out(total);
  parallel_multiway_merge(std::span<const std::span<const T>>(views),
                          out.data(), exec, comp);
  return out;
}

}  // namespace mp
