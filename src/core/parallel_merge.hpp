#pragma once
/// \file parallel_merge.hpp
/// Algorithm 1 of the paper — Parallel Merge.
///
/// Each of p lanes independently (1) computes its starting diagonal
/// (k·(|A|+|B|)/p), (2) binary-searches the intersection of the merge path
/// with that cross diagonal (merge_path.hpp), and (3) runs (|A|+|B|)/p
/// steps of sequential merge writing to a disjoint slice of the output.
/// There is no inter-lane communication; the trailing barrier is the
/// fork-join of ThreadPool::parallel_for_lanes.
///
/// Complexity (paper, Section III): time O(N/p + log N), work
/// O(N + p·log N) for N = |A|+|B|.
///
/// Two entry points:
///  - parallel_merge():        ThreadPool backend (portable, default)
///  - parallel_merge_openmp(): OpenMP parallel-for backend, the paper's own
///    implementation vehicle (Section VI); compiled only when OpenMP is
///    available.
///
/// Instrumented variants fill one OpCounts per lane; the PRAM simulator
/// turns those into modelled parallel time (DESIGN.md S9/E1).

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/sequential_merge.hpp"
#include "kernels/kernels.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp {

/// Work descriptor for one lane of Algorithm 1. Exposed so that callers
/// embedding the merge in larger parallel phases (merge sort's flattened
/// rounds) can compute lane slices themselves.
struct MergeSlice {
  std::size_t a_begin = 0;  ///< first element of A this lane consumes
  std::size_t b_begin = 0;  ///< first element of B this lane consumes
  std::size_t out_begin = 0;  ///< first output position
  std::size_t steps = 0;      ///< number of merge steps (output elements)
};

/// Computes lane `lane` of `lanes`' slice of the merge of (m, n): the
/// starting diagonal, its path intersection, and the step count. Pure
/// function of the inputs; O(log min(m,n)) comparisons.
template <typename IterA, typename IterB, typename Comp = std::less<>,
          typename Instr = NoInstrument>
MergeSlice merge_slice_for_lane(IterA a, std::size_t m, IterB b,
                                std::size_t n, unsigned lane, unsigned lanes,
                                Comp comp = {}, Instr* instr = nullptr) {
  MP_CHECK(lanes >= 1 && lane < lanes);
  const std::size_t total = m + n;
  const std::size_t diag_lo = lane * total / lanes;
  const std::size_t diag_hi = (lane + 1ull) * total / lanes;
  const PathPoint start =
      path_point_on_diagonal(a, m, b, n, diag_lo, comp, instr);
  return MergeSlice{start.i, start.j, diag_lo, diag_hi - diag_lo};
}

/// Algorithm 1 with an explicit executor. Merges sorted [a, a+m) and
/// [b, b+n) into [out, out+m+n); stable with A-priority. `instr`, when
/// non-null, must point to exec.resolve_threads() OpCounts entries.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>, typename Instr = NoInstrument>
void parallel_merge(IterA a, std::size_t m, IterB b, std::size_t n,
                    OutIter out, Executor exec = {}, Comp comp = {},
                    std::span<Instr> instr = {}) {
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  obs::Span merge_span("merge", "n", m + n);

  if (lanes == 1 || m + n <= lanes) {
    // Degenerate cases: sequential merge is both faster and simpler.
    Instr* in0 = instr.empty() ? nullptr : &instr[0];
    sequential_merge(a, m, b, n, out, comp, in0);
    return;
  }

  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    MergeSlice slice;
    {
      obs::Span span("merge.partition", "lane", lane);
      slice = merge_slice_for_lane(a, m, b, n, lane, lanes, comp, li);
    }
    obs::Span span("merge.segment", "lane", lane);
    std::size_t i = slice.a_begin;
    std::size_t j = slice.b_begin;
    // Per-lane kernel: routed through the dispatcher (scalar / branchless
    // / SIMD — byte-identical by contract, see src/kernels).
    kernels::merge_steps_auto(a, m, b, n, &i, &j,
                              out + static_cast<std::ptrdiff_t>(slice.out_begin),
                              slice.steps, comp, li);
  });
}

/// Convenience vector front-end: returns the merged vector.
template <typename T, typename Comp = std::less<>>
std::vector<T> parallel_merge(const std::vector<T>& a, const std::vector<T>& b,
                              Executor exec = {}, Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(), exec,
                 comp);
  return out;
}

#ifdef _OPENMP
/// Algorithm 1 on OpenMP, mirroring the paper's implementation (Section
/// VI). `threads` == 0 uses the OpenMP default.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
void parallel_merge_openmp(IterA a, std::size_t m, IterB b, std::size_t n,
                           OutIter out, unsigned threads = 0, Comp comp = {});
#endif

}  // namespace mp

#ifdef _OPENMP
#include <omp.h>

namespace mp {

template <typename IterA, typename IterB, typename OutIter, typename Comp>
void parallel_merge_openmp(IterA a, std::size_t m, IterB b, std::size_t n,
                           OutIter out, unsigned threads, Comp comp) {
  const int lanes = threads > 0 ? static_cast<int>(threads)
                                : omp_get_max_threads();
  if (lanes <= 1 || m + n <= static_cast<std::size_t>(lanes)) {
    sequential_merge(a, m, b, n, out, comp);
    return;
  }
#pragma omp parallel num_threads(lanes)
  {
    const unsigned lane = static_cast<unsigned>(omp_get_thread_num());
    const unsigned actual = static_cast<unsigned>(omp_get_num_threads());
    if (lane < actual) {
      const MergeSlice slice =
          merge_slice_for_lane(a, m, b, n, lane, actual, comp);
      std::size_t i = slice.a_begin;
      std::size_t j = slice.b_begin;
      kernels::merge_steps_auto(a, m, b, n, &i, &j,
                                out + static_cast<std::ptrdiff_t>(slice.out_begin),
                                slice.steps, comp);
    }
  }  // implicit barrier — the "Barrier" closing Algorithm 1
}

}  // namespace mp
#endif
