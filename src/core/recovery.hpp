#pragma once
/// \file recovery.hpp
/// Lane-level fault recovery for the in-memory algorithms.
///
/// Why this is cheap and safe: Theorem 14 of the paper guarantees that
/// cross-diagonal partitioning yields disjoint, independently recomputable
/// output segments. A failed lane therefore names exactly the output span
/// that is missing, and re-running just that lane — on the pool, or
/// sequentially on the caller when the pool is degraded — reconstructs it
/// without touching any neighbour. This is the same argument
/// distributed_merge already exploits per rank (dist/) and run_file uses
/// per block (extmem/); here it is applied to the ThreadPool lanes
/// themselves, closing the last fault-blind execution path.
///
/// Components:
///  - run_lanes_with_recovery(): the generic engine. Submits a job through
///    ThreadPool::try_parallel_for_lanes (barrier always completes; per-lane
///    outcomes in a LaneReport), re-submits only the failed lanes as a
///    smaller job — bounded by fault::RetryPolicy::max_attempts, each retry
///    consuming fresh fault-schedule positions — and finally runs any still-
///    failed lanes sequentially on the caller, outside the pool ("the pool
///    is degraded; finish the span sequentially"). Genuine task exceptions
///    (a throwing comparator) are rethrown immediately, not retried: the
///    recovery loop is for injected/environmental faults, and a
///    deterministic bug would burn the whole budget reproducing itself.
///  - Straggler hedging rides on RecoveryConfig::hedge: lanes exceeding
///    HedgePolicy::factor x the median completed lane wall-time (PR 2's
///    LaneMetrics-style timing, taken per job) are speculatively re-executed
///    by the caller, MapReduce-style; first-claimer-wins via the pool's
///    per-lane ticket makes the race benign.
///  - resilient_parallel_merge / resilient_parallel_merge_sort /
///    resilient_parallel_multiway_merge: fault-aware entry points sharing
///    the exact partition math and lane bodies of the plain algorithms.
///    The merge-sort variant recovers per phase (block sorts, each flattened
///    round, copy-back); its copy-back copies instead of moving so a
///    re-executed lane re-reads intact sources (resilient entry points
///    require copyable T).
///
/// Injected lane faults fire *before* a lane's task runs (see
/// fault::LaneFault), so even the in-place block sorts are safe to retry:
/// a faulted lane never started mutating its block.
///
/// Counters: each recovery publishes pool.lane_faults / pool.retries /
/// pool.hedges / pool.fallbacks into the MetricsRegistry (cold path), and
/// brackets itself in a pool.recover span — see docs/OBSERVABILITY.md.
///
/// Under MP_FAULT=0 nothing here is dead weight: the engine still provides
/// hedging and typed reports; there are simply no injected faults to
/// recover from.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "core/merge_sort.hpp"
#include "core/multiway_merge.hpp"
#include "core/parallel_merge.hpp"
#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/threading.hpp"

namespace mp {

/// Knobs of the recovery engine: the retry budget (attempts are whole
/// submissions, first try included) and the straggler-hedging policy
/// applied to every submission. Unlike the extmem run-file layer, where
/// backoff_us is modeled device latency, here it is a REAL wall-clock
/// sleep before each re-submission (doubling per retry); the default is 0
/// so compute retries stay immediate — in-memory lane faults are not
/// congestion, so waiting is opt-in for callers pacing a shared pool.
struct RecoveryConfig {
  fault::RetryPolicy retry{/*max_attempts=*/8, /*backoff_us=*/0.0};
  HedgePolicy hedge{};
};

/// What a recovered job (or a multi-phase resilient algorithm) went
/// through. All counts accumulate across phases.
struct RecoveryReport {
  unsigned lanes = 0;            ///< lane executions submitted (all phases)
  unsigned injected_faults = 0;  ///< lanes whose schedule drew a fault
  unsigned retried_lanes = 0;    ///< lane re-submissions to the pool
  unsigned hedges = 0;           ///< lanes completed by the straggler hedge
  unsigned fallback_lanes = 0;   ///< lanes finished sequentially on the caller
  unsigned attempts = 0;         ///< pool submissions (>= 1 per phase)

  /// True when the retry budget ran out and the sequential fallback had to
  /// finish part of the span — the "pool is degraded" signal.
  bool degraded() const { return fallback_lanes > 0; }

  void absorb(const RecoveryReport& other) {
    lanes += other.lanes;
    injected_faults += other.injected_faults;
    retried_lanes += other.retried_lanes;
    hedges += other.hedges;
    fallback_lanes += other.fallback_lanes;
    attempts += other.attempts;
  }
};

/// Runs task(lane) for every lane in [0, lanes) to completion, surviving
/// injected lane faults: failed lanes are re-submitted (smaller jobs, fresh
/// schedule positions) up to cfg.retry.max_attempts total submissions, then
/// finished sequentially on the caller. Rethrows the first genuine (non-
/// injected) task exception. The task must tolerate re-execution of a lane
/// whose previous attempt never ran its body — which injected faults
/// guarantee by firing pre-task.
inline RecoveryReport run_lanes_with_recovery(
    ThreadPool& pool, unsigned lanes,
    const std::function<void(unsigned)>& task, const RecoveryConfig& cfg = {}) {
  RecoveryReport report;
  report.lanes = lanes;
  if (lanes == 0) return report;
  obs::Span recover_span("pool.recover", "lanes", lanes);

  // Fold one submission's outcomes into the report and the failed-lane
  // worklist, mapping sub-job indices back to absolute lane ids. Genuine
  // task exceptions (no injected fault on that lane) propagate immediately.
  std::vector<unsigned> failed;
  const auto harvest = [&](const LaneReport& sub,
                           const std::vector<unsigned>* map) {
    report.injected_faults += sub.injected_faults;
    report.hedges += sub.hedges;
    failed.clear();
    for (std::size_t i = 0; i < sub.lanes.size(); ++i) {
      const LaneOutcome& outcome = sub.lanes[i];
      if (outcome.status == LaneStatus::kOk) continue;
      if (outcome.status == LaneStatus::kThrew &&
          outcome.injected == fault::FaultKind::kNone && outcome.error)
        std::rethrow_exception(outcome.error);
      failed.push_back(map ? (*map)[i] : static_cast<unsigned>(i));
    }
  };

  ++report.attempts;
  harvest(pool.try_parallel_for_lanes(lanes, task, cfg.hedge), nullptr);

  const unsigned budget = std::max(1u, cfg.retry.max_attempts);
  double backoff_us = cfg.retry.backoff_us;
  while (!failed.empty() && report.attempts < budget) {
    if (backoff_us > 0.0) {
      // Pay the configured backoff before re-submitting, doubling per
      // retry like the extmem layer — except this one is real time.
      // Jitter (when configured and a plan is attached) is drawn from the
      // plan's independent jitter stream, so concurrent recoveries armed
      // with the same schedule don't re-submit in lockstep and the
      // decision stream / schedule_hash stay untouched.
      double wait = backoff_us;
      if (cfg.retry.jitter > 0.0) {
        if (fault::FaultPlan* plan = pool.fault_plan())
          wait *= 1.0 - cfg.retry.jitter * plan->jitter01();
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(wait));
      backoff_us *= 2.0;
    }
    // Re-submit only the failed lanes' disjoint segments as one smaller
    // job. Retries draw fresh schedule positions, so a lane can be hit
    // again; the attempt budget keeps that finite.
    const std::vector<unsigned> current = failed;
    report.retried_lanes += static_cast<unsigned>(current.size());
    ++report.attempts;
    const std::function<void(unsigned)> sub = [&](unsigned i) {
      task(current[i]);
    };
    harvest(pool.try_parallel_for_lanes(
                static_cast<unsigned>(current.size()), sub, cfg.hedge),
            &current);
  }

  // Budget exhausted: treat the pool as degraded and finish the remaining
  // segments sequentially on the caller, outside the pool — no workers
  // needed, no injection points in the way. Disjoint outputs make the
  // partial re-merge byte-equivalent to a clean run.
  if (!failed.empty()) obs::flight_report_degraded("pool.fallback");
  for (const unsigned lane : failed) {
    obs::Span::instant("pool.fallback", "lane", lane);
    ++report.fallback_lanes;
    task(lane);
  }

  if (report.injected_faults || report.retried_lanes || report.hedges ||
      report.fallback_lanes) {
    auto& registry = obs::MetricsRegistry::instance();
    if (report.injected_faults)
      registry.counter("pool.lane_faults").add(report.injected_faults);
    if (report.retried_lanes)
      registry.counter("pool.retries").add(report.retried_lanes);
    if (report.hedges) registry.counter("pool.hedges").add(report.hedges);
    if (report.fallback_lanes)
      registry.counter("pool.fallbacks").add(report.fallback_lanes);
  }
  return report;
}

/// Fault-aware Algorithm 1: parallel_merge's exact partition math and lane
/// body, driven through the recovery engine. Output is byte-identical to
/// the plain merge whatever the fault schedule injects (or an exception
/// surfaces — never silent corruption).
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
RecoveryReport resilient_parallel_merge(IterA a, std::size_t m, IterB b,
                                        std::size_t n, OutIter out,
                                        Executor exec = {}, Comp comp = {},
                                        const RecoveryConfig& cfg = {}) {
  const unsigned lanes = exec.resolve_threads();
  obs::Span merge_span("merge", "n", m + n);
  if (lanes == 1 || m + n <= lanes) {
    RecoveryReport report;
    report.lanes = 1;
    sequential_merge(a, m, b, n, out, comp);
    return report;
  }
  return run_lanes_with_recovery(
      exec.resolve_pool(), lanes,
      [&](unsigned lane) {
        MergeSlice slice;
        {
          obs::Span span("merge.partition", "lane", lane);
          slice = merge_slice_for_lane(a, m, b, n, lane, lanes, comp);
        }
        obs::Span span("merge.segment", "lane", lane);
        std::size_t i = slice.a_begin;
        std::size_t j = slice.b_begin;
        // Same dispatched kernel as the plain merge: a recovered run stays
        // byte-identical to a clean one whichever kernel is selected.
        kernels::merge_steps_auto(
            a, m, b, n, &i, &j,
            out + static_cast<std::ptrdiff_t>(slice.out_begin), slice.steps,
            comp);
      },
      cfg);
}

/// Convenience vector front-end of the resilient merge.
template <typename T, typename Comp = std::less<>>
std::vector<T> resilient_parallel_merge(const std::vector<T>& a,
                                        const std::vector<T>& b,
                                        Executor exec = {}, Comp comp = {},
                                        const RecoveryConfig& cfg = {}) {
  std::vector<T> out(a.size() + b.size());
  resilient_parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                           exec, comp, cfg);
  return out;
}

/// Fault-aware Section III sort: every phase (block sorts, each flattened
/// merge round, copy-back) runs under the recovery engine, so a fault in
/// one phase is healed before the next begins. Block sorts are in-place
/// but safe to retry because injected faults fire pre-task and the hedge
/// ticket admits at most one execution; rounds and copy-back are disjoint
/// src->dst and hence idempotent. Requires copyable T.
template <typename T, typename Comp = std::less<>>
RecoveryReport resilient_parallel_merge_sort(T* data, std::size_t n,
                                             Executor exec = {},
                                             Comp comp = {},
                                             const RecoveryConfig& cfg = {}) {
  RecoveryReport report;
  const unsigned lanes = exec.resolve_threads();
  if (n <= 1) return report;
  obs::Span sort_span("sort", "n", n);
  std::vector<T> scratch(n);
  if (lanes == 1 || n <= lanes * detail::kInsertionSortThreshold) {
    report.lanes = 1;
    sequential_merge_sort(data, scratch.data(), n, comp);
    return report;
  }
  ThreadPool& pool = exec.resolve_pool();

  // Phase 1: p block sorts.
  std::vector<Run> runs(lanes);
  report.absorb(run_lanes_with_recovery(
      pool, lanes,
      [&](unsigned lane) {
        obs::Span span("sort.block", "lane", lane);
        const std::size_t begin = lane * n / lanes;
        const std::size_t end = (lane + 1ull) * n / lanes;
        runs[lane] = Run{begin, end};
        sequential_merge_sort(data + begin, scratch.data() + begin,
                              end - begin, comp);
      },
      cfg));

  // Phase 2: flattened merge rounds through the shared round engine, one
  // recovery scope per round.
  T* src = data;
  T* dst = scratch.data();
  std::uint64_t round = 0;
  while (runs.size() > 1) {
    obs::Span::counter("sort.round_index", round++);
    runs = detail::merge_round_impl(
        src, dst, runs, lanes, comp, std::span<NoInstrument>{},
        [&](unsigned l, const std::function<void(unsigned)>& fn) {
          report.absorb(run_lanes_with_recovery(pool, l, fn, cfg));
        });
    std::swap(src, dst);
  }
  if (src != data) {
    report.absorb(run_lanes_with_recovery(
        pool, lanes,
        [&](unsigned lane) {
          obs::Span span("sort.copyback", "lane", lane);
          const std::size_t begin = lane * n / lanes;
          const std::size_t end = (lane + 1ull) * n / lanes;
          // Copy (not move): a re-executed lane must find its source
          // intact.
          for (std::size_t i = begin; i < end; ++i) data[i] = src[i];
        },
        cfg));
  }
  return report;
}

/// Span front-end of the resilient sort.
template <typename T, typename Comp = std::less<>>
RecoveryReport resilient_parallel_merge_sort(std::span<T> data,
                                             Executor exec = {},
                                             Comp comp = {},
                                             const RecoveryConfig& cfg = {}) {
  return resilient_parallel_merge_sort(data.data(), data.size(), exec, comp,
                                       cfg);
}

/// Fault-aware k-way merge: parallel_multiway_merge's lane body (rank
/// slice, multiway selection, LoserTree) under the recovery engine. Lanes
/// read const runs and write disjoint [r0, r1) output spans — the Theorem
/// 14 argument generalised to k inputs.
template <typename T, typename Comp = std::less<>>
RecoveryReport resilient_parallel_multiway_merge(
    std::span<const std::span<const T>> runs, T* out, Executor exec = {},
    Comp comp = {}, const RecoveryConfig& cfg = {}) {
  RecoveryReport report;
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  if (total == 0) return report;
  const unsigned lanes = exec.resolve_threads();
  obs::Span mwm_span("mwm", "n", total);
  return run_lanes_with_recovery(
      exec.resolve_pool(), lanes,
      [&, total](unsigned lane) {
        const std::size_t r0 = lane * total / lanes;
        const std::size_t r1 = (lane + 1ull) * total / lanes;
        if (r0 == r1) return;
        std::vector<std::size_t> start;
        {
          obs::Span span("mwm.select", "lane", lane);
          start = multiway_select(runs, r0, comp);
        }
        obs::Span span("mwm.merge", "lane", lane);
        std::vector<typename LoserTree<T, Comp>::Cursor> cursors(runs.size());
        for (std::size_t t = 0; t < runs.size(); ++t) {
          cursors[t] = {runs[t].data() + start[t],
                        runs[t].data() + runs[t].size()};
        }
        LoserTree<T, Comp> tree(std::move(cursors), comp);
        tree.pop_n(out + r0, r1 - r0);
      },
      cfg);
}

}  // namespace mp
