#pragma once
/// \file recursive_merge.hpp
/// Recursive divide-and-conquer merge and merge sort on the work-stealing
/// TaskScheduler — the PAM/pbbslib scheduling shape driven by Merge Path
/// co-ranks.
///
/// Where Algorithm 1 cuts the merge path into p equispaced slices up
/// front (static lanes, perfect balance by Corollary 7), the recursive
/// form repeatedly bisects it: find the path point on the *median* cross
/// diagonal (one O(log min(m,n)) co-rank search, Theorem 14), fork the
/// two halves with TaskScheduler::par_do, and bottom out on the
/// dispatched sequential kernel (kernels::merge_steps_auto) once a
/// subproblem fits under the grain size. pbbslib splits on the median of
/// the larger *input* and binary-searches the other; splitting on the
/// median *output* diagonal is the same co-ranking idea but guarantees
/// both children are exactly half the work, so the task tree is balanced
/// no matter how skewed the inputs interleave — and because the co-rank
/// search resolves ties A-first, every leaf writes the identical bytes
/// the static partition would (Träff's stability argument for
/// rank-splitting recursion; enforced byte-for-byte by the property
/// layer).
///
/// Why a second shape at all: static lanes fork exactly p tasks, so a
/// stream of many small merges pays the full fork-join barrier per merge
/// while big lanes cannot help small ones; the recursive tree exposes
/// work proportional to n/grain that any idle worker can steal, nests
/// freely (a sort round can fork merges which fork halves...), and
/// degrades to a single sequential kernel call below the grain with no
/// barrier at all. bench/ablation_scheduler measures where each wins.
///
/// Instrumentation: `instr`, when non-empty, must hold at least
/// scheduler.slots() OpCounts; each task accumulates into the slot of the
/// thread that ran it, so totals (the PRAM work measure) are comparable
/// with the per-lane counts of the static scheduler. Instrumented runs
/// stay on the scalar kernel, same contract as parallel_merge.

#include <cstddef>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/merge_sort.hpp"
#include "kernels/kernels.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/tasksched.hpp"

namespace mp {

/// Knobs for the recursive merge/sort family. Defaults keep leaf tasks
/// big enough that spawn cost (two deque operations) stays far below the
/// kernel time, while still exposing ~n/grain stealable tasks.
struct RecursiveConfig {
  TaskScheduler* scheduler = nullptr;  ///< nullptr => TaskScheduler::shared()
  /// Merge subproblems of total size <= merge_grain run the sequential
  /// kernel directly (clamped to >= 1).
  std::size_t merge_grain = 4096;
  /// Sort subranges of size <= sort_grain run sequential_merge_sort
  /// (clamped to >= 1).
  std::size_t sort_grain = 2048;

  TaskScheduler& resolve_scheduler() const {
    return scheduler ? *scheduler : TaskScheduler::shared();
  }
};

namespace detail {

template <typename Instr>
Instr* slot_instr(std::span<Instr> instr) {
  if constexpr (std::is_same_v<Instr, NoInstrument>) {
    return nullptr;
  } else {
    if (instr.empty()) return nullptr;
    const unsigned slot = TaskScheduler::current_slot();
    MP_ASSERT(slot < instr.size());
    return &instr[slot];
  }
}

/// One node of the recursive merge tree. Must run inside a TaskScheduler
/// context (par_do would otherwise serialise, which is correct but
/// defeats the point); the public wrappers establish it.
template <typename IterA, typename IterB, typename OutIter, typename Comp,
          typename Instr>
void recursive_merge_node(IterA a, std::size_t m, IterB b, std::size_t n,
                          OutIter out, std::size_t grain, Comp comp,
                          std::span<Instr> instr) {
  const std::size_t total = m + n;
  if (total <= grain) {
    std::size_t i = 0, j = 0;
    kernels::merge_steps_auto(a, m, b, n, &i, &j, out, total, comp,
                              slot_instr(instr));
    return;
  }
  obs::Span span("merge.rec", "n", total);
  // Median cross diagonal: both children inherit exactly half the output,
  // whatever the inputs' interleaving. A-priority co-rank keeps the
  // recursion byte-identical to the static partition.
  const std::size_t diag = total / 2;
  const PathPoint mid =
      path_point_on_diagonal(a, m, b, n, diag, comp, slot_instr(instr));
  TaskScheduler::par_do(
      [&] { recursive_merge_node(a, mid.i, b, mid.j, out, grain, comp, instr); },
      [&] {
        recursive_merge_node(a + static_cast<std::ptrdiff_t>(mid.i), m - mid.i,
                             b + static_cast<std::ptrdiff_t>(mid.j), n - mid.j,
                             out + static_cast<std::ptrdiff_t>(diag), grain,
                             comp, instr);
      });
}

/// One node of the recursive sort tree. Result lands in `data` when
/// `to_scratch` is false, in `scratch` otherwise; children sort into the
/// opposite buffer so each level merges across, never in place.
template <typename T, typename Comp, typename Instr>
void recursive_sort_node(T* data, T* scratch, std::size_t n, bool to_scratch,
                         std::size_t sort_grain, std::size_t merge_grain,
                         Comp comp, std::span<Instr> instr) {
  if (n <= sort_grain) {
    Instr* li = slot_instr(instr);
    sequential_merge_sort(data, scratch, n, comp, li);
    if (to_scratch) {
      for (std::size_t i = 0; i < n; ++i) scratch[i] = std::move(data[i]);
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (li) li->move(n);
      }
    }
    return;
  }
  obs::Span span("sort.rec", "n", n);
  const std::size_t half = n / 2;
  TaskScheduler::par_do(
      [&] {
        recursive_sort_node(data, scratch, half, !to_scratch, sort_grain,
                            merge_grain, comp, instr);
      },
      [&] {
        recursive_sort_node(data + half, scratch + half, n - half, !to_scratch,
                            sort_grain, merge_grain, comp, instr);
      });
  // The halves sit in the buffer opposite our destination; merge across.
  T* src = to_scratch ? data : scratch;
  T* dst = to_scratch ? scratch : data;
  recursive_merge_node(src, half, src + half, n - half, dst, merge_grain,
                       comp, instr);
}

}  // namespace detail

/// Recursive-splitting stable merge of sorted [a, a+m) and [b, b+n) into
/// [out, out+m+n). Byte-identical to parallel_merge (both produce the
/// unique A-priority stable merge). Called from inside a scheduler task
/// it forks in place (composing with an enclosing tree); called from
/// outside it roots a run() on cfg's scheduler.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>, typename Instr = NoInstrument>
void par_merge_recursive(IterA a, std::size_t m, IterB b, std::size_t n,
                         OutIter out, RecursiveConfig cfg = {}, Comp comp = {},
                         std::span<Instr> instr = {}) {
  const std::size_t grain = cfg.merge_grain > 0 ? cfg.merge_grain : 1;
  obs::Span merge_span("merge", "n", m + n);
  if (TaskScheduler::in_task()) {
    detail::recursive_merge_node(a, m, b, n, out, grain, comp, instr);
    return;
  }
  TaskScheduler& sched = cfg.resolve_scheduler();
  MP_CHECK(instr.empty() || instr.size() >= sched.slots());
  sched.run(
      [&] { detail::recursive_merge_node(a, m, b, n, out, grain, comp, instr); });
}

/// Convenience vector front-end: returns the merged vector.
template <typename T, typename Comp = std::less<>>
std::vector<T> par_merge_recursive(const std::vector<T>& a,
                                   const std::vector<T>& b,
                                   RecursiveConfig cfg = {}, Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  par_merge_recursive(a.data(), a.size(), b.data(), b.size(), out.data(), cfg,
                      comp);
  return out;
}

/// Recursive divide-and-conquer stable merge sort of [data, data+n):
/// fork halves, sort each (sequentially below sort_grain), merge with the
/// recursive splitter. Output equals any stable sort's (byte-identical to
/// parallel_merge_sort). Nests like par_merge_recursive.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void recursive_merge_sort(T* data, std::size_t n, RecursiveConfig cfg = {},
                          Comp comp = {}, std::span<Instr> instr = {}) {
  if (n <= 1) return;
  const std::size_t sort_grain = cfg.sort_grain > 0 ? cfg.sort_grain : 1;
  const std::size_t merge_grain = cfg.merge_grain > 0 ? cfg.merge_grain : 1;
  obs::Span sort_span("sort", "n", n);
  std::vector<T> scratch(n);
  if (TaskScheduler::in_task()) {
    detail::recursive_sort_node(data, scratch.data(), n, false, sort_grain,
                                merge_grain, comp, instr);
    return;
  }
  TaskScheduler& sched = cfg.resolve_scheduler();
  MP_CHECK(instr.empty() || instr.size() >= sched.slots());
  sched.run([&] {
    detail::recursive_sort_node(data, scratch.data(), n, false, sort_grain,
                                merge_grain, comp, instr);
  });
}

/// Convenience span front-end.
template <typename T, typename Comp = std::less<>>
void recursive_merge_sort(std::span<T> data, RecursiveConfig cfg = {},
                          Comp comp = {}) {
  recursive_merge_sort(data.data(), data.size(), cfg, comp);
}

}  // namespace mp
