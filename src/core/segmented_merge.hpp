#pragma once
/// \file segmented_merge.hpp
/// Algorithm 2 of the paper — Segmented Parallel Merge (SPM), Section IV.B.
///
/// The merge path is processed in segments of length L = C/3 (C = cache
/// capacity in elements), so the working set of one segment — up to L
/// staged elements of A, L of B, and L outputs — fits in cache. Each
/// iteration:
///   1. fetches input elements into two cyclic staging buffers, replacing
///      exactly the elements consumed by the previous iteration (step 1 of
///      Algorithm 2);
///   2. in parallel, each of p lanes binary-searches its start point on the
///      staged windows and merges L/p steps (step 2);
///   3. writes the merged segment out to the destination (step 3).
///
/// The cyclic buffers mirror the paper's formulation: staged elements keep
/// fixed buffer slots for their lifetime, which is what makes the 3-way
/// set-associativity collision-freedom claim (Section IV.B Remark)
/// meaningful. Indexing wraps via CyclicView.
///
/// Complexity (paper): O(N/C·(log C + C/p)) time, O(N/C·p·log C + N) work.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/sequential_merge.hpp"
#include "kernels/kernels.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/hw.hpp"
#include "util/threading.hpp"

namespace mp {

/// Random-access view over a fixed-capacity ring buffer: view[k] is the
/// k-th staged-but-unconsumed element. Cheap to copy; supports the subset
/// of iterator operations the merge kernels use (operator[], operator+).
template <typename T>
class CyclicView {
 public:
  CyclicView(const T* storage, std::size_t capacity, std::size_t head)
      : storage_(storage), capacity_(capacity), head_(head) {}

  const T& operator[](std::size_t k) const {
    std::size_t idx = head_ + k;
    if (idx >= capacity_) idx -= capacity_;  // k < capacity_ by contract
    return storage_[idx];
  }

  CyclicView operator+(std::size_t offset) const {
    std::size_t head = head_ + offset;
    if (head >= capacity_) head -= capacity_;
    return CyclicView(storage_, capacity_, head);
  }

 private:
  const T* storage_;
  std::size_t capacity_;
  std::size_t head_;
};

/// Tuning parameters for SPM.
struct SegmentedConfig {
  /// Cache capacity C in BYTES the merge should fit in; 0 = host L1d size.
  std::size_t cache_bytes = 0;
  /// Segment length L in ELEMENTS; 0 = derive as (cache_bytes/elem)/3, the
  /// paper's L = C/3 rule.
  std::size_t segment_length = 0;
  /// Copy wrapped ring windows into linear staging slabs so every segment
  /// merge can take the dispatched vector kernel (a wrapped CyclicView
  /// window otherwise falls back to the scalar path). Only engages when
  /// the key/comparator pair is vector-eligible, a vector kernel is
  /// selected and the run is uninstrumented; the copy costs O(L) extra
  /// moves per wrapped segment, which the wider kernel more than repays
  /// on vector-eligible keys (see docs/PERFORMANCE.md for the measured
  /// tradeoff).
  bool linearize_wrapped = true;

  template <typename T>
  std::size_t resolve_segment_length() const {
    if (segment_length > 0) return segment_length;
    const std::size_t bytes =
        cache_bytes > 0 ? cache_bytes : host_info().l1d_bytes();
    const std::size_t elems = bytes / sizeof(T);
    return elems >= 3 ? elems / 3 : 1;
  }
};

/// Per-run statistics SPM can report (segment count, staged element
/// totals); useful for the cache experiments and tests.
struct SegmentedStats {
  std::size_t segments = 0;
  std::size_t staged_a = 0;
  std::size_t staged_b = 0;
  /// Ring windows copied into the linear slabs (0 when linearize_wrapped
  /// is off, the merge is scalar anyway, or no window ever wrapped).
  std::size_t linearized_windows = 0;
  /// Elements those copies moved.
  std::size_t linearized_elements = 0;
};

/// Algorithm 2: merges sorted [a, a+m) and [b, b+n) into [out, out+m+n)
/// through cache-sized staging buffers. Stable with A-priority, like all
/// merges in this library. `instr` (optional) is per-lane.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
SegmentedStats segmented_parallel_merge(const T* a, std::size_t m, const T* b,
                                        std::size_t n, T* out,
                                        SegmentedConfig config = {},
                                        Executor exec = {}, Comp comp = {},
                                        std::span<Instr> instr = {}) {
  const std::size_t L = config.resolve_segment_length<T>();
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  obs::Span spm_span("spm", "n", m + n);
  SegmentedStats stats;

  // Staging areas: cyclic input rings of capacity L and a linear output
  // segment of length L — together the 3L = C working set of the paper.
  std::vector<T> ring_a(std::max<std::size_t>(L, 1));
  std::vector<T> ring_b(std::max<std::size_t>(L, 1));
  std::vector<T> seg_out(std::max<std::size_t>(L, 1));

  // Ring-window linearization (tentpole c): when enabled and profitable,
  // wrapped windows are copied into these slabs before step 2 so the
  // segment merge always sees contiguous arrays. Decided once per run —
  // the selected kernel cannot change mid-merge.
  bool linearize = false;
  if constexpr (kernels::use_vector_merge_v<const T*, const T*, T*, Comp>) {
    linearize = config.linearize_wrapped && instr.empty() &&
                kernels::is_vector_kernel(kernels::selected_kernel());
  }
  std::vector<T> lin_a(linearize ? std::max<std::size_t>(L, 1) : 0);
  std::vector<T> lin_b(linearize ? std::max<std::size_t>(L, 1) : 0);

  std::size_t a_done = 0, b_done = 0;   // globally consumed
  std::size_t a_staged = 0, b_staged = 0;  // globally staged into rings
  std::size_t out_pos = 0;
  const std::size_t total = m + n;

  while (out_pos < total) {
    // --- Step 1: fetch. Refill each ring to min(L, remaining) staged
    // elements, writing over the slots freed by the previous iteration.
    // The refill ranges are disjoint per lane, so this phase parallelises
    // like the rest of the algorithm (lanes split both rings' refills).
    const std::size_t a_target = a_done + std::min(L, m - a_done);
    const std::size_t b_target = b_done + std::min(L, n - b_done);
    const std::size_t fill_a = a_target - a_staged;
    const std::size_t fill_b = b_target - b_staged;
    if (fill_a + fill_b > 0) {
      exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
        obs::Span span("spm.fetch", "lane", lane);
        Instr* li = instr.empty() ? nullptr : &instr[lane];
        const std::size_t a0 = a_staged + lane * fill_a / lanes;
        const std::size_t a1 = a_staged + (lane + 1ull) * fill_a / lanes;
        for (std::size_t g = a0; g < a1; ++g) ring_a[g % L] = a[g];
        const std::size_t b0 = b_staged + lane * fill_b / lanes;
        const std::size_t b1 = b_staged + (lane + 1ull) * fill_b / lanes;
        for (std::size_t g = b0; g < b1; ++g) ring_b[g % L] = b[g];
        if constexpr (!std::is_same_v<Instr, NoInstrument>) {
          if (li) li->stage((a1 - a0) + (b1 - b0));
        }
      });
      a_staged = a_target;
      b_staged = b_target;
      stats.staged_a += fill_a;
      stats.staged_b += fill_b;
    }

    const std::size_t win_a = a_staged - a_done;  // staged A window size
    const std::size_t win_b = b_staged - b_done;
    const std::size_t seg_len = std::min(L, total - out_pos);
    MP_ASSERT(seg_len <= win_a + win_b);

    const std::size_t a_head = a_done % L;
    const std::size_t b_head = b_done % L;
    CyclicView<T> va(ring_a.data(), L, a_head);
    CyclicView<T> vb(ring_b.data(), L, b_head);
    // When a staged window does not wrap around its ring it is a plain
    // contiguous array, and the in-cache segment merge can take the
    // dispatched (possibly vector) kernel; a wrapped window stays on the
    // CyclicView + scalar path unless linearization copies it flat.
    // Same windows, same path, same output bytes either way.
    const T* flat_a = a_head + win_a <= L ? ring_a.data() + a_head : nullptr;
    const T* flat_b = b_head + win_b <= L ? ring_b.data() + b_head : nullptr;
    if (linearize && (flat_a == nullptr || flat_b == nullptr)) {
      obs::Span lin_span("spm.linearize", "len", seg_len);
      if (flat_a == nullptr) {
        const std::size_t first = L - a_head;  // [a_head, L) then the wrap
        std::copy(ring_a.data() + a_head, ring_a.data() + L, lin_a.data());
        std::copy(ring_a.data(), ring_a.data() + (win_a - first),
                  lin_a.data() + first);
        flat_a = lin_a.data();
        ++stats.linearized_windows;
        stats.linearized_elements += win_a;
      }
      if (flat_b == nullptr) {
        const std::size_t first = L - b_head;
        std::copy(ring_b.data() + b_head, ring_b.data() + L, lin_b.data());
        std::copy(ring_b.data(), ring_b.data() + (win_b - first),
                  lin_b.data() + first);
        flat_b = lin_b.data();
        ++stats.linearized_windows;
        stats.linearized_elements += win_b;
      }
    }

    // --- Step 2: parallel partition + merge of this segment (Theorem 16:
    // the p start points depend only on the staged windows).
    obs::Span::counter("spm.segment_len", seg_len);
    exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
      obs::Span span("spm.segment", "lane", lane);
      Instr* li = instr.empty() ? nullptr : &instr[lane];
      const std::size_t d0 = lane * seg_len / lanes;
      const std::size_t d1 = (lane + 1ull) * seg_len / lanes;
      if (d0 == d1) return;
      if (flat_a && flat_b) {
        const PathPoint start =
            path_point_on_diagonal(flat_a, win_a, flat_b, win_b, d0, comp, li);
        std::size_t i = start.i;
        std::size_t j = start.j;
        kernels::merge_steps_auto(flat_a, win_a, flat_b, win_b, &i, &j,
                                  seg_out.data() + d0, d1 - d0, comp, li);
      } else {
        const PathPoint start =
            path_point_on_diagonal(va, win_a, vb, win_b, d0, comp, li);
        std::size_t i = start.i;
        std::size_t j = start.j;
        merge_steps(va, win_a, vb, win_b, &i, &j, seg_out.data() + d0, d1 - d0,
                    comp, li);
      }
    });

    // Consumed counts for this segment = path point at local diagonal
    // seg_len (also what step 1 of the next iteration must refetch).
    const PathPoint seg_end =
        path_point_on_diagonal(va, win_a, vb, win_b, seg_len, comp,
                               instr.empty() ? nullptr : &instr[0]);
    a_done += seg_end.i;
    b_done += seg_end.j;

    // --- Step 3: write the merged segment out.
    exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
      obs::Span span("spm.flush", "lane", lane);
      const std::size_t d0 = lane * seg_len / lanes;
      const std::size_t d1 = (lane + 1ull) * seg_len / lanes;
      for (std::size_t k = d0; k < d1; ++k) out[out_pos + k] = seg_out[k];
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (!instr.empty()) instr[lane].move(d1 - d0);
      }
    });
    out_pos += seg_len;
    ++stats.segments;
  }
  MP_ASSERT(a_done == m && b_done == n);
  return stats;
}

/// Convenience vector front-end.
template <typename T, typename Comp = std::less<>>
std::vector<T> segmented_parallel_merge(const std::vector<T>& a,
                                        const std::vector<T>& b,
                                        SegmentedConfig config = {},
                                        Executor exec = {}, Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  segmented_parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                           config, exec, comp);
  return out;
}

}  // namespace mp
