#pragma once
/// \file sequential_merge.hpp
/// Sequential merge kernels.
///
/// Three kernels are provided:
///  - merge_steps(): merges exactly `steps` output elements starting from
///    given positions in A and B. This is the "(|A|+|B|)/p steps of
///    sequential merge" primitive of Algorithm 1 and the "L/p steps"
///    primitive of Algorithm 2. Handles either input running out.
///  - sequential_merge(): the classic full two-array merge (the paper's
///    single-thread baseline for the 6%-overhead remark of Section VI).
///  - branchless_merge_steps(): ablation variant that replaces the
///    per-element branch with arithmetic selection; requires both inputs to
///    have a readable element at all times, so callers pad or fall back to
///    merge_steps() for the tail. Used by bench/ablation studies only.
///
/// All kernels are stable with A-priority (ties take from A), matching the
/// Merge Matrix definition M[i,j] = A[i] > B[j].

#include <cstddef>
#include <functional>
#include <type_traits>

#include "core/instrument.hpp"
#include "util/assert.hpp"

namespace mp {

/// Merges exactly `steps` elements, reading from positions *a_pos of A and
/// *b_pos of B, writing to `out`. Updates a_pos/b_pos to the consumed
/// counts. The caller guarantees steps <= (m - *a_pos) + (n - *b_pos).
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>, typename Instr = NoInstrument>
OutIter merge_steps(IterA a, std::size_t m, IterB b, std::size_t n,
                    std::size_t* a_pos, std::size_t* b_pos, OutIter out,
                    std::size_t steps, Comp comp = {},
                    Instr* instr = nullptr) {
  std::size_t i = *a_pos;
  std::size_t j = *b_pos;
  MP_ASSERT(steps <= (m - i) + (n - j));
  auto note_compare = [&] {
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->compare();
    }
  };
  auto note_move = [&] {
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->move();
    }
  };

  std::size_t remaining = steps;
  // Main loop: both inputs non-empty.
  while (remaining > 0 && i < m && j < n) {
    note_compare();
    if (comp(b[j], a[i])) {
      *out++ = b[j++];
    } else {
      *out++ = a[i++];  // ties take A: stability
    }
    note_move();
    --remaining;
  }
  // Tail: one side exhausted.
  while (remaining > 0 && i < m) {
    *out++ = a[i++];
    note_move();
    --remaining;
  }
  while (remaining > 0 && j < n) {
    *out++ = b[j++];
    note_move();
    --remaining;
  }
  MP_ASSERT(remaining == 0);
  *a_pos = i;
  *b_pos = j;
  return out;
}

/// Classic full merge of [a, a+m) and [b, b+n) into `out`; returns the end
/// of the output. Stable with A-priority. This is the sequential baseline
/// used in experiment E2 (the paper's "6% single-thread overhead" remark).
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>, typename Instr = NoInstrument>
OutIter sequential_merge(IterA a, std::size_t m, IterB b, std::size_t n,
                         OutIter out, Comp comp = {},
                         Instr* instr = nullptr) {
  std::size_t i = 0, j = 0;
  return merge_steps(a, m, b, n, &i, &j, out, m + n, comp, instr);
}

/// The "truly sequential merge" of the paper's Section VI remark: the
/// textbook two-pointer merge with no step budget and no resumable
/// positions — the leanest loop a sequential implementation can run.
/// Algorithm 1 with p = 1 executes merge_steps() instead, which carries a
/// remaining-steps counter and resumable cursors; the instruction
/// difference between the two is what experiment E2 measures (the paper
/// reports ~6% including OpenMP overhead).
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
OutIter classic_merge(IterA a, std::size_t m, IterB b, std::size_t n,
                      OutIter out, Comp comp = {}) {
  std::size_t i = 0, j = 0;
  while (i < m && j < n) {
    if (comp(b[j], a[i]))
      *out++ = b[j++];
    else
      *out++ = a[i++];
  }
  while (i < m) *out++ = a[i++];
  while (j < n) *out++ = b[j++];
  return out;
}

/// Branchless inner loop: selects the source with arithmetic on the
/// comparison result instead of a branch. Only valid while BOTH inputs have
/// unconsumed elements; the caller must stop `steps` short of either
/// exhaustion point (parallel_merge's ablation path establishes this from
/// the partition geometry). Updates positions like merge_steps().
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
OutIter branchless_merge_steps(IterA a, IterB b, std::size_t* a_pos,
                               std::size_t* b_pos, OutIter out,
                               std::size_t steps, Comp comp = {}) {
  std::size_t i = *a_pos;
  std::size_t j = *b_pos;
  for (std::size_t s = 0; s < steps; ++s) {
    const bool take_b = comp(b[j], a[i]);
    // Read both candidates, keep one: turns the data-dependent branch into
    // a conditional move the compiler can schedule.
    const auto av = a[i];
    const auto bv = b[j];
    *out++ = take_b ? bv : av;
    i += take_b ? 0 : 1;
    j += take_b ? 1 : 0;
  }
  *a_pos = i;
  *b_pos = j;
  return out;
}

/// Run-adaptive ("galloping") merge: instead of deciding element by
/// element, each iteration finds the whole span of consecutive winners
/// from one input by exponential + binary search, then block-copies it.
/// On run-structured inputs (the organ-pipe workload, pre-sorted
/// fragments, time-series bursts) this does O(runs · log(run_len))
/// comparisons instead of O(N); on perfectly interleaved input it costs
/// at most ~2 comparisons per element — the trade the ablation bench
/// (bench/ablation_segment's kernel companion in bench_micro) quantifies.
/// Stable with A-priority, identical output to sequential_merge().
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>, typename Instr = NoInstrument>
OutIter adaptive_merge(IterA a, std::size_t m, IterB b, std::size_t n,
                       OutIter out, Comp comp = {}, Instr* instr = nullptr) {
  auto note = [&](std::uint64_t compares, std::uint64_t moves) {
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) {
        instr->compare(compares);
        instr->move(moves);
      }
    }
  };
  std::size_t i = 0, j = 0;
  while (i < m && j < n) {
    if (comp(b[j], a[i])) {
      // B wins: find the span of B strictly below a[i].
      // Exponential probe for the first B index NOT below a[i]...
      std::size_t lo = j + 1, hi = n, step = 1;
      std::uint64_t probes = 1;  // the deciding comparison above
      while (lo < hi) {
        const std::size_t probe = std::min(lo + step - 1, hi - 1);
        ++probes;
        if (comp(b[probe], a[i])) {
          lo = probe + 1;
          step <<= 1;
        } else {
          hi = probe;
          break;
        }
      }
      while (lo < hi) {  // binary refine inside the bracket
        const std::size_t mid = lo + (hi - lo) / 2;
        ++probes;
        if (comp(b[mid], a[i]))
          lo = mid + 1;
        else
          hi = mid;
      }
      note(probes, lo - j);
      for (; j < lo; ++j) *out++ = b[j];
    } else {
      // A wins (ties included): span of A not above b[j], i.e. a <= b[j].
      std::size_t lo = i + 1, hi = m, step = 1;
      std::uint64_t probes = 1;
      while (lo < hi) {
        const std::size_t probe = std::min(lo + step - 1, hi - 1);
        ++probes;
        if (!comp(b[j], a[probe])) {
          lo = probe + 1;
          step <<= 1;
        } else {
          hi = probe;
          break;
        }
      }
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        ++probes;
        if (!comp(b[j], a[mid]))
          lo = mid + 1;
        else
          hi = mid;
      }
      note(probes, lo - i);
      for (; i < lo; ++i) *out++ = a[i];
    }
  }
  note(0, (m - i) + (n - j));
  while (i < m) *out++ = a[i++];
  while (j < n) *out++ = b[j++];
  return out;
}

/// Counts how many of the next `steps` path steps are guaranteed safe for
/// the branchless kernel (i.e. how many can run before either input might
/// exhaust): min(steps, m - i, n - j) is NOT sufficient in general — the
/// kernel reads a[i] and b[j] each step, so it is safe exactly while
/// i < m and j < n, giving min(steps, (m-i) + ... ) conservative bound
/// min(steps, m - i, n - j).
inline std::size_t branchless_safe_steps(std::size_t m, std::size_t n,
                                         std::size_t i, std::size_t j,
                                         std::size_t steps) {
  const std::size_t a_left = m - i;
  const std::size_t b_left = n - j;
  const std::size_t safe = a_left < b_left ? a_left : b_left;
  return steps < safe ? steps : safe;
}

}  // namespace mp
