#pragma once
/// \file set_ops.hpp
/// Parallel sorted-set algebra (union / intersection / difference /
/// symmetric difference) built on Merge Path partitioning.
///
/// Semantics match the std::set_* family exactly (multiset semantics: for
/// union, max of multiplicities with A's copies preferred; intersection,
/// min of multiplicities from A; difference, A's surplus copies).
///
/// Parallelisation differs from the plain merge in two ways the paper's
/// machinery still covers:
///
///  1. *Cut placement.* A set-operation walk advances BOTH cursors on
///     equal keys, so merge-path diagonals are not directly valid cut
///     points — a cut must never split a run of equal keys in either
///     array. Each boundary therefore takes the co-rank point at its
///     equispaced diagonal (the load-balance anchor), reads the key there,
///     and snaps to (lower_bound_A(key), lower_bound_B(key)): all copies
///     of a key land in exactly one slice of each array. Balance remains
///     within one key-run of perfect.
///
///  2. *Output placement.* Output sizes are data dependent, so the
///     operation runs as count + prefix-sum + emit: each lane walks its
///     slice twice, first counting, then writing at its exclusive offset.
///     Still lock-free and barrier-synchronised only between the phases.
///
/// Each entry point returns the number of elements written.

#include <cstddef>
#include <functional>
#include <numeric>
#include <vector>

#include "core/merge_path.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp {

namespace detail {

/// One lane's slice of both inputs.
struct SetSlice {
  std::size_t a_begin = 0, a_end = 0;
  std::size_t b_begin = 0, b_end = 0;
};

/// First index in [first, first+count) whose element is not less than
/// `value` (std::lower_bound on an index range).
template <typename Iter, typename T, typename Comp>
std::size_t lower_bound_index(Iter first, std::size_t count, const T& value,
                              Comp comp) {
  std::size_t lo = 0, hi = count;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (comp(first[mid], value))
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Key-run-aligned slices for `lanes` lanes: co-rank at each equispaced
/// diagonal, snapped to the lower bound of the key found there.
template <typename IterA, typename IterB, typename Comp>
std::vector<SetSlice> key_aligned_slices(IterA a, std::size_t m, IterB b,
                                         std::size_t n, unsigned lanes,
                                         Comp comp) {
  std::vector<std::size_t> a_cut(lanes + 1, 0), b_cut(lanes + 1, 0);
  a_cut[lanes] = m;
  b_cut[lanes] = n;
  for (unsigned k = 1; k < lanes; ++k) {
    const PathPoint pt =
        path_point_on_diagonal(a, m, b, n, k * (m + n) / lanes, comp);
    if (pt.i < m) {
      a_cut[k] = lower_bound_index(a, m, a[pt.i], comp);
      b_cut[k] = lower_bound_index(b, n, a[pt.i], comp);
    } else if (pt.j < n) {
      a_cut[k] = lower_bound_index(a, m, b[pt.j], comp);
      b_cut[k] = lower_bound_index(b, n, b[pt.j], comp);
    } else {
      a_cut[k] = m;
      b_cut[k] = n;
    }
  }
  // Snapping is monotone in the diagonal, but equal splitter keys at
  // adjacent boundaries produce equal cuts; normalise just in case.
  for (unsigned k = 1; k <= lanes; ++k) {
    a_cut[k] = std::max(a_cut[k], a_cut[k - 1]);
    b_cut[k] = std::max(b_cut[k], b_cut[k - 1]);
  }
  std::vector<SetSlice> slices(lanes);
  for (unsigned k = 0; k < lanes; ++k)
    slices[k] = {a_cut[k], a_cut[k + 1], b_cut[k], b_cut[k + 1]};
  return slices;
}

/// Sequential kernels, emitting through a sink (counting or writing).
/// Semantics mirror the std::set_* reference implementations.
template <typename IterA, typename IterB, typename Comp, typename Sink>
void set_union_walk(IterA a, std::size_t m, IterB b, std::size_t n,
                    Comp comp, Sink&& sink) {
  std::size_t i = 0, j = 0;
  while (i < m && j < n) {
    if (comp(b[j], a[i])) {
      sink(b[j++]);
    } else {
      if (!comp(a[i], b[j])) ++j;  // equal: B's copy is absorbed
      sink(a[i++]);
    }
  }
  while (i < m) sink(a[i++]);
  while (j < n) sink(b[j++]);
}

template <typename IterA, typename IterB, typename Comp, typename Sink>
void set_intersection_walk(IterA a, std::size_t m, IterB b, std::size_t n,
                           Comp comp, Sink&& sink) {
  std::size_t i = 0, j = 0;
  while (i < m && j < n) {
    if (comp(a[i], b[j])) {
      ++i;
    } else if (comp(b[j], a[i])) {
      ++j;
    } else {
      sink(a[i]);
      ++i;
      ++j;
    }
  }
}

template <typename IterA, typename IterB, typename Comp, typename Sink>
void set_difference_walk(IterA a, std::size_t m, IterB b, std::size_t n,
                         Comp comp, Sink&& sink) {
  std::size_t i = 0, j = 0;
  while (i < m && j < n) {
    if (comp(a[i], b[j])) {
      sink(a[i++]);
    } else if (comp(b[j], a[i])) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  while (i < m) sink(a[i++]);
}

template <typename IterA, typename IterB, typename Comp, typename Sink>
void set_symmetric_difference_walk(IterA a, std::size_t m, IterB b,
                                   std::size_t n, Comp comp, Sink&& sink) {
  std::size_t i = 0, j = 0;
  while (i < m && j < n) {
    if (comp(a[i], b[j])) {
      sink(a[i++]);
    } else if (comp(b[j], a[i])) {
      sink(b[j++]);
    } else {
      ++i;
      ++j;
    }
  }
  while (i < m) sink(a[i++]);
  while (j < n) sink(b[j++]);
}

/// Shared driver: count per lane, prefix, emit per lane. `Walk` is one of
/// the kernels above.
template <typename IterA, typename IterB, typename OutIter, typename Comp,
          typename Walk>
std::size_t parallel_set_op(IterA a, std::size_t m, IterB b, std::size_t n,
                            OutIter out, Executor exec, Comp comp,
                            Walk walk) {
  const unsigned lanes = exec.resolve_threads();
  if (lanes == 1 || m + n <= lanes) {
    std::size_t written = 0;
    walk(a, m, b, n, comp, [&](const auto& v) {
      *(out + static_cast<std::ptrdiff_t>(written)) = v;
      ++written;
    });
    return written;
  }
  const auto slices = key_aligned_slices(a, m, b, n, lanes, comp);

  std::vector<std::size_t> counts(lanes, 0);
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    const SetSlice& s = slices[lane];
    std::size_t c = 0;
    walk(a + static_cast<std::ptrdiff_t>(s.a_begin), s.a_end - s.a_begin,
         b + static_cast<std::ptrdiff_t>(s.b_begin), s.b_end - s.b_begin,
         comp, [&](const auto&) { ++c; });
    counts[lane] = c;
  });

  std::vector<std::size_t> offsets(lanes + 1, 0);
  std::partial_sum(counts.begin(), counts.end(), offsets.begin() + 1);

  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    const SetSlice& s = slices[lane];
    std::size_t pos = offsets[lane];
    walk(a + static_cast<std::ptrdiff_t>(s.a_begin), s.a_end - s.a_begin,
         b + static_cast<std::ptrdiff_t>(s.b_begin), s.b_end - s.b_begin,
         comp, [&](const auto& v) {
           *(out + static_cast<std::ptrdiff_t>(pos)) = v;
           ++pos;
         });
  });
  return offsets[lanes];
}

}  // namespace detail

/// Union of two sorted ranges (std::set_union semantics). Returns the
/// number of elements written; out must have room for m + n.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
std::size_t parallel_set_union(IterA a, std::size_t m, IterB b,
                               std::size_t n, OutIter out, Executor exec = {},
                               Comp comp = {}) {
  return detail::parallel_set_op(a, m, b, n, out, exec, comp,
                                 [](auto&&... args) {
                                   detail::set_union_walk(
                                       std::forward<decltype(args)>(args)...);
                                 });
}

/// Intersection (std::set_intersection semantics); out needs min(m, n).
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
std::size_t parallel_set_intersection(IterA a, std::size_t m, IterB b,
                                      std::size_t n, OutIter out,
                                      Executor exec = {}, Comp comp = {}) {
  return detail::parallel_set_op(
      a, m, b, n, out, exec, comp, [](auto&&... args) {
        detail::set_intersection_walk(std::forward<decltype(args)>(args)...);
      });
}

/// Difference A \ B (std::set_difference semantics); out needs m.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
std::size_t parallel_set_difference(IterA a, std::size_t m, IterB b,
                                    std::size_t n, OutIter out,
                                    Executor exec = {}, Comp comp = {}) {
  return detail::parallel_set_op(
      a, m, b, n, out, exec, comp, [](auto&&... args) {
        detail::set_difference_walk(std::forward<decltype(args)>(args)...);
      });
}

/// Symmetric difference (std::set_symmetric_difference semantics); out
/// needs m + n.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
std::size_t parallel_set_symmetric_difference(IterA a, std::size_t m,
                                              IterB b, std::size_t n,
                                              OutIter out, Executor exec = {},
                                              Comp comp = {}) {
  return detail::parallel_set_op(
      a, m, b, n, out, exec, comp, [](auto&&... args) {
        detail::set_symmetric_difference_walk(
            std::forward<decltype(args)>(args)...);
      });
}

/// Vector front-ends.
template <typename T, typename Comp = std::less<>>
std::vector<T> parallel_set_union(const std::vector<T>& a,
                                  const std::vector<T>& b, Executor exec = {},
                                  Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  out.resize(parallel_set_union(a.data(), a.size(), b.data(), b.size(),
                                out.data(), exec, comp));
  return out;
}

template <typename T, typename Comp = std::less<>>
std::vector<T> parallel_set_intersection(const std::vector<T>& a,
                                         const std::vector<T>& b,
                                         Executor exec = {}, Comp comp = {}) {
  std::vector<T> out(std::min(a.size(), b.size()));
  out.resize(parallel_set_intersection(a.data(), a.size(), b.data(),
                                       b.size(), out.data(), exec, comp));
  return out;
}

template <typename T, typename Comp = std::less<>>
std::vector<T> parallel_set_difference(const std::vector<T>& a,
                                       const std::vector<T>& b,
                                       Executor exec = {}, Comp comp = {}) {
  std::vector<T> out(a.size());
  out.resize(parallel_set_difference(a.data(), a.size(), b.data(), b.size(),
                                     out.data(), exec, comp));
  return out;
}

template <typename T, typename Comp = std::less<>>
std::vector<T> parallel_set_symmetric_difference(const std::vector<T>& a,
                                                 const std::vector<T>& b,
                                                 Executor exec = {},
                                                 Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  out.resize(parallel_set_symmetric_difference(
      a.data(), a.size(), b.data(), b.size(), out.data(), exec, comp));
  return out;
}

}  // namespace mp
