#pragma once
/// \file stream_merger.hpp
/// Online merging of two sorted streams that arrive in chunks.
///
/// The segmented algorithm (Algorithm 2) processes a *complete* pair of
/// arrays through cache-sized windows; StreamMerger handles the harder
/// online variant where the windows are all that exists yet: sources push
/// sorted chunks as they arrive (network feeds, sorted-run spills), and
/// the merger emits the maximal prefix of the final merged sequence that
/// is already *determined* — i.e. provably unaffected by any future input.
///
/// Determinedness rule (with the library's stable A-priority order):
///  - taking A's head is final whenever a[i] <= b[j] (any future B is
///    >= b[j]);
///  - taking B's head is final whenever b[j] < a[i] (any future A is
///    >= a[i] > b[j]);
///  - once a buffer runs dry with its stream still open, nothing more is
///    determined until data arrives or the stream closes.
///
/// The length of the determined prefix is exactly the diagonal at which
/// the merge path of the buffered windows first touches an open stream's
/// buffer boundary — found with the paper's diagonal binary search, so a
/// pull() costs O(log) beyond the copying, and large pulls can run the
/// merge itself in parallel via Algorithm 1.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/merge_path.hpp"
#include "core/parallel_merge.hpp"
#include "core/sequential_merge.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp {

template <typename T, typename Comp = std::less<>>
class StreamMerger {
 public:
  explicit StreamMerger(Comp comp = {}, Executor exec = {})
      : comp_(comp), exec_(exec) {}

  /// Appends a sorted chunk to stream A. Chunks must be internally sorted
  /// and no smaller than anything previously pushed on A (checked).
  void push_a(std::span<const T> chunk) { push(chunk, buf_a_, head_a_, a_open_); }
  /// Appends a sorted chunk to stream B (same contract as push_a).
  void push_b(std::span<const T> chunk) { push(chunk, buf_b_, head_b_, b_open_); }

  /// Declares stream A finished: its buffered remainder becomes fully
  /// determined (subject to B).
  void close_a() { a_open_ = false; }
  void close_b() { b_open_ = false; }

  bool a_open() const { return a_open_; }
  bool b_open() const { return b_open_; }

  /// Swaps the executor used for large pulls. The serving layer calls this
  /// to degrade a merger to sequential execution (threads = 1) after a
  /// lane fault interrupted a parallel pull: pull() only advances the
  /// buffer heads after the merge completes, so a failed pull leaves the
  /// merger state intact and the same pull can simply be retried without
  /// the pool in the way.
  void set_executor(Executor exec) { exec_ = exec; }

  /// Elements currently buffered (pushed but not yet pulled).
  std::size_t buffered_a() const { return buf_a_.size() - head_a_; }
  std::size_t buffered_b() const { return buf_b_.size() - head_b_; }

  /// Number of merged elements that are determined right now.
  std::size_t available() const {
    const std::size_t avail_a = buffered_a();
    const std::size_t avail_b = buffered_b();
    const T* a = buf_a_.data() + head_a_;
    const T* b = buf_b_.data() + head_b_;
    std::size_t limit = avail_a + avail_b;
    if (a_open_)
      limit = std::min(limit, exhaustion_diagonal(a, avail_a, b, avail_b,
                                                  /*of_a=*/true));
    if (b_open_)
      limit = std::min(limit, exhaustion_diagonal(a, avail_a, b, avail_b,
                                                  /*of_a=*/false));
    return limit;
  }

  /// True when both streams are closed and every element has been pulled.
  bool finished() const {
    return !a_open_ && !b_open_ && buffered_a() == 0 && buffered_b() == 0;
  }

  /// Merges up to out.size() determined elements into `out`; returns the
  /// number written. Uses the parallel merge when the pull is large.
  std::size_t pull(std::span<T> out) {
    const std::size_t take = std::min(out.size(), available());
    if (take == 0) return 0;
    obs::Span span("stream.pull", "take", take);
    const std::size_t avail_a = buffered_a();
    const std::size_t avail_b = buffered_b();
    const T* a = buf_a_.data() + head_a_;
    const T* b = buf_b_.data() + head_b_;

    // How much of each buffer the pull consumes: the co-rank at `take`.
    const PathPoint cut =
        path_point_on_diagonal(a, avail_a, b, avail_b, take, comp_);
    if (take >= kParallelPullThreshold) {
      parallel_merge(a, cut.i, b, cut.j, out.data(), exec_, comp_);
    } else {
      std::size_t i = 0, j = 0;
      merge_steps(a, cut.i, b, cut.j, &i, &j, out.data(), take, comp_);
    }
    head_a_ += cut.i;
    head_b_ += cut.j;
    compact(buf_a_, head_a_);
    compact(buf_b_, head_b_);
    return take;
  }

  /// Drains everything determined into a vector (convenience).
  std::vector<T> pull_all() {
    std::vector<T> out(available());
    const std::size_t got = pull(std::span<T>(out));
    static_cast<void>(got);  // MP_ASSERT compiles away under NDEBUG
    MP_ASSERT(got == out.size());
    return out;
  }

 private:
  // Pulls get parallel execution once they are comfortably larger than a
  // partition's bookkeeping.
  static constexpr std::size_t kParallelPullThreshold = 1 << 15;

  void push(std::span<const T> chunk, std::vector<T>& buf, std::size_t head,
            bool open) {
    MP_CHECK(open);  // pushing after close_x() is a contract violation
    if (chunk.empty()) return;
    obs::Span span("stream.push", "size", chunk.size());
    MP_ASSERT(std::is_sorted(chunk.begin(), chunk.end(), comp_));
    if (buf.size() > head) MP_ASSERT(!comp_(chunk.front(), buf.back()));
    buf.insert(buf.end(), chunk.begin(), chunk.end());
  }

  /// Smallest diagonal at which the merge path of the buffered windows has
  /// consumed ALL of one side (A when of_a). Monotone in the diagonal, so
  /// a binary search over diagonals (each probe one co-rank search).
  std::size_t exhaustion_diagonal(const T* a, std::size_t avail_a,
                                  const T* b, std::size_t avail_b,
                                  bool of_a) const {
    const std::size_t target = of_a ? avail_a : avail_b;
    std::size_t lo = target;  // cannot exhaust side X before X steps
    std::size_t hi = avail_a + avail_b;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const PathPoint pt =
          path_point_on_diagonal(a, avail_a, b, avail_b, mid, comp_);
      const std::size_t consumed = of_a ? pt.i : pt.j;
      if (consumed >= target)
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  }

  /// Reclaims consumed space once it dominates the buffer.
  static void compact(std::vector<T>& buf, std::size_t& head) {
    if (head > 0 && head >= buf.size() / 2) {
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
  }

  Comp comp_;
  Executor exec_;
  std::vector<T> buf_a_, buf_b_;
  std::size_t head_a_ = 0, head_b_ = 0;
  bool a_open_ = true, b_open_ = true;
};

}  // namespace mp
