#pragma once
/// \file tiled_merge.hpp
/// Two-level ("tiled") parallel merge with dynamic scheduling — the shape
/// the Merge Path idea took in its GPU descendants (grid-level partition
/// into fixed-size tiles, then per-tile work), adapted to CPU threads.
///
/// Algorithm 1 assigns each lane ONE contiguous slice, sized statically.
/// That is optimal when every merge step costs the same (Corollary 7), but
/// when per-element cost varies — expensive comparators, cold pages, a
/// shared machine — a straggler lane stalls the barrier. The tiled variant
/// cuts the path into many tiles of `tile_size` outputs and lets lanes
/// claim tiles from an atomic counter: the partition stays merge-path
/// exact (each tile's start point is one diagonal search), while
/// scheduling becomes work-stealing-ish at a cost of one extra search per
/// tile.
///
/// The tile boundary search exploits locality: a lane claiming consecutive
/// tiles reuses its previous end point as a hint (galloping search,
/// diagonal_intersection_hinted), dropping the per-tile cost from
/// O(log min(m,n)) to O(log step) when tiles are claimed in order.

#include <atomic>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_path.hpp"
#include "core/sequential_merge.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp {

/// Diagonal intersection with a starting hint: exponential (galloping)
/// search outward from `hint_i` (a co-rank guess, e.g. the previous tile's
/// end), then the usual bisection inside the located bracket.
/// O(log |i* - hint_i|) comparisons instead of O(log min(m, n)).
template <typename IterA, typename IterB, typename Comp = std::less<>,
          typename Instr = NoInstrument>
std::size_t diagonal_intersection_hinted(IterA a, std::size_t m, IterB b,
                                         std::size_t n, std::size_t diag,
                                         std::size_t hint_i, Comp comp = {},
                                         Instr* instr = nullptr) {
  MP_ASSERT(diag <= m + n);
  const std::size_t lo_bound = diag > n ? diag - n : 0;
  const std::size_t hi_bound = diag < m ? diag : m;
  std::size_t hint = std::min(std::max(hint_i, lo_bound), hi_bound);

  // Predicate P(i): the answer is > i  <=>  B[diag-i-1] >= A[i]
  // (the same test diagonal_intersection brackets with).
  auto answer_above = [&](std::size_t i) {
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->search_step();
    }
    return !comp(b[diag - i - 1], a[i]);
  };

  // The answer i* is the first index in [lo_bound, hi_bound] with
  // !answer_above(i*) (or hi_bound when none). Establish a bracket
  // [lo, hi] containing i* by galloping from the hint, then bisect.
  std::size_t lo = lo_bound, hi = hi_bound;
  if (hint < hi_bound && answer_above(hint)) {
    // i* in (hint, hi_bound]: gallop upward with doubling steps.
    lo = hint + 1;
    std::size_t step = 1;
    while (lo < hi) {
      const std::size_t probe = std::min(lo + step - 1, hi - 1);
      if (answer_above(probe)) {
        lo = probe + 1;
        step <<= 1;
      } else {
        hi = probe;
        break;
      }
    }
  } else if (hint > lo_bound) {
    // i* <= hint: gallop downward with doubling steps.
    hi = hint;
    std::size_t step = 1;
    while (hi > lo_bound) {
      const std::size_t probe =
          hi > lo_bound + step ? hi - step : lo_bound;
      if (answer_above(probe)) {
        lo = probe + 1;
        break;
      }
      hi = probe;
      step <<= 1;
    }
  }
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (answer_above(mid))
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Tiled parallel merge: stable, identical output to parallel_merge().
/// Lanes dynamically claim tiles of `tile_size` output elements.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>, typename Instr = NoInstrument>
void tiled_parallel_merge(IterA a, std::size_t m, IterB b, std::size_t n,
                          OutIter out, std::size_t tile_size = 4096,
                          Executor exec = {}, Comp comp = {},
                          std::span<Instr> instr = {}) {
  MP_CHECK(tile_size >= 1);
  const std::size_t total = m + n;
  const unsigned lanes = exec.resolve_threads();
  MP_CHECK(instr.empty() || instr.size() >= lanes);
  if (total == 0) return;
  const std::size_t tiles = (total + tile_size - 1) / tile_size;
  if (lanes == 1 || tiles == 1) {
    Instr* li = instr.empty() ? nullptr : &instr[0];
    sequential_merge(a, m, b, n, out, comp, li);
    return;
  }

  std::atomic<std::size_t> next_tile{0};
  exec.resolve_pool().parallel_for_lanes(lanes, [&](unsigned lane) {
    Instr* li = instr.empty() ? nullptr : &instr[lane];
    std::size_t hint = 0;
    bool have_hint = false;
    for (;;) {
      const std::size_t tile =
          next_tile.fetch_add(1, std::memory_order_relaxed);
      if (tile >= tiles) break;
      const std::size_t d0 = tile * tile_size;
      const std::size_t d1 = std::min(d0 + tile_size, total);
      const std::size_t i0 =
          have_hint
              ? diagonal_intersection_hinted(a, m, b, n, d0, hint, comp, li)
              : diagonal_intersection(a, m, b, n, d0, comp, li);
      std::size_t i = i0;
      std::size_t j = d0 - i0;
      merge_steps(a, m, b, n, &i, &j,
                  out + static_cast<std::ptrdiff_t>(d0), d1 - d0, comp, li);
      // Consecutive claims are adjacent with high probability: the end of
      // this tile is the perfect hint for the next one's start.
      hint = i;
      have_hint = true;
    }
  });
}

/// Convenience vector front-end.
template <typename T, typename Comp = std::less<>>
std::vector<T> tiled_parallel_merge(const std::vector<T>& a,
                                    const std::vector<T>& b,
                                    std::size_t tile_size = 4096,
                                    Executor exec = {}, Comp comp = {}) {
  std::vector<T> out(a.size() + b.size());
  tiled_parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                       tile_size, exec, comp);
  return out;
}

}  // namespace mp
