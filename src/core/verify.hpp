#pragma once
/// \file verify.hpp
/// Verification utilities: O(N) checkers that an output range really is
/// the (stable) merge of two inputs.
///
/// Downstream users integrating a parallel merge into a larger system
/// want a cheap independent oracle — "is this buffer exactly the merge of
/// those two?" — for tests and canary checks. Sorting alone is not enough
/// (a sorted permutation of the wrong multiset passes), and multiset
/// equality alone is not enough either; the greedy two-pointer witness
/// below checks both at once, and optionally the A-priority stable
/// interleaving.

#include <cstddef>
#include <functional>

namespace mp {

/// True iff [out, out+m+n) is *a* merge of [a, a+m) and [b, b+n): there is
/// a way to interleave the two inputs, preserving each one's internal
/// order, that produces exactly `out`. Implies multiset equality, and —
/// when the inputs are sorted and out is sorted — that out is the merged
/// sequence. O(m+n) time, O(1) space. Greedy two-pointer matching with
/// tie preference for A is complete here because both inputs are sorted:
/// when out[k] could extend either input, consuming the A copy first never
/// blocks a completion (the B copy stays available for the next equal
/// output).
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
bool is_merge_of(IterA a, std::size_t m, IterB b, std::size_t n,
                 OutIter out, Comp comp = {}) {
  auto equal = [&](const auto& x, const auto& y) {
    return !comp(x, y) && !comp(y, x);
  };
  std::size_t i = 0, j = 0;
  for (std::size_t k = 0; k < m + n; ++k) {
    const auto& v = out[k];
    if (i < m && equal(a[i], v)) {
      ++i;
    } else if (j < n && equal(b[j], v)) {
      ++j;
    } else {
      return false;
    }
  }
  return i == m && j == n;
}

/// True iff out is the *stable A-priority* merge: the exact sequence every
/// merge in this library produces. Checks the interleaving rule directly:
/// at each step the element taken is A's head when a[i] <= b[j], B's head
/// when b[j] < a[i]. Requires comparable identity only through `comp`
/// (equal-key elements from the same array are interchangeable under it).
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
bool is_stable_merge_of(IterA a, std::size_t m, IterB b, std::size_t n,
                        OutIter out, Comp comp = {}) {
  std::size_t i = 0, j = 0;
  for (std::size_t k = 0; k < m + n; ++k) {
    const bool take_b = i >= m || (j < n && comp(b[j], a[i]));
    const auto& expected = take_b ? b[j] : a[i];
    if (comp(expected, out[k]) || comp(out[k], expected)) return false;
    if (take_b)
      ++j;
    else
      ++i;
  }
  return true;
}

}  // namespace mp
