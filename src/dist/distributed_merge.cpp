#include "dist/distributed_merge.hpp"

#include <algorithm>
#include <cmath>

#include "core/merge_path.hpp"
#include "core/multiway_merge.hpp"
#include "core/sequential_merge.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mp::dist {
namespace {

constexpr std::uint64_t kElem = sizeof(std::int32_t);

/// Owner shard and in-shard offset of global element index g for an array
/// of `total` elements block-distributed over `ranks`.
struct Location {
  unsigned rank;
  std::size_t offset;
};

Location locate(std::size_t g, std::size_t total, unsigned ranks) {
  // Block distribution boundaries are floor(r*total/ranks); find r with
  // begin(r) <= g < begin(r+1).
  unsigned lo = 0, hi = ranks - 1;
  while (lo < hi) {
    const unsigned mid = (lo + hi + 1) / 2;
    if (static_cast<std::size_t>(mid) * total / ranks <= g)
      lo = mid;
    else
      hi = mid - 1;
  }
  return {lo, g - static_cast<std::size_t>(lo) * total / ranks};
}

/// Copies global range [lo, hi) out of a block-distributed array,
/// recording one message per touched source shard. Transfers run under
/// the recovery protocol; throws NetError on a persistent partition.
std::vector<std::int32_t> fetch_range(const DistArray& src, std::size_t lo,
                                      std::size_t hi, unsigned dst_rank,
                                      RankNetwork& net) {
  std::vector<std::int32_t> out;
  out.reserve(hi - lo);
  const std::size_t total = src.total();
  const auto ranks = static_cast<unsigned>(src.shards.size());
  std::size_t g = lo;
  while (g < hi) {
    const Location at = locate(g, total, ranks);
    const std::size_t shard_end =
        static_cast<std::size_t>(at.rank + 1) * total / ranks;
    const std::size_t take = std::min(hi, shard_end) - g;
    net.reliable_send(at.rank, dst_rank, take * kElem);
    const auto& shard = src.shards[at.rank];
    out.insert(out.end(),
               shard.begin() + static_cast<std::ptrdiff_t>(at.offset),
               shard.begin() + static_cast<std::ptrdiff_t>(at.offset + take));
    g += take;
  }
  return out;
}

/// Publishes the run's fault/recovery counters into the metrics registry
/// (all-zero stats publish nothing, keeping fault-free runs silent).
void flush_net_metrics(const NetStats& net) {
  auto& registry = obs::MetricsRegistry::instance();
  if (net.faults_injected > 0)
    registry.counter("dist.faults").add(net.faults_injected);
  if (net.resends > 0) registry.counter("dist.resends").add(net.resends);
  if (net.dedup_discards > 0)
    registry.counter("dist.dedup_discards").add(net.dedup_discards);
}

}  // namespace

std::vector<std::int32_t> DistArray::gathered() const {
  std::vector<std::int32_t> out;
  out.reserve(total());
  for (const auto& s : shards) out.insert(out.end(), s.begin(), s.end());
  return out;
}

DistArray distribute(const std::vector<std::int32_t>& values,
                     unsigned ranks) {
  MP_CHECK(ranks >= 1);
  DistArray out;
  out.shards.resize(ranks);
  for (unsigned r = 0; r < ranks; ++r) {
    const std::size_t lo = static_cast<std::size_t>(r) * values.size() / ranks;
    const std::size_t hi =
        static_cast<std::size_t>(r + 1) * values.size() / ranks;
    out.shards[r].assign(values.begin() + static_cast<std::ptrdiff_t>(lo),
                         values.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return out;
}

DistMergeResult merge_path_exchange(const DistArray& a, const DistArray& b,
                                    const NetConfig& config) {
  MP_CHECK(a.shards.size() == b.shards.size());
  const auto ranks = static_cast<unsigned>(a.shards.size());
  obs::Span span("dist.exchange", "ranks", ranks);
  RankNetwork net(ranks, config);
  const auto flat_a = a.gathered();  // stands in for remote probe reads
  const auto flat_b = b.gathered();
  const std::size_t m = flat_a.size(), n = flat_b.size();
  const std::size_t total = m + n;

  // Round 1: every rank's two boundary searches. Each probe is a tiny
  // remote read from the owner of the probed element; charge 8 bytes per
  // probe (index+value). Rank 0's lower bound is free.
  std::vector<PathPoint> cuts(ranks + 1);
  cuts[0] = PathPoint{0, 0};
  cuts[ranks] = PathPoint{m, n};
  for (unsigned r = 1; r < ranks; ++r) {
    OpCounts probes;
    cuts[r] = path_point_on_diagonal(flat_a.data(), m, flat_b.data(), n,
                                     static_cast<std::size_t>(r) * total /
                                         ranks,
                                     std::less<>{}, &probes);
    for (std::uint64_t s = 0; s < probes.search_steps; ++s) {
      // Probe touches one element of A and one of B at data-dependent
      // owners; charge from a representative owner (probe position is
      // data-dependent; owner spread does not change totals).
      net.reliable_send((r + static_cast<unsigned>(s)) % ranks, r, 2 * 8);
    }
  }
  net.end_round();

  // Round 2: the single personalized exchange — rank r pulls exactly the
  // A and B fragments its output slice needs, then merges locally. A
  // NetError inside one rank's pull retries that rank's WHOLE segment
  // (Theorem 14: segments are disjoint, so the re-fetch touches no other
  // rank's output); a partition outliving segment_retries propagates.
  DistMergeResult result;
  result.merged.shards.resize(ranks);
  for (unsigned r = 0; r < ranks; ++r) {
    const PathPoint lo = cuts[r];
    const PathPoint hi = cuts[r + 1];
    for (unsigned attempt = 0;; ++attempt) {
      try {
        const auto frag_a = fetch_range(a, lo.i, hi.i, r, net);
        const auto frag_b = fetch_range(b, lo.j, hi.j, r, net);
        auto& out = result.merged.shards[r];
        out.resize(frag_a.size() + frag_b.size());
        std::size_t i = 0, j = 0;
        merge_steps(frag_a.data(), frag_a.size(), frag_b.data(),
                    frag_b.size(), &i, &j, out.data(), out.size());
        break;
      } catch (const NetError&) {
        if (attempt >= net.config().segment_retries) {
          obs::flight_report_degraded("dist.permanent");
          throw;
        }
        obs::Span::instant("dist.segment_retry", "rank", r);
        result.merged.shards[r].clear();
      }
    }
  }
  net.end_round();
  result.net = net.stats();
  flush_net_metrics(result.net);
  return result;
}

DistMergeResult tree_merge(const DistArray& a, const DistArray& b,
                           const NetConfig& config) {
  MP_CHECK(a.shards.size() == b.shards.size());
  const auto ranks = static_cast<unsigned>(a.shards.size());
  obs::Span span("dist.tree", "ranks", ranks);
  RankNetwork net(ranks, config);

  // Each rank first merges its local A and B shards (no traffic). Note
  // these per-rank runs are NOT aligned between A and B, which is exactly
  // why a naive distributed merge needs the full tree.
  std::vector<std::vector<std::int32_t>> runs(ranks);
  for (unsigned r = 0; r < ranks; ++r) {
    runs[r].resize(a.shards[r].size() + b.shards[r].size());
    std::size_t i = 0, j = 0;
    merge_steps(a.shards[r].data(), a.shards[r].size(), b.shards[r].data(),
                b.shards[r].size(), &i, &j, runs[r].data(), runs[r].size());
  }

  // log2(p) rounds: rank r + 2^d ships its run to rank r, which merges.
  for (unsigned stride = 1; stride < ranks; stride <<= 1) {
    for (unsigned r = 0; r + stride < ranks; r += 2 * stride) {
      const unsigned src = r + stride;
      net.reliable_send(src, r, runs[src].size() * kElem);
      std::vector<std::int32_t> merged(runs[r].size() + runs[src].size());
      std::size_t i = 0, j = 0;
      merge_steps(runs[r].data(), runs[r].size(), runs[src].data(),
                  runs[src].size(), &i, &j, merged.data(), merged.size());
      runs[r] = std::move(merged);
      runs[src].clear();
    }
    net.end_round();
  }

  // Scatter the result back into block distribution.
  DistMergeResult result;
  result.merged.shards.resize(ranks);
  const std::size_t total = runs[0].size();
  for (unsigned r = 0; r < ranks; ++r) {
    const std::size_t lo = static_cast<std::size_t>(r) * total / ranks;
    const std::size_t hi = static_cast<std::size_t>(r + 1) * total / ranks;
    result.merged.shards[r].assign(
        runs[0].begin() + static_cast<std::ptrdiff_t>(lo),
        runs[0].begin() + static_cast<std::ptrdiff_t>(hi));
    net.reliable_send(0, r, (hi - lo) * kElem);
  }
  net.end_round();
  result.net = net.stats();
  flush_net_metrics(result.net);
  return result;
}

DistMergeResult gather_at_root(const DistArray& a, const DistArray& b,
                               const NetConfig& config) {
  MP_CHECK(a.shards.size() == b.shards.size());
  const auto ranks = static_cast<unsigned>(a.shards.size());
  obs::Span span("dist.gather", "ranks", ranks);
  RankNetwork net(ranks, config);

  for (unsigned r = 1; r < ranks; ++r) {
    net.reliable_send(r, 0, (a.shards[r].size() + b.shards[r].size()) * kElem);
  }
  net.end_round();

  const auto flat_a = a.gathered();
  const auto flat_b = b.gathered();
  std::vector<std::int32_t> merged(flat_a.size() + flat_b.size());
  std::size_t i = 0, j = 0;
  merge_steps(flat_a.data(), flat_a.size(), flat_b.data(), flat_b.size(),
              &i, &j, merged.data(), merged.size());

  DistMergeResult result;
  result.merged = distribute(merged, ranks);
  for (unsigned r = 1; r < ranks; ++r)
    net.reliable_send(0, r, result.merged.shards[r].size() * kElem);
  net.end_round();
  result.net = net.stats();
  flush_net_metrics(result.net);
  return result;
}

DistMergeResult distributed_sort(const DistArray& unsorted,
                                 const NetConfig& config) {
  const auto ranks = static_cast<unsigned>(unsorted.shards.size());
  obs::Span span("dist.sort", "ranks", ranks);
  RankNetwork net(ranks, config);

  // Local sorts (no traffic).
  std::vector<std::vector<std::int32_t>> runs = unsorted.shards;
  for (auto& run : runs) std::sort(run.begin(), run.end());
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();

  // Splitter phase. Numerically the splits are computed here with
  // multiway_select (exact, and what the local data structures support);
  // the COMMUNICATION is charged as the protocol a distributed
  // implementation would run: every splitter owner bisects the 32-bit
  // value domain concurrently — per round it broadcasts a pivot and every
  // rank answers with its local rank count (8 bytes each way). 32 rounds
  // for 32-bit keys, all p-1 bisections overlapped.
  std::vector<std::span<const std::int32_t>> views;
  views.reserve(ranks);
  for (const auto& run : runs) views.emplace_back(run.data(), run.size());
  std::vector<std::vector<std::size_t>> bounds(ranks + 1);
  bounds[0].assign(ranks, 0);
  for (unsigned r = 1; r < ranks; ++r) {
    bounds[r] = multiway_select(
        std::span<const std::span<const std::int32_t>>(views),
        static_cast<std::size_t>(r) * total / ranks);
  }
  bounds[ranks].resize(ranks);
  for (unsigned src = 0; src < ranks; ++src)
    bounds[ranks][src] = runs[src].size();
  if (ranks > 1) {
    for (unsigned round = 0; round < 32; ++round) {
      for (unsigned driver = 1; driver < ranks; ++driver) {
        for (unsigned src = 0; src < ranks; ++src) {
          if (src == driver) continue;
          net.reliable_send(driver, src, 8);  // pivot
          net.reliable_send(src, driver, 8);  // local rank count
        }
      }
      net.end_round();
    }
  }

  // Round 2: personalized exchange + local k-way merge per rank.
  DistMergeResult result;
  result.merged.shards.resize(ranks);
  for (unsigned dst = 0; dst < ranks; ++dst) {
    std::vector<std::vector<std::int32_t>> fragments(ranks);
    for (unsigned src = 0; src < ranks; ++src) {
      const std::size_t lo = bounds[dst][src];
      const std::size_t hi = bounds[dst + 1][src];
      if (lo == hi) continue;
      net.reliable_send(src, dst, (hi - lo) * kElem);
      fragments[src].assign(
          runs[src].begin() + static_cast<std::ptrdiff_t>(lo),
          runs[src].begin() + static_cast<std::ptrdiff_t>(hi));
    }
    std::vector<LoserTree<std::int32_t>::Cursor> cursors(ranks);
    std::size_t out_size = 0;
    for (unsigned src = 0; src < ranks; ++src) {
      cursors[src] = {fragments[src].data(),
                      fragments[src].data() + fragments[src].size()};
      out_size += fragments[src].size();
    }
    LoserTree<std::int32_t> tree(std::move(cursors));
    auto& out = result.merged.shards[dst];
    out.resize(out_size);
    tree.pop_n(out.data(), out_size);
  }
  net.end_round();
  result.net = net.stats();
  flush_net_metrics(result.net);
  return result;
}

}  // namespace mp::dist
