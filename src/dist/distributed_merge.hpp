#pragma once
/// \file distributed_merge.hpp
/// Distributed-memory merging on the simulated rank network (experiment
/// E16): three algorithms for merging two sorted arrays that start
/// block-distributed across p ranks and must end block-distributed.
///
///  - merge-path exchange: every rank computes its output slice's
///    co-ranks (the paper's diagonal search — in MPI terms a handful of
///    remote probes), then a single personalized exchange ships each rank
///    exactly the input fragments its slice needs. Receive volume is
///    perfectly balanced at ~N/p per rank and total traffic is <= N
///    elements, in ONE round.
///  - tree merge: the classic log p rounds of pairwise merges; each round
///    ships one partner's whole run to the other, so total traffic is
///    ~(N/2)·log p and the later rounds concentrate load on few ranks.
///  - gather at root: ship everything to rank 0, merge, scatter — 2N
///    traffic with an N-byte hotspot at the root.
///
/// All three really move the data between per-rank vectors (correctness is
/// testable), with every transfer priced by the RankNetwork.
///
/// Fault behaviour: when the NetConfig carries a fault::FaultPlan, every
/// transfer goes through RankNetwork::reliable_send — drops are resent,
/// duplicates discarded by sequence number, reordering absorbed — so the
/// merged result is byte-identical to the fault-free run. merge_path
/// additionally retries a whole rank segment after a NetError (up to
/// NetConfig::segment_retries): output segments are disjoint (the paper's
/// Theorem 14), so re-fetching one rank's fragments cannot corrupt any
/// other rank's output. A partition that outlives every retry surfaces as
/// the typed NetError, never an abort.

#include <cstdint>
#include <vector>

#include "dist/netsim.hpp"

namespace mp::dist {

/// A block-distributed sorted array: shard r holds the global range
/// [r*n/p, (r+1)*n/p) of the (conceptually concatenated, globally sorted)
/// array.
struct DistArray {
  std::vector<std::vector<std::int32_t>> shards;

  std::size_t total() const {
    std::size_t t = 0;
    for (const auto& s : shards) t += s.size();
    return t;
  }
  /// Flat copy (for verification).
  std::vector<std::int32_t> gathered() const;
};

/// Splits a sorted vector into p balanced shards.
DistArray distribute(const std::vector<std::int32_t>& values,
                     unsigned ranks);

/// The result of a distributed merge: the merged array, block-distributed,
/// plus the traffic it cost.
struct DistMergeResult {
  DistArray merged;
  NetStats net;
};

DistMergeResult merge_path_exchange(const DistArray& a, const DistArray& b,
                                    const NetConfig& config = {});

DistMergeResult tree_merge(const DistArray& a, const DistArray& b,
                           const NetConfig& config = {});

DistMergeResult gather_at_root(const DistArray& a, const DistArray& b,
                               const NetConfig& config = {});

/// Distributed sort of an UNSORTED block-distributed array, by exact
/// splitters: every rank sorts its block locally, the k-way co-rank
/// (multiway_select, the merge path's k-sequence generalisation) computes
/// the exact global rank boundaries r·N/p across the p sorted runs, and a
/// single personalized exchange ships each rank exactly its output range,
/// which it merges locally with a loser tree. This is sample sort with
/// the sampling replaced by exact selection — perfectly balanced output
/// shards by construction, total traffic <= N, 2 communication rounds.
DistMergeResult distributed_sort(const DistArray& unsorted,
                                 const NetConfig& config = {});

}  // namespace mp::dist
