#include "dist/netsim.hpp"

#include <algorithm>

namespace mp::dist {

const char* to_string(Delivery delivery) {
  switch (delivery) {
    case Delivery::kOk: return "ok";
    case Delivery::kDropped: return "dropped";
    case Delivery::kDuplicated: return "duplicated";
    case Delivery::kReordered: return "reordered";
  }
  return "?";
}

NetError::NetError(unsigned src, unsigned dst, const std::string& what)
    : fault::FaultError(fault::FaultKind::kPartition, what),
      src_(src),
      dst_(dst) {}

RankNetwork::RankNetwork(unsigned ranks, const NetConfig& config)
    : config_(config),
      faults_(config.faults),
      port_send_(ranks, 0.0),
      port_recv_(ranks, 0.0),
      recv_bytes_total_(ranks, 0),
      ack_pending_(static_cast<std::size_t>(ranks) * ranks, 0) {
  MP_CHECK(ranks >= 1);
}

void RankNetwork::charge_ack(unsigned src, unsigned dst) {
  // Header-sized: pure alpha, no payload term. The ack travels dst -> src.
  port_send_[dst] += config_.alpha_us;
  port_recv_[src] += config_.alpha_us;
  ++stats_.acks;
}

void RankNetwork::note_delivery(unsigned src, unsigned dst) {
  if (config_.ack_window == 0) return;  // acks-are-free legacy model
  if (src == dst) return;               // local moves need no ack
  unsigned& pending = ack_pending_[static_cast<std::size_t>(src) * ranks() +
                                   dst];
  if (++pending >= config_.ack_window) {
    pending = 0;
    charge_ack(src, dst);
  }
}

void RankNetwork::flush_acks() {
  if (config_.ack_window == 0) return;
  for (unsigned src = 0; src < ranks(); ++src) {
    for (unsigned dst = 0; dst < ranks(); ++dst) {
      unsigned& pending =
          ack_pending_[static_cast<std::size_t>(src) * ranks() + dst];
      if (pending == 0) continue;
      pending = 0;
      charge_ack(src, dst);
    }
  }
}

fault::FaultKind RankNetwork::inject(unsigned src, unsigned dst) {
  if constexpr (fault::kFaultCompiledIn) {
    if (faults_ == nullptr) return fault::FaultKind::kNone;
    const fault::FaultKind kind = faults_->decide_send(src, dst);
    if (kind != fault::FaultKind::kNone) ++stats_.faults_injected;
    return kind;
  } else {
    static_cast<void>(src);
    static_cast<void>(dst);
    return fault::FaultKind::kNone;
  }
}

Delivery RankNetwork::send(unsigned src, unsigned dst, std::uint64_t bytes) {
  MP_CHECK(src < ranks() && dst < ranks());
  if (src == dst) return Delivery::kOk;  // local move, no network cost
  round_open_ = true;
  const double cost =
      config_.alpha_us +
      static_cast<double>(bytes) / config_.beta_bytes_per_us;
  switch (inject(src, dst)) {
    case fault::FaultKind::kDrop:
    case fault::FaultKind::kPartition:
      // The sender's NIC pushed the bytes; they just never arrive.
      port_send_[src] += cost;
      ++stats_.drops;
      return Delivery::kDropped;
    case fault::FaultKind::kDuplicate:
      // Both copies traverse the link and land on the receiver.
      port_send_[src] += 2.0 * cost;
      port_recv_[dst] += 2.0 * cost;
      ++stats_.messages;
      stats_.bytes += bytes;
      recv_bytes_total_[dst] += bytes;
      ++stats_.duplicates;
      return Delivery::kDuplicated;
    case fault::FaultKind::kReorder:
      // Delivered, but late: the receiver buffers it past other traffic.
      port_send_[src] += cost;
      port_recv_[dst] += cost + config_.alpha_us;
      ++stats_.messages;
      stats_.bytes += bytes;
      recv_bytes_total_[dst] += bytes;
      ++stats_.reorders;
      return Delivery::kReordered;
    default:
      break;
  }
  port_send_[src] += cost;
  port_recv_[dst] += cost;
  ++stats_.messages;
  stats_.bytes += bytes;
  recv_bytes_total_[dst] += bytes;
  return Delivery::kOk;
}

void RankNetwork::reliable_send(unsigned src, unsigned dst,
                                std::uint64_t bytes) {
  unsigned resends = 0;
  for (;;) {
    switch (send(src, dst, bytes)) {
      case Delivery::kOk:
        note_delivery(src, dst);
        return;
      case Delivery::kDuplicated:
        // The receiver's sequence numbers identify the second copy; it is
        // discarded on arrival. The wasted port time is already charged.
        ++stats_.dedup_discards;
        note_delivery(src, dst);
        return;
      case Delivery::kReordered:
        // Receiver-side buffering reassembles order; charged in send().
        note_delivery(src, dst);
        return;
      case Delivery::kDropped:
        // No ack before the timeout: charge one alpha for the timeout on
        // the sender's port and retransmit.
        if (resends >= config_.max_resend)
          throw NetError(src, dst,
                         "rank " + std::to_string(src) + " -> rank " +
                             std::to_string(dst) + ": no ack after " +
                             std::to_string(resends) +
                             " resends (link partitioned?)");
        port_send_[src] += config_.alpha_us;
        ++stats_.resends;
        ++resends;
        break;
    }
  }
}

void RankNetwork::end_round() {
  if (!round_open_) return;
  // Close every partially filled ack window: the round's cost honestly
  // includes the acks its reliable traffic owes.
  flush_acks();
  double busiest = 0.0;
  for (unsigned r = 0; r < ranks(); ++r) {
    busiest = std::max(busiest, port_send_[r]);
    busiest = std::max(busiest, port_recv_[r]);
    port_send_[r] = 0.0;
    port_recv_[r] = 0.0;
  }
  stats_.modeled_time_us += busiest;
  ++stats_.rounds;
  round_open_ = false;
}

NetStats RankNetwork::stats() const {
  NetStats out = stats_;
  if (round_open_) {
    double busiest = 0.0;
    for (unsigned r = 0; r < ranks(); ++r) {
      busiest = std::max(busiest, port_send_[r]);
      busiest = std::max(busiest, port_recv_[r]);
    }
    out.modeled_time_us += busiest;
    ++out.rounds;
  }
  for (std::uint64_t b : recv_bytes_total_)
    out.max_rank_recv_bytes = std::max(out.max_rank_recv_bytes, b);
  return out;
}

}  // namespace mp::dist
