#include "dist/netsim.hpp"

#include <algorithm>

namespace mp::dist {

RankNetwork::RankNetwork(unsigned ranks, const NetConfig& config)
    : config_(config),
      port_send_(ranks, 0.0),
      port_recv_(ranks, 0.0),
      recv_bytes_total_(ranks, 0) {
  MP_CHECK(ranks >= 1);
}

void RankNetwork::send(unsigned src, unsigned dst, std::uint64_t bytes) {
  MP_CHECK(src < ranks() && dst < ranks());
  if (src == dst) return;  // local move, no network cost
  round_open_ = true;
  const double cost =
      config_.alpha_us +
      static_cast<double>(bytes) / config_.beta_bytes_per_us;
  port_send_[src] += cost;
  port_recv_[dst] += cost;
  ++stats_.messages;
  stats_.bytes += bytes;
  recv_bytes_total_[dst] += bytes;
}

void RankNetwork::end_round() {
  if (!round_open_) return;
  double busiest = 0.0;
  for (unsigned r = 0; r < ranks(); ++r) {
    busiest = std::max(busiest, port_send_[r]);
    busiest = std::max(busiest, port_recv_[r]);
    port_send_[r] = 0.0;
    port_recv_[r] = 0.0;
  }
  stats_.modeled_time_us += busiest;
  ++stats_.rounds;
  round_open_ = false;
}

NetStats RankNetwork::stats() const {
  NetStats out = stats_;
  if (round_open_) {
    double busiest = 0.0;
    for (unsigned r = 0; r < ranks(); ++r) {
      busiest = std::max(busiest, port_send_[r]);
      busiest = std::max(busiest, port_recv_[r]);
    }
    out.modeled_time_us += busiest;
    ++out.rounds;
  }
  for (std::uint64_t b : recv_bytes_total_)
    out.max_rank_recv_bytes = std::max(out.max_rank_recv_bytes, b);
  return out;
}

}  // namespace mp::dist
