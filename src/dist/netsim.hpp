#pragma once
/// \file netsim.hpp
/// Message-passing network simulator (alpha-beta cost model).
///
/// The paper's abstract promises the algorithm "is easily adaptable to
/// additional architectures"; the distributed-memory adaptation is the
/// natural one for HPC clusters (the MPI programming model). This
/// substrate simulates p ranks with private memories connected by a
/// network priced with the standard alpha-beta model:
///
///   cost(message of m bytes) = alpha + m / beta
///
/// Ranks run round-synchronously: within a communication round every rank
/// serialises its own sends and receives (single NIC), rounds end at a
/// barrier, and the round's cost is the busiest rank's port time. This is
/// the textbook LogP-lite model the LLNL MPI material teaches, enough to
/// rank algorithms by communication volume and balance.
///
/// Failure model (src/fault): a RankNetwork can carry a fault::FaultPlan.
/// When attached, each send consults the plan and may be dropped,
/// duplicated, delivered out of order, or blackholed by a link partition.
/// send() reports the Delivery outcome; reliable_send() layers the
/// textbook recovery protocol on top — positive acks with bounded resends
/// for drops, sequence-number dedup for duplicates, reorder buffering —
/// and throws the typed NetError when a partition outlives the resend
/// budget. All recovery costs (wasted port time, extra alphas) are charged
/// to the model, so fault runs are honestly slower, never silently free.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "util/assert.hpp"

namespace mp::dist {

struct NetConfig {
  double alpha_us = 2.0;        ///< per-message latency
  double beta_bytes_per_us = 10000.0;  ///< per-link bandwidth (~10 GB/s)
  /// Optional fault schedule (not owned; nullptr = perfect network).
  fault::FaultPlan* faults = nullptr;
  /// reliable_send gives up (NetError) after this many resends of one
  /// message — the "link is partitioned" detector.
  unsigned max_resend = 16;
  /// Cumulative-ack window of the reliable protocol: the receiver sends one
  /// ack per `ack_window` delivered messages on a flow (plus one closing a
  /// partial window at the round barrier), and each ack costs a real alpha
  /// on both ports. 1 models naive per-message acks; 0 disables ack
  /// accounting (the pre-windowed, acks-are-free model).
  unsigned ack_window = 16;
  /// Protocol-level retries of a whole Merge Path segment exchange after a
  /// NetError (distributed_merge; segments are disjoint so re-fetching one
  /// touches nothing else).
  unsigned segment_retries = 2;
};

struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_rank_recv_bytes = 0;  ///< congestion measure
  double modeled_time_us = 0.0;           ///< sum over rounds of max port time
  std::uint64_t rounds = 0;
  std::uint64_t faults_injected = 0;  ///< all injected network faults
  std::uint64_t drops = 0;            ///< messages lost in flight
  std::uint64_t duplicates = 0;       ///< messages delivered twice
  std::uint64_t reorders = 0;         ///< messages delivered late
  std::uint64_t resends = 0;          ///< retransmissions by reliable_send
  std::uint64_t dedup_discards = 0;   ///< duplicate copies discarded by seq no
  std::uint64_t acks = 0;             ///< window acks sent (not in `messages`)
};

/// What the network did with one send() attempt.
enum class Delivery : std::uint8_t {
  kOk,
  kDropped,     ///< lost; no ack will come
  kDuplicated,  ///< delivered, plus a spurious second copy
  kReordered,   ///< delivered late (after the round's other traffic)
};

const char* to_string(Delivery delivery);

/// Typed network failure: a message could not be delivered within the
/// resend budget (persistent partition). Catchable, never an abort.
class NetError : public fault::FaultError {
 public:
  NetError(unsigned src, unsigned dst, const std::string& what);

  unsigned src() const { return src_; }
  unsigned dst() const { return dst_; }

 private:
  unsigned src_;
  unsigned dst_;
};

/// Records traffic between `ranks` ranks. Self-sends are free (local).
class RankNetwork {
 public:
  RankNetwork(unsigned ranks, const NetConfig& config = {});

  unsigned ranks() const { return static_cast<unsigned>(port_send_.size()); }
  const NetConfig& config() const { return config_; }

  /// Attaches (or detaches, with nullptr) a fault schedule. Prefer the
  /// RAII fault::ScopedInjector over calling this directly.
  void set_fault_plan(fault::FaultPlan* plan) { faults_ = plan; }
  fault::FaultPlan* fault_plan() const { return faults_; }

  /// Records one message inside the current round and reports what the
  /// (possibly faulty) network did with it. Port time is charged even for
  /// drops — the sender's NIC did the work; only the payload goes missing.
  Delivery send(unsigned src, unsigned dst, std::uint64_t bytes);

  /// send() + the recovery protocol: resends dropped messages (ack
  /// timeout modeled as one extra alpha each), discards duplicate copies
  /// by sequence number, and absorbs reordering (receiver-side buffering,
  /// one extra alpha). Throws NetError after config().max_resend resends
  /// of the same message — the persistent-partition case.
  ///
  /// Acks are windowed (config().ack_window): successful deliveries on a
  /// flow accumulate, and every full window costs one ack message (pure
  /// alpha, header-sized) charged to the receiver's send port and the
  /// sender's recv port. end_round() flushes partial windows, so a round's
  /// modeled time always includes the acks its traffic owes.
  void reliable_send(unsigned src, unsigned dst, std::uint64_t bytes);

  /// Ends the current communication round (a barrier): the round costs the
  /// busiest port's time.
  void end_round();

  /// Stats including the (auto-closed) final round.
  NetStats stats() const;

 private:
  NetConfig config_;
  NetStats stats_;
  fault::FaultPlan* faults_ = nullptr;
  std::vector<double> port_send_;  // per-rank accumulated port time, round
  std::vector<double> port_recv_;
  std::vector<std::uint64_t> recv_bytes_total_;
  /// Per-flow (src*ranks+dst) deliveries not yet covered by an ack.
  std::vector<unsigned> ack_pending_;
  bool round_open_ = false;

  /// Consults the plan for this attempt (compiled out under MP_FAULT=0).
  fault::FaultKind inject(unsigned src, unsigned dst);

  /// Counts one reliable delivery on src->dst; charges a window ack when
  /// the window fills.
  void note_delivery(unsigned src, unsigned dst);
  /// One ack message dst->src: alpha on the receiver's send port and the
  /// sender's recv port.
  void charge_ack(unsigned src, unsigned dst);
  /// Acks every partially filled window (round barrier).
  void flush_acks();
};

}  // namespace mp::dist
