#pragma once
/// \file netsim.hpp
/// Message-passing network simulator (alpha-beta cost model).
///
/// The paper's abstract promises the algorithm "is easily adaptable to
/// additional architectures"; the distributed-memory adaptation is the
/// natural one for HPC clusters (the MPI programming model). This
/// substrate simulates p ranks with private memories connected by a
/// network priced with the standard alpha-beta model:
///
///   cost(message of m bytes) = alpha + m / beta
///
/// Ranks run round-synchronously: within a communication round every rank
/// serialises its own sends and receives (single NIC), rounds end at a
/// barrier, and the round's cost is the busiest rank's port time. This is
/// the textbook LogP-lite model the LLNL MPI material teaches, enough to
/// rank algorithms by communication volume and balance.

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace mp::dist {

struct NetConfig {
  double alpha_us = 2.0;        ///< per-message latency
  double beta_bytes_per_us = 10000.0;  ///< per-link bandwidth (~10 GB/s)
};

struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_rank_recv_bytes = 0;  ///< congestion measure
  double modeled_time_us = 0.0;           ///< sum over rounds of max port time
  std::uint64_t rounds = 0;
};

/// Records traffic between `ranks` ranks. Self-sends are free (local).
class RankNetwork {
 public:
  RankNetwork(unsigned ranks, const NetConfig& config = {});

  unsigned ranks() const { return static_cast<unsigned>(port_send_.size()); }

  /// Records one message inside the current round.
  void send(unsigned src, unsigned dst, std::uint64_t bytes);

  /// Ends the current communication round (a barrier): the round costs the
  /// busiest port's time.
  void end_round();

  /// Stats including the (auto-closed) final round.
  NetStats stats() const;

 private:
  NetConfig config_;
  NetStats stats_;
  std::vector<double> port_send_;  // per-rank accumulated port time, round
  std::vector<double> port_recv_;
  std::vector<std::uint64_t> recv_bytes_total_;
  bool round_open_ = false;
};

}  // namespace mp::dist
