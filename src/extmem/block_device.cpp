#include "extmem/block_device.hpp"

#include <cstring>

namespace mp::extmem {

BlockDevice::BlockDevice(const DeviceConfig& config) : config_(config) {
  MP_CHECK(config_.block_bytes > 0);
}

std::uint64_t BlockDevice::allocate(std::uint64_t count) {
  const std::uint64_t first = store_.size();
  store_.resize(store_.size() + count);
  return first;
}

void BlockDevice::note_access(std::uint64_t block) {
  // The very first access is a seek too (last_block_ + 1 would wrap the
  // ~0 sentinel to 0 and silently match block 0).
  if (last_block_ == ~0ull || block != last_block_ + 1) ++stats_.seeks;
  last_block_ = block;
  bytes_moved_ += config_.block_bytes;
}

void BlockDevice::write_block(std::uint64_t block, const void* data,
                              std::uint32_t bytes) {
  MP_CHECK(block < store_.size());
  MP_CHECK(bytes <= config_.block_bytes);
  auto& slot = store_[block];
  slot.assign(config_.block_bytes, 0);
  std::memcpy(slot.data(), data, bytes);
  ++stats_.block_writes;
  note_access(block);
}

void BlockDevice::read_block(std::uint64_t block, void* data,
                             std::uint32_t bytes) {
  MP_CHECK(block < store_.size());
  MP_CHECK(bytes <= config_.block_bytes);
  const auto& slot = store_[block];
  MP_CHECK(!slot.empty());  // reading a never-written block
  std::memcpy(data, slot.data(), bytes);
  ++stats_.block_reads;
  note_access(block);
}

double BlockDevice::modeled_io_us() const {
  return static_cast<double>(stats_.seeks) * config_.seek_us +
         static_cast<double>(bytes_moved_) / config_.bandwidth_bytes_per_us;
}

}  // namespace mp::extmem
