#include "extmem/block_device.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <type_traits>

namespace mp::extmem {

const char* to_string(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kInterrupted: return "interrupted";
    case IoStatus::kShortTransfer: return "short transfer";
    case IoStatus::kNoSpace: return "no space";
    case IoStatus::kMediaError: return "media error";
  }
  return "?";
}

namespace {

fault::FaultKind status_kind(IoStatus status) {
  switch (status) {
    case IoStatus::kInterrupted: return fault::FaultKind::kTransient;
    case IoStatus::kShortTransfer: return fault::FaultKind::kShort;
    case IoStatus::kNoSpace: return fault::FaultKind::kNoSpace;
    case IoStatus::kMediaError: return fault::FaultKind::kMedia;
    case IoStatus::kOk: break;
  }
  return fault::FaultKind::kNone;
}

}  // namespace

IoError::IoError(IoStatus status, std::uint64_t block,
                 const std::string& what)
    : fault::FaultError(status_kind(status), what),
      status_(status),
      block_(block) {}

BlockDevice::BlockDevice(const DeviceConfig& config) : config_(config) {
  MP_CHECK(config_.block_bytes > 0);
}

fault::FaultKind BlockDevice::inject(fault::OpClass op) {
  if constexpr (fault::kFaultCompiledIn) {
    if (faults_ == nullptr) return fault::FaultKind::kNone;
    const fault::FaultKind kind = faults_->decide(op);
    if (kind == fault::FaultKind::kNone) return kind;
    ++stats_.faults_injected;
    if (kind == fault::FaultKind::kLatency)
      charge_latency(faults_->latency_us());
    return kind;
  } else {
    static_cast<void>(op);
    return fault::FaultKind::kNone;
  }
}

std::uint64_t BlockDevice::allocate(std::uint64_t count) {
  if (inject(fault::OpClass::kAllocate) == fault::FaultKind::kNoSpace)
    throw IoError(IoStatus::kNoSpace, store_.size(),
                  "injected ENOSPC allocating " + std::to_string(count) +
                      " block(s)");
  if (config_.max_blocks != 0 && store_.size() + count > config_.max_blocks)
    throw IoError(IoStatus::kNoSpace, store_.size(),
                  "device full: " + std::to_string(store_.size()) + " of " +
                      std::to_string(config_.max_blocks) +
                      " blocks allocated");
  const std::uint64_t first = store_.size();
  store_.resize(store_.size() + count);
  return first;
}

void BlockDevice::note_access(std::uint64_t block) {
  // The very first access is a seek too (last_block_ + 1 would wrap the
  // ~0 sentinel to 0 and silently match block 0).
  if (last_block_ == ~0ull || block != last_block_ + 1) ++stats_.seeks;
  last_block_ = block;
  bytes_moved_ += config_.block_bytes;
}

IoStatus BlockDevice::try_write_block(std::uint64_t block, const void* data,
                                      std::uint32_t bytes) {
  MP_CHECK(block < store_.size());
  MP_CHECK(bytes <= config_.block_bytes);
  auto& slot = store_[block];
  switch (inject(fault::OpClass::kWrite)) {
    case fault::FaultKind::kTransient:
      note_access(block);  // the failed attempt still moved the head
      return IoStatus::kInterrupted;
    case fault::FaultKind::kShort: {
      // A prefix reached the medium but the block is not durable: leave
      // the slot unwritten so a reader cannot see the torn state.
      ++stats_.short_transfers;
      if (!slot.empty()) {
        --live_blocks_;
        std::vector<std::uint8_t>().swap(slot);
      }
      note_access(block);
      return IoStatus::kShortTransfer;
    }
    case fault::FaultKind::kNoSpace:
      return IoStatus::kNoSpace;
    case fault::FaultKind::kMedia:
      return IoStatus::kMediaError;
    default:
      break;
  }
  if (slot.empty()) ++live_blocks_;
  slot.assign(config_.block_bytes, 0);
  std::memcpy(slot.data(), data, bytes);
  ++stats_.block_writes;
  note_access(block);
  realize_transfer();
  return IoStatus::kOk;
}

IoStatus BlockDevice::try_read_block(std::uint64_t block, void* data,
                                     std::uint32_t bytes) {
  MP_CHECK(block < store_.size());
  MP_CHECK(bytes <= config_.block_bytes);
  const auto& slot = store_[block];
  MP_CHECK(!slot.empty());  // reading a never-written block
  switch (inject(fault::OpClass::kRead)) {
    case fault::FaultKind::kTransient:
      note_access(block);
      return IoStatus::kInterrupted;
    case fault::FaultKind::kShort:
      ++stats_.short_transfers;
      note_access(block);
      return IoStatus::kShortTransfer;
    case fault::FaultKind::kNoSpace:  // not meaningful for reads; treat as EIO
    case fault::FaultKind::kMedia:
      return IoStatus::kMediaError;
    default:
      break;
  }
  std::memcpy(data, slot.data(), bytes);
  ++stats_.block_reads;
  note_access(block);
  realize_transfer();
  return IoStatus::kOk;
}

void BlockDevice::realize_transfer() const {
  if (config_.realize_scale <= 0.0) return;
  const double block_us =
      config_.seek_us + static_cast<double>(config_.block_bytes) /
                            config_.bandwidth_bytes_per_us;
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
      block_us * config_.realize_scale));
}

void BlockDevice::release_blocks(std::uint64_t first, std::uint64_t count) {
  const std::uint64_t end =
      std::min<std::uint64_t>(first + count, store_.size());
  for (std::uint64_t b = first; b < end; ++b) {
    auto& slot = store_[b];
    if (slot.empty()) continue;
    std::vector<std::uint8_t>().swap(slot);
    --live_blocks_;
    ++stats_.blocks_released;
  }
}

double BlockDevice::modeled_io_us() const {
  return static_cast<double>(stats_.seeks) * config_.seek_us +
         static_cast<double>(bytes_moved_) / config_.bandwidth_bytes_per_us +
         fault_latency_us_;
}

namespace {

// Device-image serialization. Everything funnels through one running
// FNV-1a checksum so a truncated or bit-flipped image is rejected as a
// whole rather than deserialized into a plausible-but-wrong device.
constexpr std::uint64_t kImageMagic = 0x4d504445564947ull;  // "MPDEVIG"
constexpr std::uint32_t kImageVersion = 1;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < bytes; ++i) h = (h ^ p[i]) * kFnvPrime;
}

void put_raw(std::ostream& out, std::uint64_t& h, const void* data,
             std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  fnv_mix(h, data, bytes);
}

template <typename V>
void put(std::ostream& out, std::uint64_t& h, V value) {
  static_assert(std::is_trivially_copyable_v<V>);
  put_raw(out, h, &value, sizeof(value));
}

void get_raw(std::istream& in, std::uint64_t& h, void* data,
             std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in)
    throw IoError(IoStatus::kMediaError, 0, "device image truncated");
  fnv_mix(h, data, bytes);
}

template <typename V>
V get(std::istream& in, std::uint64_t& h) {
  static_assert(std::is_trivially_copyable_v<V>);
  V value;
  get_raw(in, h, &value, sizeof(value));
  return value;
}

}  // namespace

void BlockDevice::save_image(std::ostream& out,
                             std::uint64_t user_word) const {
  std::uint64_t h = kFnvOffset;
  put(out, h, kImageMagic);
  put(out, h, kImageVersion);
  put(out, h, config_.block_bytes);
  put(out, h, config_.seek_us);
  put(out, h, config_.bandwidth_bytes_per_us);
  put(out, h, config_.max_blocks);
  put(out, h, config_.realize_scale);
  put(out, h, user_word);
  put(out, h, static_cast<std::uint64_t>(store_.size()));
  for (const auto& slot : store_) {
    const std::uint8_t written = slot.empty() ? 0 : 1;
    put(out, h, written);
    if (written) put_raw(out, h, slot.data(), slot.size());
  }
  // The checksum itself is excluded from the hash, naturally.
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  if (!out)
    throw IoError(IoStatus::kMediaError, 0, "device image write failed");
}

BlockDevice BlockDevice::load_image(std::istream& in,
                                    std::uint64_t* user_word) {
  std::uint64_t h = kFnvOffset;
  if (get<std::uint64_t>(in, h) != kImageMagic)
    throw IoError(IoStatus::kMediaError, 0, "device image: bad magic");
  if (get<std::uint32_t>(in, h) != kImageVersion)
    throw IoError(IoStatus::kMediaError, 0,
                  "device image: unsupported version");
  DeviceConfig config;
  config.block_bytes = get<std::uint32_t>(in, h);
  config.seek_us = get<double>(in, h);
  config.bandwidth_bytes_per_us = get<double>(in, h);
  config.max_blocks = get<std::uint64_t>(in, h);
  config.realize_scale = get<double>(in, h);
  const std::uint64_t user = get<std::uint64_t>(in, h);
  const std::uint64_t blocks = get<std::uint64_t>(in, h);
  if (config.block_bytes == 0 ||
      (config.max_blocks != 0 && blocks > config.max_blocks))
    throw IoError(IoStatus::kMediaError, 0, "device image: bad geometry");
  BlockDevice device(config);
  device.store_.resize(blocks);
  for (auto& slot : device.store_) {
    if (get<std::uint8_t>(in, h) == 0) continue;
    slot.resize(config.block_bytes);
    get_raw(in, h, slot.data(), slot.size());
    ++device.live_blocks_;
  }
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in || stored != h)
    throw IoError(IoStatus::kMediaError, 0, "device image: checksum mismatch");
  if (user_word != nullptr) *user_word = user;
  return device;
}

}  // namespace mp::extmem
