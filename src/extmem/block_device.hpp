#pragma once
/// \file block_device.hpp
/// Simulated block storage device for the external-memory experiments.
///
/// The paper cites Aggarwal & Vitter's I/O model ([10] in its references)
/// when motivating cache-efficient merging; this substrate instantiates
/// that model literally: storage is addressed in fixed-size blocks, every
/// transfer moves whole blocks, and the figure of merit is the number of
/// block transfers (plus a simple latency model for a modelled wall time).
/// The backing store is in-memory, so experiments are deterministic and
/// fast while exercising exactly the code paths a disk-backed
/// implementation would (see DESIGN.md §2 on substitutions).
///
/// Failure model (src/fault): a BlockDevice can carry a fault::FaultPlan.
/// When attached, each allocate/read/write consults the plan and may
/// suffer an EINTR-style transient failure, a short transfer, injected
/// latency, ENOSPC, or a permanent media error. The fallible entry points
/// are try_read_block/try_write_block, which report an IoStatus instead of
/// aborting; the legacy read_block/write_block wrappers MP_CHECK success
/// and remain for fault-free callers. Retry policy belongs to consumers
/// (RunReader/RunWriter in run_file.hpp); exhausted retries and permanent
/// faults surface as the typed IoError, never as an abort.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "util/assert.hpp"

namespace mp::extmem {

struct DeviceConfig {
  std::uint32_t block_bytes = 64 * 1024;
  /// Latency model: seek (per transfer) + transfer (per byte).
  double seek_us = 100.0;            // ~HDD-ish seek/settle
  double bandwidth_bytes_per_us = 150.0;  // ~150 MB/s sequential
  /// Capacity in blocks; 0 = unbounded. Allocations past the cap fail with
  /// IoError(kNoSpace) — the honest way to test ENOSPC recovery paths.
  std::uint64_t max_blocks = 0;
  /// When > 0, every successful transfer also *sleeps* for
  /// realize_scale × its modeled cost. Modeled time is a pure sum and so
  /// cannot show overlap; realized time can — the pipeline's
  /// double-buffering bench (E18) runs reads on an I/O thread and measures
  /// the wall-clock win. 0 (the default) keeps every other experiment
  /// instantaneous.
  double realize_scale = 0.0;
};

struct DeviceStats {
  std::uint64_t block_reads = 0;   ///< successful reads only
  std::uint64_t block_writes = 0;  ///< successful writes only
  std::uint64_t seeks = 0;  ///< transfers not contiguous with the previous
  std::uint64_t faults_injected = 0;   ///< failed attempts (all kinds)
  std::uint64_t short_transfers = 0;   ///< partial-transfer attempts
  std::uint64_t blocks_released = 0;   ///< blocks freed via release_blocks

  std::uint64_t transfers() const { return block_reads + block_writes; }
};

/// Outcome of one fallible transfer attempt.
enum class IoStatus : std::uint8_t {
  kOk,
  kInterrupted,    ///< transient (EINTR-style); retrying may succeed
  kShortTransfer,  ///< partial transfer; the whole block must be redone
  kNoSpace,        ///< ENOSPC (permanent)
  kMediaError,     ///< EIO (permanent)
};

const char* to_string(IoStatus status);

/// Typed external-memory I/O failure. Thrown by allocate() on ENOSPC and
/// by the run-file retry loops when attempts are exhausted or the fault is
/// permanent. Catchable, deterministic, and never an abort.
class IoError : public fault::FaultError {
 public:
  IoError(IoStatus status, std::uint64_t block, const std::string& what);

  IoStatus status() const { return status_; }
  std::uint64_t block() const { return block_; }

 private:
  IoStatus status_;
  std::uint64_t block_;
};

/// A growable simulated device. Blocks are identified by index; reading a
/// never-written block is an error (catches run-bookkeeping bugs).
class BlockDevice {
 public:
  explicit BlockDevice(const DeviceConfig& config = {});

  const DeviceConfig& config() const { return config_; }
  const DeviceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DeviceStats{}; }

  /// Attaches (or detaches, with nullptr) a fault schedule. Prefer the
  /// RAII fault::ScopedInjector over calling this directly.
  void set_fault_plan(fault::FaultPlan* plan) { faults_ = plan; }
  fault::FaultPlan* fault_plan() const { return faults_; }

  /// Allocates `count` fresh blocks, returning the first index. Throws
  /// IoError(kNoSpace) past config().max_blocks or on a scripted ENOSPC.
  std::uint64_t allocate(std::uint64_t count);

  /// Fallible transfers: consult the fault plan, report the outcome, and
  /// only count successful attempts in block_reads/block_writes. A failed
  /// write leaves the block unwritten (reading it is an error), so a
  /// caller that ignores a short write cannot silently read garbage.
  IoStatus try_write_block(std::uint64_t block, const void* data,
                           std::uint32_t bytes);
  IoStatus try_read_block(std::uint64_t block, void* data,
                          std::uint32_t bytes);

  /// Infallible wrappers for fault-free callers: MP_CHECK the attempt
  /// succeeded (with no plan attached they cannot fail).
  void write_block(std::uint64_t block, const void* data,
                   std::uint32_t bytes) {
    const IoStatus status = try_write_block(block, data, bytes);
    MP_CHECK(status == IoStatus::kOk);
  }
  void read_block(std::uint64_t block, void* data, std::uint32_t bytes) {
    const IoStatus status = try_read_block(block, data, bytes);
    MP_CHECK(status == IoStatus::kOk);
  }

  /// Frees the backing store of [first, first + count): the blocks become
  /// never-written again and their memory is returned. Recovery paths use
  /// this so an aborted sort leaves no temp-run garbage behind.
  void release_blocks(std::uint64_t first, std::uint64_t count);

  /// Blocks currently holding data (written and not released).
  std::uint64_t live_blocks() const { return live_blocks_; }

  /// Whether `block` currently holds data. The pipeline's manifest loader
  /// uses this to probe checkpoint slots without tripping the
  /// read-of-never-written MP_CHECK.
  bool is_written(std::uint64_t block) const {
    return block < store_.size() && !store_[block].empty();
  }

  /// Serializes the device (config + every written block + one caller
  /// word, checksummed) so a tool process can "crash" — exit — and a later
  /// process can resume against the same storage state. Not a performance
  /// path: the image is a crash-drill artifact. load_image throws
  /// IoError(kMediaError) on a truncated or corrupt image; stats and any
  /// attached fault plan are per-incarnation and start fresh.
  void save_image(std::ostream& out, std::uint64_t user_word) const;
  static BlockDevice load_image(std::istream& in, std::uint64_t* user_word);

  /// Adds modeled time (used for injected latency and retry backoff).
  void charge_latency(double us) { fault_latency_us_ += us; }

  /// Modelled I/O time of the traffic so far (microseconds): every
  /// non-sequential transfer pays a seek; all bytes pay bandwidth; plus
  /// any injected latency and retry backoff.
  double modeled_io_us() const;

  std::uint64_t blocks_allocated() const { return store_.size(); }

 private:
  DeviceConfig config_;
  DeviceStats stats_;
  fault::FaultPlan* faults_ = nullptr;
  std::vector<std::vector<std::uint8_t>> store_;  // empty = never written
  std::uint64_t last_block_ = ~0ull;              // for seek accounting
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t live_blocks_ = 0;
  double fault_latency_us_ = 0.0;

  void note_access(std::uint64_t block);
  /// Sleeps for realize_scale × one block's modeled cost (no-op at 0).
  void realize_transfer() const;
  /// Consults the plan for this attempt; returns the injected fault (or
  /// kNone) after accounting for it. Compiled out under MP_FAULT=0.
  fault::FaultKind inject(fault::OpClass op);
};

}  // namespace mp::extmem
