#pragma once
/// \file block_device.hpp
/// Simulated block storage device for the external-memory experiments.
///
/// The paper cites Aggarwal & Vitter's I/O model ([10] in its references)
/// when motivating cache-efficient merging; this substrate instantiates
/// that model literally: storage is addressed in fixed-size blocks, every
/// transfer moves whole blocks, and the figure of merit is the number of
/// block transfers (plus a simple latency model for a modelled wall time).
/// The backing store is in-memory, so experiments are deterministic and
/// fast while exercising exactly the code paths a disk-backed
/// implementation would (see DESIGN.md §2 on substitutions).

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace mp::extmem {

struct DeviceConfig {
  std::uint32_t block_bytes = 64 * 1024;
  /// Latency model: seek (per transfer) + transfer (per byte).
  double seek_us = 100.0;            // ~HDD-ish seek/settle
  double bandwidth_bytes_per_us = 150.0;  // ~150 MB/s sequential
};

struct DeviceStats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;
  std::uint64_t seeks = 0;  ///< transfers not contiguous with the previous

  std::uint64_t transfers() const { return block_reads + block_writes; }
};

/// A growable simulated device. Blocks are identified by index; reading a
/// never-written block is an error (catches run-bookkeeping bugs).
class BlockDevice {
 public:
  explicit BlockDevice(const DeviceConfig& config = {});

  const DeviceConfig& config() const { return config_; }
  const DeviceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DeviceStats{}; }

  /// Allocates `count` fresh blocks, returning the first index.
  std::uint64_t allocate(std::uint64_t count);

  void write_block(std::uint64_t block, const void* data,
                   std::uint32_t bytes);
  void read_block(std::uint64_t block, void* data, std::uint32_t bytes);

  /// Modelled I/O time of the traffic so far (microseconds): every
  /// non-sequential transfer pays a seek; all bytes pay bandwidth.
  double modeled_io_us() const;

  std::uint64_t blocks_allocated() const { return store_.size(); }

 private:
  DeviceConfig config_;
  DeviceStats stats_;
  std::vector<std::vector<std::uint8_t>> store_;  // empty = never written
  std::uint64_t last_block_ = ~0ull;              // for seek accounting
  std::uint64_t bytes_moved_ = 0;

  void note_access(std::uint64_t block);
};

}  // namespace mp::extmem
