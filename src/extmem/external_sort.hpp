#pragma once
/// \file external_sort.hpp
/// External merge sort on the simulated block device.
///
/// Classic two-phase structure:
///  - Run formation: the input is read in memory-sized chunks of M
///    elements, each sorted *in memory with the paper's parallel merge
///    sort* (all p lanes), and written back as a sorted run — the
///    many-small-arrays regime where the paper's introduction notes
///    parallelism is trivial... except that here each chunk sort itself is
///    the parallel algorithm.
///  - Merge passes: runs are merged `fan_in` at a time (heap-based k-way
///    with stable run-order tie-breaking) until one run remains. With
///    fan-in k = M/B - 1 this meets the Aggarwal-Vitter bound of
///    O(N/B · log_{M/B}(N/M)) block transfers, which the experiment
///    harness (bench/table_external_io) checks against the measured
///    device statistics.
///
/// Fault behaviour (src/fault): every device transfer runs under the
/// bounded retry-with-backoff policy in config.retry, so transient faults
/// (EINTR, short transfers, injected latency) are absorbed and the sort
/// still produces the byte-exact stable result. Permanent faults (ENOSPC,
/// media errors, exhausted retries) surface as the typed IoError — and on
/// the way out every temporary run created so far is released, so a
/// failed sort leaves the device holding exactly the caller's input.
/// Merged source runs are also released after each pass, bounding the
/// device's live footprint at ~2x the data instead of one copy per pass.

#include <cstdint>
#include <queue>
#include <vector>

#include "core/merge_sort.hpp"
#include "extmem/block_device.hpp"
#include "extmem/run_file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::extmem {

struct ExternalSortConfig {
  /// In-memory working set M, in elements. Must hold at least two blocks.
  std::size_t memory_elems = 1 << 20;
  /// Merge fan-in; 0 derives the A-V optimal M/B - 1 (one output buffer).
  std::size_t fan_in = 0;
  /// Executor for the in-memory chunk sorts.
  Executor exec;
  /// Bounded retry for transient device faults (see run_file.hpp).
  fault::RetryPolicy retry;

  template <typename T>
  std::size_t resolve_fan_in(const BlockDevice& device) const {
    if (fan_in > 0) return fan_in < 2 ? 2 : fan_in;
    const std::size_t per_block = device.config().block_bytes / sizeof(T);
    const std::size_t buffers = memory_elems / (per_block ? per_block : 1);
    return buffers > 2 ? buffers - 1 : 2;
  }
};

struct ExternalSortReport {
  std::size_t initial_runs = 0;
  std::size_t merge_passes = 0;
  std::size_t fan_in = 0;
  DeviceStats io;            ///< device stats delta for the whole sort
  double modeled_io_us = 0;  ///< device-model time for the whole sort
  std::uint64_t io_retries = 0;      ///< transient faults absorbed by retry
  std::uint64_t faults_injected = 0; ///< injected faults (all kinds), delta
};

namespace detail {

/// Merges `runs` (stably, lower run index wins ties) into one run.
/// Transient-fault retries are accumulated into *retries. On a permanent
/// fault the partially written output run is abandoned (blocks released)
/// before the IoError propagates.
template <typename T, typename Comp>
RunHandle merge_runs(BlockDevice& device, const std::vector<RunHandle>& runs,
                     Comp comp, const fault::RetryPolicy& retry,
                     std::uint64_t* retries) {
  obs::Span span("xsort.merge", "runs", runs.size());
  std::vector<RunReader<T>> readers;
  readers.reserve(runs.size());
  for (const RunHandle& run : runs) readers.emplace_back(device, run, retry);

  struct Head {
    T value;
    std::size_t run;
  };
  auto later = [&comp](const Head& x, const Head& y) {
    // priority_queue keeps the *largest* on top, so invert: x after y.
    if (comp(y.value, x.value)) return true;
    if (comp(x.value, y.value)) return false;
    return x.run > y.run;  // stable: lower run index first
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heads(later);
  RunWriter<T> writer(device, retry);
  try {
    for (std::size_t r = 0; r < readers.size(); ++r)
      if (!readers[r].empty()) heads.push({readers[r].next(), r});

    while (!heads.empty()) {
      const Head head = heads.top();
      heads.pop();
      writer.append(head.value);
      if (!readers[head.run].empty())
        heads.push({readers[head.run].next(), head.run});
    }
  } catch (const IoError&) {
    writer.abandon();
    throw;
  }
  for (const RunReader<T>& reader : readers) *retries += reader.retries();
  *retries += writer.retries();
  return writer.finish();
}

}  // namespace detail

/// Sorts the `input` run into a new run on the same device. Stable.
/// Throws IoError on a permanent device fault, after releasing every
/// temporary run it created (the input run is the caller's and is kept).
template <typename T, typename Comp = std::less<>>
RunHandle external_sort(BlockDevice& device, RunHandle input,
                        const ExternalSortConfig& config = {},
                        ExternalSortReport* report = nullptr, Comp comp = {}) {
  const std::size_t per_block = device.config().block_bytes / sizeof(T);
  MP_CHECK(config.memory_elems >= 2 * per_block);
  obs::Span sort_span("xsort", "n", input.element_count);
  const DeviceStats before = device.stats();
  const double io_before = device.modeled_io_us();
  std::uint64_t retries = 0;

  // Phase 1: run formation with in-memory parallel merge sorts. On a
  // permanent fault, release the runs formed so far plus the partial one.
  std::vector<RunHandle> runs;
  try {
    RunReader<T> reader(device, input, config.retry);
    RunWriter<T> writer(device, config.retry);
    std::vector<T> chunk;
    chunk.reserve(config.memory_elems);
    try {
      while (!reader.empty()) {
        obs::Span run_span("xsort.run", "chunk", runs.size());
        chunk.clear();
        while (!reader.empty() && chunk.size() < config.memory_elems)
          chunk.push_back(reader.next());
        parallel_merge_sort(chunk.data(), chunk.size(), config.exec, comp);
        writer.append(chunk.data(), chunk.size());
        runs.push_back(writer.finish());
      }
    } catch (const IoError&) {
      writer.abandon();
      throw;
    }
    retries += reader.retries() + writer.retries();
  } catch (const IoError&) {
    for (const RunHandle& run : runs) release_run<T>(device, run);
    throw;
  }
  const std::size_t initial_runs = runs.size();

  // Phase 2: fan-in-way merge passes. Each group's source runs are
  // released once merged (their data lives on in the output run); on a
  // permanent fault the pass's outputs and the not-yet-merged sources are
  // released — Theorem 14's segment disjointness is what makes this
  // abandon-and-release safe: no other run shares the failed one's blocks.
  const std::size_t fan_in = config.resolve_fan_in<T>(device);
  std::size_t passes = 0;
  while (runs.size() > 1) {
    obs::Span pass_span("xsort.pass", "runs", runs.size());
    std::vector<RunHandle> next;
    std::size_t g = 0;
    try {
      for (; g < runs.size(); g += fan_in) {
        const std::size_t end = std::min(g + fan_in, runs.size());
        if (end - g == 1) {
          next.push_back(runs[g]);  // singleton carries over, no I/O
          continue;
        }
        const std::vector<RunHandle> group(
            runs.begin() + static_cast<std::ptrdiff_t>(g),
            runs.begin() + static_cast<std::ptrdiff_t>(end));
        next.push_back(
            detail::merge_runs<T>(device, group, comp, config.retry,
                                  &retries));
        for (const RunHandle& run : group) release_run<T>(device, run);
      }
    } catch (const IoError&) {
      for (const RunHandle& run : next)
        if (run.first_block != input.first_block) release_run<T>(device, run);
      for (; g < runs.size(); ++g)
        if (runs[g].first_block != input.first_block)
          release_run<T>(device, runs[g]);
      throw;
    }
    runs = std::move(next);
    ++passes;
  }

  const DeviceStats after = device.stats();
  if (report) {
    report->initial_runs = initial_runs;
    report->merge_passes = passes;
    report->fan_in = fan_in;
    report->io.block_reads = after.block_reads - before.block_reads;
    report->io.block_writes = after.block_writes - before.block_writes;
    report->io.seeks = after.seeks - before.seeks;
    report->io.faults_injected =
        after.faults_injected - before.faults_injected;
    report->io.short_transfers =
        after.short_transfers - before.short_transfers;
    report->io.blocks_released =
        after.blocks_released - before.blocks_released;
    report->modeled_io_us = device.modeled_io_us() - io_before;
    report->io_retries = retries;
    report->faults_injected = after.faults_injected - before.faults_injected;
  }
  if (retries > 0)
    obs::MetricsRegistry::instance().counter("extmem.retries").add(retries);
  if (after.faults_injected > before.faults_injected)
    obs::MetricsRegistry::instance().counter("extmem.faults").add(
        after.faults_injected - before.faults_injected);
  return runs.empty() ? RunHandle{0, 0} : runs.front();
}

/// Convenience: round-trips a vector through the device (write input run,
/// sort, read back, release both runs). Returns the sorted data; fills
/// `report` if given. On a permanent fault the input run is released too
/// (the caller holds no handle), so failure leaves the device empty.
template <typename T, typename Comp = std::less<>>
std::vector<T> external_sort_vector(BlockDevice& device,
                                    const std::vector<T>& data,
                                    const ExternalSortConfig& config = {},
                                    ExternalSortReport* report = nullptr,
                                    Comp comp = {}) {
  RunWriter<T> writer(device, config.retry);
  RunHandle input;
  try {
    writer.append(data.data(), data.size());
    input = writer.finish();
  } catch (const IoError&) {
    writer.abandon();
    throw;
  }
  RunHandle sorted;
  try {
    sorted = external_sort<T>(device, input, config, report, comp);
    std::vector<T> out;
    out.reserve(data.size());
    RunReader<T> reader(device, sorted, config.retry);
    while (!reader.empty()) out.push_back(reader.next());
    release_run<T>(device, input);
    if (sorted.first_block != input.first_block)
      release_run<T>(device, sorted);
    return out;
  } catch (const IoError&) {
    release_run<T>(device, input);
    if (sorted.element_count > 0 && sorted.first_block != input.first_block)
      release_run<T>(device, sorted);
    throw;
  }
}

}  // namespace mp::extmem
