#pragma once
/// \file external_sort.hpp
/// External merge sort on the simulated block device.
///
/// Classic two-phase structure:
///  - Run formation: the input is read in memory-sized chunks of M
///    elements, each sorted *in memory with the paper's parallel merge
///    sort* (all p lanes), and written back as a sorted run — the
///    many-small-arrays regime where the paper's introduction notes
///    parallelism is trivial... except that here each chunk sort itself is
///    the parallel algorithm.
///  - Merge passes: runs are merged `fan_in` at a time (heap-based k-way
///    with stable run-order tie-breaking) until one run remains. With
///    fan-in k = M/B - 1 this meets the Aggarwal-Vitter bound of
///    O(N/B · log_{M/B}(N/M)) block transfers, which the experiment
///    harness (bench/table_external_io) checks against the measured
///    device statistics.

#include <cstdint>
#include <queue>
#include <vector>

#include "core/merge_sort.hpp"
#include "extmem/block_device.hpp"
#include "extmem/run_file.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::extmem {

struct ExternalSortConfig {
  /// In-memory working set M, in elements. Must hold at least two blocks.
  std::size_t memory_elems = 1 << 20;
  /// Merge fan-in; 0 derives the A-V optimal M/B - 1 (one output buffer).
  std::size_t fan_in = 0;
  /// Executor for the in-memory chunk sorts.
  Executor exec;

  template <typename T>
  std::size_t resolve_fan_in(const BlockDevice& device) const {
    if (fan_in > 0) return fan_in < 2 ? 2 : fan_in;
    const std::size_t per_block = device.config().block_bytes / sizeof(T);
    const std::size_t buffers = memory_elems / (per_block ? per_block : 1);
    return buffers > 2 ? buffers - 1 : 2;
  }
};

struct ExternalSortReport {
  std::size_t initial_runs = 0;
  std::size_t merge_passes = 0;
  std::size_t fan_in = 0;
  DeviceStats io;            ///< device stats delta for the whole sort
  double modeled_io_us = 0;  ///< device-model time for the whole sort
};

namespace detail {

/// Merges `runs` (stably, lower run index wins ties) into one run.
template <typename T, typename Comp>
RunHandle merge_runs(BlockDevice& device, const std::vector<RunHandle>& runs,
                     Comp comp) {
  std::vector<RunReader<T>> readers;
  readers.reserve(runs.size());
  for (const RunHandle& run : runs) readers.emplace_back(device, run);

  struct Head {
    T value;
    std::size_t run;
  };
  auto later = [&comp](const Head& x, const Head& y) {
    // priority_queue keeps the *largest* on top, so invert: x after y.
    if (comp(y.value, x.value)) return true;
    if (comp(x.value, y.value)) return false;
    return x.run > y.run;  // stable: lower run index first
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heads(later);
  for (std::size_t r = 0; r < readers.size(); ++r)
    if (!readers[r].empty()) heads.push({readers[r].next(), r});

  RunWriter<T> writer(device);
  while (!heads.empty()) {
    const Head head = heads.top();
    heads.pop();
    writer.append(head.value);
    if (!readers[head.run].empty())
      heads.push({readers[head.run].next(), head.run});
  }
  return writer.finish();
}

}  // namespace detail

/// Sorts the `input` run into a new run on the same device. Stable.
template <typename T, typename Comp = std::less<>>
RunHandle external_sort(BlockDevice& device, RunHandle input,
                        const ExternalSortConfig& config = {},
                        ExternalSortReport* report = nullptr, Comp comp = {}) {
  const std::size_t per_block = device.config().block_bytes / sizeof(T);
  MP_CHECK(config.memory_elems >= 2 * per_block);
  const DeviceStats before = device.stats();
  const double io_before = device.modeled_io_us();

  // Phase 1: run formation with in-memory parallel merge sorts.
  std::vector<RunHandle> runs;
  {
    RunReader<T> reader(device, input);
    RunWriter<T> writer(device);
    std::vector<T> chunk;
    chunk.reserve(config.memory_elems);
    while (!reader.empty()) {
      chunk.clear();
      while (!reader.empty() && chunk.size() < config.memory_elems)
        chunk.push_back(reader.next());
      parallel_merge_sort(chunk.data(), chunk.size(), config.exec, comp);
      writer.append(chunk.data(), chunk.size());
      runs.push_back(writer.finish());
    }
  }
  const std::size_t initial_runs = runs.size();

  // Phase 2: fan-in-way merge passes.
  const std::size_t fan_in = config.resolve_fan_in<T>(device);
  std::size_t passes = 0;
  while (runs.size() > 1) {
    std::vector<RunHandle> next;
    for (std::size_t g = 0; g < runs.size(); g += fan_in) {
      const std::size_t end = std::min(g + fan_in, runs.size());
      if (end - g == 1) {
        next.push_back(runs[g]);  // singleton carries over, no I/O
        continue;
      }
      next.push_back(detail::merge_runs<T>(
          device,
          std::vector<RunHandle>(runs.begin() + static_cast<std::ptrdiff_t>(g),
                                 runs.begin() + static_cast<std::ptrdiff_t>(end)),
          comp));
    }
    runs = std::move(next);
    ++passes;
  }

  if (report) {
    report->initial_runs = initial_runs;
    report->merge_passes = passes;
    report->fan_in = fan_in;
    const DeviceStats after = device.stats();
    report->io.block_reads = after.block_reads - before.block_reads;
    report->io.block_writes = after.block_writes - before.block_writes;
    report->io.seeks = after.seeks - before.seeks;
    report->modeled_io_us = device.modeled_io_us() - io_before;
  }
  return runs.empty() ? RunHandle{0, 0} : runs.front();
}

/// Convenience: round-trips a vector through the device (write input run,
/// sort, read back). Returns the sorted data; fills `report` if given.
template <typename T, typename Comp = std::less<>>
std::vector<T> external_sort_vector(BlockDevice& device,
                                    const std::vector<T>& data,
                                    const ExternalSortConfig& config = {},
                                    ExternalSortReport* report = nullptr,
                                    Comp comp = {}) {
  RunWriter<T> writer(device);
  writer.append(data.data(), data.size());
  const RunHandle input = writer.finish();
  const RunHandle sorted =
      external_sort<T>(device, input, config, report, comp);
  std::vector<T> out;
  out.reserve(data.size());
  RunReader<T> reader(device, sorted);
  while (!reader.empty()) out.push_back(reader.next());
  return out;
}

}  // namespace mp::extmem
