#pragma once
/// \file run_file.hpp
/// Sorted-run storage on a BlockDevice: sequential writers and buffered
/// readers with block-granular I/O. Element type is trivially copyable
/// (the on-"disk" format is raw little-endian memory, as an internal
/// sort-spill format would be).
///
/// Fault handling: both endpoints drive the device through its fallible
/// try_* API with a bounded retry-with-backoff loop (fault::RetryPolicy).
/// Transient faults (EINTR, short transfers) are retried with modeled
/// exponential backoff charged to the device clock; permanent faults
/// (ENOSPC, media errors) and exhausted retries surface as the typed
/// IoError. A writer abandoned mid-run releases every block it flushed,
/// so failed operations leave no garbage on the device.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "extmem/block_device.hpp"
#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mp::extmem {

/// Descriptor of one run on the device.
struct RunHandle {
  std::uint64_t first_block = 0;
  std::uint64_t element_count = 0;

  friend bool operator==(const RunHandle&, const RunHandle&) = default;
};

namespace detail {

/// Shared retry loop: attempts `op()` (returning IoStatus) up to
/// max_attempts times, charging doubled modeled backoff between tries.
/// Returns the number of retries performed; throws IoError on a permanent
/// status or when attempts run out. With retry.jitter > 0 and a fault plan
/// attached, each backoff is scaled by a seeded draw from
/// [1 - jitter, 1] (the plan's jitter stream, independent of its decision
/// stream) so lanes that fault in lockstep de-synchronize their retries.
template <typename Op>
std::uint64_t retry_io(BlockDevice& device, const fault::RetryPolicy& retry,
                       std::uint64_t block, const char* what, Op op) {
  double backoff = retry.backoff_us;
  const unsigned attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  for (unsigned attempt = 1;; ++attempt) {
    const IoStatus status = op();
    if (status == IoStatus::kOk) return attempt - 1;
    if (status == IoStatus::kNoSpace || status == IoStatus::kMediaError ||
        attempt >= attempts) {
      obs::flight_report_degraded("extmem.permanent");
      throw IoError(status, block,
                    std::string(what) + " block " + std::to_string(block) +
                        ": " + to_string(status) +
                        (status == IoStatus::kInterrupted ||
                                 status == IoStatus::kShortTransfer
                             ? " (retries exhausted)"
                             : ""));
    }
    obs::Span::instant("xsort.retry", "block", block);
    double wait = backoff;
    if (retry.jitter > 0.0) {
      if (fault::FaultPlan* plan = device.fault_plan())
        wait *= 1.0 - retry.jitter * plan->jitter01();
    }
    device.charge_latency(wait);
    backoff *= 2.0;
  }
}

}  // namespace detail

/// Streams elements out to freshly allocated blocks.
template <typename T>
class RunWriter {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit RunWriter(BlockDevice& device, fault::RetryPolicy retry = {})
      : device_(&device), retry_(retry) {
    buffer_.reserve(elems_per_block());
  }

  std::size_t elems_per_block() const {
    return device_->config().block_bytes / sizeof(T);
  }

  void append(const T& value) {
    buffer_.push_back(value);
    if (buffer_.size() == elems_per_block()) flush_block();
  }

  void append(const T* values, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) append(values[i]);
  }

  /// Flushes the tail and returns the finished run's handle. The writer
  /// may be reused for a new run afterwards.
  RunHandle finish() {
    if (!buffer_.empty()) flush_block();
    RunHandle handle{first_block_, written_};
    first_block_ = kUnset;
    written_ = 0;
    blocks_flushed_ = 0;
    return handle;
  }

  /// Abandons the in-progress run: drops buffered data and releases every
  /// block already flushed for it. Recovery paths call this so a failed
  /// sort leaves no partial run behind. The writer is reusable afterwards.
  void abandon() {
    buffer_.clear();
    if (first_block_ != kUnset)
      device_->release_blocks(first_block_, blocks_flushed_);
    first_block_ = kUnset;
    written_ = 0;
    blocks_flushed_ = 0;
  }

  /// Transient-fault retries performed over this writer's lifetime.
  std::uint64_t retries() const { return retries_; }

 private:
  static constexpr std::uint64_t kUnset = ~0ull;

  void flush_block() {
    // allocate() may throw IoError(kNoSpace); the caller's recovery path
    // abandons the writer, releasing earlier blocks of this run.
    const std::uint64_t block = device_->allocate(1);
    if (first_block_ == kUnset) first_block_ = block;
    retries_ += detail::retry_io(
        *device_, retry_, block, "write", [&] {
          return device_->try_write_block(
              block, buffer_.data(),
              static_cast<std::uint32_t>(buffer_.size() * sizeof(T)));
        });
    ++blocks_flushed_;
    written_ += buffer_.size();
    buffer_.clear();
  }

  BlockDevice* device_;
  fault::RetryPolicy retry_;
  std::vector<T> buffer_;
  std::uint64_t first_block_ = kUnset;
  std::uint64_t written_ = 0;
  std::uint64_t blocks_flushed_ = 0;
  std::uint64_t retries_ = 0;
};

/// Buffered sequential reader over a run. Holds one block in memory —
/// the B-sized input buffer of the Aggarwal-Vitter merge.
template <typename T>
class RunReader {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  RunReader(BlockDevice& device, RunHandle handle,
            fault::RetryPolicy retry = {})
      : device_(&device), handle_(handle), retry_(retry) {
    buffer_.resize(elems_per_block());
  }

  /// Windowed reader over elements [offset, offset + count) of the run.
  /// The pipeline's resume path and co-rank fragment fetches start
  /// mid-run; the first refill lands mid-block and the cursor picks up
  /// from there.
  RunReader(BlockDevice& device, RunHandle handle, std::uint64_t offset,
            std::uint64_t count, fault::RetryPolicy retry = {})
      : RunReader(device, handle, retry) {
    MP_ASSERT(offset + count <= handle.element_count);
    consumed_ = offset;
    handle_.element_count = offset + count;
  }

  std::size_t elems_per_block() const {
    return device_->config().block_bytes / sizeof(T);
  }

  bool empty() const { return consumed_ == handle_.element_count; }
  std::uint64_t remaining() const { return handle_.element_count - consumed_; }

  const T& peek() {
    MP_ASSERT(!empty());
    refill_if_needed();
    return buffer_[cursor_];
  }

  T next() {
    const T value = peek();
    ++cursor_;
    ++consumed_;
    return value;
  }

  /// Transient-fault retries performed over this reader's lifetime.
  std::uint64_t retries() const { return retries_; }

 private:
  void refill_if_needed() {
    if (cursor_ < valid_) return;
    const std::uint64_t block_index = consumed_ / elems_per_block();
    const std::uint64_t in_block = consumed_ % elems_per_block();
    const std::uint64_t block = handle_.first_block + block_index;
    retries_ += detail::retry_io(
        *device_, retry_, block, "read", [&] {
          return device_->try_read_block(
              block, buffer_.data(),
              static_cast<std::uint32_t>(buffer_.size() * sizeof(T)));
        });
    valid_ = std::min<std::uint64_t>(
        elems_per_block(),
        handle_.element_count - block_index * elems_per_block());
    cursor_ = static_cast<std::size_t>(in_block);
  }

  BlockDevice* device_;
  RunHandle handle_;
  fault::RetryPolicy retry_;
  std::vector<T> buffer_;
  std::size_t cursor_ = 0;
  std::size_t valid_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t retries_ = 0;
};

/// Releases the device blocks a finished run occupies (recovery/cleanup).
template <typename T>
void release_run(BlockDevice& device, RunHandle handle) {
  const std::uint64_t per_block = device.config().block_bytes / sizeof(T);
  const std::uint64_t blocks =
      (handle.element_count + per_block - 1) / per_block;
  device.release_blocks(handle.first_block, blocks);
}

}  // namespace mp::extmem
