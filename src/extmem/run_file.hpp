#pragma once
/// \file run_file.hpp
/// Sorted-run storage on a BlockDevice: sequential writers and buffered
/// readers with block-granular I/O. Element type is trivially copyable
/// (the on-"disk" format is raw little-endian memory, as an internal
/// sort-spill format would be).

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "extmem/block_device.hpp"
#include "util/assert.hpp"

namespace mp::extmem {

/// Descriptor of one run on the device.
struct RunHandle {
  std::uint64_t first_block = 0;
  std::uint64_t element_count = 0;
};

/// Streams elements out to freshly allocated blocks.
template <typename T>
class RunWriter {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit RunWriter(BlockDevice& device) : device_(&device) {
    buffer_.reserve(elems_per_block());
  }

  std::size_t elems_per_block() const {
    return device_->config().block_bytes / sizeof(T);
  }

  void append(const T& value) {
    buffer_.push_back(value);
    if (buffer_.size() == elems_per_block()) flush_block();
  }

  void append(const T* values, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) append(values[i]);
  }

  /// Flushes the tail and returns the finished run's handle. The writer
  /// may be reused for a new run afterwards.
  RunHandle finish() {
    if (!buffer_.empty()) flush_block();
    RunHandle handle{first_block_, written_};
    first_block_ = kUnset;
    written_ = 0;
    return handle;
  }

 private:
  static constexpr std::uint64_t kUnset = ~0ull;

  void flush_block() {
    const std::uint64_t block = device_->allocate(1);
    if (first_block_ == kUnset) first_block_ = block;
    device_->write_block(block, buffer_.data(),
                         static_cast<std::uint32_t>(buffer_.size() *
                                                    sizeof(T)));
    written_ += buffer_.size();
    buffer_.clear();
  }

  BlockDevice* device_;
  std::vector<T> buffer_;
  std::uint64_t first_block_ = kUnset;
  std::uint64_t written_ = 0;
};

/// Buffered sequential reader over a run. Holds one block in memory —
/// the B-sized input buffer of the Aggarwal-Vitter merge.
template <typename T>
class RunReader {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  RunReader(BlockDevice& device, RunHandle handle)
      : device_(&device), handle_(handle) {
    buffer_.resize(elems_per_block());
  }

  std::size_t elems_per_block() const {
    return device_->config().block_bytes / sizeof(T);
  }

  bool empty() const { return consumed_ == handle_.element_count; }
  std::uint64_t remaining() const { return handle_.element_count - consumed_; }

  const T& peek() {
    MP_ASSERT(!empty());
    refill_if_needed();
    return buffer_[cursor_];
  }

  T next() {
    const T value = peek();
    ++cursor_;
    ++consumed_;
    return value;
  }

 private:
  void refill_if_needed() {
    if (cursor_ < valid_) return;
    const std::uint64_t block_index = consumed_ / elems_per_block();
    const std::uint64_t in_block = consumed_ % elems_per_block();
    device_->read_block(handle_.first_block + block_index, buffer_.data(),
                        static_cast<std::uint32_t>(buffer_.size() *
                                                   sizeof(T)));
    valid_ = std::min<std::uint64_t>(
        elems_per_block(),
        handle_.element_count - block_index * elems_per_block());
    cursor_ = static_cast<std::size_t>(in_block);
  }

  BlockDevice* device_;
  RunHandle handle_;
  std::vector<T> buffer_;
  std::size_t cursor_ = 0;
  std::size_t valid_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace mp::extmem
