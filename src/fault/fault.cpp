#include "fault/fault.hpp"

namespace mp::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kShort: return "short";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kNoSpace: return "nospace";
    case FaultKind::kMedia: return "media";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLaneThrow: return "lane_throw";
    case FaultKind::kLaneAbandon: return "lane_abandon";
    case FaultKind::kLaneDelay: return "lane_delay";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kKindCount: break;
  }
  return "?";
}

FaultPlan::FaultPlan(const FaultConfig& config)
    : config_(config),
      rng_(config.seed),
      // Independent stream for backoff jitter: derived from the same seed
      // (replayable) but never consulted by resolve(), so jitter draws
      // cannot shift the decision stream or schedule_hash.
      jitter_rng_(config.seed ^ 0x6a09e667f3bcc909ULL),
      seeded_(true) {}

void FaultPlan::fail_op(std::uint64_t index, FaultKind kind) {
  script_[index] = kind;
}

void FaultPlan::fail_from(std::uint64_t index, FaultKind kind) {
  permanent_from_ = index;
  permanent_kind_ = kind;
}

void FaultPlan::partition_link(unsigned src, unsigned dst, std::uint64_t from,
                               std::uint64_t length) {
  partitions_.push_back(Partition{src, dst, from, length});
}

FaultKind FaultPlan::random_draw(OpClass op) {
  // One uniform draw decides *whether*, a second *which*, so the stream
  // position advances identically for every op class and rate.
  if (!seeded_ || config_.rate <= 0.0) return FaultKind::kNone;
  const bool fires = rng_.uniform01() < config_.rate;
  const std::uint64_t pick = rng_.bounded(3);
  if (!fires) return FaultKind::kNone;
  switch (op) {
    case OpClass::kRead:
    case OpClass::kWrite:
      return pick == 0   ? FaultKind::kTransient
             : pick == 1 ? FaultKind::kShort
                         : FaultKind::kLatency;
    case OpClass::kAllocate:
      // ENOSPC is never drawn randomly: random schedules stay recoverable
      // by construction (the retryable kinds); permanence is scripted.
      return FaultKind::kNone;
    case OpClass::kSend:
      return pick == 0   ? FaultKind::kDrop
             : pick == 1 ? FaultKind::kDuplicate
                         : FaultKind::kReorder;
    case OpClass::kLane:
      // All three are recoverable: throws and abandons re-run the lane's
      // disjoint segment, delays resolve by waiting (or hedging).
      return pick == 0   ? FaultKind::kLaneThrow
             : pick == 1 ? FaultKind::kLaneAbandon
                         : FaultKind::kLaneDelay;
    case OpClass::kStep:
      // A step boundary has exactly one failure mode: the process dies.
      // (`pick` is still drawn above so the stream position advances
      // identically for every op class.)
      return FaultKind::kCrash;
  }
  return FaultKind::kNone;
}

FaultKind FaultPlan::resolve(OpClass op, const Partition* hit, bool durable) {
  const std::uint64_t index = next_op_++;
  ++stats_.decisions;
  FaultKind kind;
  if (index >= permanent_from_) {
    kind = permanent_kind_;
  } else if (auto it = script_.find(index); it != script_.end()) {
    kind = it->second;
  } else if (hit != nullptr) {
    kind = FaultKind::kPartition;
  } else {
    kind = random_draw(op);
    // Randomly drawn crashes fire only at durable step boundaries (see
    // decide_step): suppressing them here — after the draw — keeps the
    // stream position identical whether or not the point was durable.
    if (kind == FaultKind::kCrash && !durable) kind = FaultKind::kNone;
  }
  if (kind != FaultKind::kNone) {
    ++stats_.injected;
    ++stats_.by_kind[static_cast<std::size_t>(kind)];
  }
  // SplitMix-style fold of (index, kind) keeps the hash sensitive to both
  // the position and the decision.
  std::uint64_t z = schedule_hash_ ^
                    (index * 0x9e3779b97f4a7c15ULL +
                     static_cast<std::uint64_t>(kind));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  schedule_hash_ = z ^ (z >> 31);
  return kind;
}

FaultKind FaultPlan::decide(OpClass op) { return resolve(op, nullptr, true); }

FaultKind FaultPlan::decide_send(unsigned src, unsigned dst) {
  const Partition* hit = nullptr;
  for (const Partition& p : partitions_) {
    if (p.src != src || p.dst != dst) continue;
    if (next_op_ < p.from) continue;
    if (p.length != 0 && next_op_ >= p.from + p.length) continue;
    hit = &p;
    break;
  }
  return resolve(OpClass::kSend, hit, true);
}

FaultKind FaultPlan::decide_step(bool durable) {
  return resolve(OpClass::kStep, nullptr, durable);
}

double FaultPlan::short_fraction() {
  return seeded_ ? rng_.uniform01() : 0.0;
}

double FaultPlan::jitter01() {
  return seeded_ ? jitter_rng_.uniform01() : 0.0;
}

}  // namespace mp::fault
