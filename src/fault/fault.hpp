#pragma once
/// \file fault.hpp
/// Deterministic fault injection for the fallible substrates (the extmem
/// block device and the dist rank network).
///
/// Why this belongs in a Merge Path repository: the paper's Theorem 14
/// guarantees that cross-diagonal partitioning yields disjoint,
/// independently mergeable output segments. That independence is what
/// makes *segment-level retry* safe — re-running one rank's exchange or
/// re-writing one spilled block can never corrupt a neighbouring
/// segment's output. This subsystem supplies the failure model that lets
/// the tests and benches prove it: every merge over fallible media must
/// either complete with a byte-exact (and stable) result, or surface a
/// typed error — never abort, never corrupt.
///
/// Design:
///  - A FaultPlan is a *schedule*, not a dice roll: decisions come from a
///    seeded xoshiro stream indexed by the plan's own operation counter,
///    optionally overridden by explicit scripts ("fail op #k", "fail
///    everything from op #k", "partition link src->dst for ops [a, b)").
///    The consumers are deterministic, so the op stream — and hence the
///    whole fault schedule — is a pure function of the seed. A failure
///    seen in CI replays locally from one seed flag.
///  - Injection is pull-based: a target (BlockDevice, RankNetwork) holds a
///    FaultPlan* and consults it per operation. The RAII ScopedInjector
///    attaches a plan for a scope and detaches on exit, so no fault state
///    outlives the test that armed it.
///  - Compile-time gate: building with MP_FAULT=0 (cmake
///    -DMERGEPATH_FAULT=OFF) short-circuits every injection point behind
///    `if constexpr` — the hooks vanish from the emitted code and targets
///    behave exactly like the pre-fault library. The control plane
///    (constructing plans, attaching injectors) stays callable so callers
///    need no #ifdefs; an attached plan simply never fires.
///
/// Note on retries and scripted indices: a retry issues a *new* operation
/// and consumes the next schedule position, so scripted op indices count
/// attempts, not logical operations. This is what keeps the schedule a
/// function of the seed alone.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

#ifndef MP_FAULT
#define MP_FAULT 1
#endif

namespace mp::fault {

/// True when injection points compile to real checks.
inline constexpr bool kFaultCompiledIn = MP_FAULT != 0;

enum class FaultKind : std::uint8_t {
  kNone = 0,
  // Storage faults (block device).
  kTransient,  ///< EINTR-style: the attempt fails outright; retry may succeed
  kShort,      ///< short read/write: a partial transfer, the op must be redone
  kLatency,    ///< the attempt succeeds but costs extra modeled time
  kNoSpace,    ///< ENOSPC: allocation fails (permanent)
  kMedia,      ///< EIO: the transfer fails (permanent once scripted)
  // Network faults (rank network).
  kDrop,       ///< message vanishes in transit
  kDuplicate,  ///< message delivered twice (receiver must dedup by sequence)
  kReorder,    ///< message arrives late / out of order
  kPartition,  ///< link down for a scripted window of operations
  // Compute faults (ThreadPool lanes).
  kLaneThrow,    ///< the lane throws before running its task (crash model)
  kLaneAbandon,  ///< the lane never runs its task (dead-worker model)
  kLaneDelay,    ///< the lane stalls before its task (straggler model)
  // Process faults (pipeline step boundaries).
  kCrash,  ///< the whole process dies at a step boundary (resume via manifest)
  kKindCount,  // sentinel for stats arrays
};

const char* to_string(FaultKind kind);

/// Operation classes an injector can interpose on. kStep is the pipeline's
/// checkpoint-step boundary: the only class that can draw kCrash.
enum class OpClass : std::uint8_t {
  kRead, kWrite, kAllocate, kSend, kLane, kStep,
};

/// Counts of what a plan actually injected (deterministic in the seed).
struct FaultStats {
  std::uint64_t decisions = 0;  ///< operations inspected
  std::uint64_t injected = 0;   ///< total faults injected
  std::uint64_t by_kind[static_cast<std::size_t>(FaultKind::kKindCount)] = {};

  std::uint64_t count(FaultKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  friend bool operator==(const FaultStats& x, const FaultStats& y) {
    if (x.decisions != y.decisions || x.injected != y.injected) return false;
    for (std::size_t k = 0; k < static_cast<std::size_t>(FaultKind::kKindCount);
         ++k)
      if (x.by_kind[k] != y.by_kind[k]) return false;
    return true;
  }
};

struct FaultConfig {
  std::uint64_t seed = 0;
  /// Per-operation probability of a randomly drawn recoverable fault.
  /// Reads/writes draw from {transient, short, latency}; sends from
  /// {drop, duplicate, reorder}. Allocations never fault randomly
  /// (ENOSPC is scripted or capacity-driven), keeping random schedules
  /// recoverable by construction.
  double rate = 0.0;
  /// Modeled cost of one kLatency fault (and the unit for backoff math).
  double latency_us = 250.0;
  /// Real wall-time stall of one kLaneDelay fault. Lanes run on live
  /// threads, so — unlike the modeled substrates — the straggler actually
  /// sleeps; the ThreadPool's hedger can cancel the sleep early.
  double lane_delay_us = 2000.0;
};

/// Bounded retry-with-backoff policy shared by the fault-aware consumers.
struct RetryPolicy {
  unsigned max_attempts = 8;  ///< total tries per operation (1 = no retry)
  double backoff_us = 50.0;   ///< modeled wait before a retry; doubles each time
  /// Jitter fraction in [0, 1]: each backoff is scaled by a seeded uniform
  /// draw from [1 - jitter, 1] so synchronized retries de-stampede. The
  /// draws come from FaultPlan::jitter01() — a stream independent of the
  /// decision stream — so arming jitter never perturbs the fault schedule
  /// or `schedule_hash`. With no plan attached the backoff is unjittered.
  double jitter = 0.0;
};

/// Base class of the typed errors fault-aware subsystems surface
/// (extmem::IoError, dist::NetError). Operations that exhaust their
/// retries or hit a permanent fault throw one of these — they never abort
/// and never return corrupt data.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  FaultKind kind() const { return kind_; }

 private:
  FaultKind kind_;
};

/// Typed compute fault: an injected lane failure surfaced by the
/// ThreadPool (kLaneThrow thrown from the lane itself; kLaneAbandon
/// synthesized when a report consumer asks for the first error of a job
/// whose lane never ran). Fires *before* the lane's task executes, so a
/// recovered lane re-runs its disjoint output segment from scratch —
/// exactly the re-execution Theorem 14 makes safe.
class LaneFault : public FaultError {
 public:
  LaneFault(FaultKind kind, unsigned lane)
      : FaultError(kind, std::string("injected lane fault: ") +
                             to_string(kind) + " on lane " +
                             std::to_string(lane)),
        lane_(lane) {}
  unsigned lane() const { return lane_; }

 private:
  unsigned lane_;
};

/// A deterministic fault schedule. Default-constructed plans are inert
/// (never inject); seeded plans draw per-op; scripts override the draw.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  /// Scripted fault: op number `index` (0-based across all decide calls on
  /// this plan, attempts included) fails with `kind`.
  void fail_op(std::uint64_t index, FaultKind kind);

  /// Permanent outage: every op with number >= `index` fails with `kind`.
  void fail_from(std::uint64_t index, FaultKind kind);

  /// Link partition: sends src->dst decided while the op number is in
  /// [from, from + length) fail with kPartition (length 0 = forever).
  void partition_link(unsigned src, unsigned dst, std::uint64_t from,
                      std::uint64_t length = 0);

  /// The schedule: which fault (if any) op number ops_seen() suffers.
  FaultKind decide(OpClass op);
  /// Send-specific variant that also consults link-partition scripts.
  FaultKind decide_send(unsigned src, unsigned dst);
  /// Step-boundary variant for pipeline crash points. Randomly drawn
  /// crashes are honored only at *durable* points (consulted right after a
  /// checkpoint landed), which keeps rate-driven crash schedules
  /// terminating by construction: every incarnation completes at least one
  /// new unit of work before the next crash can fire. Scripted crashes
  /// (fail_op / fail_from) are honored at every point, so tests can kill
  /// the pipeline between a unit's work and its checkpoint too. Either way
  /// the call consumes exactly one schedule position.
  FaultKind decide_step(bool durable);

  /// Fraction of a kShort transfer that completes, in [0, 1). Deterministic
  /// in the schedule position (consumes one draw).
  double short_fraction();

  /// Uniform draw in [0, 1) from a second RNG stream derived from the same
  /// seed. Used for RetryPolicy jitter: consuming jitter draws leaves the
  /// decision stream (and thus schedule_hash) untouched, preserving replay.
  double jitter01();

  double latency_us() const { return config_.latency_us; }
  std::uint64_t ops_seen() const { return next_op_; }
  const FaultStats& stats() const { return stats_; }

  /// Rolling hash over (op index, decision) pairs: two runs with the same
  /// seed produce byte-identical schedules iff their hashes agree. This is
  /// the determinism acceptance check in tests/property/test_property_faults.
  std::uint64_t schedule_hash() const { return schedule_hash_; }

 private:
  struct Partition {
    unsigned src, dst;
    std::uint64_t from, length;  // length 0 = forever
  };

  FaultKind resolve(OpClass op, const Partition* hit, bool durable);
  FaultKind random_draw(OpClass op);

  FaultConfig config_;
  Xoshiro256 rng_;
  Xoshiro256 jitter_rng_;
  bool seeded_ = false;
  std::uint64_t next_op_ = 0;
  std::map<std::uint64_t, FaultKind> script_;
  std::uint64_t permanent_from_ = ~0ull;
  FaultKind permanent_kind_ = FaultKind::kNone;
  std::vector<Partition> partitions_;
  FaultStats stats_;
  std::uint64_t schedule_hash_ = 0x9e3779b97f4a7c15ULL;
};

/// RAII attachment of a plan to any target exposing set_fault_plan().
/// Under MP_FAULT=0 construction and destruction compile to nothing.
template <typename Target>
class ScopedInjector {
 public:
  ScopedInjector(Target& target, FaultPlan& plan) : target_(&target) {
    if constexpr (kFaultCompiledIn) target_->set_fault_plan(&plan);
  }
  ~ScopedInjector() {
    if constexpr (kFaultCompiledIn) target_->set_fault_plan(nullptr);
  }
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

 private:
  Target* target_;
};

}  // namespace mp::fault
