#include "kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "util/hw.hpp"

#if MP_SIMD && (defined(MP_KERNELS_HAVE_SSE4) || defined(MP_KERNELS_HAVE_AVX2) || \
                defined(MP_KERNELS_HAVE_AVX512))
#include "kernels/simd_entry.hpp"
#endif

namespace mp::kernels {
namespace {

std::atomic<Kernel> g_selected{Kernel::kScalar};
std::once_flag g_selected_init;

void init_selected() {
  std::string warning;
  const Kernel kernel =
      detail::resolve_override(std::getenv("MP_MERGE_KERNEL"), &warning);
  if (!warning.empty()) std::cerr << "mp_kernels: " << warning << "\n";
  g_selected.store(kernel, std::memory_order_relaxed);
}

}  // namespace

const char* to_string(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kBranchless:
      return "branchless";
    case Kernel::kSse4:
      return "sse4";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<Kernel> parse_kernel(std::string_view name) {
  for (const Kernel kernel : kAllKernels)
    if (name == to_string(kernel)) return kernel;
  return std::nullopt;
}

bool kernel_supported(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
    case Kernel::kBranchless:
      return true;
    case Kernel::kSse4:
#if MP_SIMD && defined(MP_KERNELS_HAVE_SSE4)
      return cpu_features().sse42;
#else
      return false;
#endif
    case Kernel::kAvx2:
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX2)
      return cpu_features().avx2;
#else
      return false;
#endif
    case Kernel::kAvx512:
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX512)
      return cpu_features().avx512f && cpu_features().avx512bw;
#else
      return false;
#endif
  }
  return false;
}

Kernel widest_supported() {
  // kBranchless is deliberately absent: BENCH_5 measured it slower than
  // scalar, so auto-dispatch never picks it (explicit override only).
  if (kernel_supported(Kernel::kAvx512)) return Kernel::kAvx512;
  if (kernel_supported(Kernel::kAvx2)) return Kernel::kAvx2;
  if (kernel_supported(Kernel::kSse4)) return Kernel::kSse4;
  return Kernel::kScalar;
}

Kernel selected_kernel() {
  std::call_once(g_selected_init, init_selected);
  return g_selected.load(std::memory_order_relaxed);
}

bool set_kernel(Kernel kernel) {
  if (!kernel_supported(kernel)) return false;
  // Resolve the env override first so a late first selected_kernel() call
  // cannot clobber an explicit --kernel choice.
  std::call_once(g_selected_init, init_selected);
  g_selected.store(kernel, std::memory_order_relaxed);
  return true;
}

std::string kernel_banner() {
  return std::string("kernel ") + to_string(selected_kernel()) + " (isa " +
         isa_string(cpu_features()) + ")";
}

namespace detail {

Kernel resolve_override(const char* value, std::string* warning) {
  if (value == nullptr || *value == '\0' ||
      std::string_view(value) == "auto") {
    return widest_supported();
  }
  const std::optional<Kernel> parsed = parse_kernel(value);
  if (!parsed) {
    if (warning) {
      *warning = "MP_MERGE_KERNEL='" + std::string(value) +
                 "' is not a kernel name (scalar|branchless|sse4|avx2|avx512); "
                 "using " +
                 to_string(widest_supported());
    }
    return widest_supported();
  }
  if (!kernel_supported(*parsed)) {
    if (warning) {
      *warning = std::string("MP_MERGE_KERNEL=") + to_string(*parsed) +
                 " is compiled out or unsupported on this host; using " +
                 to_string(widest_supported());
    }
    return widest_supported();
  }
  return *parsed;
}

std::size_t simd_loop_i32(Kernel kernel, const std::int32_t* a,
                          std::size_t m, const std::int32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int32_t* out, std::size_t steps) {
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX512)
  if (kernel == Kernel::kAvx512)
    return avx512_loop_i32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX2)
  if (kernel == Kernel::kAvx2)
    return avx2_loop_i32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_SSE4)
  if (kernel == Kernel::kSse4)
    return sse4_loop_i32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
  // Compiled out (or an ISA dispatch never selects): pure fallthrough to
  // the caller's scalar tail.
  (void)kernel, (void)a, (void)m, (void)b, (void)n, (void)a_pos, (void)b_pos,
      (void)out, (void)steps;
  return 0;
}

std::size_t simd_loop_u32(Kernel kernel, const std::uint32_t* a,
                          std::size_t m, const std::uint32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint32_t* out, std::size_t steps) {
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX512)
  if (kernel == Kernel::kAvx512)
    return avx512_loop_u32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX2)
  if (kernel == Kernel::kAvx2)
    return avx2_loop_u32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_SSE4)
  if (kernel == Kernel::kSse4)
    return sse4_loop_u32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
  (void)kernel, (void)a, (void)m, (void)b, (void)n, (void)a_pos, (void)b_pos,
      (void)out, (void)steps;
  return 0;
}

std::size_t simd_loop_i64(Kernel kernel, const std::int64_t* a,
                          std::size_t m, const std::int64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int64_t* out, std::size_t steps) {
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX512)
  if (kernel == Kernel::kAvx512)
    return avx512_loop_i64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX2)
  if (kernel == Kernel::kAvx2)
    return avx2_loop_i64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_SSE4)
  if (kernel == Kernel::kSse4)
    return sse4_loop_i64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
  (void)kernel, (void)a, (void)m, (void)b, (void)n, (void)a_pos, (void)b_pos,
      (void)out, (void)steps;
  return 0;
}

std::size_t simd_loop_u64(Kernel kernel, const std::uint64_t* a,
                          std::size_t m, const std::uint64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint64_t* out, std::size_t steps) {
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX512)
  if (kernel == Kernel::kAvx512)
    return avx512_loop_u64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX2)
  if (kernel == Kernel::kAvx2)
    return avx2_loop_u64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_SSE4)
  if (kernel == Kernel::kSse4)
    return sse4_loop_u64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
  (void)kernel, (void)a, (void)m, (void)b, (void)n, (void)a_pos, (void)b_pos,
      (void)out, (void)steps;
  return 0;
}

std::size_t simd_loop_f32(Kernel kernel, const float* a,
                          std::size_t m, const float* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          float* out, std::size_t steps) {
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX512)
  if (kernel == Kernel::kAvx512)
    return avx512_loop_f32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX2)
  if (kernel == Kernel::kAvx2)
    return avx2_loop_f32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_SSE4)
  if (kernel == Kernel::kSse4)
    return sse4_loop_f32(a, m, b, n, a_pos, b_pos, out, steps);
#endif
  (void)kernel, (void)a, (void)m, (void)b, (void)n, (void)a_pos, (void)b_pos,
      (void)out, (void)steps;
  return 0;
}

std::size_t simd_loop_f64(Kernel kernel, const double* a,
                          std::size_t m, const double* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          double* out, std::size_t steps) {
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX512)
  if (kernel == Kernel::kAvx512)
    return avx512_loop_f64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_AVX2)
  if (kernel == Kernel::kAvx2)
    return avx2_loop_f64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
#if MP_SIMD && defined(MP_KERNELS_HAVE_SSE4)
  if (kernel == Kernel::kSse4)
    return sse4_loop_f64(a, m, b, n, a_pos, b_pos, out, steps);
#endif
  (void)kernel, (void)a, (void)m, (void)b, (void)n, (void)a_pos, (void)b_pos,
      (void)out, (void)steps;
  return 0;
}

}  // namespace detail
}  // namespace mp::kernels
