#pragma once
/// \file kernels.hpp
/// Vectorized per-lane merge kernels with runtime ISA dispatch.
///
/// Algorithm 1's cost is dominated by the (|A|+|B|)/p steps of sequential
/// merge each lane runs after its diagonal search; merge_steps() decides
/// one element per iteration behind a data-dependent branch. This layer
/// replaces the *interior* of that loop — W outputs per iteration via an
/// in-register bitonic merge network (SSE4.2 4-wide / AVX2 8-wide for
/// 32-bit keys, 2-/4-wide for 64-bit) — while keeping merge_steps() as
/// the byte-exact contract:
///
///   - Per vector step the kernel loads W keys from each cursor, counts
///     the A-side takes with the anti-diagonal rule
///     k = |{t : a[i+t] <= b[j+W-1-t]}| (the Merge Path diagonal
///     predicate, so the cursor advance equals the scalar kernel's
///     A-priority co-rank), and emits the sorted W smallest of the 2W
///     window. Keys are bare integers, so "the sorted W smallest" is
///     byte-identical to the scalar kernel's next W outputs.
///   - The vector loop only runs while BOTH windows have >= W unconsumed
///     elements and >= W steps remain; everything else — tails, tiny
///     lanes, one side exhausted — falls back to merge_steps(). No load
///     ever touches memory outside [a, a+m) / [b, b+n).
///
/// Dispatch layers (docs/PERFORMANCE.md):
///   - compile time: use_vector_merge_v — the vector path exists only for
///     32/64-bit integral keys under std::less with contiguous iterators,
///     plus float/double keys under the opt-in TotalOrderLess comparator
///     (the IEEE totalOrder sign-flip bijection makes equal keys bitwise
///     identical again, which is what the byte-exactness proof needs).
///     Payload merges (KeyedRecord), custom comparators, floats under
///     plain std::less (equal floats need not be bitwise identical:
///     -0.0/+0.0, and NaN breaks strict weak order) and ring-buffer views
///     stay on the scalar kernel, which preserves A-priority stability by
///     construction.
///   - build time: -DMERGEPATH_SIMD=OFF compiles the ISA TUs out
///     (MP_SIMD=0), mirroring the TRACE/FAULT gates.
///   - run time: cpuid (util/hw cpu_features()) picks the widest
///     supported kernel; MP_MERGE_KERNEL=
///     scalar|branchless|sse4|avx2|avx512 or the harness/tool --kernel
///     flag overrides it.
///   - call time: instrumented merges (instr != nullptr) stay scalar so
///     PRAM op counts keep meaning one compare/move per path step.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

#include "core/sequential_merge.hpp"

#ifndef MP_SIMD
#define MP_SIMD 1
#endif

namespace mp::kernels {

/// True when the SIMD TUs are compiled in (MERGEPATH_SIMD=ON and the
/// toolchain accepted the target flags).
inline constexpr bool kSimdCompiledIn = MP_SIMD != 0;

/// The dispatchable per-lane merge kernels, narrowest to widest.
enum class Kernel : std::uint8_t {
  kScalar = 0,   ///< merge_steps(): branchy, one element per iteration
  /// branchless_merge_bounded() prefix + scalar tail. Demoted: BENCH_5
  /// measured it at 0.89-0.90x *slower* than scalar on the uniform
  /// ablation inputs (the cmov arithmetic costs more than the branch
  /// mispredicts it saves on sorted-random data), so auto-dispatch never
  /// selects it — it stays reachable via MP_MERGE_KERNEL/--kernel as the
  /// honest branch-cost ablation baseline.
  kBranchless,
  kSse4,         ///< 4-wide (32-bit) / 2-wide (64-bit), needs SSE4.2
  kAvx2,         ///< 8-wide (32-bit) / 4-wide (64-bit), needs AVX2
  kAvx512,       ///< 16-wide (32-bit) / 8-wide (64-bit), needs AVX-512 F+BW
};

inline constexpr Kernel kAllKernels[] = {Kernel::kScalar, Kernel::kBranchless,
                                         Kernel::kSse4, Kernel::kAvx2,
                                         Kernel::kAvx512};

/// True for the vector (width > 1) kernels — the ones whose selection
/// makes the wrapped-ring linearization copy in segmented_merge worth
/// paying for.
inline constexpr bool is_vector_kernel(Kernel kernel) {
  return kernel == Kernel::kSse4 || kernel == Kernel::kAvx2 ||
         kernel == Kernel::kAvx512;
}

const char* to_string(Kernel kernel);

/// "scalar|branchless|sse4|avx2|avx512" -> Kernel; anything else ->
/// nullopt.
std::optional<Kernel> parse_kernel(std::string_view name);

/// Whether `kernel` can actually run: compiled in AND the host ISA has it.
bool kernel_supported(Kernel kernel);

/// The widest supported kernel on this host/build (kScalar when the SIMD
/// TUs are compiled out or the host lacks SSE4.2 — the pre-dispatch
/// behavior, so MERGEPATH_SIMD=OFF builds are inert by default).
Kernel widest_supported();

/// The kernel merge_steps_auto() routes to. First call resolves the
/// MP_MERGE_KERNEL environment override (unknown or unsupported values
/// clamp to widest_supported() with a one-time stderr warning).
Kernel selected_kernel();

/// Forces the dispatch choice (--kernel flag). Returns false — leaving
/// the selection unchanged — when `kernel` is not supported here.
bool set_kernel(Kernel kernel);

/// One-line banner: "kernel avx2 (isa sse4.2+avx2)".
std::string kernel_banner();

namespace detail {

/// The IEEE-754 totalOrder sign-flip bijection: maps float bit patterns
/// to unsigned integers whose < order is exactly totalOrder(x, y) —
/// positive values get the sign bit set (shifting them above every
/// negative), negative values are bitwise complemented (reversing their
/// descending bit-pattern order). -NaN < -inf < ... < -0.0 < +0.0 < ...
/// < +inf < +NaN, with NaN payloads ordered by significand. The map is a
/// bijection, so totalOrder-equal keys are bitwise identical — the
/// property that lets float merges ride the integer vector kernels.
inline std::uint32_t total_order_key(float x) {
  const auto bits = std::bit_cast<std::uint32_t>(x);
  const auto mask =
      static_cast<std::uint32_t>(static_cast<std::int32_t>(bits) >> 31);
  return bits ^ (mask | 0x80000000u);
}
inline std::uint64_t total_order_key(double x) {
  const auto bits = std::bit_cast<std::uint64_t>(x);
  const auto mask =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(bits) >> 63);
  return bits ^ (mask | 0x8000000000000000ull);
}

}  // namespace detail

/// Opt-in total-order comparator: IEEE totalOrder for float/double
/// (strict weak — in fact total — even with NaNs and signed zeros, which
/// plain std::less is not), plain < for every other type. Merges and
/// small sorts invoked with this comparator on contiguous float/double
/// keys are admitted to the integer vector kernels via the sign-flip
/// bijection; everything about the byte-exactness contract carries over
/// because totalOrder-equal keys are bitwise identical.
struct TotalOrderLess {
  bool operator()(float x, float y) const {
    return detail::total_order_key(x) < detail::total_order_key(y);
  }
  bool operator()(double x, double y) const {
    return detail::total_order_key(x) < detail::total_order_key(y);
  }
  template <typename T>
  bool operator()(const T& x, const T& y) const {
    return x < y;
  }
};

namespace detail {

/// Env-override resolution, separated out for tests: nullptr/""/"auto"
/// pick widest_supported(); a known+supported name picks it; anything
/// else clamps to widest_supported() and appends a warning.
Kernel resolve_override(const char* value, std::string* warning);

// Vector main loops, defined in the per-ISA TUs (merge_sse4.cpp /
// merge_avx2.cpp). Each merges full W-wide steps while both inputs hold
// >= W unconsumed elements and >= W steps remain, advancing *a_pos and
// *b_pos exactly as merge_steps() would, and returns the elements
// written; the caller finishes with the scalar tail. When the matching
// TU is compiled out they return 0 (pure fallthrough).
std::size_t simd_loop_i32(Kernel kernel, const std::int32_t* a,
                          std::size_t m, const std::int32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int32_t* out, std::size_t steps);
std::size_t simd_loop_u32(Kernel kernel, const std::uint32_t* a,
                          std::size_t m, const std::uint32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint32_t* out, std::size_t steps);
std::size_t simd_loop_i64(Kernel kernel, const std::int64_t* a,
                          std::size_t m, const std::int64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int64_t* out, std::size_t steps);
std::size_t simd_loop_u64(Kernel kernel, const std::uint64_t* a,
                          std::size_t m, const std::uint64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint64_t* out, std::size_t steps);
// Total-order float loops: the TUs apply the sign-flip bijection on load,
// run the unsigned integer window merge, and invert it before store, so
// the output bytes equal the scalar kernel's under TotalOrderLess.
std::size_t simd_loop_f32(Kernel kernel, const float* a, std::size_t m,
                          const float* b, std::size_t n, std::size_t* a_pos,
                          std::size_t* b_pos, float* out, std::size_t steps);
std::size_t simd_loop_f64(Kernel kernel, const double* a, std::size_t m,
                          const double* b, std::size_t n, std::size_t* a_pos,
                          std::size_t* b_pos, double* out, std::size_t steps);

/// Routes a typed pointer merge to the matching exported loop. The
/// reinterpret_casts are between same-size integer types; the TUs load
/// through may_alias vector types, so no TBAA hazard.
template <typename T>
std::size_t simd_loop(Kernel kernel, const T* a, std::size_t m, const T* b,
                      std::size_t n, std::size_t* a_pos, std::size_t* b_pos,
                      T* out, std::size_t steps) {
  if constexpr (std::is_same_v<T, float>) {
    return simd_loop_f32(kernel, a, m, b, n, a_pos, b_pos, out, steps);
  } else if constexpr (std::is_same_v<T, double>) {
    return simd_loop_f64(kernel, a, m, b, n, a_pos, b_pos, out, steps);
  } else if constexpr (sizeof(T) == 4) {
    if constexpr (std::is_signed_v<T>) {
      return simd_loop_i32(kernel, reinterpret_cast<const std::int32_t*>(a),
                           m, reinterpret_cast<const std::int32_t*>(b), n,
                           a_pos, b_pos, reinterpret_cast<std::int32_t*>(out),
                           steps);
    } else {
      return simd_loop_u32(kernel, reinterpret_cast<const std::uint32_t*>(a),
                           m, reinterpret_cast<const std::uint32_t*>(b), n,
                           a_pos, b_pos, reinterpret_cast<std::uint32_t*>(out),
                           steps);
    }
  } else {
    if constexpr (std::is_signed_v<T>) {
      return simd_loop_i64(kernel, reinterpret_cast<const std::int64_t*>(a),
                           m, reinterpret_cast<const std::int64_t*>(b), n,
                           a_pos, b_pos, reinterpret_cast<std::int64_t*>(out),
                           steps);
    } else {
      return simd_loop_u64(kernel, reinterpret_cast<const std::uint64_t*>(a),
                           m, reinterpret_cast<const std::uint64_t*>(b), n,
                           a_pos, b_pos, reinterpret_cast<std::uint64_t*>(out),
                           steps);
    }
  }
}

}  // namespace detail

/// Compile-time gate of the vector path. Evaluates to true only for the
/// byte-exactness-provable cases, through contiguous iterators on all
/// three sides:
///   - bare 32/64-bit integral keys (bool excluded) under std::less, and
///   - float/double keys under the opt-in TotalOrderLess comparator (the
///     total-order float mode: the sign-flip bijection makes equal keys
///     bitwise identical, restoring the integer argument).
/// Everything else — payload records, custom comparators, floats under
/// std::less — stays on the scalar kernel, where no payload can be
/// reordered across equal keys.
template <typename IterA, typename IterB, typename OutIter, typename Comp>
inline constexpr bool use_vector_merge_v = [] {
  if constexpr (std::contiguous_iterator<IterA> &&
                std::contiguous_iterator<IterB> &&
                std::contiguous_iterator<OutIter>) {
    using T = std::remove_cv_t<std::iter_value_t<OutIter>>;
    if constexpr (!std::is_same_v<std::remove_cv_t<std::iter_value_t<IterA>>,
                                  T> ||
                  !std::is_same_v<std::remove_cv_t<std::iter_value_t<IterB>>,
                                  T>) {
      return false;
    } else if constexpr (std::is_same_v<T, float> ||
                         std::is_same_v<T, double>) {
      return std::is_same_v<Comp, TotalOrderLess>;
    } else {
      return std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             (sizeof(T) == 4 || sizeof(T) == 8) &&
             (std::is_same_v<Comp, std::less<>> ||
              std::is_same_v<Comp, std::less<T>>);
    }
  } else {
    return false;
  }
}();

/// Dispatchable front of the branchless kernel: merges as much of
/// `steps` as the both-sides-readable contract allows (chunks re-derived
/// via branchless_safe_steps after each block), returns the elements
/// written and advances the cursors; the caller runs the scalar tail on
/// the remainder. This is the same tail-fallback contract the SIMD loops
/// follow — bench/test drivers used to hand-roll it.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>>
std::size_t branchless_merge_bounded(IterA a, std::size_t m, IterB b,
                                     std::size_t n, std::size_t* a_pos,
                                     std::size_t* b_pos, OutIter out,
                                     std::size_t steps, Comp comp = {}) {
  std::size_t written = 0;
  for (;;) {
    const std::size_t safe =
        branchless_safe_steps(m, n, *a_pos, *b_pos, steps - written);
    if (safe == 0) break;
    out = branchless_merge_steps(a, b, a_pos, b_pos, out, safe, comp);
    written += safe;
  }
  return written;
}

/// Drop-in replacement for merge_steps() at the wiring points: same
/// signature, same contract, byte-identical output and cursor updates.
/// Routes the front of the merge through the selected kernel when the
/// compile-time trait admits it and the call is uninstrumented, then
/// always finishes with merge_steps() for the tail.
template <typename IterA, typename IterB, typename OutIter,
          typename Comp = std::less<>, typename Instr = NoInstrument>
OutIter merge_steps_auto(IterA a, std::size_t m, IterB b, std::size_t n,
                         std::size_t* a_pos, std::size_t* b_pos, OutIter out,
                         std::size_t steps, Comp comp = {},
                         Instr* instr = nullptr) {
  if constexpr (use_vector_merge_v<IterA, IterB, OutIter, Comp>) {
    if (instr == nullptr && steps > 0) {
      const Kernel kind = selected_kernel();
      if (kind != Kernel::kScalar) {
        using T = std::remove_cv_t<std::iter_value_t<OutIter>>;
        const T* pa = std::to_address(a);
        const T* pb = std::to_address(b);
        T* po = std::to_address(out);
        std::size_t written = 0;
        if (kind == Kernel::kBranchless) {
          written = branchless_merge_bounded(pa, m, pb, n, a_pos, b_pos, po,
                                             steps, comp);
        } else {
          written = detail::simd_loop<T>(kind, pa, m, pb, n, a_pos, b_pos, po,
                                         steps);
        }
        out += static_cast<std::ptrdiff_t>(written);
        steps -= written;
      }
    }
  }
  return merge_steps(a, m, b, n, a_pos, b_pos, out, steps, comp, instr);
}

}  // namespace mp::kernels
