// merge_avx2.cpp — AVX2 vector merge loops: 8-wide for 32-bit keys,
// 4-wide for 64-bit. Compiled with -mavx2 (bench/docs call this the
// "avx2" kernel); reached only through kernels::detail dispatch after
// cpuid reported AVX2.
//
// Per vector step (width W):
//   va  = a[i .. i+W)                      (ascending)
//   vbr = reverse(b[j .. j+W))             (descending)
//   k   = |{t : a[i+t] <= b[j+W-1-t]}|     anti-diagonal take count; the
//         predicate is monotone (a row ascends, the reversed b row
//         descends) so k is the Merge Path split of this 2W window and
//         advancing (i += k, j += W-k) lands exactly where the scalar
//         A-priority kernel would after W steps.
//   lo  = min(va, vbr)                     the W smallest of the window,
//         as a bitonic sequence (ascending prefix of A-half, descending
//         suffix of B-half), finished by a log2(W)-level bitonic
//         min/max exchange network into ascending order.
// Equal keys compare with <=, so ties are taken from A — the same
// A-priority rule as merge_steps(); integer keys make "the sorted W
// smallest" bitwise equal to the scalar outputs.

#include "kernels/simd_entry.hpp"

#include <immintrin.h>

#include "kernels/simd_loop_common.hpp"

namespace mp::kernels::detail {
namespace {

inline void prefetch_t0(const void* p) {
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
}

// ---------------------------------------------------------------- 32-bit

struct MinMaxI32 {
  static __m256i mn(__m256i x, __m256i y) { return _mm256_min_epi32(x, y); }
  static __m256i mx(__m256i x, __m256i y) { return _mm256_max_epi32(x, y); }
};
struct MinMaxU32 {
  static __m256i mn(__m256i x, __m256i y) { return _mm256_min_epu32(x, y); }
  static __m256i mx(__m256i x, __m256i y) { return _mm256_max_epu32(x, y); }
};

inline __m256i reverse_epi32(__m256i v) {
  return _mm256_permutevar8x32_epi32(v,
                                     _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0));
}

// Ascending sort of an 8-lane bitonic sequence: exchanges at distances
// 4, 2, 1. Each level pairs lane t with lane t^dist; the lower lane of
// each pair keeps the min (blend mask selects the max into the upper).
template <typename Ops>
inline __m256i sort_bitonic_epi32(__m256i v) {
  __m256i sw = _mm256_permute2x128_si256(v, v, 0x01);  // distance 4
  v = _mm256_blend_epi32(Ops::mn(v, sw), Ops::mx(v, sw), 0xF0);
  sw = _mm256_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));  // distance 2
  v = _mm256_blend_epi32(Ops::mn(v, sw), Ops::mx(v, sw), 0xCC);
  sw = _mm256_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));  // distance 1
  v = _mm256_blend_epi32(Ops::mn(v, sw), Ops::mx(v, sw), 0xAA);
  return v;
}

template <typename Key, typename Ops>
struct Avx2Step32 {
  static constexpr std::size_t kWidth = 8;
  static void prefetch(const Key* p) { prefetch_t0(p); }
  static std::size_t step(const Key* pa, const Key* pb, Key* po) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    const __m256i vbr = reverse_epi32(vb);
    const __m256i lo = Ops::mn(va, vbr);
    // Lane t took from A iff min(va,vbr) == va there, i.e. a <= b (ties
    // land on A: min picks va when equal).
    const int take_a = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(lo, va)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(po),
                        sort_bitonic_epi32<Ops>(lo));
    return static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(take_a)));
  }
};

// ---------------------------------------------------------------- 64-bit

struct CmpI64 {
  static __m256i gt(__m256i x, __m256i y) { return _mm256_cmpgt_epi64(x, y); }
};
struct CmpU64 {
  // AVX2 has no unsigned 64-bit compare: bias both sides by 2^63.
  static __m256i gt(__m256i x, __m256i y) {
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(x, bias),
                              _mm256_xor_si256(y, bias));
  }
};

template <typename Cmp>
inline __m256i min_epi64(__m256i x, __m256i y) {
  return _mm256_blendv_epi8(x, y, Cmp::gt(x, y));  // y where x > y
}
template <typename Cmp>
inline __m256i max_epi64(__m256i x, __m256i y) {
  return _mm256_blendv_epi8(y, x, Cmp::gt(x, y));  // x where x > y
}

inline __m256i reverse_epi64(__m256i v) {
  return _mm256_permute4x64_epi64(v, _MM_SHUFFLE(0, 1, 2, 3));
}

// Ascending sort of a 4-lane bitonic sequence: distances 2, 1.
template <typename Cmp>
inline __m256i sort_bitonic_epi64(__m256i v) {
  __m256i sw = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 0, 3, 2));
  v = _mm256_blend_epi32(min_epi64<Cmp>(v, sw), max_epi64<Cmp>(v, sw), 0xF0);
  sw = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(2, 3, 0, 1));
  v = _mm256_blend_epi32(min_epi64<Cmp>(v, sw), max_epi64<Cmp>(v, sw), 0xCC);
  return v;
}

template <typename Key, typename Cmp>
struct Avx2Step64 {
  static constexpr std::size_t kWidth = 4;
  static void prefetch(const Key* p) { prefetch_t0(p); }
  static std::size_t step(const Key* pa, const Key* pb, Key* po) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    const __m256i vbr = reverse_epi64(vb);
    // a <= b is the complement of a > b lane-wise.
    const int gt_mask = _mm256_movemask_pd(_mm256_castsi256_pd(
        Cmp::gt(va, vbr)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(po),
        sort_bitonic_epi64<Cmp>(min_epi64<Cmp>(va, vbr)));
    return kWidth - static_cast<std::size_t>(
                        __builtin_popcount(static_cast<unsigned>(gt_mask)));
  }
};

// ----------------------------------------------------------------- float
// Total-order float mode: sign-flip bijection on load (non-negative:
// flip the sign bit; negative: flip all bits), unsigned window merge on
// the keys, inverse map before the store. Unsigned order on keys equals
// IEEE totalOrder on the floats; see merge_sse4.cpp for the scalar-side
// contract.

inline __m256i f32_to_key(__m256i v) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  return _mm256_xor_si256(v, _mm256_or_si256(_mm256_srai_epi32(v, 31), bias));
}
inline __m256i f32_from_key(__m256i k) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i inv =
      _mm256_xor_si256(_mm256_srai_epi32(k, 31), _mm256_set1_epi32(-1));
  return _mm256_xor_si256(k, _mm256_or_si256(inv, bias));
}

// AVX2 has no 64-bit arithmetic shift; cmpgt against zero builds the
// all-ones-when-negative lane mask instead.
inline __m256i f64_to_key(__m256i v) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i mask = _mm256_cmpgt_epi64(_mm256_setzero_si256(), v);
  return _mm256_xor_si256(v, _mm256_or_si256(mask, bias));
}
inline __m256i f64_from_key(__m256i k) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i inv =
      _mm256_xor_si256(_mm256_cmpgt_epi64(_mm256_setzero_si256(), k),
                       _mm256_set1_epi32(-1));
  return _mm256_xor_si256(k, _mm256_or_si256(inv, bias));
}

struct Avx2StepF32 {
  static constexpr std::size_t kWidth = 8;
  static void prefetch(const float* p) { prefetch_t0(p); }
  static std::size_t step(const float* pa, const float* pb, float* po) {
    const __m256i va = f32_to_key(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa)));
    const __m256i vb = f32_to_key(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb)));
    const __m256i vbr = reverse_epi32(vb);
    const __m256i lo = MinMaxU32::mn(va, vbr);
    const int take_a = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(lo, va)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(po),
                        f32_from_key(sort_bitonic_epi32<MinMaxU32>(lo)));
    return static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(take_a)));
  }
};

struct Avx2StepF64 {
  static constexpr std::size_t kWidth = 4;
  static void prefetch(const double* p) { prefetch_t0(p); }
  static std::size_t step(const double* pa, const double* pb, double* po) {
    const __m256i va = f64_to_key(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa)));
    const __m256i vb = f64_to_key(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb)));
    const __m256i vbr = reverse_epi64(vb);
    const int gt_mask = _mm256_movemask_pd(_mm256_castsi256_pd(
        CmpU64::gt(va, vbr)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(po),
        f64_from_key(sort_bitonic_epi64<CmpU64>(min_epi64<CmpU64>(va, vbr))));
    return kWidth - static_cast<std::size_t>(
                        __builtin_popcount(static_cast<unsigned>(gt_mask)));
  }
};

}  // namespace

std::size_t avx2_loop_i32(const std::int32_t* a, std::size_t m,
                          const std::int32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int32_t* out, std::size_t steps) {
  return bounded_vector_merge<Avx2Step32<std::int32_t, MinMaxI32>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t avx2_loop_u32(const std::uint32_t* a, std::size_t m,
                          const std::uint32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint32_t* out, std::size_t steps) {
  return bounded_vector_merge<Avx2Step32<std::uint32_t, MinMaxU32>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t avx2_loop_i64(const std::int64_t* a, std::size_t m,
                          const std::int64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int64_t* out, std::size_t steps) {
  return bounded_vector_merge<Avx2Step64<std::int64_t, CmpI64>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t avx2_loop_u64(const std::uint64_t* a, std::size_t m,
                          const std::uint64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint64_t* out, std::size_t steps) {
  return bounded_vector_merge<Avx2Step64<std::uint64_t, CmpU64>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t avx2_loop_f32(const float* a, std::size_t m,
                          const float* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          float* out, std::size_t steps) {
  return bounded_vector_merge<Avx2StepF32>(a, m, b, n, a_pos, b_pos, out,
                                           steps);
}

std::size_t avx2_loop_f64(const double* a, std::size_t m,
                          const double* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          double* out, std::size_t steps) {
  return bounded_vector_merge<Avx2StepF64>(a, m, b, n, a_pos, b_pos, out,
                                           steps);
}

}  // namespace mp::kernels::detail
