// merge_avx512.cpp — AVX-512 vector merge loops: 16-wide for 32-bit
// keys, 8-wide for 64-bit. Compiled with -mavx512f -mavx512bw (bench and
// docs call this the "avx512" kernel); reached only through
// kernels::detail dispatch after cpuid reported both the F and BW
// subsets.
//
// Same anti-diagonal scheme as merge_avx2.cpp — take count k = |{t :
// a[i+t] <= b[j+W-1-t]}| over the reversed B window, then a
// log2(W)-level bitonic exchange network over lo = min(va, reverse(vb))
// — with two AVX-512 twists:
//   * the take count comes straight from a cmple mask register (the
//     predicate is monotone across lanes, so popcount(mask) is the Merge
//     Path split of the 2W window; no cmpeq/movemask detour), and
//   * exchange levels blend through mask registers
//     (_mm512_mask_mov_epi32) instead of blend immediates.
// Distances 8/4 (32-bit) and 4/2 (64-bit) move whole 128-bit groups, so
// they use shuffle_i32x4/i64x2; the in-lane distances use shuffle_epi32.
// Equal keys compare with <= so ties are taken from A — the same
// A-priority rule as merge_steps().
//
// The f32/f64 entry points implement the total-order float mode: the
// sign-flip bijection runs on load (AVX-512 has the 64-bit arithmetic
// shift the narrower ISAs lack), the window merge runs on unsigned keys,
// and the inverse map runs before the store.

#include "kernels/simd_entry.hpp"

#include <immintrin.h>

#include "kernels/simd_loop_common.hpp"

namespace mp::kernels::detail {
namespace {

inline void prefetch_t0(const void* p) {
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
}

// ---------------------------------------------------------------- 32-bit

struct OpsI32 {
  static __m512i mn(__m512i x, __m512i y) { return _mm512_min_epi32(x, y); }
  static __m512i mx(__m512i x, __m512i y) { return _mm512_max_epi32(x, y); }
  static __mmask16 le(__m512i x, __m512i y) {
    return _mm512_cmple_epi32_mask(x, y);
  }
};
struct OpsU32 {
  static __m512i mn(__m512i x, __m512i y) { return _mm512_min_epu32(x, y); }
  static __m512i mx(__m512i x, __m512i y) { return _mm512_max_epu32(x, y); }
  static __mmask16 le(__m512i x, __m512i y) {
    return _mm512_cmple_epu32_mask(x, y);
  }
};

inline __m512i reverse_epi32(__m512i v) {
  return _mm512_permutexvar_epi32(
      _mm512_setr_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0),
      v);
}

// Ascending sort of a 16-lane bitonic sequence: exchanges at distances
// 8, 4, 2, 1. Each level pairs lane t with lane t^dist; the mask marks
// the upper lane of each pair (t & dist != 0), which keeps the max.
template <typename Ops>
inline __m512i sort_bitonic_epi32(__m512i v) {
  __m512i sw = _mm512_shuffle_i32x4(v, v, _MM_SHUFFLE(1, 0, 3, 2));  // d=8
  v = _mm512_mask_mov_epi32(Ops::mn(v, sw), 0xFF00, Ops::mx(v, sw));
  sw = _mm512_shuffle_i32x4(v, v, _MM_SHUFFLE(2, 3, 0, 1));  // d=4
  v = _mm512_mask_mov_epi32(Ops::mn(v, sw), 0xF0F0, Ops::mx(v, sw));
  sw = _mm512_shuffle_epi32(v, _MM_PERM_BADC);  // d=2
  v = _mm512_mask_mov_epi32(Ops::mn(v, sw), 0xCCCC, Ops::mx(v, sw));
  sw = _mm512_shuffle_epi32(v, _MM_PERM_CDAB);  // d=1
  v = _mm512_mask_mov_epi32(Ops::mn(v, sw), 0xAAAA, Ops::mx(v, sw));
  return v;
}

template <typename Key, typename Ops>
struct Avx512Step32 {
  static constexpr std::size_t kWidth = 16;
  static void prefetch(const Key* p) { prefetch_t0(p); }
  static std::size_t step(const Key* pa, const Key* pb, Key* po) {
    const __m512i va = _mm512_loadu_si512(pa);
    const __m512i vb = _mm512_loadu_si512(pb);
    const __m512i vbr = reverse_epi32(vb);
    const __mmask16 take_a = Ops::le(va, vbr);
    _mm512_storeu_si512(po, sort_bitonic_epi32<Ops>(Ops::mn(va, vbr)));
    return static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(take_a)));
  }
};

// ---------------------------------------------------------------- 64-bit

struct OpsI64 {
  static __m512i mn(__m512i x, __m512i y) { return _mm512_min_epi64(x, y); }
  static __m512i mx(__m512i x, __m512i y) { return _mm512_max_epi64(x, y); }
  static __mmask8 le(__m512i x, __m512i y) {
    return _mm512_cmple_epi64_mask(x, y);
  }
};
struct OpsU64 {
  static __m512i mn(__m512i x, __m512i y) { return _mm512_min_epu64(x, y); }
  static __m512i mx(__m512i x, __m512i y) { return _mm512_max_epu64(x, y); }
  static __mmask8 le(__m512i x, __m512i y) {
    return _mm512_cmple_epu64_mask(x, y);
  }
};

inline __m512i reverse_epi64(__m512i v) {
  return _mm512_permutexvar_epi64(_mm512_setr_epi64(7, 6, 5, 4, 3, 2, 1, 0),
                                  v);
}

// Ascending sort of an 8-lane bitonic sequence: distances 4, 2, 1.
template <typename Ops>
inline __m512i sort_bitonic_epi64(__m512i v) {
  __m512i sw = _mm512_shuffle_i64x2(v, v, _MM_SHUFFLE(1, 0, 3, 2));  // d=4
  v = _mm512_mask_mov_epi64(Ops::mn(v, sw), 0xF0, Ops::mx(v, sw));
  sw = _mm512_shuffle_i64x2(v, v, _MM_SHUFFLE(2, 3, 0, 1));  // d=2
  v = _mm512_mask_mov_epi64(Ops::mn(v, sw), 0xCC, Ops::mx(v, sw));
  sw = _mm512_shuffle_epi32(v, _MM_PERM_BADC);  // d=1 (swap 64-bit halves)
  v = _mm512_mask_mov_epi64(Ops::mn(v, sw), 0xAA, Ops::mx(v, sw));
  return v;
}

template <typename Key, typename Ops>
struct Avx512Step64 {
  static constexpr std::size_t kWidth = 8;
  static void prefetch(const Key* p) { prefetch_t0(p); }
  static std::size_t step(const Key* pa, const Key* pb, Key* po) {
    const __m512i va = _mm512_loadu_si512(pa);
    const __m512i vb = _mm512_loadu_si512(pb);
    const __m512i vbr = reverse_epi64(vb);
    const __mmask8 take_a = Ops::le(va, vbr);
    _mm512_storeu_si512(po, sort_bitonic_epi64<Ops>(Ops::mn(va, vbr)));
    return static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(take_a)));
  }
};

// ----------------------------------------------------------------- float

inline __m512i f32_to_key(__m512i v) {
  const __m512i bias = _mm512_set1_epi32(static_cast<int>(0x80000000u));
  return _mm512_xor_si512(v,
                          _mm512_or_si512(_mm512_srai_epi32(v, 31), bias));
}
inline __m512i f32_from_key(__m512i k) {
  const __m512i bias = _mm512_set1_epi32(static_cast<int>(0x80000000u));
  const __m512i inv =
      _mm512_xor_si512(_mm512_srai_epi32(k, 31), _mm512_set1_epi32(-1));
  return _mm512_xor_si512(k, _mm512_or_si512(inv, bias));
}

inline __m512i f64_to_key(__m512i v) {
  const __m512i bias = _mm512_set1_epi64(
      static_cast<long long>(0x8000000000000000ULL));
  return _mm512_xor_si512(v,
                          _mm512_or_si512(_mm512_srai_epi64(v, 63), bias));
}
inline __m512i f64_from_key(__m512i k) {
  const __m512i bias = _mm512_set1_epi64(
      static_cast<long long>(0x8000000000000000ULL));
  const __m512i inv =
      _mm512_xor_si512(_mm512_srai_epi64(k, 63), _mm512_set1_epi32(-1));
  return _mm512_xor_si512(k, _mm512_or_si512(inv, bias));
}

struct Avx512StepF32 {
  static constexpr std::size_t kWidth = 16;
  static void prefetch(const float* p) { prefetch_t0(p); }
  static std::size_t step(const float* pa, const float* pb, float* po) {
    const __m512i va = f32_to_key(_mm512_loadu_si512(pa));
    const __m512i vb = f32_to_key(_mm512_loadu_si512(pb));
    const __m512i vbr = reverse_epi32(vb);
    const __mmask16 take_a = OpsU32::le(va, vbr);
    _mm512_storeu_si512(
        po, f32_from_key(sort_bitonic_epi32<OpsU32>(OpsU32::mn(va, vbr))));
    return static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(take_a)));
  }
};

struct Avx512StepF64 {
  static constexpr std::size_t kWidth = 8;
  static void prefetch(const double* p) { prefetch_t0(p); }
  static std::size_t step(const double* pa, const double* pb, double* po) {
    const __m512i va = f64_to_key(_mm512_loadu_si512(pa));
    const __m512i vb = f64_to_key(_mm512_loadu_si512(pb));
    const __m512i vbr = reverse_epi64(vb);
    const __mmask8 take_a = OpsU64::le(va, vbr);
    _mm512_storeu_si512(
        po, f64_from_key(sort_bitonic_epi64<OpsU64>(OpsU64::mn(va, vbr))));
    return static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(take_a)));
  }
};

}  // namespace

std::size_t avx512_loop_i32(const std::int32_t* a, std::size_t m,
                            const std::int32_t* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            std::int32_t* out, std::size_t steps) {
  return bounded_vector_merge<Avx512Step32<std::int32_t, OpsI32>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t avx512_loop_u32(const std::uint32_t* a, std::size_t m,
                            const std::uint32_t* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            std::uint32_t* out, std::size_t steps) {
  return bounded_vector_merge<Avx512Step32<std::uint32_t, OpsU32>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t avx512_loop_i64(const std::int64_t* a, std::size_t m,
                            const std::int64_t* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            std::int64_t* out, std::size_t steps) {
  return bounded_vector_merge<Avx512Step64<std::int64_t, OpsI64>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t avx512_loop_u64(const std::uint64_t* a, std::size_t m,
                            const std::uint64_t* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            std::uint64_t* out, std::size_t steps) {
  return bounded_vector_merge<Avx512Step64<std::uint64_t, OpsU64>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t avx512_loop_f32(const float* a, std::size_t m,
                            const float* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            float* out, std::size_t steps) {
  return bounded_vector_merge<Avx512StepF32>(a, m, b, n, a_pos, b_pos, out,
                                             steps);
}

std::size_t avx512_loop_f64(const double* a, std::size_t m,
                            const double* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            double* out, std::size_t steps) {
  return bounded_vector_merge<Avx512StepF64>(a, m, b, n, a_pos, b_pos, out,
                                             steps);
}

}  // namespace mp::kernels::detail
