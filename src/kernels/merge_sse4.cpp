// merge_sse4.cpp — SSE4.2 vector merge loops: 4-wide for 32-bit keys,
// 2-wide for 64-bit (pcmpgtq is the SSE4.2 instruction the 64-bit
// variant needs; the 32-bit min/max are SSE4.1). Same scheme as
// merge_avx2.cpp — anti-diagonal take count + bitonic exchange network —
// at half the width; see that TU for the correctness argument.

#include "kernels/simd_entry.hpp"

#include <immintrin.h>

#include "kernels/simd_loop_common.hpp"

namespace mp::kernels::detail {
namespace {

inline void prefetch_t0(const void* p) {
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
}

// ---------------------------------------------------------------- 32-bit

struct MinMaxI32 {
  static __m128i mn(__m128i x, __m128i y) { return _mm_min_epi32(x, y); }
  static __m128i mx(__m128i x, __m128i y) { return _mm_max_epi32(x, y); }
};
struct MinMaxU32 {
  static __m128i mn(__m128i x, __m128i y) { return _mm_min_epu32(x, y); }
  static __m128i mx(__m128i x, __m128i y) { return _mm_max_epu32(x, y); }
};

inline __m128i reverse_epi32(__m128i v) {
  return _mm_shuffle_epi32(v, _MM_SHUFFLE(0, 1, 2, 3));
}

// Ascending sort of a 4-lane bitonic sequence: exchanges at distances
// 2, 1 (blend_epi16 masks address 16-bit halves: 32-bit lane t is bits
// 2t and 2t+1).
template <typename Ops>
inline __m128i sort_bitonic_epi32(__m128i v) {
  __m128i sw = _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));  // distance 2
  v = _mm_blend_epi16(Ops::mn(v, sw), Ops::mx(v, sw), 0xF0);
  sw = _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));  // distance 1
  v = _mm_blend_epi16(Ops::mn(v, sw), Ops::mx(v, sw), 0xCC);
  return v;
}

template <typename Key, typename Ops>
struct Sse4Step32 {
  static constexpr std::size_t kWidth = 4;
  static void prefetch(const Key* p) { prefetch_t0(p); }
  static std::size_t step(const Key* pa, const Key* pb, Key* po) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb));
    const __m128i vbr = reverse_epi32(vb);
    const __m128i lo = Ops::mn(va, vbr);
    const int take_a =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, va)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(po),
                     sort_bitonic_epi32<Ops>(lo));
    return static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(take_a)));
  }
};

// ---------------------------------------------------------------- 64-bit

struct CmpI64 {
  static __m128i gt(__m128i x, __m128i y) { return _mm_cmpgt_epi64(x, y); }
};
struct CmpU64 {
  static __m128i gt(__m128i x, __m128i y) {
    const __m128i bias =
        _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
    return _mm_cmpgt_epi64(_mm_xor_si128(x, bias), _mm_xor_si128(y, bias));
  }
};

template <typename Cmp>
inline __m128i min_epi64(__m128i x, __m128i y) {
  return _mm_blendv_epi8(x, y, Cmp::gt(x, y));  // y where x > y
}
template <typename Cmp>
inline __m128i max_epi64(__m128i x, __m128i y) {
  return _mm_blendv_epi8(y, x, Cmp::gt(x, y));  // x where x > y
}

inline __m128i reverse_epi64(__m128i v) {
  return _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
}

template <typename Key, typename Cmp>
struct Sse4Step64 {
  static constexpr std::size_t kWidth = 2;
  static void prefetch(const Key* p) { prefetch_t0(p); }
  static std::size_t step(const Key* pa, const Key* pb, Key* po) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb));
    const __m128i vbr = reverse_epi64(vb);
    const int gt_mask =
        _mm_movemask_pd(_mm_castsi128_pd(Cmp::gt(va, vbr)));
    const __m128i lo = min_epi64<Cmp>(va, vbr);
    // Two-lane bitonic sort: one exchange at distance 1.
    const __m128i sw = reverse_epi64(lo);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(po),
        _mm_blend_epi16(min_epi64<Cmp>(lo, sw), max_epi64<Cmp>(lo, sw), 0xF0));
    return kWidth - static_cast<std::size_t>(
                        __builtin_popcount(static_cast<unsigned>(gt_mask)));
  }
};

// ----------------------------------------------------------------- float
// Total-order float mode: map IEEE bit patterns through the sign-flip
// bijection (non-negative: flip the sign bit; negative: flip all bits) so
// unsigned integer order on the keys equals IEEE totalOrder on the
// floats, run the unsigned window merge, invert before the store. The
// map is bijective, so byte-exactness vs the scalar TotalOrderLess
// kernel carries over from the integer argument.

inline __m128i f32_to_key(__m128i v) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  return _mm_xor_si128(v, _mm_or_si128(_mm_srai_epi32(v, 31), bias));
}
inline __m128i f32_from_key(__m128i k) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i inv =
      _mm_xor_si128(_mm_srai_epi32(k, 31), _mm_set1_epi32(-1));
  return _mm_xor_si128(k, _mm_or_si128(inv, bias));
}

// No 64-bit arithmetic shift below AVX-512: cmpgt against zero yields the
// same all-ones-when-negative lane mask (pcmpgtq is SSE4.2).
inline __m128i f64_to_key(__m128i v) {
  const __m128i bias =
      _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m128i mask = _mm_cmpgt_epi64(_mm_setzero_si128(), v);
  return _mm_xor_si128(v, _mm_or_si128(mask, bias));
}
inline __m128i f64_from_key(__m128i k) {
  const __m128i bias =
      _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m128i inv = _mm_xor_si128(_mm_cmpgt_epi64(_mm_setzero_si128(), k),
                                    _mm_set1_epi32(-1));
  return _mm_xor_si128(k, _mm_or_si128(inv, bias));
}

struct Sse4StepF32 {
  static constexpr std::size_t kWidth = 4;
  static void prefetch(const float* p) { prefetch_t0(p); }
  static std::size_t step(const float* pa, const float* pb, float* po) {
    const __m128i va =
        f32_to_key(_mm_loadu_si128(reinterpret_cast<const __m128i*>(pa)));
    const __m128i vb =
        f32_to_key(_mm_loadu_si128(reinterpret_cast<const __m128i*>(pb)));
    const __m128i vbr = reverse_epi32(vb);
    const __m128i lo = MinMaxU32::mn(va, vbr);
    const int take_a =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, va)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(po),
                     f32_from_key(sort_bitonic_epi32<MinMaxU32>(lo)));
    return static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(take_a)));
  }
};

struct Sse4StepF64 {
  static constexpr std::size_t kWidth = 2;
  static void prefetch(const double* p) { prefetch_t0(p); }
  static std::size_t step(const double* pa, const double* pb, double* po) {
    const __m128i va =
        f64_to_key(_mm_loadu_si128(reinterpret_cast<const __m128i*>(pa)));
    const __m128i vb =
        f64_to_key(_mm_loadu_si128(reinterpret_cast<const __m128i*>(pb)));
    const __m128i vbr = reverse_epi64(vb);
    const int gt_mask =
        _mm_movemask_pd(_mm_castsi128_pd(CmpU64::gt(va, vbr)));
    const __m128i lo = min_epi64<CmpU64>(va, vbr);
    const __m128i sw = reverse_epi64(lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(po),
                     f64_from_key(_mm_blend_epi16(min_epi64<CmpU64>(lo, sw),
                                                  max_epi64<CmpU64>(lo, sw),
                                                  0xF0)));
    return kWidth - static_cast<std::size_t>(
                        __builtin_popcount(static_cast<unsigned>(gt_mask)));
  }
};

}  // namespace

std::size_t sse4_loop_i32(const std::int32_t* a, std::size_t m,
                          const std::int32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int32_t* out, std::size_t steps) {
  return bounded_vector_merge<Sse4Step32<std::int32_t, MinMaxI32>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t sse4_loop_u32(const std::uint32_t* a, std::size_t m,
                          const std::uint32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint32_t* out, std::size_t steps) {
  return bounded_vector_merge<Sse4Step32<std::uint32_t, MinMaxU32>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t sse4_loop_i64(const std::int64_t* a, std::size_t m,
                          const std::int64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int64_t* out, std::size_t steps) {
  return bounded_vector_merge<Sse4Step64<std::int64_t, CmpI64>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t sse4_loop_u64(const std::uint64_t* a, std::size_t m,
                          const std::uint64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint64_t* out, std::size_t steps) {
  return bounded_vector_merge<Sse4Step64<std::uint64_t, CmpU64>>(
      a, m, b, n, a_pos, b_pos, out, steps);
}

std::size_t sse4_loop_f32(const float* a, std::size_t m,
                          const float* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          float* out, std::size_t steps) {
  return bounded_vector_merge<Sse4StepF32>(a, m, b, n, a_pos, b_pos, out,
                                           steps);
}

std::size_t sse4_loop_f64(const double* a, std::size_t m,
                          const double* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          double* out, std::size_t steps) {
  return bounded_vector_merge<Sse4StepF64>(a, m, b, n, a_pos, b_pos, out,
                                           steps);
}

}  // namespace mp::kernels::detail
