#pragma once
/// \file simd_entry.hpp
/// Private declarations of the per-ISA vector merge loops. Each set lives
/// in a TU compiled with its own target flags (merge_sse4.cpp with
/// -msse4.2, merge_avx2.cpp with -mavx2, merge_avx512.cpp with
/// -mavx512f -mavx512bw) and is reached only through kernels::detail
/// dispatch, which never routes to an ISA the cpuid probe did not report.
/// Shared contract: merge full W-wide steps while both windows hold >= W
/// unconsumed elements and >= W steps remain, advance *a_pos / *b_pos
/// exactly as merge_steps() would, return elements written; the caller
/// runs the scalar tail. The f32/f64 variants implement the total-order
/// float mode: sign-flip bijection on load, unsigned integer window
/// merge, inverse bijection on store (byte-exact vs the scalar kernel
/// under TotalOrderLess).

#include <cstddef>
#include <cstdint>

namespace mp::kernels::detail {

std::size_t sse4_loop_i32(const std::int32_t* a, std::size_t m,
                          const std::int32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int32_t* out, std::size_t steps);
std::size_t sse4_loop_u32(const std::uint32_t* a, std::size_t m,
                          const std::uint32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint32_t* out, std::size_t steps);
std::size_t sse4_loop_i64(const std::int64_t* a, std::size_t m,
                          const std::int64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int64_t* out, std::size_t steps);
std::size_t sse4_loop_u64(const std::uint64_t* a, std::size_t m,
                          const std::uint64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint64_t* out, std::size_t steps);

std::size_t avx2_loop_i32(const std::int32_t* a, std::size_t m,
                          const std::int32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int32_t* out, std::size_t steps);
std::size_t avx2_loop_u32(const std::uint32_t* a, std::size_t m,
                          const std::uint32_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint32_t* out, std::size_t steps);
std::size_t avx2_loop_i64(const std::int64_t* a, std::size_t m,
                          const std::int64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::int64_t* out, std::size_t steps);
std::size_t avx2_loop_u64(const std::uint64_t* a, std::size_t m,
                          const std::uint64_t* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          std::uint64_t* out, std::size_t steps);

std::size_t sse4_loop_f32(const float* a, std::size_t m,
                          const float* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          float* out, std::size_t steps);
std::size_t sse4_loop_f64(const double* a, std::size_t m,
                          const double* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          double* out, std::size_t steps);
std::size_t avx2_loop_f32(const float* a, std::size_t m,
                          const float* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          float* out, std::size_t steps);
std::size_t avx2_loop_f64(const double* a, std::size_t m,
                          const double* b, std::size_t n,
                          std::size_t* a_pos, std::size_t* b_pos,
                          double* out, std::size_t steps);

std::size_t avx512_loop_i32(const std::int32_t* a, std::size_t m,
                            const std::int32_t* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            std::int32_t* out, std::size_t steps);
std::size_t avx512_loop_u32(const std::uint32_t* a, std::size_t m,
                            const std::uint32_t* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            std::uint32_t* out, std::size_t steps);
std::size_t avx512_loop_i64(const std::int64_t* a, std::size_t m,
                            const std::int64_t* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            std::int64_t* out, std::size_t steps);
std::size_t avx512_loop_u64(const std::uint64_t* a, std::size_t m,
                            const std::uint64_t* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            std::uint64_t* out, std::size_t steps);
std::size_t avx512_loop_f32(const float* a, std::size_t m,
                            const float* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            float* out, std::size_t steps);
std::size_t avx512_loop_f64(const double* a, std::size_t m,
                            const double* b, std::size_t n,
                            std::size_t* a_pos, std::size_t* b_pos,
                            double* out, std::size_t steps);

}  // namespace mp::kernels::detail
