#pragma once
/// \file simd_loop_common.hpp
/// The outer shape shared by every vector merge loop. Included only by
/// the per-ISA TUs; `Traits` supplies the width and the one-vector-step
/// body, this template supplies the bounds discipline that makes the
/// kernels sanitizer-clean: a step runs only while BOTH windows hold at
/// least W unconsumed elements and at least W output steps remain, so no
/// lane load can cross a segment tail. The prefetch distance is a few
/// cache lines ahead of whichever cursor the merge is draining.

#include <cstddef>

namespace mp::kernels::detail {

/// Elements (not bytes) of lookahead for the software prefetch. 256 keys
/// = 16-32 cache lines: far enough to cover DRAM latency at one vector
/// step per cycle-ish, near enough to stay in the L1 stream.
inline constexpr std::size_t kPrefetchDistance = 256;

template <typename Traits, typename Key>
std::size_t bounded_vector_merge(const Key* a, std::size_t m, const Key* b,
                                 std::size_t n, std::size_t* a_pos,
                                 std::size_t* b_pos, Key* out,
                                 std::size_t steps) {
  constexpr std::size_t W = Traits::kWidth;
  std::size_t i = *a_pos;
  std::size_t j = *b_pos;
  std::size_t written = 0;
  while (steps - written >= W && m - i >= W && n - j >= W) {
    if (i + kPrefetchDistance < m) Traits::prefetch(a + i + kPrefetchDistance);
    if (j + kPrefetchDistance < n) Traits::prefetch(b + j + kPrefetchDistance);
    // One network step: emit the sorted W smallest of the 2W-key window,
    // advance the A cursor by the anti-diagonal take count.
    const std::size_t k = Traits::step(a + i, b + j, out + written);
    i += k;
    j += W - k;
    written += W;
  }
  *a_pos = i;
  *b_pos = j;
  return written;
}

}  // namespace mp::kernels::detail
