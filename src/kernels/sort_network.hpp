#pragma once
/// \file sort_network.hpp
/// Branchless sorting-network base case for the merge sorts.
///
/// sequential_merge_sort forms its initial runs (kInsertionSortThreshold
/// = 24 keys) with insertion sort, whose inner loop retires one element
/// per data-dependent branch — the same serial bottleneck the vector
/// merge kernels removed from the merge loop. This header replaces that
/// base case for the key types the kernel dispatch already certifies:
/// blocks of 8/16 keys go through Batcher odd-even sorting networks (19 /
/// 63 compare-exchanges, data-independent schedule, each compare-exchange
/// a branchless min/max select), and the sorted blocks are combined with
/// merge_steps_auto — the same bitonic-window vector merge the rest of
/// the codebase uses — so a 24-key run costs two networks plus one
/// kernel merge instead of ~144 dependent branches.
///
/// Gating mirrors the merge dispatch exactly:
///   - compile time: use_vector_merge_v over T*/Comp — bare 32/64-bit
///     integral keys under std::less, float/double under TotalOrderLess.
///     Networks reorder equal keys, so they are admitted only where
///     equal keys are bitwise identical (the same argument that makes the
///     vector merges stable "for free").
///   - run time: a vector kernel must actually be selected. Forced
///     --kernel scalar|branchless runs, MERGEPATH_SIMD=OFF builds and
///     non-x86 hosts keep the insertion-sort base case, byte for byte.
///   - call time: instrumented sorts (instr != nullptr) keep insertion
///     sort so PRAM op counts retain their per-step meaning.
/// Either path produces identical bytes for the admitted types; only the
/// instruction stream differs.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <limits>
#include <type_traits>

#include "kernels/kernels.hpp"

namespace mp::kernels {

/// Largest n sort_small_auto routes through the network path; larger
/// calls (no current caller makes one) fall back to insertion sort.
inline constexpr std::size_t kSortNetworkMax = 64;

namespace detail {

/// Branchless compare-exchange: after the call x <= y under comp. The
/// selects compile to min/max or cmov — no data-dependent branch.
template <typename T, typename Comp>
inline void cswap(T& x, T& y, Comp comp) {
  const bool sw = comp(y, x);
  const T lo = sw ? y : x;
  const T hi = sw ? x : y;
  x = lo;
  y = hi;
}

/// Batcher odd-even mergesort network for 8 keys: 19 compare-exchanges
/// in 6 data-independent layers (two sorted 4-runs, then their odd-even
/// merge).
template <typename T, typename Comp>
inline void sort_network8(T* d, Comp comp) {
  cswap(d[0], d[1], comp); cswap(d[2], d[3], comp);
  cswap(d[4], d[5], comp); cswap(d[6], d[7], comp);
  cswap(d[0], d[2], comp); cswap(d[1], d[3], comp);
  cswap(d[4], d[6], comp); cswap(d[5], d[7], comp);
  cswap(d[1], d[2], comp); cswap(d[5], d[6], comp);
  cswap(d[0], d[4], comp); cswap(d[1], d[5], comp);
  cswap(d[2], d[6], comp); cswap(d[3], d[7], comp);
  cswap(d[2], d[4], comp); cswap(d[3], d[5], comp);
  cswap(d[1], d[2], comp); cswap(d[3], d[4], comp);
  cswap(d[5], d[6], comp);
}

/// Batcher network for 16 keys: two sorted 8-runs plus their odd-even
/// merge (25 compare-exchanges), 63 total.
template <typename T, typename Comp>
inline void sort_network16(T* d, Comp comp) {
  sort_network8(d, comp);
  sort_network8(d + 8, comp);
  cswap(d[0], d[8], comp); cswap(d[1], d[9], comp);
  cswap(d[2], d[10], comp); cswap(d[3], d[11], comp);
  cswap(d[4], d[12], comp); cswap(d[5], d[13], comp);
  cswap(d[6], d[14], comp); cswap(d[7], d[15], comp);
  cswap(d[4], d[8], comp); cswap(d[5], d[9], comp);
  cswap(d[6], d[10], comp); cswap(d[7], d[11], comp);
  cswap(d[2], d[4], comp); cswap(d[3], d[5], comp);
  cswap(d[6], d[8], comp); cswap(d[7], d[9], comp);
  cswap(d[10], d[12], comp); cswap(d[11], d[13], comp);
  cswap(d[1], d[2], comp); cswap(d[3], d[4], comp);
  cswap(d[5], d[6], comp); cswap(d[7], d[8], comp);
  cswap(d[9], d[10], comp); cswap(d[11], d[12], comp);
  cswap(d[13], d[14], comp);
}

/// The padding value for a short tail block: the maximum of the key
/// type's order, so sentinels sort to the back and the real prefix is
/// exactly the sorted input (when a real key *equals* the sentinel the
/// boundary falls among bitwise-identical values, so the prefix is still
/// right). For floats the totalOrder maximum is +NaN with an all-ones
/// payload, not infinity.
template <typename T>
constexpr T sort_pad_max() {
  if constexpr (std::is_same_v<T, float>) {
    return std::bit_cast<float>(0x7fffffffu);
  } else if constexpr (std::is_same_v<T, double>) {
    return std::bit_cast<double>(0x7fffffffffffffffull);
  } else {
    return std::numeric_limits<T>::max();
  }
}

/// Network path body: sort 16-blocks in place (tail via a padded stack
/// block), then combine with the dispatched merge kernel, ping-ponging
/// through stack scratch.
template <typename T, typename Comp>
void sort_small_network(T* data, std::size_t n, Comp comp) {
  std::size_t begin = 0;
  for (; begin + 16 <= n; begin += 16) sort_network16(data + begin, comp);
  if (const std::size_t tail = n - begin; tail > 1) {
    T buf[16];
    const std::size_t width = tail <= 8 ? 8 : 16;
    std::copy(data + begin, data + n, buf);
    std::fill(buf + tail, buf + width, sort_pad_max<T>());
    if (width == 8)
      sort_network8(buf, comp);
    else
      sort_network16(buf, comp);
    std::copy(buf, buf + tail, data + begin);
  }
  if (n <= 16) return;
  T scratch[kSortNetworkMax];
  T* src = data;
  T* dst = scratch;
  for (std::size_t width = 16; width < n; width *= 2) {
    for (std::size_t b = 0; b < n; b += 2 * width) {
      const std::size_t mid = std::min(b + width, n);
      const std::size_t end = std::min(b + 2 * width, n);
      std::size_t i = 0, j = 0;
      merge_steps_auto(src + b, mid - b, src + mid, end - mid, &i, &j,
                       dst + b, end - b, comp);
    }
    std::swap(src, dst);
  }
  if (src != data) std::copy(src, src + n, data);
}

/// The insertion-sort fallback, byte- and op-count-identical to the
/// pre-network base case (instrumented runs depend on that).
template <typename T, typename Comp, typename Instr>
void insertion_sort_fallback(T* data, std::size_t n, Comp comp,
                             Instr* instr) {
  for (std::size_t i = 1; i < n; ++i) {
    T value = std::move(data[i]);
    std::size_t j = i;
    while (j > 0) {
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (instr) instr->compare();
      }
      if (!comp(value, data[j - 1])) break;
      data[j] = std::move(data[j - 1]);
      if constexpr (!std::is_same_v<Instr, NoInstrument>) {
        if (instr) instr->move();
      }
      --j;
    }
    data[j] = std::move(value);
    if constexpr (!std::is_same_v<Instr, NoInstrument>) {
      if (instr) instr->move();
    }
  }
}

}  // namespace detail

/// Small-sort entry point for the merge-sort base cases: the network
/// path when the trait admits T/Comp, a vector kernel is selected, the
/// call is uninstrumented and n fits the stack scratch; insertion sort
/// otherwise. Both paths produce identical bytes for admitted types.
template <typename T, typename Comp = std::less<>,
          typename Instr = NoInstrument>
void sort_small_auto(T* data, std::size_t n, Comp comp = {},
                     Instr* instr = nullptr) {
  if (n <= 1) return;
  if constexpr (use_vector_merge_v<const T*, const T*, T*, Comp>) {
    if (instr == nullptr && n <= kSortNetworkMax &&
        is_vector_kernel(selected_kernel())) {
      detail::sort_small_network(data, n, comp);
      return;
    }
  }
  detail::insertion_sort_fallback(data, n, comp, instr);
}

}  // namespace mp::kernels
