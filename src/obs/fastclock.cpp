#include "obs/fastclock.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/hw.hpp"

namespace mp::obs {
namespace {

/// The requested mode: MP_FASTCLOCK env at startup, then set_mode().
ClockMode g_mode = ClockMode::kAuto;
bool g_env_read = false;

/// The re-calibration interval (0 = disabled) and how many re-calibrations
/// have been published. Written by the single maintenance caller.
std::atomic<std::uint64_t> g_recal_interval_ns{0};
std::atomic<std::uint64_t> g_recalibrations{0};

ClockMode mode_from_env() {
  const char* env = std::getenv("MP_FASTCLOCK");
  if (!env) return ClockMode::kAuto;
  if (std::strcmp(env, "tsc") == 0) return ClockMode::kTsc;
  if (std::strcmp(env, "steady") == 0) return ClockMode::kSteady;
  return ClockMode::kAuto;  // unknown values mean "auto", not an error
}

ClockMode effective_mode() {
  if (!g_env_read) {
    g_mode = mode_from_env();
    g_env_read = true;
  }
  return g_mode;
}

/// The slot not currently published — the one a writer may fill.
detail::ClockState* spare_slot() {
  const detail::ClockState* active =
      detail::g_active_clock.load(std::memory_order_relaxed);
  return active == &detail::g_clock_slots[0] ? &detail::g_clock_slots[1]
                                             : &detail::g_clock_slots[0];
}

/// Fills `slot` (relaxed stores) and publishes it (release store): a
/// reader that acquires the pointer sees every field of the calibration.
void publish(detail::ClockState* slot, bool using_tsc, double ns_per_tick,
             std::uint64_t tsc_epoch, std::uint64_t steady_epoch_ns) {
  slot->using_tsc.store(using_tsc, std::memory_order_relaxed);
  slot->ns_per_tick.store(ns_per_tick, std::memory_order_relaxed);
  slot->tsc_epoch.store(tsc_epoch, std::memory_order_relaxed);
  slot->steady_epoch_ns.store(steady_epoch_ns, std::memory_order_relaxed);
  detail::g_active_clock.store(slot, std::memory_order_release);
}

/// One (steady_ns, tsc) sample taken "at the same instant": the tsc read
/// is bracketed by two steady reads. A wide bracket means the thread was
/// preempted mid-pair — over a 1 ms calibration window a tens-of-ms
/// scheduler slice inflates the measured rate ~50x — so retry and keep
/// the tightest bracket seen.
struct ClockPair {
  std::uint64_t ns;
  std::uint64_t tsc;
};

ClockPair sample_clock_pair() {
  ClockPair best{0, 0};
  std::uint64_t best_gap = ~std::uint64_t{0};
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t lo = detail::steady_now_ns();
    const std::uint64_t tsc = detail::read_tsc();
    const std::uint64_t hi = detail::steady_now_ns();
    const std::uint64_t gap = hi - lo;
    if (gap < best_gap) {
      best_gap = gap;
      best = ClockPair{lo + gap / 2, tsc};
    }
    if (best_gap < 5'000) break;  // 5 us: no preemption inside the pair
  }
  return best;
}

/// Measures ns-per-tick against steady_clock over a short spin. ~1 ms is
/// enough for <0.1% rate error, far below the span durations we care
/// about, and runs once per process (or per set_mode call).
void calibrate_tsc(detail::ClockState* slot) {
  constexpr std::uint64_t kSpinNs = 1'000'000;  // 1 ms
  const ClockPair t0 = sample_clock_pair();
  while (detail::steady_now_ns() - t0.ns < kSpinNs) {
  }
  const ClockPair t1 = sample_clock_pair();
  if (t1.tsc <= t0.tsc) {
    // TSC not advancing (emulated host?) — fall back.
    publish(slot, false, 0.0, 0, t1.ns);
    return;
  }
  // Re-anchor the epoch at the end of the spin so conversion error does not
  // include the calibration window itself.
  publish(slot, true,
          static_cast<double>(t1.ns - t0.ns) /
              static_cast<double>(t1.tsc - t0.tsc),
          t1.tsc, t1.ns);
}

void calibrate(detail::ClockState* slot) {
  const ClockMode mode = effective_mode();
  bool want_tsc = false;
  switch (mode) {
    case ClockMode::kSteady: want_tsc = false; break;
    case ClockMode::kTsc: want_tsc = detail::kHasTsc; break;
    case ClockMode::kAuto:
      want_tsc = detail::kHasTsc && cpu_features().invariant_tsc;
      break;
  }
  if (!want_tsc) {
    publish(slot, false, 0.0, 0, detail::steady_now_ns());
    return;
  }
  calibrate_tsc(slot);
}

}  // namespace

namespace detail {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool init_fast_clock() {
  calibrate(spare_slot());
  return true;
}

void inject_clock_drift(double factor) {
  const ClockState* active = g_active_clock.load(std::memory_order_acquire);
  if (!active->using_tsc.load(std::memory_order_relaxed)) return;
  ClockState* slot = spare_slot();
  publish(slot, true,
          active->ns_per_tick.load(std::memory_order_relaxed) * factor,
          active->tsc_epoch.load(std::memory_order_relaxed),
          active->steady_epoch_ns.load(std::memory_order_relaxed));
}

}  // namespace detail

void FastClock::set_mode(ClockMode mode) {
  (void)now_ns();  // make sure first-use init has run (and stays run)
  g_env_read = true;
  g_mode = mode;
  calibrate(spare_slot());
}

ClockMode FastClock::mode() { return effective_mode(); }

ClockCalibration FastClock::calibration() {
  (void)now_ns();
  const detail::ClockState* state =
      detail::g_active_clock.load(std::memory_order_acquire);
  ClockCalibration cal;
  cal.using_tsc = state->using_tsc.load(std::memory_order_relaxed);
  cal.ns_per_tick = state->ns_per_tick.load(std::memory_order_relaxed);
  cal.tsc_epoch = state->tsc_epoch.load(std::memory_order_relaxed);
  cal.steady_epoch_ns =
      state->steady_epoch_ns.load(std::memory_order_relaxed);
  return cal;
}

std::string FastClock::source_name() {
  return calibration().using_tsc ? "tsc" : "steady";
}

void FastClock::recalibrate_every(std::uint64_t interval_ns) {
  g_recal_interval_ns.store(interval_ns, std::memory_order_relaxed);
}

std::uint64_t FastClock::recalibrate_interval() {
  return g_recal_interval_ns.load(std::memory_order_relaxed);
}

bool FastClock::maybe_recalibrate() {
  const std::uint64_t interval =
      g_recal_interval_ns.load(std::memory_order_relaxed);
  if (interval == 0) return false;
  (void)now_ns();  // first-use init
  const detail::ClockState* active =
      detail::g_active_clock.load(std::memory_order_acquire);
  if (!active->using_tsc.load(std::memory_order_relaxed)) return false;
  const std::uint64_t anchor_ns =
      active->steady_epoch_ns.load(std::memory_order_relaxed);
  const std::uint64_t now_steady = detail::steady_now_ns();
  if (now_steady - anchor_ns < interval) return false;

  // Re-derive the rate over the whole window since the last anchor — at
  // least one interval, so a 1 s interval measures over a window 1000x the
  // initial 1 ms spin — and re-anchor the epoch at "now" so any residual
  // drift accumulated under the old rate is zeroed, not extrapolated.
  const std::uint64_t anchor_tsc =
      active->tsc_epoch.load(std::memory_order_relaxed);
  const ClockPair now = sample_clock_pair();
  if (now.tsc <= anchor_tsc) return false;  // TSC stopped: keep old state
  publish(spare_slot(), true,
          static_cast<double>(now.ns - anchor_ns) /
              static_cast<double>(now.tsc - anchor_tsc),
          now.tsc, now.ns);
  g_recalibrations.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FastClock::recalibrations() {
  return g_recalibrations.load(std::memory_order_relaxed);
}

}  // namespace mp::obs
