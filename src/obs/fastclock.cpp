#include "obs/fastclock.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/hw.hpp"

namespace mp::obs {
namespace {

/// The requested mode: MP_FASTCLOCK env at startup, then set_mode().
ClockMode g_mode = ClockMode::kAuto;
bool g_env_read = false;

ClockMode mode_from_env() {
  const char* env = std::getenv("MP_FASTCLOCK");
  if (!env) return ClockMode::kAuto;
  if (std::strcmp(env, "tsc") == 0) return ClockMode::kTsc;
  if (std::strcmp(env, "steady") == 0) return ClockMode::kSteady;
  return ClockMode::kAuto;  // unknown values mean "auto", not an error
}

ClockMode effective_mode() {
  if (!g_env_read) {
    g_mode = mode_from_env();
    g_env_read = true;
  }
  return g_mode;
}

/// Measures ns-per-tick against steady_clock over a short spin. ~1 ms is
/// enough for <0.1% rate error, far below the span durations we care
/// about, and runs once per process (or per set_mode call).
void calibrate_tsc(detail::ClockState& state) {
  constexpr std::uint64_t kSpinNs = 1'000'000;  // 1 ms
  const std::uint64_t t0_ns = detail::steady_now_ns();
  const std::uint64_t t0_tsc = detail::read_tsc();
  std::uint64_t t1_ns = t0_ns;
  std::uint64_t t1_tsc = t0_tsc;
  while (t1_ns - t0_ns < kSpinNs) {
    t1_tsc = detail::read_tsc();
    t1_ns = detail::steady_now_ns();
  }
  if (t1_tsc <= t0_tsc) {
    // TSC not advancing (emulated host?) — fall back.
    state = detail::ClockState{};
    return;
  }
  state.using_tsc = true;
  state.ns_per_tick = static_cast<double>(t1_ns - t0_ns) /
                      static_cast<double>(t1_tsc - t0_tsc);
  // Re-anchor the epoch at the end of the spin so conversion error does not
  // include the calibration window itself.
  state.tsc_epoch = t1_tsc;
  state.steady_epoch_ns = t1_ns;
}

void calibrate(detail::ClockState& state) {
  const ClockMode mode = effective_mode();
  bool want_tsc = false;
  switch (mode) {
    case ClockMode::kSteady: want_tsc = false; break;
    case ClockMode::kTsc: want_tsc = detail::kHasTsc; break;
    case ClockMode::kAuto:
      want_tsc = detail::kHasTsc && cpu_features().invariant_tsc;
      break;
  }
  if (!want_tsc) {
    state = detail::ClockState{};
    state.steady_epoch_ns = detail::steady_now_ns();
    return;
  }
  calibrate_tsc(state);
}

}  // namespace

namespace detail {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool init_fast_clock() {
  calibrate(g_clock_state);
  return true;
}

}  // namespace detail

void FastClock::set_mode(ClockMode mode) {
  (void)now_ns();  // make sure first-use init has run (and stays run)
  g_env_read = true;
  g_mode = mode;
  calibrate(detail::g_clock_state);
}

ClockMode FastClock::mode() { return effective_mode(); }

ClockCalibration FastClock::calibration() {
  (void)now_ns();
  const detail::ClockState& state = detail::g_clock_state;
  ClockCalibration cal;
  cal.using_tsc = state.using_tsc;
  cal.ns_per_tick = state.ns_per_tick;
  cal.tsc_epoch = state.tsc_epoch;
  cal.steady_epoch_ns = state.steady_epoch_ns;
  return cal;
}

std::string FastClock::source_name() {
  return calibration().using_tsc ? "tsc" : "steady";
}

}  // namespace mp::obs
