#pragma once
/// \file fastclock.hpp
/// Calibrated TSC timestamping for span edges.
///
/// A steady_clock read costs a vDSO call (~20-25 ns on the evaluation
/// container); rdtsc is a single instruction (~6-8 ns including the
/// serialisation the compiler emits around it). Armed spans take two
/// timestamps each, so the clock is the dominant per-edge cost — the
/// ROADMAP follow-up this file closes.
///
/// FastClock::now_ns() returns nanoseconds on the steady_clock timeline:
///  - On x86 hosts whose CPUID reports an invariant TSC (constant rate
///    across P-/C-state transitions), it calibrates ns-per-tick against
///    steady_clock once at first use (~1 ms spin) and afterwards converts
///    rdtsc readings:  steady_epoch + (tsc - tsc_epoch) * ns_per_tick.
///  - Everywhere else (non-x86, non-invariant TSC, or MP_FASTCLOCK=steady)
///    it falls back to a plain steady_clock read. Values stay directly
///    comparable either way, and the active calibration is exported in
///    trace metadata ("clock" in otherData) so offline tools can tell which
///    source stamped a trace.
///
/// The mode can be forced at runtime with set_mode() (used by
/// BM_SpanOverhead to price both sources in one binary) or with the
/// MP_FASTCLOCK environment variable (auto | tsc | steady). set_mode() is a
/// control-plane operation: like arm_tracing(), call it only while no
/// instrumented work is in flight.
///
/// This file is NOT gated on MP_TRACE — it is just a clock, and the control
/// plane (export metadata, tests) uses it even in no-trace builds.

#include <cstdint>
#include <string>

namespace mp::obs {

/// Timestamp source selection.
enum class ClockMode : std::uint8_t {
  kAuto,    ///< TSC when the CPU advertises invariance, else steady_clock
  kTsc,     ///< force TSC (still falls back if the host has no TSC at all)
  kSteady,  ///< force steady_clock
};

/// The active calibration, exported into trace metadata.
struct ClockCalibration {
  bool using_tsc = false;          ///< false: plain steady_clock reads
  double ns_per_tick = 0.0;        ///< 0 when using_tsc is false
  std::uint64_t tsc_epoch = 0;     ///< rdtsc at calibration
  std::uint64_t steady_epoch_ns = 0;  ///< steady_clock at calibration (ns)
};

namespace detail {

/// Calibration state, published once by init (or re-published by
/// set_mode(), under the control-plane quiescence contract).
struct ClockState {
  bool using_tsc = false;
  double ns_per_tick = 0.0;
  std::uint64_t tsc_epoch = 0;
  std::uint64_t steady_epoch_ns = 0;
};

inline ClockState g_clock_state{};

/// Calibrates per the requested mode and fills g_clock_state. Returns true
/// (the value anchors the function-local static in now_ns()).
bool init_fast_clock();

std::uint64_t steady_now_ns();

#if defined(__x86_64__) || defined(__i386__)
inline std::uint64_t read_tsc() { return __builtin_ia32_rdtsc(); }
inline constexpr bool kHasTsc = true;
#else
inline std::uint64_t read_tsc() { return 0; }
inline constexpr bool kHasTsc = false;
#endif

}  // namespace detail

struct FastClock {
  /// Nanoseconds on the steady_clock timeline. First call calibrates.
  static std::uint64_t now_ns() {
    static const bool ready = detail::init_fast_clock();
    (void)ready;
    const detail::ClockState& state = detail::g_clock_state;
    if (state.using_tsc) {
      const std::uint64_t ticks = detail::read_tsc() - state.tsc_epoch;
      return state.steady_epoch_ns +
             static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                        state.ns_per_tick);
    }
    return detail::steady_now_ns();
  }

  /// Forces a timestamp source and re-calibrates. Control-plane only: call
  /// while no instrumented work is in flight (same contract as
  /// arm_tracing). kAuto restores the CPUID-driven default.
  static void set_mode(ClockMode mode);

  /// The mode currently in effect (after env override / set_mode).
  static ClockMode mode();

  /// The active calibration (valid after the first now_ns()/set_mode()).
  static ClockCalibration calibration();

  /// "tsc" or "steady" — the active source, for banners and metadata.
  static std::string source_name();
};

}  // namespace mp::obs
