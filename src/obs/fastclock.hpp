#pragma once
/// \file fastclock.hpp
/// Calibrated TSC timestamping for span edges.
///
/// A steady_clock read costs a vDSO call (~20-25 ns on the evaluation
/// container); rdtsc is a single instruction (~6-8 ns including the
/// serialisation the compiler emits around it). Armed spans take two
/// timestamps each, so the clock is the dominant per-edge cost — the
/// ROADMAP follow-up this file closes.
///
/// FastClock::now_ns() returns nanoseconds on the steady_clock timeline:
///  - On x86 hosts whose CPUID reports an invariant TSC (constant rate
///    across P-/C-state transitions), it calibrates ns-per-tick against
///    steady_clock once at first use (~1 ms spin) and afterwards converts
///    rdtsc readings:  steady_epoch + (tsc - tsc_epoch) * ns_per_tick.
///  - Everywhere else (non-x86, non-invariant TSC, or MP_FASTCLOCK=steady)
///    it falls back to a plain steady_clock read. Values stay directly
///    comparable either way, and the active calibration is exported in
///    trace metadata ("clock" in otherData) so offline tools can tell which
///    source stamped a trace.
///
/// The mode can be forced at runtime with set_mode() (used by
/// BM_SpanOverhead to price both sources in one binary) or with the
/// MP_FASTCLOCK environment variable (auto | tsc | steady). set_mode() is a
/// control-plane operation: like arm_tracing(), call it only while no
/// instrumented work is in flight.
///
/// Long-running servers: the one-shot calibration measures ns-per-tick
/// over a ~1 ms window, so its rate error (≤0.1%) accumulates against
/// steady_clock — about a millisecond of drift per matching second of
/// uptime, which a day-long serving process would notice in its latency
/// percentiles. recalibrate_every() arms periodic re-calibration:
/// maybe_recalibrate(), called from a single maintenance point (the serve
/// dispatcher calls it between batches), re-measures the rate over the
/// whole elapsed window (longer window = lower rate error) and re-anchors
/// the epoch at "now". Unlike set_mode(), maybe_recalibrate() is safe to
/// run while *other* threads are timestamping: the calibration lives in
/// atomic fields behind an atomically published slot pointer, so readers
/// always see a complete calibration. Only one thread may be the
/// maintenance caller at a time (concurrent maybe_recalibrate/set_mode
/// calls race on the spare slot).
///
/// This file is NOT gated on MP_TRACE — it is just a clock, and the control
/// plane (export metadata, tests) uses it even in no-trace builds.

#include <atomic>
#include <cstdint>
#include <string>

namespace mp::obs {

/// Timestamp source selection.
enum class ClockMode : std::uint8_t {
  kAuto,    ///< TSC when the CPU advertises invariance, else steady_clock
  kTsc,     ///< force TSC (still falls back if the host has no TSC at all)
  kSteady,  ///< force steady_clock
};

/// The active calibration, exported into trace metadata.
struct ClockCalibration {
  bool using_tsc = false;          ///< false: plain steady_clock reads
  double ns_per_tick = 0.0;        ///< 0 when using_tsc is false
  std::uint64_t tsc_epoch = 0;     ///< rdtsc at calibration
  std::uint64_t steady_epoch_ns = 0;  ///< steady_clock at calibration (ns)
};

namespace detail {

/// One published calibration. Fields are individually atomic (relaxed
/// plain-mov loads on x86) so a stale reader that dereferences a slot
/// while the maintenance thread rewrites it sees defined values — the slot
/// *pointer* publication (release/acquire) is what guarantees a coherent
/// set under normal operation.
struct ClockState {
  std::atomic<bool> using_tsc{false};
  std::atomic<double> ns_per_tick{0.0};
  std::atomic<std::uint64_t> tsc_epoch{0};
  std::atomic<std::uint64_t> steady_epoch_ns{0};
};

/// Double-buffered calibration slots + the active-slot pointer. Writers
/// (init, set_mode, maybe_recalibrate — control-plane/maintenance, one at
/// a time) fill the spare slot and publish it with a release store; the
/// hot path takes one acquire load.
inline ClockState g_clock_slots[2]{};
inline std::atomic<const ClockState*> g_active_clock{&g_clock_slots[0]};

/// Calibrates per the requested mode into the spare slot and publishes it.
/// Returns true (the value anchors the function-local static in now_ns()).
bool init_fast_clock();

std::uint64_t steady_now_ns();

#if defined(__x86_64__) || defined(__i386__)
inline std::uint64_t read_tsc() { return __builtin_ia32_rdtsc(); }
inline constexpr bool kHasTsc = true;
#else
inline std::uint64_t read_tsc() { return 0; }
inline constexpr bool kHasTsc = false;
#endif

/// TEST-ONLY: multiplies the active ns-per-tick by `factor` (keeping the
/// epoch anchors), simulating a mis-calibrated rate whose error grows
/// linearly with elapsed time — the drift model the re-calibration tests
/// inject. No-op when the active calibration is not TSC-based.
void inject_clock_drift(double factor);

}  // namespace detail

struct FastClock {
  /// Nanoseconds on the steady_clock timeline. First call calibrates.
  static std::uint64_t now_ns() {
    static const bool ready = detail::init_fast_clock();
    (void)ready;
    const detail::ClockState* state =
        detail::g_active_clock.load(std::memory_order_acquire);
    if (state->using_tsc.load(std::memory_order_relaxed)) {
      const std::uint64_t ticks =
          detail::read_tsc() -
          state->tsc_epoch.load(std::memory_order_relaxed);
      return state->steady_epoch_ns.load(std::memory_order_relaxed) +
             static_cast<std::uint64_t>(
                 static_cast<double>(ticks) *
                 state->ns_per_tick.load(std::memory_order_relaxed));
    }
    return detail::steady_now_ns();
  }

  /// Forces a timestamp source and re-calibrates. Control-plane only: call
  /// while no instrumented work is in flight (same contract as
  /// arm_tracing). kAuto restores the CPUID-driven default.
  static void set_mode(ClockMode mode);

  /// The mode currently in effect (after env override / set_mode).
  static ClockMode mode();

  /// The active calibration (valid after the first now_ns()/set_mode()).
  static ClockCalibration calibration();

  /// "tsc" or "steady" — the active source, for banners and metadata.
  static std::string source_name();

  /// Arms periodic re-calibration: once the active TSC calibration is
  /// older than `interval_ns`, the next maybe_recalibrate() call re-derives
  /// ns-per-tick against steady_clock over the whole elapsed window and
  /// re-anchors the epoch. 0 (the default) disables. Long-running servers
  /// arm this so the TSC timeline cannot drift away from steady_clock.
  static void recalibrate_every(std::uint64_t interval_ns);
  static std::uint64_t recalibrate_interval();

  /// Re-calibrates if armed, TSC-based, and the interval has elapsed.
  /// Returns true when a re-calibration was published. Safe with
  /// concurrent now_ns() readers; only one maintenance thread may call it
  /// (the serve dispatcher between batches, or a test).
  static bool maybe_recalibrate();

  /// Re-calibrations published since process start (for tests/banners).
  static std::uint64_t recalibrations();
};

}  // namespace mp::obs
