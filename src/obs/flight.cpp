#include "obs/flight.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>

#include "obs/metrics.hpp"

namespace mp::obs {
namespace {

std::atomic<const char*> g_degraded_reason{nullptr};
std::atomic<bool> g_degraded{false};
std::atomic<bool> g_dumped{false};

/// Dump path; guarded by its own mutex (set from CLI parsing / env, read
/// at finalisation — never on the span hot path).
std::mutex g_dump_path_mutex;
std::string& dump_path_storage() {
  static std::string* path = new std::string;
  return *path;
}

/// Startup: apply MP_FLIGHT / MP_FLIGHT_DUMP before main() runs. The state
/// byte is constant-initialised with the flight bit set, so clearing it
/// here (dynamic init) is ordered correctly.
const bool g_env_applied = [] {
  if (const char* env = std::getenv("MP_FLIGHT")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)
      detail::g_span_state.fetch_and(
          static_cast<std::uint8_t>(~detail::kSpanFlightBit),
          std::memory_order_release);
  }
  if (const char* env = std::getenv("MP_FLIGHT_DUMP")) {
    dump_path_storage() = env;
  }
  return true;
}();

}  // namespace

bool flight_enabled() {
  return (detail::g_span_state.load(std::memory_order_acquire) &
          detail::kSpanFlightBit) != 0;
}

void set_flight_enabled(bool on) {
  if (on)
    detail::g_span_state.fetch_or(detail::kSpanFlightBit,
                                  std::memory_order_release);
  else
    detail::g_span_state.fetch_and(
        static_cast<std::uint8_t>(~detail::kSpanFlightBit),
        std::memory_order_release);
}

void set_flight_dump_path(const std::string& path) {
  std::lock_guard lock(g_dump_path_mutex);
  dump_path_storage() = path;
}

std::string flight_dump_path() {
  std::lock_guard lock(g_dump_path_mutex);
  return dump_path_storage();
}

void flight_report_degraded(const char* reason) {
  Span::instant("flight.degraded");
  MetricsRegistry::instance().counter("obs.degraded").add(1);
  const char* expected = nullptr;
  g_degraded_reason.compare_exchange_strong(expected, reason,
                                            std::memory_order_acq_rel);
  g_degraded.store(true, std::memory_order_release);
}

bool flight_degraded() { return g_degraded.load(std::memory_order_acquire); }

const char* flight_degraded_reason() {
  return g_degraded_reason.load(std::memory_order_acquire);
}

#if MP_TRACE

void set_flight_capacity(std::size_t events_per_thread) {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  registry.flight_capacity = events_per_thread;
  for (auto& buffer : registry.buffers) {
    buffer->flight.assign(events_per_thread, TraceEvent{});
    buffer->flight_next = 0;
    buffer->flight_count = 0;
  }
}

std::vector<TraceEvent> flight_snapshot() {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  std::vector<TraceEvent> events;
  for (const auto& buffer : registry.buffers) {
    const std::size_t cap = buffer->flight.size();
    for (std::size_t k = 0; k < buffer->flight_count; ++k) {
      const std::size_t idx =
          (buffer->flight_next + cap - buffer->flight_count + k) % cap;
      TraceEvent event = buffer->flight[idx];
      event.tid = buffer->tid;
      events.push_back(event);
    }
  }
  // Normalise absolute FastClock timestamps to the earliest retained event.
  std::uint64_t min_ts = ~std::uint64_t{0};
  for (const TraceEvent& event : events) min_ts = std::min(min_ts, event.ts_ns);
  for (TraceEvent& event : events) event.ts_ns -= min_ts;
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              return x.dur_ns > y.dur_ns;  // parent before children
            });
  return events;
}

void reset_flight() {
  {
    detail::TraceRegistry& registry = detail::TraceRegistry::instance();
    std::lock_guard lock(registry.mutex);
    for (auto& buffer : registry.buffers) {
      buffer->flight_next = 0;
      buffer->flight_count = 0;
    }
  }
  g_degraded.store(false, std::memory_order_release);
  g_degraded_reason.store(nullptr, std::memory_order_release);
  g_dumped.store(false, std::memory_order_release);
}

#else  // !MP_TRACE — empty recorder, latches still work.

void set_flight_capacity(std::size_t) {}
std::vector<TraceEvent> flight_snapshot() { return {}; }

void reset_flight() {
  g_degraded.store(false, std::memory_order_release);
  g_degraded_reason.store(nullptr, std::memory_order_release);
  g_dumped.store(false, std::memory_order_release);
}

#endif  // MP_TRACE

void write_flight_trace(std::ostream& os) {
  const char* reason = flight_degraded_reason();
  std::string extra = ",\"flight_recorder\":true,\"reason\":\"";
  extra += reason ? reason : "";
  extra += '"';
  detail::write_trace_json(os, flight_snapshot(), 0, extra);
}

bool write_flight_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot write flight snapshot to " << path << "\n";
    return false;
  }
  write_flight_trace(out);
  return out.good();
}

bool flight_write_pending(bool force) {
  if (!force && !flight_degraded()) return false;
  const std::string path = flight_dump_path();
  if (path.empty()) return false;
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return false;
  if (!write_flight_trace_file(path)) return false;
  std::cerr << "obs: flight snapshot written to " << path
            << (flight_degraded()
                    ? std::string(" (degraded: ") +
                          (flight_degraded_reason() ? flight_degraded_reason()
                                                    : "?") +
                          ")"
                    : std::string(" (on demand)"))
            << "\n";
  return true;
}

}  // namespace mp::obs
