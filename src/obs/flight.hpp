#pragma once
/// \file flight.hpp
/// Always-armed flight recorder: a bounded per-thread ring of the most
/// recent spans/instants, kept at near-zero cost so a degraded run can be
/// explained *after the fact* without having asked for a trace up front.
///
/// The storage is the second ring in detail::ThreadBuffer (trace.hpp);
/// recording shares the Span hot path (one state-byte load when idle) and
/// keeps absolute FastClock timestamps so the window survives trace
/// re-arms. Snapshots normalise timestamps to the earliest retained event.
/// Because rings hold complete spans and evict oldest-first, any retained
/// suffix of a properly nested span stream is itself properly nested —
/// flight dumps pass the same structural checks as full traces
/// (scripts/check_trace.py --flight).
///
/// Degraded-run plumbing: recovery paths call flight_report_degraded() the
/// moment they give up on the fast path (sequential lane fallback, extmem
/// permanent I/O faults, dist segment-retry exhaustion). That is a cheap
/// marker — it records a "flight.degraded" instant, bumps the
/// "obs.degraded" counter and latches the first reason. The snapshot file
/// itself is written later, from a quiescent point (mpsort/harness
/// finalisation calling flight_write_pending()), because dumping from the
/// fault site could race with other lanes still recording. Configure the
/// dump destination with set_flight_dump_path() or the MP_FLIGHT_DUMP
/// environment variable; every degraded run then leaves a post-mortem
/// artifact.
///
/// MP_FLIGHT=0 in the environment disables the recorder at startup (one
/// state-byte bit); under MP_TRACE=0 builds spans record nothing and the
/// control plane degrades to empty snapshots.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mp::obs {

/// True when spans are currently being folded into the flight ring.
bool flight_enabled();

/// Turns the recorder on/off (control-plane: call while quiescent). The
/// bench Harness turns it off by default so measured numbers never include
/// recorder cost; mpsort leaves it on.
void set_flight_enabled(bool on);

/// Resizes every thread's flight ring (and clears them). Control-plane.
void set_flight_capacity(std::size_t events_per_thread);

/// The most recent events from every thread, timestamps normalised to the
/// earliest retained event, sorted like trace_snapshot(). Non-destructive.
std::vector<TraceEvent> flight_snapshot();

/// Clears all flight rings and the degraded/dumped latches.
void reset_flight();

/// Chrome-JSON export of flight_snapshot(); otherData carries
/// "flight_recorder":true and the latched degrade "reason" ("" if the dump
/// was requested rather than triggered).
void write_flight_trace(std::ostream& os);
bool write_flight_trace_file(const std::string& path);

/// Where automatic degraded-run dumps go ("" = nowhere). Initialised from
/// MP_FLIGHT_DUMP at startup.
void set_flight_dump_path(const std::string& path);
std::string flight_dump_path();

/// Marks the current run degraded: records a "flight.degraded" instant,
/// bumps the "obs.degraded" counter and latches `reason` (first caller
/// wins; must be a static string). Cheap and safe from any thread.
void flight_report_degraded(const char* reason);

/// True once flight_report_degraded() has fired (since the last
/// reset_flight()).
bool flight_degraded();

/// The latched first reason, or nullptr.
const char* flight_degraded_reason();

/// If the run degraded, a dump path is configured and no dump has been
/// written yet, writes the flight snapshot there. Returns true if a file
/// was written. Call from a quiescent finalisation point; pass force=true
/// to dump regardless of degrade state (mpsort --flight-dump semantics).
bool flight_write_pending(bool force = false);

}  // namespace mp::obs
