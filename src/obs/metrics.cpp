#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/percentiles.hpp"

namespace mp::obs {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// JSON numbers lose integer precision past 2^53 in common consumers;
/// metric magnitudes stay far below that, so plain emission is fine.
void write_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << gauge->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ":{\"count\":" << histogram->count()
       << ",\"sum\":" << histogram->sum() << ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
      const std::uint64_t n = histogram->bucket(k);
      if (n == 0) continue;
      if (!first_bucket) os << ',';
      first_bucket = false;
      os << "{\"bit\":" << k << ",\"count\":" << n << '}';
    }
    os << "]}";
  }
  os << "}}";
}

Table MetricsRegistry::to_table() const {
  std::lock_guard lock(mutex_);
  Table table({"metric", "kind", "value"});
  for (const auto& [name, counter] : counters_)
    table.add_row({name, "counter", fmt_count(counter->value())});
  for (const auto& [name, gauge] : gauges_)
    table.add_row({name, "gauge", std::to_string(gauge->value())});
  for (const auto& [name, histogram] : histograms_)
    table.add_row({name, "histogram",
                   fmt_count(histogram->count()) + " obs, sum " +
                       fmt_count(histogram->sum())});
  return table;
}

// ---------------------------------------------------------------------------

LaneMetrics& LaneMetrics::instance() {
  static LaneMetrics* metrics = new LaneMetrics;
  return *metrics;
}

void LaneMetrics::arm() {
  reset();
  detail::g_lane_metrics_armed.store(true, std::memory_order_release);
}

void LaneMetrics::disarm() {
  detail::g_lane_metrics_armed.store(false, std::memory_order_release);
}

void LaneMetrics::record_lane(unsigned lane, std::uint64_t ns) {
  Slot& slot = slots_[std::min(lane, kMaxMetricLanes - 1)];
  slot.runs.fetch_add(1, std::memory_order_relaxed);
  slot.lane_ns.fetch_add(ns, std::memory_order_relaxed);
}

void LaneMetrics::record_job(unsigned lanes) {
  jobs_.fetch_add(1, std::memory_order_relaxed);
  static_cast<void>(lanes);
}

void LaneMetrics::record_barrier_wait(std::uint64_t ns) {
  barrier_waits_.fetch_add(1, std::memory_order_relaxed);
  barrier_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void LaneMetrics::record_checkout(std::uint64_t ns) {
  checkouts_.fetch_add(1, std::memory_order_relaxed);
  checkout_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void LaneMetrics::record_ops(unsigned lane, const OpCounts& ops) {
  Slot& slot = slots_[std::min(lane, kMaxMetricLanes - 1)];
  slot.compares.fetch_add(ops.compares, std::memory_order_relaxed);
  slot.moves.fetch_add(ops.moves, std::memory_order_relaxed);
  slot.search_steps.fetch_add(ops.search_steps, std::memory_order_relaxed);
  slot.stages.fetch_add(ops.stages, std::memory_order_relaxed);
}

void LaneMetrics::reset() {
  for (Slot& slot : slots_) {
    slot.runs.store(0, std::memory_order_relaxed);
    slot.lane_ns.store(0, std::memory_order_relaxed);
    slot.compares.store(0, std::memory_order_relaxed);
    slot.moves.store(0, std::memory_order_relaxed);
    slot.search_steps.store(0, std::memory_order_relaxed);
    slot.stages.store(0, std::memory_order_relaxed);
  }
  jobs_.store(0, std::memory_order_relaxed);
  barrier_waits_.store(0, std::memory_order_relaxed);
  barrier_ns_.store(0, std::memory_order_relaxed);
  checkouts_.store(0, std::memory_order_relaxed);
  checkout_ns_.store(0, std::memory_order_relaxed);
}

LaneReport LaneMetrics::snapshot() const {
  LaneReport report;
  for (unsigned lane = 0; lane < kMaxMetricLanes; ++lane) {
    const Slot& slot = slots_[lane];
    LaneReport::Row row;
    row.lane = lane;
    row.runs = slot.runs.load(std::memory_order_relaxed);
    row.lane_ns = slot.lane_ns.load(std::memory_order_relaxed);
    row.compares = slot.compares.load(std::memory_order_relaxed);
    row.moves = slot.moves.load(std::memory_order_relaxed);
    row.search_steps = slot.search_steps.load(std::memory_order_relaxed);
    row.stages = slot.stages.load(std::memory_order_relaxed);
    if (row.runs == 0 && row.compares == 0 && row.moves == 0 &&
        row.search_steps == 0 && row.stages == 0)
      continue;
    report.lanes.push_back(row);
  }
  report.jobs = jobs_.load(std::memory_order_relaxed);
  report.barrier_waits = barrier_waits_.load(std::memory_order_relaxed);
  report.barrier_ns = barrier_ns_.load(std::memory_order_relaxed);
  report.checkouts = checkouts_.load(std::memory_order_relaxed);
  report.checkout_ns = checkout_ns_.load(std::memory_order_relaxed);

  std::uint64_t timed_lanes = 0, total_ns = 0;
  for (const LaneReport::Row& row : report.lanes) {
    if (row.runs == 0) continue;
    ++timed_lanes;
    total_ns += row.lane_ns;
    report.lane_ns_max = std::max(report.lane_ns_max, row.lane_ns);
    report.lane_ns_min = timed_lanes == 1
                             ? row.lane_ns
                             : std::min(report.lane_ns_min, row.lane_ns);
  }
  if (timed_lanes > 0) {
    report.lane_ns_mean =
        static_cast<double>(total_ns) / static_cast<double>(timed_lanes);
    report.imbalance = report.lane_ns_mean > 0.0
                           ? static_cast<double>(report.lane_ns_max) /
                                 report.lane_ns_mean
                           : 1.0;
  }
  return report;
}

void LaneReport::write_json(std::ostream& os) const {
  os << "{\"schema\":\"mergepath-lane-metrics-v1\",\"jobs\":" << jobs
     << ",\"barrier\":{\"waits\":" << barrier_waits
     << ",\"wait_ns\":" << barrier_ns << ",\"checkouts\":" << checkouts
     << ",\"checkout_ns\":" << checkout_ns << "},\"lanes\":[";
  bool first = true;
  for (const Row& row : lanes) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"lane\":" << row.lane << ",\"runs\":" << row.runs
       << ",\"lane_ns\":" << row.lane_ns << ",\"compares\":" << row.compares
       << ",\"moves\":" << row.moves
       << ",\"search_steps\":" << row.search_steps
       << ",\"stages\":" << row.stages << '}';
  }
  os << "],\"lane_time\":{\"max_ns\":" << lane_ns_max
     << ",\"min_ns\":" << lane_ns_min << ",\"mean_ns\":";
  write_double(os, lane_ns_mean);
  os << ",\"imbalance\":";
  write_double(os, imbalance);
  os << "}}";
}

void write_metrics_json(std::ostream& os) {
  os << "{\"lane_report\":";
  LaneMetrics::instance().snapshot().write_json(os);
  os << ",\"registry\":";
  MetricsRegistry::instance().write_json(os);
  os << ",\"span_stats\":[";
  bool first = true;
  for (const SpanStat& stat : span_stats_snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":";
    write_json_string(os, stat.name);
    os << ",\"count\":" << stat.count << ",\"sum_ns\":" << stat.sum_ns
       << ",\"p50_ns\":" << stat.p50_ns << ",\"p95_ns\":" << stat.p95_ns
       << ",\"p99_ns\":" << stat.p99_ns << ",\"max_ns\":" << stat.max_ns
       << '}';
  }
  os << "],\"span_stats_dropped\":" << span_stats_dropped() << "}\n";
}

bool write_metrics_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot write metrics to " << path << "\n";
    return false;
  }
  write_metrics_json(out);
  return out.good();
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted registry names
/// ("pool.lane_faults") become underscored ("mergepath_pool_lane_faults").
std::string prom_name(const std::string& name) {
  std::string out = "mergepath_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// Label values only need quote/backslash escaping.
std::string prom_label_value(const std::string& value) {
  std::string out;
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

void export_prometheus(std::ostream& os) {
  MetricsRegistry::instance().write_prometheus(os);

  // Span-duration percentiles as summary-style series.
  const std::vector<SpanStat> stats = span_stats_snapshot();
  if (!stats.empty()) {
    os << "# TYPE mergepath_span_duration_ns summary\n";
    for (const SpanStat& stat : stats) {
      const std::string label = prom_label_value(stat.name);
      os << "mergepath_span_duration_ns{span=\"" << label
         << "\",quantile=\"0.5\"} " << stat.p50_ns << '\n'
         << "mergepath_span_duration_ns{span=\"" << label
         << "\",quantile=\"0.95\"} " << stat.p95_ns << '\n'
         << "mergepath_span_duration_ns{span=\"" << label
         << "\",quantile=\"0.99\"} " << stat.p99_ns << '\n'
         << "mergepath_span_duration_ns_sum{span=\"" << label << "\"} "
         << stat.sum_ns << '\n'
         << "mergepath_span_duration_ns_count{span=\"" << label << "\"} "
         << stat.count << '\n';
    }
    os << "# TYPE mergepath_span_duration_ns_max gauge\n";
    for (const SpanStat& stat : stats) {
      os << "mergepath_span_duration_ns_max{span=\""
         << prom_label_value(stat.name) << "\"} " << stat.max_ns << '\n';
    }
  }
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    const std::string pname = prom_name(name) + "_total";
    os << "# TYPE " << pname << " counter\n"
       << pname << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string pname = prom_name(name);
    os << "# TYPE " << pname << " gauge\n"
       << pname << ' ' << gauge->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string pname = prom_name(name);
    os << "# TYPE " << pname << " summary\n"
       << pname << "_sum " << histogram->sum() << '\n'
       << pname << "_count " << histogram->count() << '\n';
  }
}

bool export_prometheus_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot write prometheus metrics to " << path << "\n";
    return false;
  }
  export_prometheus(out);
  return out.good();
}

}  // namespace mp::obs
