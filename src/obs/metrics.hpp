#pragma once
/// \file metrics.hpp
/// Lane-level metrics: a process-wide registry of counters, gauges and
/// fixed-bucket (power-of-two) histograms, plus a dedicated per-lane
/// aggregator that turns the library's existing OpCounts channels and the
/// ThreadPool's lane/barrier timings into the paper's load-balance
/// numbers — max/min/mean lane wall-time and the max/mean imbalance ratio
/// Section V argues about.
///
/// Everything here is cheap enough to stay always-compiled: recording is a
/// handful of relaxed atomic adds, and the ThreadPool only takes clock
/// readings while lane metrics are armed (one relaxed flag load per lane
/// otherwise). Reports render as JSON (machine-readable, see
/// scripts/check_trace.py) or as a text table via util/table.hpp.

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/instrument.hpp"
#include "util/table.hpp"

namespace mp::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed power-of-two-bucket histogram: bucket k counts values v with
/// bit_width(v) == k, i.e. bucket 0 holds v == 0 and bucket k >= 1 holds
/// [2^(k-1), 2^k). 65 buckets cover the full uint64 range with no
/// configuration and no allocation.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) {
    std::size_t bucket = 0;
    for (std::uint64_t x = v; x != 0; x >>= 1) ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t k) const {
    return buckets_[k].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name → instrument registry. Registration takes a mutex (cold);
/// returned references are stable for the process lifetime, so callers
/// cache them and record lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every registered instrument (registrations survive).
  void reset();

  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition of every registered instrument.
  void write_prometheus(std::ostream& os) const;
  Table to_table() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// ---------------------------------------------------------------------------
// Per-lane aggregation.

/// Hard cap on tracked lane indices; higher lanes fold into the last slot
/// (the library's practical lane counts are <= hardware threads, far
/// below this).
inline constexpr unsigned kMaxMetricLanes = 256;

namespace detail {
/// Armed flag for lane metrics, read inline by the ThreadPool hot path.
inline std::atomic<bool> g_lane_metrics_armed{false};
}  // namespace detail

inline bool lane_metrics_armed() {
  return detail::g_lane_metrics_armed.load(std::memory_order_acquire);
}

/// Snapshot of the per-lane aggregates plus the derived balance summary.
struct LaneReport {
  struct Row {
    unsigned lane = 0;
    std::uint64_t runs = 0;      ///< times this lane index executed
    std::uint64_t lane_ns = 0;   ///< wall time inside lane bodies
    std::uint64_t compares = 0;
    std::uint64_t moves = 0;
    std::uint64_t search_steps = 0;
    std::uint64_t stages = 0;
  };
  std::vector<Row> lanes;  ///< only lanes that recorded something

  std::uint64_t jobs = 0;           ///< parallel_for_lanes invocations
  std::uint64_t barrier_waits = 0;  ///< caller-side barrier waits
  std::uint64_t barrier_ns = 0;     ///< total caller barrier-wait time
  std::uint64_t checkouts = 0;      ///< worker check-out lock acquisitions
  std::uint64_t checkout_ns = 0;    ///< total worker check-out time

  // Lane wall-time balance, over lanes with runs > 0.
  std::uint64_t lane_ns_max = 0;
  std::uint64_t lane_ns_min = 0;
  double lane_ns_mean = 0.0;
  /// max/mean lane time; 1.0 = the paper's perfect balance.
  double imbalance = 0.0;

  void write_json(std::ostream& os) const;

  /// One row per lane plus a summary footer, via util/table.hpp. Inline so
  /// the obs library itself carries no link dependency on mp_util.
  Table to_table() const {
    Table table({"lane", "runs", "time_ms", "compares", "moves",
                 "search_steps", "stages"});
    for (const Row& row : lanes) {
      table.add_row({std::to_string(row.lane), std::to_string(row.runs),
                     fmt_double(static_cast<double>(row.lane_ns) / 1e6, 3),
                     fmt_count(row.compares), fmt_count(row.moves),
                     fmt_count(row.search_steps), fmt_count(row.stages)});
    }
    return table;
  }
};

/// Process-wide per-lane accumulator. Fixed-size atomic slots: recording
/// is lock-free and allocation-free from any thread.
class LaneMetrics {
 public:
  static LaneMetrics& instance();

  /// Starts collection (resets all aggregates).
  void arm();
  void disarm();

  void record_lane(unsigned lane, std::uint64_t ns);
  void record_job(unsigned lanes);
  void record_barrier_wait(std::uint64_t ns);
  void record_checkout(std::uint64_t ns);
  void record_ops(unsigned lane, const OpCounts& ops);

  void reset();
  LaneReport snapshot() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> runs{0};
    std::atomic<std::uint64_t> lane_ns{0};
    std::atomic<std::uint64_t> compares{0};
    std::atomic<std::uint64_t> moves{0};
    std::atomic<std::uint64_t> search_steps{0};
    std::atomic<std::uint64_t> stages{0};
  };
  std::array<Slot, kMaxMetricLanes> slots_{};
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> barrier_waits_{0};
  std::atomic<std::uint64_t> barrier_ns_{0};
  std::atomic<std::uint64_t> checkouts_{0};
  std::atomic<std::uint64_t> checkout_ns_{0};
};

/// Convenience: {"lane_report":...,"registry":...,"span_stats":[...]} — the
/// machine-readable metrics artifact `mpsort --metrics-json` and the bench
/// harness emit. span_stats carries the online per-span-name duration
/// percentiles (percentiles.hpp); empty unless span stats were armed.
void write_metrics_json(std::ostream& os);
bool write_metrics_json_file(const std::string& path);

/// Prometheus text exposition of the registry (counters, gauges, histogram
/// count/sum) plus per-span-name duration percentiles as summary-style
/// series: mergepath_span_duration_ns{span="...",quantile="0.5"} etc.
/// Metric and label names are sanitised to [a-zA-Z0-9_:].
void export_prometheus(std::ostream& os);
bool export_prometheus_file(const std::string& path);

}  // namespace mp::obs
