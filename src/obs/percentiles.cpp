#include "obs/percentiles.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>

namespace mp::obs {
#if MP_TRACE
namespace {

/// All-threads histogram for one span name, merged under the registry
/// mutex at snapshot time.
struct MergedHist {
  std::array<std::uint64_t, kSpanHistBuckets> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Midpoint estimate for a bucket, the value quantiles report.
std::uint64_t bucket_estimate(std::size_t bucket) {
  const auto [lo, hi] = duration_bucket_bounds(bucket);
  return lo + (hi - lo) / 2;
}

/// Smallest estimate v such that at least ceil(q * count) samples are <= v's
/// bucket. Clamped to the observed max (the top bucket's midpoint can
/// overshoot it).
std::uint64_t quantile(const MergedHist& hist, double q) {
  if (hist.count == 0) return 0;
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             q * static_cast<double>(hist.count) + 0.999999));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kSpanHistBuckets; ++b) {
    cum += hist.counts[b];
    if (cum >= target) return std::min(bucket_estimate(b), hist.max_ns);
  }
  return hist.max_ns;
}

}  // namespace
#endif  // MP_TRACE

std::pair<std::uint64_t, std::uint64_t> duration_bucket_bounds(
    std::size_t bucket) {
  if (bucket < 8) return {bucket, bucket + 1};
  const std::size_t g = (bucket - 8) / 8;  // 0..60 → bit width g + 4
  const std::size_t sub = (bucket - 8) % 8;
  const int k = static_cast<int>(g) + 4;
  const std::uint64_t width = std::uint64_t{1} << (k - 4);
  const std::uint64_t lo = (std::uint64_t{1} << (k - 1)) + sub * width;
  // The very top bucket's hi would be 2^64; saturate instead of wrapping.
  const std::uint64_t hi =
      lo + width < lo ? ~std::uint64_t{0} : lo + width;
  return {lo, hi};
}

#if MP_TRACE

namespace detail {

void record_span_stat(ThreadBuffer& buffer, const char* name,
                      std::uint64_t dur_ns) {
  // Open-addressed probe over the fixed name table, keyed by pointer
  // identity (names are static strings; duplicates across TUs merge at
  // snapshot time by strcmp).
  const auto hash = reinterpret_cast<std::uintptr_t>(name);
  std::size_t slot = (hash >> 4) % kSpanStatSlots;
  for (std::size_t probes = 0; probes < kSpanStatSlots; ++probes) {
    ThreadBuffer::StatSlot& entry = buffer.stats[slot];
    if (entry.name == name) break;
    if (entry.name == nullptr) {
      entry.name = name;
      break;
    }
    slot = slot + 1 == kSpanStatSlots ? 0 : slot + 1;
  }
  ThreadBuffer::StatSlot& entry = buffer.stats[slot];
  if (entry.name != name) {
    ++buffer.stats_dropped;  // table full
    return;
  }
  if (!entry.hist) entry.hist = std::make_unique<SpanHist>();
  SpanHist& hist = *entry.hist;
  ++hist.counts[duration_bucket(dur_ns)];
  ++hist.count;
  hist.sum_ns += dur_ns;
  hist.max_ns = std::max(hist.max_ns, dur_ns);
}

}  // namespace detail

void arm_span_stats() {
  detail::g_span_state.fetch_or(detail::kSpanStatsBit,
                                std::memory_order_release);
}

void disarm_span_stats() {
  detail::g_span_state.fetch_and(
      static_cast<std::uint8_t>(~detail::kSpanStatsBit),
      std::memory_order_release);
}

bool span_stats_armed() {
  return (detail::g_span_state.load(std::memory_order_acquire) &
          detail::kSpanStatsBit) != 0;
}

void reset_span_stats() {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  for (auto& buffer : registry.buffers) {
    for (auto& slot : buffer->stats) {
      slot.name = nullptr;
      slot.hist.reset();
    }
    buffer->stats_dropped = 0;
  }
}

std::vector<SpanStat> span_stats_snapshot() {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);

  // Merge by name *string* (not pointer): the same literal in two TUs may
  // have two addresses.
  std::map<std::string, MergedHist> merged;
  for (const auto& buffer : registry.buffers) {
    for (const auto& slot : buffer->stats) {
      if (!slot.name || !slot.hist || slot.hist->count == 0) continue;
      MergedHist& m = merged[slot.name];
      for (std::size_t b = 0; b < kSpanHistBuckets; ++b)
        m.counts[b] += slot.hist->counts[b];
      m.count += slot.hist->count;
      m.sum_ns += slot.hist->sum_ns;
      m.max_ns = std::max(m.max_ns, slot.hist->max_ns);
    }
  }

  std::vector<SpanStat> stats;
  stats.reserve(merged.size());
  for (const auto& [name, hist] : merged) {
    SpanStat stat;
    stat.name = name;
    stat.count = hist.count;
    stat.sum_ns = hist.sum_ns;
    stat.max_ns = hist.max_ns;
    stat.p50_ns = quantile(hist, 0.50);
    stat.p95_ns = quantile(hist, 0.95);
    stat.p99_ns = quantile(hist, 0.99);
    stats.push_back(std::move(stat));
  }
  std::sort(stats.begin(), stats.end(),
            [](const SpanStat& x, const SpanStat& y) {
              if (x.sum_ns != y.sum_ns) return x.sum_ns > y.sum_ns;
              return x.name < y.name;
            });
  return stats;
}

std::uint64_t span_stats_dropped() {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : registry.buffers) total += buffer->stats_dropped;
  return total;
}

void record_span_duration(const char* name, std::uint64_t dur_ns) {
  if (!span_stats_armed()) return;
  detail::ThreadBuffer* buffer = detail::local_buffer();
  if (!buffer) return;
  detail::record_span_stat(*buffer, name, dur_ns);
}

#else  // !MP_TRACE — control plane degrades to empty stats.

namespace detail {
void record_span_stat(ThreadBuffer&, const char*, std::uint64_t) {}
}  // namespace detail

void arm_span_stats() {}
void disarm_span_stats() {}
bool span_stats_armed() { return false; }
void reset_span_stats() {}
std::vector<SpanStat> span_stats_snapshot() { return {}; }
std::uint64_t span_stats_dropped() { return 0; }
void record_span_duration(const char*, std::uint64_t) {}

#endif  // MP_TRACE

}  // namespace mp::obs
