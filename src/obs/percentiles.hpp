#pragma once
/// \file percentiles.hpp
/// Online per-span-name duration percentiles.
///
/// Each recording thread folds finished span durations into a streaming
/// log-bucketed histogram keyed by span name (storage lives in
/// detail::ThreadBuffer, trace.hpp, so the hot path stays lock-free and
/// owner-thread-only). Snapshots merge the per-thread histograms by name
/// string and report p50/p95/p99 + max per span name — the latency view
/// the merge-as-a-service SLO work needs, without keeping raw samples.
///
/// Bucket geometry: durations below 8 ns get exact unit buckets; above
/// that, each power of two is split into 8 sub-buckets (3 mantissa bits),
/// 496 buckets total covering the full uint64 range. Reporting the bucket
/// midpoint bounds the relative error of any quantile estimate by
/// 1/16 = 6.25% (kSpanStatsRelativeError); values below 16 ns are exact.
///
/// Arming/snapshotting follows the trace control-plane contract: call only
/// while no instrumented work is in flight. Under MP_TRACE=0, spans do not
/// record, so snapshots are empty unless record_span_duration() was called
/// explicitly (which is also inert in a full MP_TRACE=0 build).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace mp::obs {

/// Worst-case relative error of a percentile estimate (values >= 8 ns).
inline constexpr double kSpanStatsRelativeError = 1.0 / 16.0;

/// Maps a duration to its histogram bucket (monotone in `ns`).
inline std::size_t duration_bucket(std::uint64_t ns) {
  if (ns < 8) return static_cast<std::size_t>(ns);
  const int k = std::bit_width(ns);  // 4..64 here
  const std::uint64_t sub = (ns >> (k - 4)) & 7u;
  return 8 + static_cast<std::size_t>(k - 4) * 8 +
         static_cast<std::size_t>(sub);
}

/// Inclusive-lo / exclusive-hi bounds of a bucket (hi saturates at
/// UINT64_MAX for the top bucket).
std::pair<std::uint64_t, std::uint64_t> duration_bucket_bounds(
    std::size_t bucket);

/// Merged per-span-name statistics, one entry per distinct name.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// Starts folding span durations into per-thread histograms.
void arm_span_stats();

/// Stops recording (already-recorded histograms are kept for snapshot).
void disarm_span_stats();

/// True between arm_span_stats() and disarm_span_stats().
bool span_stats_armed();

/// Clears all histograms and the dropped-name counters.
void reset_span_stats();

/// Histograms merged by span name across all threads, sorted by descending
/// total time (sum_ns). Non-destructive.
std::vector<SpanStat> span_stats_snapshot();

/// Distinct names that could not be tracked (per-thread table full).
std::uint64_t span_stats_dropped();

/// Programmatic sample entry point (same path span destructors use), for
/// callers measuring something that is not a Span — and for the error-bound
/// tests. `name` must have static storage duration. Requires armed stats;
/// inert in a full MP_TRACE=0 build.
void record_span_duration(const char* name, std::uint64_t dur_ns);

}  // namespace mp::obs
