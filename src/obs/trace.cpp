#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace mp::obs {

namespace detail {

TraceRegistry& TraceRegistry::instance() {
  static TraceRegistry* registry = new TraceRegistry;
  return *registry;
}

}  // namespace detail

#if MP_TRACE

namespace detail {

ThreadBuffer* register_thread_buffer() {
  TraceRegistry& registry = TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(registry.buffers.size());
  buffer->ring.resize(registry.capacity);
  buffer->flight.resize(registry.flight_capacity);
  registry.buffers.push_back(std::move(buffer));
  return registry.buffers.back().get();
}

}  // namespace detail

void arm_tracing(std::size_t events_per_thread) {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  registry.capacity = events_per_thread;
  for (auto& buffer : registry.buffers) {
    buffer->ring.assign(events_per_thread, TraceEvent{});
    buffer->next = 0;
    buffer->count = 0;
    buffer->dropped = 0;
  }
  detail::g_trace_epoch_ns.store(detail::monotonic_ns(),
                                 std::memory_order_relaxed);
  // Release pairs with the acquire in the span hot path: a thread that sees
  // the trace bit also sees the reset buffers and the new epoch.
  detail::g_span_state.fetch_or(detail::kSpanTraceBit,
                                std::memory_order_release);
}

void disarm_tracing() {
  detail::g_span_state.fetch_and(
      static_cast<std::uint8_t>(~detail::kSpanTraceBit),
      std::memory_order_release);
}

bool tracing_armed() {
  return (detail::g_span_state.load(std::memory_order_acquire) &
          detail::kSpanTraceBit) != 0;
}

void reset_tracing() {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  for (auto& buffer : registry.buffers) {
    buffer->next = 0;
    buffer->count = 0;
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> trace_snapshot() {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  std::vector<TraceEvent> events;
  for (const auto& buffer : registry.buffers) {
    // Oldest-first: the ring's valid region ends just before `next`.
    const std::size_t cap = buffer->ring.size();
    for (std::size_t k = 0; k < buffer->count; ++k) {
      const std::size_t idx = (buffer->next + cap - buffer->count + k) % cap;
      TraceEvent event = buffer->ring[idx];
      event.tid = buffer->tid;
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              return x.dur_ns > y.dur_ns;  // parent before children
            });
  return events;
}

std::uint64_t trace_dropped() {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : registry.buffers) total += buffer->dropped;
  return total;
}

std::size_t trace_thread_count() {
  detail::TraceRegistry& registry = detail::TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  return registry.buffers.size();
}

#else  // !MP_TRACE — control plane degrades to an empty trace.

namespace detail {
ThreadBuffer* register_thread_buffer() { return nullptr; }
}  // namespace detail

void arm_tracing(std::size_t) {}
void disarm_tracing() {}
bool tracing_armed() { return false; }
void reset_tracing() {}
std::vector<TraceEvent> trace_snapshot() { return {}; }
std::uint64_t trace_dropped() { return 0; }
std::size_t trace_thread_count() { return 0; }

#endif  // MP_TRACE

namespace {

/// Minimal JSON string escape; event names are static C identifiers in
/// practice, but the exporter must never emit malformed JSON.
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Chrome trace `ts`/`dur` are microseconds; emit with ns resolution.
void write_micros(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

/// The active FastClock calibration as a JSON object, so offline tools can
/// tell which source stamped the trace (and convert raw TSC readings).
std::string clock_metadata_json() {
  const ClockCalibration cal = FastClock::calibration();
  std::ostringstream os;
  os << "\"clock\":{\"source\":\"" << (cal.using_tsc ? "tsc" : "steady")
     << "\",\"ns_per_tick\":" << cal.ns_per_tick
     << ",\"tsc_epoch\":" << cal.tsc_epoch
     << ",\"steady_epoch_ns\":" << cal.steady_epoch_ns << '}';
  return os.str();
}

}  // namespace

namespace detail {

void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events,
                      std::uint64_t dropped,
                      const std::string& extra_other_data) {
  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":"
     << dropped << ',' << clock_metadata_json() << extra_other_data
     << "},\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };

  // Metadata: name the process and every recording thread.
  comma();
  os << R"({"name":"process_name","ph":"M","pid":0,"tid":0,)"
     << R"("args":{"name":"mergepath"}})";
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& event : events) tids.push_back(event.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const std::uint32_t tid : tids) {
    comma();
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << tid
       << R"(,"args":{"name":"recorder thread )" << tid << "\"}}";
  }

  for (const TraceEvent& event : events) {
    comma();
    os << "{\"name\":";
    write_json_string(os, event.name ? event.name : "?");
    os << ",\"cat\":\"mp\",\"ph\":\"";
    switch (event.kind) {
      case EventKind::kSpan: os << 'X'; break;
      case EventKind::kCounter: os << 'C'; break;
      case EventKind::kInstant: os << 'i'; break;
    }
    os << "\",\"ts\":";
    write_micros(os, event.ts_ns);
    if (event.kind == EventKind::kSpan) {
      os << ",\"dur\":";
      write_micros(os, event.dur_ns);
    }
    if (event.kind == EventKind::kInstant) os << ",\"s\":\"t\"";
    os << ",\"pid\":0,\"tid\":" << event.tid;
    if (event.kind == EventKind::kCounter) {
      os << ",\"args\":{\"value\":" << event.arg << '}';
    } else if (event.arg_name) {
      os << ",\"args\":{";
      write_json_string(os, event.arg_name);
      os << ':' << event.arg << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

}  // namespace detail

void write_chrome_trace(std::ostream& os) {
  detail::write_trace_json(os, trace_snapshot(), trace_dropped(), "");
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot write trace to " << path << "\n";
    return false;
  }
  write_chrome_trace(out);
  return out.good();
}

}  // namespace mp::obs
