#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>

namespace mp::obs {

#if MP_TRACE

namespace {

/// Owns every thread's ring buffer. Buffers are created on a thread's first
/// recorded event and never destroyed (the registry itself is leaked on
/// purpose: ThreadPool workers may still hold cached buffer pointers during
/// static destruction, and ~3 MiB of process-lifetime state is cheaper than
/// a shutdown-order hazard).
struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers;
  std::size_t capacity = kDefaultTraceCapacity;

  static TraceRegistry& instance() {
    static TraceRegistry* registry = new TraceRegistry;
    return *registry;
  }
};

}  // namespace

namespace detail {

ThreadBuffer* register_thread_buffer() {
  TraceRegistry& registry = TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(registry.buffers.size());
  buffer->ring.resize(registry.capacity);
  registry.buffers.push_back(std::move(buffer));
  return registry.buffers.back().get();
}

}  // namespace detail

void arm_tracing(std::size_t events_per_thread) {
  TraceRegistry& registry = TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  registry.capacity = events_per_thread;
  for (auto& buffer : registry.buffers) {
    buffer->ring.assign(events_per_thread, TraceEvent{});
    buffer->next = 0;
    buffer->count = 0;
    buffer->dropped = 0;
  }
  detail::g_trace_epoch_ns.store(detail::monotonic_ns(),
                                 std::memory_order_relaxed);
  // Release pairs with the acquire in the span hot path: a thread that sees
  // "armed" also sees the reset buffers and the new epoch.
  detail::g_trace_armed.store(true, std::memory_order_release);
}

void disarm_tracing() {
  detail::g_trace_armed.store(false, std::memory_order_release);
}

bool tracing_armed() {
  return detail::g_trace_armed.load(std::memory_order_acquire);
}

void reset_tracing() {
  TraceRegistry& registry = TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  for (auto& buffer : registry.buffers) {
    buffer->next = 0;
    buffer->count = 0;
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> trace_snapshot() {
  TraceRegistry& registry = TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  std::vector<TraceEvent> events;
  for (const auto& buffer : registry.buffers) {
    // Oldest-first: the ring's valid region ends just before `next`.
    const std::size_t cap = buffer->ring.size();
    for (std::size_t k = 0; k < buffer->count; ++k) {
      const std::size_t idx = (buffer->next + cap - buffer->count + k) % cap;
      TraceEvent event = buffer->ring[idx];
      event.tid = buffer->tid;
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              return x.dur_ns > y.dur_ns;  // parent before children
            });
  return events;
}

std::uint64_t trace_dropped() {
  TraceRegistry& registry = TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : registry.buffers) total += buffer->dropped;
  return total;
}

std::size_t trace_thread_count() {
  TraceRegistry& registry = TraceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  return registry.buffers.size();
}

#else  // !MP_TRACE — control plane degrades to an empty trace.

namespace detail {
ThreadBuffer* register_thread_buffer() { return nullptr; }
}  // namespace detail

void arm_tracing(std::size_t) {}
void disarm_tracing() {}
bool tracing_armed() { return false; }
void reset_tracing() {}
std::vector<TraceEvent> trace_snapshot() { return {}; }
std::uint64_t trace_dropped() { return 0; }
std::size_t trace_thread_count() { return 0; }

#endif  // MP_TRACE

namespace {

/// Minimal JSON string escape; event names are static C identifiers in
/// practice, but the exporter must never emit malformed JSON.
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Chrome trace `ts`/`dur` are microseconds; emit with ns resolution.
void write_micros(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const std::vector<TraceEvent> events = trace_snapshot();

  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":"
     << trace_dropped() << "},\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };

  // Metadata: name the process and every recording thread.
  comma();
  os << R"({"name":"process_name","ph":"M","pid":0,"tid":0,)"
     << R"("args":{"name":"mergepath"}})";
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& event : events) tids.push_back(event.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const std::uint32_t tid : tids) {
    comma();
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << tid
       << R"(,"args":{"name":"recorder thread )" << tid << "\"}}";
  }

  for (const TraceEvent& event : events) {
    comma();
    os << "{\"name\":";
    write_json_string(os, event.name ? event.name : "?");
    os << ",\"cat\":\"mp\",\"ph\":\"";
    switch (event.kind) {
      case EventKind::kSpan: os << 'X'; break;
      case EventKind::kCounter: os << 'C'; break;
      case EventKind::kInstant: os << 'i'; break;
    }
    os << "\",\"ts\":";
    write_micros(os, event.ts_ns);
    if (event.kind == EventKind::kSpan) {
      os << ",\"dur\":";
      write_micros(os, event.dur_ns);
    }
    if (event.kind == EventKind::kInstant) os << ",\"s\":\"t\"";
    os << ",\"pid\":0,\"tid\":" << event.tid;
    if (event.kind == EventKind::kCounter) {
      os << ",\"args\":{\"value\":" << event.arg << '}';
    } else if (event.arg_name) {
      os << ",\"args\":{";
      write_json_string(os, event.arg_name);
      os << ':' << event.arg << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot write trace to " << path << "\n";
    return false;
  }
  write_chrome_trace(out);
  return out.good();
}

}  // namespace mp::obs
