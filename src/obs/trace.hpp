#pragma once
/// \file trace.hpp
/// Lane-level tracing: a lock-free per-thread span/counter recorder with a
/// Chrome/Perfetto trace_event exporter (trace.cpp), plus the shared
/// per-thread storage for the flight recorder (flight.hpp) and the online
/// span-duration percentiles (percentiles.hpp).
///
/// Design (see docs/OBSERVABILITY.md):
///  - Each recording thread owns fixed-capacity ring buffers of complete
///    events. The hot path (Span construction/destruction) touches only
///    thread-local state — no locks, no allocation; the only shared access
///    is one acquire load of a combined state byte that tells the span
///    which consumers are armed (trace ring, span stats, flight ring).
///    When a ring is full the oldest events are overwritten and counted as
///    dropped, so a long run keeps the most recent window.
///  - Spans are stored as single complete records (start + duration), never
///    as separate begin/end entries, so ring eviction can not orphan half a
///    span: every span in a snapshot is balanced by construction. (This is
///    also what makes flight-recorder suffixes well-nested: dropping the
///    oldest complete spans of a properly nested stream leaves a properly
///    nested stream.)
///  - Timestamps come from obs::FastClock (calibrated invariant-TSC rdtsc
///    with automatic steady_clock fallback, fastclock.hpp). Trace events
///    are stored relative to the arm epoch; flight events keep absolute
///    FastClock time so the always-on ring survives re-arms.
///  - Arming, disarming, resetting and snapshotting are cold control-plane
///    operations (trace.cpp / percentiles.cpp / flight.cpp). They may only
///    run while no instrumented work is in flight — the same quiescence the
///    ThreadPool's fork-join barrier already provides — which is what keeps
///    the recorder TSan-clean without hot-path synchronisation.
///
/// Compile-time gate: building with MP_TRACE=0 (cmake
/// -DMERGEPATH_TRACE=OFF) replaces Span with an empty type and turns every
/// call site into nothing — zero bytes of state, zero instructions. The
/// control plane (arm/export, percentile and flight snapshots) stays
/// callable and reports empty results, so tools like `mpsort --trace`
/// degrade gracefully instead of failing to build. The recording and no-op
/// span types have distinct names (the `Span` alias selects one), so
/// mixed-gate builds never define the same entity two different ways.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/fastclock.hpp"

#ifndef MP_TRACE
#define MP_TRACE 1
#endif

namespace mp::obs {

/// True when span call sites compile to real recording code.
inline constexpr bool kTraceCompiledIn = MP_TRACE != 0;

/// Default per-thread trace-ring capacity (events). ~48 bytes/event, so
/// 64Ki events ≈ 3 MiB per recording thread.
inline constexpr std::size_t kDefaultTraceCapacity = std::size_t{1} << 16;

/// Default per-thread flight-recorder capacity: the last 2Ki events
/// (~96 KiB/thread) — enough to cover a full degraded request while staying
/// cheap to keep always-armed.
inline constexpr std::size_t kDefaultFlightCapacity = std::size_t{1} << 11;

/// Per-thread span-stats name table size. Core span names number ~40; a
/// thread emitting more distinct names than this counts the excess as
/// dropped (span_stats_dropped) rather than growing on the hot path.
inline constexpr std::size_t kSpanStatSlots = 64;

/// Streaming-histogram geometry for span durations: exact buckets below
/// 8 ns, then 8 sub-buckets per power of two (3 mantissa bits). See
/// percentiles.hpp for the bucket mapping and the resulting error bound.
inline constexpr std::size_t kSpanHistBuckets = 8 + 61 * 8;

enum class EventKind : std::uint8_t {
  kSpan,     ///< timed interval (Chrome "X")
  kCounter,  ///< sampled counter value (Chrome "C")
  kInstant,  ///< point event (Chrome "i")
};

/// One recorded event. `name` and `arg_name` must be pointers to strings
/// with static storage duration (the recorder stores the pointer only).
struct TraceEvent {
  std::uint64_t ts_ns = 0;       ///< start (epoch-relative in the trace
                                 ///< ring, absolute in the flight ring)
  std::uint64_t dur_ns = 0;      ///< span duration; 0 for counter/instant
  const char* name = nullptr;    ///< static string
  const char* arg_name = nullptr;  ///< optional static string (nullptr: none)
  std::uint64_t arg = 0;         ///< arg / counter value
  std::uint32_t tid = 0;         ///< recording thread id (filled on snapshot)
  EventKind kind = EventKind::kSpan;
};

namespace detail {

/// Streaming log-bucketed histogram of span durations (one per distinct
/// span name per thread). Written only by the owning thread.
struct SpanHist {
  std::array<std::uint64_t, kSpanHistBuckets> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Per-thread recorder state. Written only by its owning thread; read by
/// the control plane while the owner is quiescent.
struct ThreadBuffer {
  // Trace ring (armed window, epoch-relative timestamps).
  std::vector<TraceEvent> ring;
  std::size_t next = 0;        ///< next write slot
  std::size_t count = 0;       ///< valid events (<= ring.size())
  std::uint64_t dropped = 0;   ///< events lost to wraparound (or capacity 0)

  // Flight ring (always-armed window, absolute timestamps).
  std::vector<TraceEvent> flight;
  std::size_t flight_next = 0;
  std::size_t flight_count = 0;

  // Span-duration histograms, keyed by name pointer (lazy per-name alloc
  // off the hot path; duplicate string literals from different TUs are
  // re-merged by name at snapshot time).
  struct StatSlot {
    const char* name = nullptr;
    std::unique_ptr<SpanHist> hist;
  };
  std::array<StatSlot, kSpanStatSlots> stats{};
  std::uint64_t stats_dropped = 0;  ///< names beyond kSpanStatSlots

  std::uint32_t tid = 0;  ///< registration order

  void push(const TraceEvent& event) {
    if (ring.empty()) {
      ++dropped;
      return;
    }
    ring[next] = event;
    next = next + 1 == ring.size() ? 0 : next + 1;
    if (count < ring.size())
      ++count;
    else
      ++dropped;  // overwrote the oldest event
  }

  void flight_push(const TraceEvent& event) {
    if (flight.empty()) return;
    flight[flight_next] = event;
    flight_next = flight_next + 1 == flight.size() ? 0 : flight_next + 1;
    if (flight_count < flight.size()) ++flight_count;
  }
};

/// Bits of the combined span-state byte. One acquire load in the span
/// constructor tells the hot path everything: 0 means "record nothing"
/// (the disarmed cost is that single load), any set bit routes the span to
/// the corresponding consumer in the destructor.
inline constexpr std::uint8_t kSpanTraceBit = 1;   ///< trace ring armed
inline constexpr std::uint8_t kSpanStatsBit = 2;   ///< percentiles armed
inline constexpr std::uint8_t kSpanFlightBit = 4;  ///< flight ring enabled

/// Combined state, checked inline on every span. The flight recorder is on
/// by default ("always-armed"); flight.cpp clears the bit at startup when
/// MP_FLIGHT=0. Release stores in the control plane pair with this acquire
/// so a thread that observes a bit also observes the matching (re)init.
inline std::atomic<std::uint8_t> g_span_state{kSpanFlightBit};

/// Cached pointer to this thread's buffer. Buffers live until process exit
/// (the registry never destroys them), so a cached pointer cannot dangle.
inline thread_local ThreadBuffer* g_thread_buffer = nullptr;

/// Cold path: registers a buffer for the calling thread (trace.cpp).
ThreadBuffer* register_thread_buffer();

inline std::uint64_t monotonic_ns() { return FastClock::now_ns(); }

/// Arm epoch in monotonic_ns units; trace-ring timestamps are relative to
/// it (flight-ring timestamps are absolute).
inline std::atomic<std::uint64_t> g_trace_epoch_ns{0};

inline ThreadBuffer* local_buffer() {
  ThreadBuffer* buffer = g_thread_buffer;
  if (!buffer) buffer = g_thread_buffer = register_thread_buffer();
  return buffer;
}

/// Owns every thread's recorder state. Shared between trace.cpp,
/// percentiles.cpp and flight.cpp; buffers are created on a thread's first
/// recorded event and never destroyed (the registry itself is leaked on
/// purpose: ThreadPool workers may still hold cached buffer pointers during
/// static destruction, and a few MiB of process-lifetime state is cheaper
/// than a shutdown-order hazard).
struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = kDefaultTraceCapacity;
  std::size_t flight_capacity = kDefaultFlightCapacity;

  static TraceRegistry& instance();  // trace.cpp (leaked singleton)
};

/// Cold-ish path: folds one finished span into the thread's histogram for
/// `name` (percentiles.cpp).
void record_span_stat(ThreadBuffer& buffer, const char* name,
                      std::uint64_t dur_ns);

/// RAII span + counter/instant entry points, real implementation.
class RecordingSpan {
 public:
  explicit RecordingSpan(const char* name, const char* arg_name = nullptr,
                         std::uint64_t arg = 0) {
    state_ = g_span_state.load(std::memory_order_acquire);
    if (state_ == 0) return;
    name_ = name;
    arg_name_ = arg_name;
    arg_ = arg;
    start_ns_ = monotonic_ns();
  }

  ~RecordingSpan() {
    if (state_ == 0) return;
    const std::uint64_t now = monotonic_ns();
    const std::uint64_t dur = now - start_ns_;
    ThreadBuffer* buffer = local_buffer();
    if (state_ & kSpanTraceBit) {
      const std::uint64_t epoch =
          g_trace_epoch_ns.load(std::memory_order_relaxed);
      // A span opened before the current arm window would underflow the
      // epoch-relative timestamp (e.g. a sleeping scheduler worker whose
      // idle span straddles a re-arm); such spans belong to no window.
      if (start_ns_ >= epoch)
        buffer->push(TraceEvent{start_ns_ - epoch, dur, name_, arg_name_,
                                arg_, 0, EventKind::kSpan});
    }
    if (state_ & kSpanFlightBit)
      buffer->flight_push(TraceEvent{start_ns_, dur, name_, arg_name_, arg_,
                                     0, EventKind::kSpan});
    if (state_ & kSpanStatsBit) record_span_stat(*buffer, name_, dur);
  }

  RecordingSpan(const RecordingSpan&) = delete;
  RecordingSpan& operator=(const RecordingSpan&) = delete;

  /// Records a sampled counter value (Chrome "C" event).
  static void counter(const char* name, std::uint64_t value) {
    point_event(TraceEvent{0, 0, name, nullptr, value, 0,
                           EventKind::kCounter});
  }

  /// Records a point-in-time event (Chrome "i" event).
  static void instant(const char* name, const char* arg_name = nullptr,
                      std::uint64_t arg = 0) {
    point_event(TraceEvent{0, 0, name, arg_name, arg, 0,
                           EventKind::kInstant});
  }

 private:
  static void point_event(TraceEvent event) {
    const std::uint8_t state =
        g_span_state.load(std::memory_order_acquire);
    if ((state & (kSpanTraceBit | kSpanFlightBit)) == 0) return;
    const std::uint64_t now = monotonic_ns();
    ThreadBuffer* buffer = local_buffer();
    if (state & kSpanTraceBit) {
      const std::uint64_t epoch =
          g_trace_epoch_ns.load(std::memory_order_relaxed);
      if (now >= epoch) {
        event.ts_ns = now - epoch;
        buffer->push(event);
      }
    }
    if (state & kSpanFlightBit) {
      event.ts_ns = now;
      buffer->flight_push(event);
    }
  }

  std::uint8_t state_ = 0;  // consumers armed at entry; 0: record nothing
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// Compile-time no-op stand-in: no state, no code. Argument expressions are
/// still swallowed unevaluated-cheaply (they are static strings and ints at
/// every call site).
class NullSpan {
 public:
  template <typename... Args>
  explicit NullSpan(Args&&...) {}
  NullSpan(const NullSpan&) = delete;
  NullSpan& operator=(const NullSpan&) = delete;

  template <typename... Args>
  static void counter(Args&&...) {}
  template <typename... Args>
  static void instant(Args&&...) {}
};

}  // namespace detail

#if MP_TRACE
using Span = detail::RecordingSpan;
#else
using Span = detail::NullSpan;
#endif

// ---------------------------------------------------------------------------
// Control plane (defined in trace.cpp; always compiled, stubbed to no-ops in
// an MP_TRACE=0 build of the obs library). May only be called while no
// instrumented work is in flight.

/// Starts recording: resets all rings to `events_per_thread` capacity and
/// sets the trace epoch to "now".
void arm_tracing(std::size_t events_per_thread = kDefaultTraceCapacity);

/// Stops recording. Already-recorded events are kept for snapshot/export.
void disarm_tracing();

/// True between arm_tracing() and disarm_tracing().
bool tracing_armed();

/// Drops all recorded events and drop counts (buffers stay registered).
void reset_tracing();

/// All recorded events, sorted by timestamp (ties: longer span first, so a
/// parent precedes the children it encloses). Non-destructive.
std::vector<TraceEvent> trace_snapshot();

/// Total events lost to ring wraparound since the last arm/reset.
std::uint64_t trace_dropped();

/// Number of threads that have recorded at least one event ever.
std::size_t trace_thread_count();

/// Writes the Chrome/Perfetto trace_event JSON for the current snapshot
/// (load via chrome://tracing or https://ui.perfetto.dev). Spans are "X"
/// complete events; counters "C"; instants "i". otherData carries the
/// FastClock calibration under "clock".
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace() to a file; returns false (and reports on stderr) if
/// the file cannot be written.
bool write_chrome_trace_file(const std::string& path);

namespace detail {

/// Shared exporter body: events must already be sorted; `extra_other_data`
/// is a raw JSON fragment spliced into otherData (must start with ',' when
/// non-empty, e.g. ",\"flight_recorder\":true").
void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events,
                      std::uint64_t dropped,
                      const std::string& extra_other_data);

}  // namespace detail

}  // namespace mp::obs
