#pragma once
/// \file trace.hpp
/// Lane-level tracing: a lock-free per-thread span/counter recorder with a
/// Chrome/Perfetto trace_event exporter (chrome_trace.cpp side lives in
/// trace.cpp).
///
/// Design (see docs/OBSERVABILITY.md):
///  - Each recording thread owns a fixed-capacity ring buffer of complete
///    events. The hot path (Span construction/destruction) touches only
///    thread-local state — no locks, no allocation; the only shared access
///    is one relaxed-ish atomic load of the "armed" flag. When the ring is
///    full the oldest events are overwritten and counted as dropped, so a
///    long run keeps the most recent window instead of failing.
///  - Spans are stored as single complete records (start + duration), never
///    as separate begin/end entries, so ring eviction can not orphan half a
///    span: every span in a snapshot is balanced by construction.
///  - Arming, disarming, resetting and snapshotting are cold control-plane
///    operations (trace.cpp). They may only run while no instrumented work
///    is in flight — the same quiescence the ThreadPool's fork-join barrier
///    already provides — which is what keeps the recorder TSan-clean
///    without hot-path synchronisation.
///
/// Compile-time gate: building with MP_TRACE=0 (cmake
/// -DMERGEPATH_TRACE=OFF) replaces Span with an empty type and turns every
/// call site into nothing — zero bytes of state, zero instructions. The
/// control plane (arm/export) stays callable and reports an empty trace, so
/// tools like `mpsort --trace` degrade gracefully instead of failing to
/// build. The recording and no-op span types have distinct names (the
/// `Span` alias selects one), so mixed-gate builds never define the same
/// entity two different ways.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef MP_TRACE
#define MP_TRACE 1
#endif

namespace mp::obs {

/// True when span call sites compile to real recording code.
inline constexpr bool kTraceCompiledIn = MP_TRACE != 0;

/// Default per-thread ring capacity (events). ~48 bytes/event, so 64Ki
/// events ≈ 3 MiB per recording thread.
inline constexpr std::size_t kDefaultTraceCapacity = std::size_t{1} << 16;

enum class EventKind : std::uint8_t {
  kSpan,     ///< timed interval (Chrome "X")
  kCounter,  ///< sampled counter value (Chrome "C")
  kInstant,  ///< point event (Chrome "i")
};

/// One recorded event. `name` and `arg_name` must be pointers to strings
/// with static storage duration (the recorder stores the pointer only).
struct TraceEvent {
  std::uint64_t ts_ns = 0;       ///< start, relative to the arm epoch
  std::uint64_t dur_ns = 0;      ///< span duration; 0 for counter/instant
  const char* name = nullptr;    ///< static string
  const char* arg_name = nullptr;  ///< optional static string (nullptr: none)
  std::uint64_t arg = 0;         ///< arg / counter value
  std::uint32_t tid = 0;         ///< recording thread id (filled on snapshot)
  EventKind kind = EventKind::kSpan;
};

namespace detail {

/// Per-thread event ring. Written only by its owning thread; read by the
/// control plane while the owner is quiescent.
struct ThreadBuffer {
  std::vector<TraceEvent> ring;
  std::size_t next = 0;        ///< next write slot
  std::size_t count = 0;       ///< valid events (<= ring.size())
  std::uint64_t dropped = 0;   ///< events lost to wraparound (or capacity 0)
  std::uint32_t tid = 0;       ///< registration order

  void push(const TraceEvent& event) {
    if (ring.empty()) {
      ++dropped;
      return;
    }
    ring[next] = event;
    next = next + 1 == ring.size() ? 0 : next + 1;
    if (count < ring.size())
      ++count;
    else
      ++dropped;  // overwrote the oldest event
  }
};

/// Armed flag, checked inline on every span. The release store in
/// arm_tracing() pairs with this acquire so a thread that observes "armed"
/// also observes the (re)initialised buffers and epoch.
inline std::atomic<bool> g_trace_armed{false};

/// Cached pointer to this thread's buffer. Buffers live until process exit
/// (the registry never destroys them), so a cached pointer cannot dangle.
inline thread_local ThreadBuffer* g_thread_buffer = nullptr;

/// Cold path: registers a buffer for the calling thread (trace.cpp).
ThreadBuffer* register_thread_buffer();

inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Arm epoch in monotonic_ns units; event timestamps are relative to it.
inline std::atomic<std::uint64_t> g_trace_epoch_ns{0};

inline ThreadBuffer* local_buffer() {
  ThreadBuffer* buffer = g_thread_buffer;
  if (!buffer) buffer = g_thread_buffer = register_thread_buffer();
  return buffer;
}

/// RAII span + counter/instant entry points, real implementation.
class RecordingSpan {
 public:
  explicit RecordingSpan(const char* name, const char* arg_name = nullptr,
                         std::uint64_t arg = 0) {
    if (!g_trace_armed.load(std::memory_order_acquire)) return;
    buffer_ = local_buffer();
    name_ = name;
    arg_name_ = arg_name;
    arg_ = arg;
    start_ns_ = monotonic_ns();
  }

  ~RecordingSpan() {
    if (!buffer_) return;
    const std::uint64_t epoch =
        g_trace_epoch_ns.load(std::memory_order_relaxed);
    const std::uint64_t now = monotonic_ns();
    buffer_->push(TraceEvent{start_ns_ - epoch, now - start_ns_, name_,
                             arg_name_, arg_, 0, EventKind::kSpan});
  }

  RecordingSpan(const RecordingSpan&) = delete;
  RecordingSpan& operator=(const RecordingSpan&) = delete;

  /// Records a sampled counter value (Chrome "C" event).
  static void counter(const char* name, std::uint64_t value) {
    if (!g_trace_armed.load(std::memory_order_acquire)) return;
    const std::uint64_t epoch =
        g_trace_epoch_ns.load(std::memory_order_relaxed);
    local_buffer()->push(TraceEvent{monotonic_ns() - epoch, 0, name, nullptr,
                                    value, 0, EventKind::kCounter});
  }

  /// Records a point-in-time event (Chrome "i" event).
  static void instant(const char* name, const char* arg_name = nullptr,
                      std::uint64_t arg = 0) {
    if (!g_trace_armed.load(std::memory_order_acquire)) return;
    const std::uint64_t epoch =
        g_trace_epoch_ns.load(std::memory_order_relaxed);
    local_buffer()->push(TraceEvent{monotonic_ns() - epoch, 0, name, arg_name,
                                    arg, 0, EventKind::kInstant});
  }

 private:
  ThreadBuffer* buffer_ = nullptr;  // nullptr: tracing was off at entry
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// Compile-time no-op stand-in: no state, no code. Argument expressions are
/// still swallowed unevaluated-cheaply (they are static strings and ints at
/// every call site).
class NullSpan {
 public:
  template <typename... Args>
  explicit NullSpan(Args&&...) {}
  NullSpan(const NullSpan&) = delete;
  NullSpan& operator=(const NullSpan&) = delete;

  template <typename... Args>
  static void counter(Args&&...) {}
  template <typename... Args>
  static void instant(Args&&...) {}
};

}  // namespace detail

#if MP_TRACE
using Span = detail::RecordingSpan;
#else
using Span = detail::NullSpan;
#endif

// ---------------------------------------------------------------------------
// Control plane (defined in trace.cpp; always compiled, stubbed to no-ops in
// an MP_TRACE=0 build of the obs library). May only be called while no
// instrumented work is in flight.

/// Starts recording: resets all rings to `events_per_thread` capacity and
/// sets the trace epoch to "now".
void arm_tracing(std::size_t events_per_thread = kDefaultTraceCapacity);

/// Stops recording. Already-recorded events are kept for snapshot/export.
void disarm_tracing();

/// True between arm_tracing() and disarm_tracing().
bool tracing_armed();

/// Drops all recorded events and drop counts (buffers stay registered).
void reset_tracing();

/// All recorded events, sorted by timestamp (ties: longer span first, so a
/// parent precedes the children it encloses). Non-destructive.
std::vector<TraceEvent> trace_snapshot();

/// Total events lost to ring wraparound since the last arm/reset.
std::uint64_t trace_dropped();

/// Number of threads that have recorded at least one event ever.
std::size_t trace_thread_count();

/// Writes the Chrome/Perfetto trace_event JSON for the current snapshot
/// (load via chrome://tracing or https://ui.perfetto.dev). Spans are "X"
/// complete events; counters "C"; instants "i".
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace() to a file; returns false (and reports on stderr) if
/// the file cannot be written.
bool write_chrome_trace_file(const std::string& path);

}  // namespace mp::obs
