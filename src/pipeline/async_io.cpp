#include "pipeline/async_io.hpp"

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "obs/trace.hpp"

namespace mp::pipeline {

struct IoThread::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;  // signalled when a job is queued
  std::condition_variable done_cv;  // signalled when a job completes
  std::deque<std::pair<std::uint64_t, Job>> queue;
  // Tickets complete in FIFO order; `completed` is the count of settled
  // jobs, and a settled job's exception (if any) parks here until the
  // caller waits on its ticket or drains.
  std::uint64_t next_ticket = 0;
  std::uint64_t completed = 0;
  std::map<std::uint64_t, std::exception_ptr> errors;
  bool shutting_down = false;
  std::thread thread;

  void thread_main() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      work_cv.wait(lock,
                   [this] { return !queue.empty() || shutting_down; });
      if (queue.empty() && shutting_down) return;
      auto [ticket, job] = std::move(queue.front());
      queue.pop_front();
      lock.unlock();
      std::exception_ptr error;
      {
        obs::Span span("pipe.io");
        try {
          job();
        } catch (...) {
          error = std::current_exception();
        }
      }
      lock.lock();
      completed = ticket + 1;
      if (error) errors.emplace(ticket, error);
      done_cv.notify_all();
    }
  }
};

IoThread::IoThread(bool async) : async_(async) {
  if (async_) {
    impl_ = std::make_unique<Impl>();
    impl_->thread = std::thread([this] { impl_->thread_main(); });
  }
}

IoThread::~IoThread() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_cv.notify_all();
  impl_->thread.join();
  // Unclaimed errors die with the thread; the owner destroying the
  // IoThread mid-phase is already unwinding from something bigger.
}

std::uint64_t IoThread::post(Job job) {
  if (!async_) {
    // Inline mode: the "ticket" is already settled when post returns and
    // exceptions propagate directly — the serial execution baseline.
    job();
    return 0;
  }
  std::uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    ticket = impl_->next_ticket++;
    impl_->queue.emplace_back(ticket, std::move(job));
  }
  impl_->work_cv.notify_one();
  return ticket;
}

void IoThread::wait(std::uint64_t ticket) {
  if (!async_) return;
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] { return impl_->completed > ticket; });
  auto it = impl_->errors.find(ticket);
  if (it == impl_->errors.end()) return;
  std::exception_ptr error = it->second;
  impl_->errors.erase(it);
  lock.unlock();
  std::rethrow_exception(error);
}

void IoThread::drain() {
  if (!async_) return;
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(
      lock, [&] { return impl_->completed == impl_->next_ticket; });
  if (impl_->errors.empty()) return;
  // Earliest parked error wins (FIFO order = causal order on the device).
  auto it = impl_->errors.begin();
  std::exception_ptr error = it->second;
  impl_->errors.erase(it);
  lock.unlock();
  std::rethrow_exception(error);
}

}  // namespace mp::pipeline
