#pragma once
/// \file async_io.hpp
/// Double-buffered asynchronous block I/O for the pipeline.
///
/// BlockDevice is single-threaded by design, so the pipeline funnels ALL
/// device access during a phase through one IoThread: compute (the merge)
/// runs on the caller while the next block's read/write executes on the
/// I/O thread — the overlap ROADMAP item 3 asks for (and the CARE staged-
/// buffer idiom from SNIPPETS.md §2, with the io thread standing in for
/// the copy stream). With async=false the same code runs every operation
/// inline on the caller, which is the serial baseline the E18 bench
/// compares against.
///
/// Error model: an async job that throws (IoError, typically) parks its
/// exception and rethrows it at the caller's next wait()/drain() — by
/// finish() at the latest — so failures cannot pass silently.
///
/// Readers and writers here mirror extmem::RunReader/RunWriter but keep
/// one block in flight: AsyncRunReader prefetches block b+1 while the
/// merge consumes block b; AsyncRunWriter flushes block b while the merge
/// fills block b+1.

#include <cstdint>
#include <functional>
#include <vector>

#include "extmem/block_device.hpp"
#include "extmem/run_file.hpp"
#include "util/assert.hpp"

namespace mp::pipeline {

/// Single background thread owning all device access for a pipeline
/// phase. FIFO: jobs run in post order, so sequential allocation stays
/// deterministic even when posted from compute.
class IoThread {
 public:
  /// async=false degrades every post() to an inline call on the caller
  /// (the serial baseline; also used when double buffering is disabled).
  explicit IoThread(bool async);
  ~IoThread();

  IoThread(const IoThread&) = delete;
  IoThread& operator=(const IoThread&) = delete;

  bool async() const { return async_; }

  using Job = std::function<void()>;

  /// Enqueues a job; returns its ticket. In inline mode the job runs
  /// immediately (exceptions propagate directly).
  std::uint64_t post(Job job);

  /// Blocks until the job behind `ticket` completed; rethrows its
  /// exception if it threw.
  void wait(std::uint64_t ticket);

  /// Waits for every posted job; rethrows the earliest parked exception.
  void drain();

  /// Runs `fn` on the I/O thread synchronously and returns its result —
  /// the marshalling point for device operations the compute side needs
  /// inline (allocation, checkpoint writes, stats snapshots).
  template <typename Fn>
  auto run(Fn&& fn) {
    using R = std::invoke_result_t<Fn&>;
    if constexpr (std::is_void_v<R>) {
      wait(post([&fn] { fn(); }));
    } else {
      R result{};
      wait(post([&fn, &result] { result = fn(); }));
      return result;
    }
  }

 private:
  struct Impl;
  bool async_;
  std::unique_ptr<Impl> impl_;
};

/// Windowed double-buffered reader over elements [offset, offset+count)
/// of a run. Same contract as extmem::RunReader but refills through the
/// IoThread with one block prefetched ahead.
template <typename T>
class AsyncRunReader {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  AsyncRunReader(IoThread& io, extmem::BlockDevice& device,
                 extmem::RunHandle run, std::uint64_t offset,
                 std::uint64_t count, fault::RetryPolicy retry = {})
      : io_(&io), device_(&device), run_(run), retry_(retry),
        consumed_(offset), start_(offset), end_(offset + count) {
    MP_ASSERT(end_ <= run.element_count);
    current_.resize(elems_per_block());
    pending_buf_.resize(elems_per_block());
  }

  AsyncRunReader(const AsyncRunReader&) = delete;
  AsyncRunReader& operator=(const AsyncRunReader&) = delete;

  ~AsyncRunReader() {
    // A prefetch may still be in flight; settle it so the io thread never
    // touches a destroyed buffer. Its error (if any) no longer matters.
    if (pending_block_ != kNone) {
      try {
        io_->wait(pending_ticket_);
      } catch (...) {
      }
    }
  }

  std::size_t elems_per_block() const {
    return device_->config().block_bytes / sizeof(T);
  }

  bool empty() const { return consumed_ == end_; }
  std::uint64_t remaining() const { return end_ - consumed_; }
  /// Elements consumed within this window (cursor advancement).
  std::uint64_t consumed() const { return consumed_ - start_; }

  const T& peek() {
    MP_ASSERT(!empty());
    refill_if_needed();
    return current_[cursor_];
  }

  T next() {
    const T value = peek();
    ++cursor_;
    ++consumed_;
    return value;
  }

 private:
  static constexpr std::uint64_t kNone = ~0ull;

  void start_fetch(std::uint64_t block_index) {
    const std::uint64_t block = run_.first_block + block_index;
    T* buf = pending_buf_.data();
    const auto bytes =
        static_cast<std::uint32_t>(pending_buf_.size() * sizeof(T));
    pending_ticket_ = io_->post([this, block, buf, bytes] {
      extmem::detail::retry_io(*device_, retry_, block, "read", [&] {
        return device_->try_read_block(block, buf, bytes);
      });
    });
    pending_block_ = block_index;
  }

  void refill_if_needed() {
    if (current_block_ != kNone) {
      const std::uint64_t lo = current_block_ * elems_per_block();
      if (consumed_ >= lo && consumed_ < lo + elems_per_block()) {
        cursor_ = static_cast<std::size_t>(consumed_ - lo);
        return;
      }
    }
    const std::uint64_t needed = consumed_ / elems_per_block();
    if (pending_block_ != needed) {
      // Cold start (or a seek the prefetcher did not predict): settle any
      // stale prefetch, then fetch the block we actually need.
      if (pending_block_ != kNone) io_->wait(pending_ticket_);
      start_fetch(needed);
    }
    io_->wait(pending_ticket_);
    std::swap(current_, pending_buf_);
    current_block_ = needed;
    pending_block_ = kNone;
    cursor_ = static_cast<std::size_t>(consumed_ % elems_per_block());
    // Prefetch the next block of the window while this one is consumed.
    const std::uint64_t last = (end_ - 1) / elems_per_block();
    if (needed < last) start_fetch(needed + 1);
  }

  IoThread* io_;
  extmem::BlockDevice* device_;
  extmem::RunHandle run_;
  fault::RetryPolicy retry_;
  std::vector<T> current_;
  std::vector<T> pending_buf_;
  std::uint64_t current_block_ = kNone;  // block index within the run
  std::uint64_t pending_block_ = kNone;
  std::uint64_t pending_ticket_ = 0;
  std::size_t cursor_ = 0;
  std::uint64_t consumed_;  // absolute element index within the run
  std::uint64_t start_;
  std::uint64_t end_;
};

/// Double-buffered writer. Two modes:
///  - fresh-allocation (run formation): each flushed block is allocated
///    on the io thread (FIFO keeps allocation order deterministic);
///  - preallocated range (merge segments / exchange slices): blocks are
///    written at fixed positions, so a redone unit rewrites exactly its
///    own disjoint blocks — the idempotence the checkpoint layer needs.
template <typename T>
class AsyncRunWriter {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Fresh-allocation mode.
  AsyncRunWriter(IoThread& io, extmem::BlockDevice& device,
                 fault::RetryPolicy retry = {})
      : io_(&io), device_(&device), retry_(retry) {
    reserve();
  }

  /// Preallocated mode: writes into blocks [first_block, ...).
  AsyncRunWriter(IoThread& io, extmem::BlockDevice& device,
                 std::uint64_t first_block, fault::RetryPolicy retry = {})
      : io_(&io), device_(&device), retry_(retry), preallocated_(true),
        next_block_(first_block), first_block_(first_block) {
    reserve();
  }

  AsyncRunWriter(const AsyncRunWriter&) = delete;
  AsyncRunWriter& operator=(const AsyncRunWriter&) = delete;

  ~AsyncRunWriter() {
    if (inflight_) {
      try {
        io_->wait(ticket_);
      } catch (...) {
      }
    }
  }

  std::size_t elems_per_block() const {
    return device_->config().block_bytes / sizeof(T);
  }

  void append(const T& value) {
    buffers_[active_].push_back(value);
    if (buffers_[active_].size() == elems_per_block()) flush_block();
  }

  void append(const T* values, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) append(values[i]);
  }

  /// Flushes the tail, settles all in-flight writes (rethrowing any
  /// parked error), and returns the finished run's handle.
  extmem::RunHandle finish() {
    if (!buffers_[active_].empty()) flush_block();
    if (inflight_) {
      io_->wait(ticket_);
      inflight_ = false;
    }
    io_->drain();
    return extmem::RunHandle{first_block_ == kUnset ? 0 : first_block_,
                             written_};
  }

  std::uint64_t written() const { return written_; }

 private:
  static constexpr std::uint64_t kUnset = ~0ull;

  void reserve() {
    buffers_[0].reserve(elems_per_block());
    buffers_[1].reserve(elems_per_block());
  }

  void flush_block() {
    // At most one block in flight: wait out the previous one before its
    // buffer is recycled.
    if (inflight_) {
      io_->wait(ticket_);
      inflight_ = false;
    }
    std::vector<T>* buf = &buffers_[active_];
    if (preallocated_) {
      const std::uint64_t block = next_block_++;
      ticket_ = io_->post([this, block, buf] { write_one(block, *buf); });
    } else {
      ticket_ = io_->post([this, buf] {
        // Allocation happens here, on the io thread, in FIFO post order:
        // run blocks stay sequential and deterministic.
        const std::uint64_t block = device_->allocate(1);
        if (first_block_ == kUnset) first_block_ = block;
        write_one(block, *buf);
      });
    }
    inflight_ = true;
    written_ += buffers_[active_].size();
    active_ ^= 1;
    buffers_[active_].clear();
  }

  void write_one(std::uint64_t block, const std::vector<T>& buf) {
    if (preallocated_ && first_block_ == kUnset) first_block_ = block;
    extmem::detail::retry_io(*device_, retry_, block, "write", [&] {
      return device_->try_write_block(
          block, buf.data(),
          static_cast<std::uint32_t>(buf.size() * sizeof(T)));
    });
  }

  IoThread* io_;
  extmem::BlockDevice* device_;
  fault::RetryPolicy retry_;
  bool preallocated_ = false;
  std::uint64_t next_block_ = 0;
  std::uint64_t first_block_ = kUnset;
  std::uint64_t written_ = 0;
  std::vector<T> buffers_[2];
  unsigned active_ = 0;
  bool inflight_ = false;
  std::uint64_t ticket_ = 0;
};

}  // namespace mp::pipeline
