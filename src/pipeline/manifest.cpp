#include "pipeline/manifest.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "util/assert.hpp"

namespace mp::pipeline {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kForm: return "form";
    case Phase::kMerge: return "merge";
    case Phase::kExchange: return "exchange";
    case Phase::kDone: return "done";
  }
  return "?";
}

namespace {

constexpr std::uint64_t kMagic = 0x4d504d414e494631ull;  // "MPMANIF1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t bytes) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < bytes; ++i) h = (h ^ data[i]) * kFnvPrime;
  return h;
}

struct Writer {
  std::vector<std::uint8_t> bytes;

  template <typename V>
  void put(V value) {
    static_assert(std::is_trivially_copyable_v<V>);
    const std::size_t at = bytes.size();
    bytes.resize(at + sizeof(V));
    std::memcpy(bytes.data() + at, &value, sizeof(V));
  }
  void put_handle(const extmem::RunHandle& h) {
    put(h.first_block);
    put(h.element_count);
  }
  void put_u64s(const std::vector<std::uint64_t>& v) {
    put(static_cast<std::uint32_t>(v.size()));
    for (std::uint64_t x : v) put(x);
  }
};

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t at = 0;

  template <typename V>
  V get() {
    static_assert(std::is_trivially_copyable_v<V>);
    if (at + sizeof(V) > size)
      throw ManifestError("manifest truncated at byte " + std::to_string(at));
    V value;
    std::memcpy(&value, data + at, sizeof(V));
    at += sizeof(V);
    return value;
  }
  extmem::RunHandle get_handle() {
    extmem::RunHandle h;
    h.first_block = get<std::uint64_t>();
    h.element_count = get<std::uint64_t>();
    return h;
  }
  std::vector<std::uint64_t> get_u64s(std::size_t limit) {
    const std::uint32_t n = get<std::uint32_t>();
    if (n > limit)
      throw ManifestError("manifest vector length " + std::to_string(n) +
                          " exceeds plausible bound");
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = get<std::uint64_t>();
    return v;
  }
};

// Bound on deserialized vector lengths: a corrupt length field must fail
// validation, not drive a multi-gigabyte allocation before the checksum
// is ever checked.
constexpr std::size_t kSaneCount = 1u << 24;

}  // namespace

std::vector<std::uint8_t> serialize_manifest(const Manifest& m) {
  Writer w;
  w.put(kMagic);
  w.put(kVersion);
  w.put(m.seq);
  w.put(static_cast<std::uint8_t>(m.phase));
  w.put(m.elem_bytes);
  w.put(m.total_elements);
  w.put_handle(m.input);
  w.put_handle(m.output);
  w.put(m.watermark);
  w.put(m.ranks_done);
  w.put_u64s(m.exchange_cursors);
  w.put(m.runs_formed);
  w.put(m.segments_merged);
  w.put(m.ranks_exchanged);
  w.put(m.checkpoints);
  w.put(m.resumes);
  w.put(static_cast<std::uint32_t>(m.shards.size()));
  for (const ShardManifest& sh : m.shards) {
    w.put(sh.input_first);
    w.put(sh.input_count);
    w.put(sh.formed);
    w.put(static_cast<std::uint32_t>(sh.runs.size()));
    for (const extmem::RunHandle& h : sh.runs) w.put_handle(h);
    w.put_handle(sh.sorted);
    w.put(sh.segments_done);
    w.put(sh.segment_count);
    w.put_u64s(sh.cursors);
  }
  w.put(fnv1a(w.bytes.data(), w.bytes.size()));
  return std::move(w.bytes);
}

Manifest deserialize_manifest(const std::uint8_t* data, std::size_t bytes) {
  if (bytes < sizeof(std::uint64_t))
    throw ManifestError("manifest image too small");
  Reader r{data, bytes};
  if (r.get<std::uint64_t>() != kMagic)
    throw ManifestError("manifest: bad magic");
  if (r.get<std::uint32_t>() != kVersion)
    throw ManifestError("manifest: unsupported version");
  Manifest m;
  m.seq = r.get<std::uint64_t>();
  const auto phase = r.get<std::uint8_t>();
  if (phase > static_cast<std::uint8_t>(Phase::kDone))
    throw ManifestError("manifest: bad phase byte");
  m.phase = static_cast<Phase>(phase);
  m.elem_bytes = r.get<std::uint32_t>();
  m.total_elements = r.get<std::uint64_t>();
  m.input = r.get_handle();
  m.output = r.get_handle();
  m.watermark = r.get<std::uint64_t>();
  m.ranks_done = r.get<std::uint64_t>();
  m.exchange_cursors = r.get_u64s(kSaneCount);
  m.runs_formed = r.get<std::uint64_t>();
  m.segments_merged = r.get<std::uint64_t>();
  m.ranks_exchanged = r.get<std::uint64_t>();
  m.checkpoints = r.get<std::uint64_t>();
  m.resumes = r.get<std::uint64_t>();
  const std::uint32_t shards = r.get<std::uint32_t>();
  if (shards > kSaneCount) throw ManifestError("manifest: bad shard count");
  m.shards.resize(shards);
  for (ShardManifest& sh : m.shards) {
    sh.input_first = r.get<std::uint64_t>();
    sh.input_count = r.get<std::uint64_t>();
    sh.formed = r.get<std::uint64_t>();
    const std::uint32_t runs = r.get<std::uint32_t>();
    if (runs > kSaneCount) throw ManifestError("manifest: bad run count");
    sh.runs.resize(runs);
    for (extmem::RunHandle& h : sh.runs) h = r.get_handle();
    sh.sorted = r.get_handle();
    sh.segments_done = r.get<std::uint64_t>();
    sh.segment_count = r.get<std::uint64_t>();
    sh.cursors = r.get_u64s(kSaneCount);
  }
  // The checksum covers every byte before it; trailing padding (the rest
  // of the slot) is not part of the image.
  const std::size_t payload = r.at;
  const std::uint64_t stored = r.get<std::uint64_t>();
  if (stored != fnv1a(data, payload))
    throw ManifestError("manifest: checksum mismatch (torn or corrupt)");
  return m;
}

std::uint64_t ManifestStore::slot_blocks_for(
    const extmem::BlockDevice& device, std::uint64_t worst_case_bytes) {
  const std::uint64_t bb = device.config().block_bytes;
  return (worst_case_bytes + bb - 1) / bb;
}

ManifestStore ManifestStore::create(extmem::BlockDevice& device,
                                    std::uint64_t worst_case_bytes,
                                    fault::RetryPolicy retry) {
  const std::uint64_t slot_blocks = slot_blocks_for(device, worst_case_bytes);
  MP_CHECK(slot_blocks > 0);
  const std::uint64_t base = device.allocate(2 * slot_blocks);
  return ManifestStore(device, base, slot_blocks, retry);
}

ManifestStore ManifestStore::attach(extmem::BlockDevice& device,
                                    std::uint64_t base_block,
                                    std::uint64_t worst_case_bytes,
                                    fault::RetryPolicy retry) {
  const std::uint64_t slot_blocks = slot_blocks_for(device, worst_case_bytes);
  MP_CHECK(slot_blocks > 0);
  MP_CHECK(base_block + 2 * slot_blocks <= device.blocks_allocated());
  return ManifestStore(device, base_block, slot_blocks, retry);
}

void ManifestStore::write(Manifest& m) {
  ++m.seq;
  const std::vector<std::uint8_t> image = serialize_manifest(m);
  const std::uint64_t bb = device_->config().block_bytes;
  MP_CHECK(image.size() <= slot_blocks_ * bb);  // sized at create time
  const std::uint64_t slot = m.seq % 2;
  const std::uint64_t first = base_ + slot * slot_blocks_;
  std::vector<std::uint8_t> block(bb, 0);
  for (std::uint64_t b = 0; b < slot_blocks_; ++b) {
    const std::size_t at = static_cast<std::size_t>(b * bb);
    const std::size_t take =
        at < image.size()
            ? std::min<std::size_t>(bb, image.size() - at)
            : 0;
    std::memcpy(block.data(), image.data() + at, take);
    if (take < bb) std::memset(block.data() + take, 0, bb - take);
    extmem::detail::retry_io(*device_, retry_, first + b, "manifest write",
                             [&] {
                               return device_->try_write_block(
                                   first + b, block.data(),
                                   static_cast<std::uint32_t>(bb));
                             });
  }
}

bool ManifestStore::try_load_slot(unsigned which, Manifest* out) {
  const std::uint64_t bb = device_->config().block_bytes;
  const std::uint64_t first = base_ + which * slot_blocks_;
  for (std::uint64_t b = 0; b < slot_blocks_; ++b)
    if (!device_->is_written(first + b)) return false;
  std::vector<std::uint8_t> image(slot_blocks_ * bb);
  try {
    for (std::uint64_t b = 0; b < slot_blocks_; ++b)
      extmem::detail::retry_io(*device_, retry_, first + b, "manifest read",
                               [&] {
                                 return device_->try_read_block(
                                     first + b, image.data() + b * bb,
                                     static_cast<std::uint32_t>(bb));
                               });
    *out = deserialize_manifest(image.data(), image.size());
  } catch (const extmem::IoError&) {
    return false;  // unreadable slot: fall back to the other one
  } catch (const ManifestError&) {
    return false;  // torn/corrupt slot
  }
  return true;
}

Manifest ManifestStore::load() {
  Manifest best;
  bool found = false;
  for (unsigned slot = 0; slot < 2; ++slot) {
    Manifest m;
    if (!try_load_slot(slot, &m)) continue;
    if (!found || m.seq > best.seq) best = std::move(m);
    found = true;
  }
  if (!found)
    throw ManifestError(
        "no valid manifest slot (both torn, corrupt, or unwritten): "
        "full restart required");
  return best;
}

void ManifestStore::corrupt_slot(unsigned which) {
  MP_CHECK(which < 2);
  const std::uint64_t bb = device_->config().block_bytes;
  const std::uint64_t block = base_ + which * slot_blocks_;
  if (!device_->is_written(block)) return;
  std::vector<std::uint8_t> data(bb);
  device_->read_block(block, data.data(), static_cast<std::uint32_t>(bb));
  data[16] ^= 0xff;  // inside the serialized payload, past the magic
  device_->write_block(block, data.data(), static_cast<std::uint32_t>(bb));
}

}  // namespace mp::pipeline
