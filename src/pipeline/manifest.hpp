#pragma once
/// \file manifest.hpp
/// Crash-consistent checkpoint manifest for the sharded external-sort
/// pipeline (pipeline.hpp).
///
/// The manifest records everything a resuming process needs to continue
/// from the last completed unit of work: the pipeline phase, every
/// completed run's handle, per-shard merge cursors and segment progress,
/// per-rank exchange cursors, an allocation watermark for orphan-block
/// reclamation, and cumulative work counters (which is how the chaos
/// drill *proves* completed work is never redone).
///
/// Durability model — a double-slot superblock, the BlockDevice analog of
/// write-temp-then-rename:
///  - The manifest region holds two equally sized slots. Every checkpoint
///    serializes the whole manifest (with a monotonically increasing
///    sequence number and an FNV-1a checksum over all preceding bytes)
///    and writes it to the slot NOT holding the latest valid manifest.
///  - A crash mid-write tears at most the slot being written; its
///    checksum cannot validate, so load() falls back to the other slot —
///    the previous checkpoint. The committed state is never overwritten
///    in place, exactly like writing a temp file and renaming it over the
///    old one.
///  - load() deserializes both slots and picks the valid one with the
///    highest sequence number. Both invalid (corruption, torn first
///    checkpoint, wrong magic/version) is the typed ManifestError: the
///    caller must do a full restart. A corrupt manifest can yield an
///    error, never wrong bytes.
///
/// The manifest is element-type-agnostic (it stores element *counts* plus
/// elem_bytes for a sanity check); serialization is raw little-endian
/// memory like the run-file format itself.

#include <cstdint>
#include <string>
#include <vector>

#include "extmem/block_device.hpp"
#include "extmem/run_file.hpp"
#include "fault/fault.hpp"

namespace mp::pipeline {

/// Pipeline phases, in execution order.
enum class Phase : std::uint8_t {
  kForm = 0,      ///< run formation: sort memory-sized chunks per shard
  kMerge = 1,     ///< per-shard k-way loser-tree merge, segment-granular
  kExchange = 2,  ///< rank-sharded exchange via Merge Path co-ranks
  kDone = 3,
};

const char* to_string(Phase phase);

/// Unrecoverable manifest failure: both slots corrupt/torn/absent. The
/// pipeline cannot resume; the caller must restart from scratch. Typed —
/// corruption is always an error, never silently wrong output.
class ManifestError : public fault::FaultError {
 public:
  explicit ManifestError(const std::string& what)
      : fault::FaultError(fault::FaultKind::kMedia, what) {}
};

/// Injected process death (fault::FaultKind::kCrash drawn at a pipeline
/// step boundary). Unwinds out of Pipeline::run(); everything durable is
/// what the manifest last recorded.
class CrashError : public fault::FaultError {
 public:
  CrashError(std::uint64_t step, const char* where)
      : fault::FaultError(fault::FaultKind::kCrash,
                          std::string("injected crash at step ") +
                              std::to_string(step) + " (" + where + ")"),
        step_(step) {}
  std::uint64_t step() const { return step_; }

 private:
  std::uint64_t step_;
};

/// Per-shard durable state.
struct ShardManifest {
  std::uint64_t input_first = 0;  ///< shard's offset into the input run
  std::uint64_t input_count = 0;  ///< shard's element count
  std::uint64_t formed = 0;       ///< input elements consumed by run formation
  std::vector<extmem::RunHandle> runs;  ///< completed (checkpointed) runs
  extmem::RunHandle sorted;       ///< merged shard run (preallocated)
  std::uint64_t segments_done = 0;
  std::uint64_t segment_count = 0;  ///< 0 until the shard's merge initialized
  /// Per-run consumed counts at the last completed segment boundary: the
  /// stable co-ranks of the merge frontier. A redone segment restarts its
  /// readers here, making segment re-execution byte-identical (Theorem 14
  /// disjointness at block granularity).
  std::vector<std::uint64_t> cursors;

  friend bool operator==(const ShardManifest&, const ShardManifest&) = default;
};

/// The complete durable state of one pipeline execution.
struct Manifest {
  std::uint64_t seq = 0;  ///< checkpoint sequence number (monotone)
  Phase phase = Phase::kForm;
  std::uint32_t elem_bytes = 0;
  std::uint64_t total_elements = 0;
  extmem::RunHandle input;
  extmem::RunHandle output;  ///< preallocated at exchange start
  /// device.blocks_allocated() at checkpoint time. Allocation is
  /// sequential, so every block >= watermark was allocated by work that
  /// did not reach this checkpoint — a resuming process releases
  /// [watermark, blocks_allocated()) and redoes that unit, leaking
  /// nothing.
  std::uint64_t watermark = 0;
  std::uint64_t ranks_done = 0;  ///< exchange ranks completed (in order)
  /// Per-shard consumed counts at the last completed rank boundary (the
  /// exchange frontier's stable co-ranks).
  std::vector<std::uint64_t> exchange_cursors;
  // Cumulative work counters across all incarnations. Each unit's
  // increment lands in the same manifest write that records its result,
  // so after a crash at a durable boundary the counters equal the
  // recorded work exactly — the chaos drill asserts total equality with a
  // clean run to prove completed units are never re-executed.
  std::uint64_t runs_formed = 0;
  std::uint64_t segments_merged = 0;
  std::uint64_t ranks_exchanged = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t resumes = 0;
  std::vector<ShardManifest> shards;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// Serializes `m` (with trailing checksum). Exposed for tests.
std::vector<std::uint8_t> serialize_manifest(const Manifest& m);
/// Deserializes and validates; throws ManifestError on any malformation.
Manifest deserialize_manifest(const std::uint8_t* data, std::size_t bytes);

/// The double-slot superblock on a BlockDevice.
class ManifestStore {
 public:
  /// Blocks one slot needs to hold a manifest of `worst_case_bytes`.
  static std::uint64_t slot_blocks_for(const extmem::BlockDevice& device,
                                       std::uint64_t worst_case_bytes);

  /// Allocates a fresh 2-slot region sized for `worst_case_bytes`.
  static ManifestStore create(extmem::BlockDevice& device,
                              std::uint64_t worst_case_bytes,
                              fault::RetryPolicy retry = {});

  /// Attaches to an existing region at `base_block`. The caller must pass
  /// the same worst_case_bytes the region was created with (it is a pure
  /// function of the pipeline config, which resume re-supplies).
  static ManifestStore attach(extmem::BlockDevice& device,
                              std::uint64_t base_block,
                              std::uint64_t worst_case_bytes,
                              fault::RetryPolicy retry = {});

  std::uint64_t base_block() const { return base_; }
  std::uint64_t slot_blocks() const { return slot_blocks_; }
  std::uint64_t total_blocks() const { return 2 * slot_blocks_; }

  /// Checkpoints `m`: bumps m.seq and writes the full serialized manifest
  /// to the slot not holding the latest valid state. Throws IoError if
  /// the device permanently fails the write.
  void write(Manifest& m);

  /// Returns the valid slot with the highest sequence number; throws
  /// ManifestError when neither slot holds a valid manifest.
  Manifest load();

  /// Drill hook: flips one byte in slot `which`'s serialized image (no-op
  /// if the slot was never written). Used by the corruption-injection
  /// tests and the chaos driver — never by the pipeline itself.
  void corrupt_slot(unsigned which);

 private:
  ManifestStore(extmem::BlockDevice& device, std::uint64_t base,
                std::uint64_t slot_blocks, fault::RetryPolicy retry)
      : device_(&device), base_(base), slot_blocks_(slot_blocks),
        retry_(retry) {}

  /// Reads slot `which`; returns false (rather than throwing) when the
  /// slot is unwritten, unreadable, or fails validation.
  bool try_load_slot(unsigned which, Manifest* out);

  extmem::BlockDevice* device_;
  std::uint64_t base_;
  std::uint64_t slot_blocks_;
  fault::RetryPolicy retry_;
};

}  // namespace mp::pipeline
