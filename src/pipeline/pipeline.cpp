#include "pipeline/pipeline.hpp"

namespace mp::pipeline {

std::uint64_t worst_case_manifest_bytes(unsigned shards,
                                        std::uint64_t total_elements,
                                        std::uint64_t memory_elems) {
  MP_CHECK(shards >= 1);
  MP_CHECK(memory_elems >= 1);
  // Largest shard: ceil split of the s*N/R boundaries.
  const std::uint64_t shard_elems =
      (total_elements + shards - 1) / shards;
  const std::uint64_t max_runs = shard_elems / memory_elems + 2;
  // Serialized layout (manifest.cpp): fixed header + counters + checksum
  // come to well under 256 bytes; each shard adds its fixed fields
  // (< 128 bytes) plus 24 bytes per run (16 handle + 8 cursor); the
  // exchange frontier adds 8 bytes per shard. The slack on each term
  // keeps this bound valid across small format extensions.
  return 256 + static_cast<std::uint64_t>(shards) * (128 + max_runs * 24) +
         static_cast<std::uint64_t>(shards) * 8;
}

}  // namespace mp::pipeline
