#pragma once
/// \file pipeline.hpp
/// Crash-consistent sharded external sort — the end-to-end "petasort"
/// pipeline that composes the repository's layers:
///
///   1. kForm     — per shard, memory-sized chunks of the input are read,
///                  sorted in memory (core's resilient Merge Path sort,
///                  surviving injected lane faults), and spilled as runs.
///   2. kMerge    — per shard, a k-way loser-tree merge of its runs into
///                  one sorted shard run, executed segment-by-segment in
///                  block-aligned output segments.
///   3. kExchange — R ranks (one per shard) each own a block-aligned slice
///                  of the global output. Rank r computes the Merge Path
///                  co-ranks (stable multisequence selection) bounding its
///                  slice across all shard runs, "fetches" the remote
///                  fragments over the simulated network (reliable_send —
///                  drops, duplicates and reorders are recovered; hard
///                  partitions surface as NetError), and merges them.
///
/// Crash consistency (the tentpole): every unit of work — one formed run,
/// one merged segment, one exchanged rank — ends at a *checkpoint step*
/// where the versioned double-slot manifest (manifest.hpp) records the
/// unit's result, the allocation watermark, and cumulative work counters,
/// all in one torn-write-safe superblock write. A process killed at ANY
/// step boundary resumes from the last completed unit:
///   - blocks allocated past the checkpointed watermark are released
///     (allocation is sequential, so orphans are exactly the suffix);
///   - a redone merge segment restarts its run readers at the
///     checkpointed per-run cursors — the merge frontier's co-ranks — and
///     rewrites exactly its own preallocated output blocks, which Merge
///     Path's Theorem 14 disjointness makes byte-identical and idempotent;
///   - a redone exchange rank recomputes the same deterministic co-ranks
///     and rewrites its disjoint output slice.
/// Completed units are never re-executed: the chaos drill asserts the
/// cumulative manifest counters of a crash-riddled run equal a clean
/// run's exactly.
///
/// Injected crashes: a fault::FaultPlan attached as
/// PipelineConfig::crash_plan draws FaultKind::kCrash at step boundaries
/// (OpClass::kStep) and the pipeline throws the typed CrashError — the
/// simulation of "the process died here". Randomly drawn crashes fire
/// only at durable points (see FaultPlan::decide_step), so a rate-1.0
/// schedule still terminates: each incarnation checkpoints at least one
/// new unit. Scripted crashes fire anywhere, including between a unit's
/// work and its checkpoint.
///
/// I/O overlap: all device access runs on one IoThread (async_io.hpp);
/// with PipelineConfig::double_buffer the readers prefetch and the
/// writers flush one block ahead of the merge loop.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/recovery.hpp"
#include "dist/netsim.hpp"
#include "extmem/block_device.hpp"
#include "extmem/run_file.hpp"
#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/async_io.hpp"
#include "pipeline/manifest.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::pipeline {

struct PipelineConfig {
  /// Elements sorted in memory per formed run (the "M" of the external
  /// sort; runs per shard = ceil(shard elements / memory_elems)).
  std::uint64_t memory_elems = 1ull << 15;
  /// Shards — also the exchange rank count. Each shard forms and merges
  /// its runs independently; rank r of the exchange owns output slice r.
  unsigned shards = 4;
  /// Merge-segment size in device blocks: the redo granularity of the
  /// kMerge phase (one checkpoint per segment).
  std::uint64_t segment_blocks = 4;
  /// Checkpoint cadence of the kForm phase (1 = after every run).
  std::uint64_t checkpoint_every_runs = 1;
  /// false disables all intermediate checkpoints (the final manifest
  /// recording completion is still written) — the bench's baseline for
  /// measuring checkpoint overhead.
  bool checkpoints = true;
  /// false runs every block transfer inline on the calling thread (serial
  /// baseline); true overlaps I/O with the merge via the IoThread.
  bool double_buffer = true;
  /// Retry policy for every device transfer and the recovery engine.
  fault::RetryPolicy retry{};
  /// Exchange network model; net.faults attaches the network fault plan,
  /// net.segment_retries bounds whole-rank retries after a NetError.
  dist::NetConfig net{};
  /// Crash schedule (not owned; nullptr = never crashes). Consulted only
  /// at step boundaries, with OpClass::kStep.
  fault::FaultPlan* crash_plan = nullptr;
  /// Lanes for the in-memory sorts of the kForm phase.
  Executor exec{};
  /// Lane-fault recovery for those sorts (hedging, lane retries).
  RecoveryConfig recovery{};
};

/// What one incarnation of the pipeline did. Counters are cumulative
/// across all incarnations (they come from the manifest); `steps` counts
/// this incarnation's step boundaries only.
struct PipelineReport {
  extmem::RunHandle output;
  std::uint64_t steps = 0;
  std::uint64_t runs_formed = 0;
  std::uint64_t segments_merged = 0;
  std::uint64_t ranks_exchanged = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t resumes = 0;
  dist::NetStats net{};
};

/// Upper bound on the serialized manifest size for a pipeline over
/// `total_elements` elements with these knobs. A pure function of the
/// arguments, so start() and resume() derive identical slot geometry.
std::uint64_t worst_case_manifest_bytes(unsigned shards,
                                        std::uint64_t total_elements,
                                        std::uint64_t memory_elems);

namespace detail {

/// Loser tree over streaming readers: the exact tournament of
/// mp::LoserTree (exhausted inputs always lose; ties to the lower run
/// index — the stability the co-rank selection assumes) with device-backed
/// cursors instead of in-memory ranges. Reader must expose empty(),
/// peek(), next().
template <typename T, typename Reader, typename Comp>
class StreamLoserTree {
 public:
  StreamLoserTree(std::vector<Reader*> runs, Comp comp)
      : runs_(std::move(runs)), comp_(comp) {
    k_ = runs_.size();
    slots_ = 1;
    while (slots_ < k_) slots_ *= 2;
    tree_.assign(slots_, kNone);
    if (k_ == 0) return;
    std::vector<std::size_t> winners(2 * slots_, kNone);
    for (std::size_t s = 0; s < slots_; ++s)
      winners[slots_ + s] = s < k_ ? s : kNone;
    for (std::size_t node = slots_ - 1; node >= 1; --node) {
      const std::size_t w1 = winners[2 * node];
      const std::size_t w2 = winners[2 * node + 1];
      const std::size_t win = play(w1, w2);
      tree_[node] = win == w1 ? w2 : w1;
      winners[node] = win;
    }
    winner_ = winners[1];
  }

  bool empty() { return winner_ == kNone || exhausted(winner_); }

  T pop() {
    MP_ASSERT(!empty());
    const std::size_t run = winner_;
    T value = runs_[run]->next();
    replay(run);
    return value;
  }

 private:
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  bool exhausted(std::size_t run) {
    return run >= k_ || runs_[run]->empty();
  }

  std::size_t play(std::size_t x, std::size_t y) {
    const bool xe = exhausted(x);
    const bool ye = exhausted(y);
    if (xe || ye) {
      if (xe && ye) return x < y ? x : y;
      return xe ? y : x;
    }
    const T& xv = runs_[x]->peek();
    const T& yv = runs_[y]->peek();
    if (comp_(xv, yv)) return x;
    if (comp_(yv, xv)) return y;
    return x < y ? x : y;
  }

  void replay(std::size_t run) {
    std::size_t contender = run;
    for (std::size_t node = (slots_ + run) / 2; node >= 1; node /= 2) {
      const std::size_t winner = play(tree_[node], contender);
      if (winner != contender) std::swap(tree_[node], contender);
    }
    winner_ = contender;
  }

  std::vector<Reader*> runs_;
  Comp comp_;
  std::size_t k_ = 0;
  std::size_t slots_ = 1;
  std::vector<std::size_t> tree_;
  std::size_t winner_ = kNone;
};

}  // namespace detail

/// The checkpointed sharded external sort. One instance is one
/// *incarnation*: construct with start() (fresh) or resume() (attach to a
/// prior incarnation's manifest), then call run() once. run() either
/// returns a PipelineReport, or throws CrashError (injected death — the
/// caller "restarts the process" via resume()), NetError / IoError
/// (environment failure), or ManifestError is thrown by resume() itself
/// when no valid checkpoint survives.
template <typename T, typename Comp = std::less<>>
class Pipeline {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Begins a fresh pipeline over `input` (a run already on `device`):
  /// allocates the manifest superblock and writes checkpoint #1 (the
  /// empty state). The input run is never modified.
  static Pipeline start(extmem::BlockDevice& device, extmem::RunHandle input,
                        const PipelineConfig& cfg = {}, Comp comp = {}) {
    check_config(device, cfg);
    const std::uint64_t n = input.element_count;
    ManifestStore store = ManifestStore::create(
        device, worst_case_manifest_bytes(cfg.shards, n, cfg.memory_elems),
        cfg.retry);
    Manifest m;
    m.elem_bytes = sizeof(T);
    m.total_elements = n;
    m.input = input;
    m.exchange_cursors.assign(cfg.shards, 0);
    m.shards.resize(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; ++s) {
      const std::uint64_t lo = s * n / cfg.shards;
      const std::uint64_t hi = (s + 1ull) * n / cfg.shards;
      m.shards[s].input_first = lo;
      m.shards[s].input_count = hi - lo;
    }
    m.watermark = device.blocks_allocated();
    store.write(m);
    return Pipeline(device, store, std::move(m), cfg, comp);
  }

  /// Attaches to the manifest a prior incarnation left at `manifest_block`
  /// and rolls the device back to its last checkpoint: throws the typed
  /// ManifestError when neither slot validates (full restart required —
  /// never wrong bytes), otherwise releases every block allocated past
  /// the checkpointed watermark. `total_elements` and `cfg` must match the
  /// original start() call (they determine the manifest slot geometry).
  static Pipeline resume(extmem::BlockDevice& device,
                         std::uint64_t manifest_block,
                         std::uint64_t total_elements,
                         const PipelineConfig& cfg = {}, Comp comp = {}) {
    check_config(device, cfg);
    ManifestStore store = ManifestStore::attach(
        device, manifest_block,
        worst_case_manifest_bytes(cfg.shards, total_elements,
                                  cfg.memory_elems),
        cfg.retry);
    Manifest m = store.load();
    MP_CHECK(m.elem_bytes == sizeof(T));
    MP_CHECK(m.total_elements == total_elements);
    MP_CHECK(m.shards.size() == cfg.shards);
    // Orphan reclamation: allocation is sequential, so every block past
    // the checkpointed watermark belongs to work that never checkpointed.
    const std::uint64_t allocated = device.blocks_allocated();
    if (allocated > m.watermark)
      device.release_blocks(m.watermark, allocated - m.watermark);
    ++m.resumes;  // persisted by the next checkpoint
    obs::Span::instant("pipe.resume", "seq", m.seq);
    obs::MetricsRegistry::instance().counter("pipe.resumes").add(1);
    obs::flight_report_degraded("pipe.resume");
    return Pipeline(device, store, std::move(m), cfg, comp);
  }

  /// Runs to completion from whatever state the manifest holds.
  PipelineReport run() {
    IoThread io(cfg_.double_buffer);
    io_ = &io;
    dist::RankNetwork net(static_cast<unsigned>(m_.shards.size()), cfg_.net);
    try {
      obs::Span span("pipe.sort", "n", m_.total_elements);
      while (m_.phase != Phase::kDone) {
        switch (m_.phase) {
          case Phase::kForm: form_phase(); break;
          case Phase::kMerge: merge_phase(); break;
          case Phase::kExchange: exchange_phase(net); break;
          case Phase::kDone: break;
        }
      }
    } catch (...) {
      io_ = nullptr;
      throw;
    }
    io_ = nullptr;
    PipelineReport report;
    report.output = m_.output;
    report.steps = steps_;
    report.runs_formed = m_.runs_formed;
    report.segments_merged = m_.segments_merged;
    report.ranks_exchanged = m_.ranks_exchanged;
    report.checkpoints = m_.checkpoints;
    report.resumes = m_.resumes;
    report.net = net.stats();
    return report;
  }

  /// Where the manifest superblock lives — persist this (e.g. in the
  /// device image's user word) to resume in a later process.
  std::uint64_t manifest_block() const { return store_.base_block(); }
  const Manifest& manifest() const { return m_; }
  /// Step boundaries passed so far this incarnation; a clean run's total
  /// enumerates every valid scripted kill index.
  std::uint64_t steps() const { return steps_; }

 private:
  Pipeline(extmem::BlockDevice& device, ManifestStore store, Manifest m,
           const PipelineConfig& cfg, Comp comp)
      : device_(&device), store_(store), m_(std::move(m)), cfg_(cfg),
        comp_(comp) {}

  static void check_config(const extmem::BlockDevice& device,
                           const PipelineConfig& cfg) {
    MP_CHECK(cfg.shards >= 1);
    MP_CHECK(cfg.memory_elems >= 1);
    MP_CHECK(cfg.segment_blocks >= 1);
    MP_CHECK(cfg.checkpoint_every_runs >= 1);
    MP_CHECK(device.config().block_bytes >= sizeof(T));
  }

  std::uint64_t epb() const {
    return device_->config().block_bytes / sizeof(T);
  }
  std::uint64_t blocks_for(std::uint64_t elems) const {
    return (elems + epb() - 1) / epb();
  }
  unsigned shard_count() const {
    return static_cast<unsigned>(m_.shards.size());
  }

  /// One step boundary. Every call consumes one position of the crash
  /// schedule (when one is attached), so a clean run and a crashing run
  /// see identical step numbering up to the crash. `durable` marks points
  /// immediately after a checkpoint write; see FaultPlan::decide_step.
  void crash_point(const char* where, bool durable) {
    ++steps_;
    if constexpr (fault::kFaultCompiledIn) {
      if (cfg_.crash_plan &&
          cfg_.crash_plan->decide_step(durable) == fault::FaultKind::kCrash) {
        obs::Span::instant("pipe.crash", "step", steps_ - 1);
        obs::MetricsRegistry::instance().counter("pipe.crashes").add(1);
        throw CrashError(steps_ - 1, where);
      }
    }
  }

  /// Writes the manifest (watermark refreshed inside the I/O thread, so
  /// it observes every allocation the unit performed).
  void checkpoint() {
    obs::Span span("pipe.checkpoint", "seq", m_.seq + 1);
    ++m_.checkpoints;
    io_->run([&] {
      m_.watermark = device_->blocks_allocated();
      store_.write(m_);
    });
    obs::MetricsRegistry::instance().counter("pipe.checkpoints").add(1);
  }

  /// The unit epilogue: a scripted-only crash point between the work and
  /// its checkpoint, the (optional) checkpoint, then a durable crash
  /// point where rate-driven crashes may fire.
  void unit_boundary(const char* where, const char* where_ckpt, bool want) {
    crash_point(where, false);
    const bool did = want && cfg_.checkpoints;
    if (did) checkpoint();
    crash_point(where_ckpt, did);
  }

  void release_handle(extmem::RunHandle& handle) {
    if (handle.element_count == 0) return;
    const std::uint64_t first = handle.first_block;
    const std::uint64_t count = blocks_for(handle.element_count);
    io_->run([&] { device_->release_blocks(first, count); });
    handle = extmem::RunHandle{};
  }

  // ---- kForm -------------------------------------------------------

  void form_phase() {
    for (unsigned s = 0; s < shard_count(); ++s) {
      ShardManifest& sh = m_.shards[s];
      while (sh.formed < sh.input_count) {
        obs::Span span("pipe.form", "shard", s);
        const std::uint64_t chunk =
            std::min(cfg_.memory_elems, sh.input_count - sh.formed);
        std::vector<T> buf(static_cast<std::size_t>(chunk));
        {
          AsyncRunReader<T> reader(*io_, *device_, m_.input,
                                   sh.input_first + sh.formed, chunk,
                                   cfg_.retry);
          for (auto& v : buf) v = reader.next();
        }
        resilient_parallel_merge_sort(buf.data(), buf.size(), cfg_.exec,
                                      comp_, cfg_.recovery);
        AsyncRunWriter<T> writer(*io_, *device_, cfg_.retry);
        writer.append(buf.data(), buf.size());
        sh.runs.push_back(writer.finish());
        sh.formed += chunk;
        ++m_.runs_formed;
        obs::MetricsRegistry::instance().counter("pipe.runs_formed").add(1);
        unit_boundary("form", "form.ckpt",
                      sh.runs.size() % cfg_.checkpoint_every_runs == 0 ||
                          sh.formed == sh.input_count);
      }
    }
    m_.phase = Phase::kMerge;
    unit_boundary("form.done", "form.done.ckpt", true);
  }

  // ---- kMerge ------------------------------------------------------

  void merge_phase() {
    for (unsigned s = 0; s < shard_count(); ++s) {
      ShardManifest& sh = m_.shards[s];
      if (sh.segment_count == 0) merge_init(s, sh);
      while (sh.segments_done < sh.segment_count) merge_segment(s, sh);
      if (!sh.runs.empty()) {
        // Source runs are dead once the shard is merged. Re-running this
        // after a crash is safe: release_blocks skips already-released
        // slots.
        for (extmem::RunHandle& run : sh.runs) release_handle(run);
        sh.runs.clear();
        sh.cursors.clear();
        unit_boundary("merge.cleanup", "merge.cleanup.ckpt", true);
      }
    }
    // Transition: preallocate the global output and zero the exchange
    // frontier. Redone wholesale if the checkpoint below never lands (the
    // orphaned allocation is reclaimed by resume()).
    const std::uint64_t n = m_.total_elements;
    m_.output = extmem::RunHandle{};
    if (n > 0) {
      const std::uint64_t blocks = blocks_for(n);
      m_.output.first_block = io_->run([&] { return device_->allocate(blocks); });
      m_.output.element_count = n;
    }
    for (auto& c : m_.exchange_cursors) c = 0;
    m_.ranks_done = 0;
    m_.phase = Phase::kExchange;
    unit_boundary("merge.done", "merge.done.ckpt", true);
  }

  void merge_init(unsigned s, ShardManifest& sh) {
    if (sh.runs.size() <= 1) {
      // 0 or 1 runs: the "merge" is the identity. Alias the formed run as
      // the sorted run (clearing runs WITHOUT releasing — same blocks).
      sh.sorted = sh.runs.empty() ? extmem::RunHandle{} : sh.runs[0];
      sh.runs.clear();
      sh.cursors.clear();
      sh.segment_count = 1;
      sh.segments_done = 1;
      unit_boundary("merge.alias", "merge.alias.ckpt", true);
      return;
    }
    const std::uint64_t seg_elems = cfg_.segment_blocks * epb();
    const std::uint64_t blocks = blocks_for(sh.input_count);
    sh.sorted.first_block = io_->run([&] { return device_->allocate(blocks); });
    sh.sorted.element_count = sh.input_count;
    sh.segment_count = (sh.input_count + seg_elems - 1) / seg_elems;
    sh.segments_done = 0;
    sh.cursors.assign(sh.runs.size(), 0);
    (void)s;
    unit_boundary("merge.init", "merge.init.ckpt", true);
  }

  void merge_segment(unsigned s, ShardManifest& sh) {
    {
      obs::Span span("pipe.segment", "shard", s);
      const std::uint64_t seg_elems = cfg_.segment_blocks * epb();
      const std::uint64_t g = sh.segments_done;
      const std::uint64_t lo = g * seg_elems;
      const std::uint64_t hi = std::min(sh.input_count, lo + seg_elems);
      std::vector<std::unique_ptr<AsyncRunReader<T>>> readers;
      std::vector<AsyncRunReader<T>*> ptrs;
      readers.reserve(sh.runs.size());
      for (std::size_t t = 0; t < sh.runs.size(); ++t) {
        readers.push_back(std::make_unique<AsyncRunReader<T>>(
            *io_, *device_, sh.runs[t], sh.cursors[t],
            sh.runs[t].element_count - sh.cursors[t], cfg_.retry));
        ptrs.push_back(readers.back().get());
      }
      detail::StreamLoserTree<T, AsyncRunReader<T>, Comp> tree(ptrs, comp_);
      AsyncRunWriter<T> writer(*io_, *device_,
                               sh.sorted.first_block + g * cfg_.segment_blocks,
                               cfg_.retry);
      for (std::uint64_t i = lo; i < hi; ++i) writer.append(tree.pop());
      writer.finish();
      // The readers' consumed counts ARE the merge frontier's co-ranks at
      // output rank `hi` — the checkpointed cursor a redo restarts from.
      for (std::size_t t = 0; t < sh.runs.size(); ++t)
        sh.cursors[t] += readers[t]->consumed();
      sh.segments_done = g + 1;
    }
    ++m_.segments_merged;
    obs::MetricsRegistry::instance().counter("pipe.segments_merged").add(1);
    unit_boundary("merge.seg", "merge.seg.ckpt", true);
  }

  // ---- kExchange ---------------------------------------------------

  /// Block-aligned global output boundary of rank r: aligning down keeps
  /// every rank's preallocated output slice disjoint at block granularity
  /// (the tail rank absorbs the remainder).
  std::uint64_t boundary(unsigned r) const {
    const std::uint64_t n = m_.total_elements;
    if (r >= shard_count()) return n;
    return std::min(n, (r * n / shard_count()) / epb() * epb());
  }

  void exchange_phase(dist::RankNetwork& net) {
    while (m_.ranks_done < shard_count()) {
      const unsigned r = static_cast<unsigned>(m_.ranks_done);
      exchange_rank(r, net);
      ++m_.ranks_done;
      ++m_.ranks_exchanged;
      obs::MetricsRegistry::instance().counter("pipe.ranks_exchanged").add(1);
      unit_boundary("exchange.rank", "exchange.rank.ckpt", true);
    }
    for (ShardManifest& sh : m_.shards) release_handle(sh.sorted);
    m_.phase = Phase::kDone;
    crash_point("exchange.done", false);
    checkpoint();  // forced even with cfg_.checkpoints off: the final
                   // manifest is how a later process finds the output
    crash_point("done.ckpt", true);
  }

  /// One block of one shard's sorted run, cached for co-rank probing.
  struct ProbeCache {
    std::vector<T> data;
    std::uint64_t block = ~0ull;  // block index within the run
  };

  const T& probe(unsigned rank, unsigned s, std::uint64_t index,
                 std::vector<ProbeCache>& caches, dist::RankNetwork& net) {
    const std::uint64_t b = index / epb();
    ProbeCache& cache = caches[s];
    if (cache.block != b) {
      if (s != rank) {
        // A cross-shard key probe: one small alpha-dominated message
        // (key + position, 16 bytes) through the reliable protocol.
        net.reliable_send(s, rank, 16);
      }
      cache.data.resize(static_cast<std::size_t>(epb()));
      const std::uint64_t block = m_.shards[s].sorted.first_block + b;
      io_->run([&] {
        extmem::detail::retry_io(*device_, cfg_.retry, block, "probe", [&] {
          return device_->try_read_block(
              block, cache.data.data(),
              static_cast<std::uint32_t>(cache.data.size() * sizeof(T)));
        });
      });
      cache.block = b;
    }
    return cache.data[static_cast<std::size_t>(index % epb())];
  }

  /// Device-backed multiway_select (same greedy advancement, same
  /// (value, run-index) tie-breaking) for global rank `target`: returns
  /// the stable co-rank positions across the shard runs. Deterministic —
  /// a redone rank recomputes identical ends.
  std::vector<std::uint64_t> select_ends(unsigned rank, std::uint64_t target,
                                         std::vector<ProbeCache>& caches,
                                         dist::RankNetwork& net) {
    obs::Span span("pipe.select", "rank", rank);
    const std::size_t k = m_.shards.size();
    std::vector<std::uint64_t> pos(k, 0);
    std::uint64_t remaining = target;
    while (remaining > 0) {
      std::uint64_t active = 0;
      for (std::size_t t = 0; t < k; ++t)
        if (pos[t] < m_.shards[t].sorted.element_count) ++active;
      MP_ASSERT(active > 0);
      const std::uint64_t c =
          remaining >= 2 * active ? remaining / (2 * active) : 1;
      std::size_t best = k;
      std::uint64_t best_take = 0;
      const T* best_value = nullptr;
      for (std::size_t t = 0; t < k; ++t) {
        const std::uint64_t avail =
            m_.shards[t].sorted.element_count - pos[t];
        if (avail == 0) continue;
        const std::uint64_t take = c < avail ? c : avail;
        const T& v = probe(rank, static_cast<unsigned>(t),
                           pos[t] + take - 1, caches, net);
        if (best_value == nullptr || comp_(v, *best_value)) {
          best = t;
          best_take = take;
          best_value = &v;
        }
      }
      MP_ASSERT(best < k);
      const std::uint64_t take =
          best_take < remaining ? best_take : remaining;
      pos[best] += take;
      remaining -= take;
    }
    return pos;
  }

  void exchange_rank(unsigned r, dist::RankNetwork& net) {
    obs::Span span("pipe.exchange", "rank", r);
    const std::uint64_t lo = boundary(r);
    const std::uint64_t hi = boundary(r + 1);
    if (lo == hi) {
      net.end_round();
      return;  // empty slice: frontier unchanged
    }
    for (unsigned attempt = 0;; ++attempt) {
      try {
        std::vector<ProbeCache> caches(m_.shards.size());
        const std::vector<std::uint64_t> ends =
            select_ends(r, hi, caches, net);
        // Fetch the remote fragments: shard s ships its
        // [cursor, end) slice to rank r in one reliable message (resends
        // and dedup priced by the protocol; a persistent partition
        // escapes as NetError and retries the whole rank below).
        for (std::size_t s = 0; s < m_.shards.size(); ++s) {
          MP_CHECK(ends[s] >= m_.exchange_cursors[s]);
          const std::uint64_t frag = ends[s] - m_.exchange_cursors[s];
          if (frag > 0 && s != r)
            net.reliable_send(static_cast<unsigned>(s), r,
                              frag * sizeof(T));
        }
        std::vector<std::unique_ptr<AsyncRunReader<T>>> readers;
        std::vector<AsyncRunReader<T>*> ptrs;
        for (std::size_t s = 0; s < m_.shards.size(); ++s) {
          readers.push_back(std::make_unique<AsyncRunReader<T>>(
              *io_, *device_, m_.shards[s].sorted, m_.exchange_cursors[s],
              ends[s] - m_.exchange_cursors[s], cfg_.retry));
          ptrs.push_back(readers.back().get());
        }
        detail::StreamLoserTree<T, AsyncRunReader<T>, Comp> tree(ptrs,
                                                                 comp_);
        AsyncRunWriter<T> writer(*io_, *device_,
                                 m_.output.first_block + lo / epb(),
                                 cfg_.retry);
        for (std::uint64_t i = lo; i < hi; ++i) writer.append(tree.pop());
        writer.finish();
        m_.exchange_cursors = ends;
        break;
      } catch (const dist::NetError&) {
        // The rank's output blocks are preallocated and disjoint, so a
        // partial attempt is simply overwritten by the retry.
        if (attempt >= cfg_.net.segment_retries) throw;
        obs::Span::instant("pipe.retry", "rank", r);
      }
    }
    net.end_round();
  }

  extmem::BlockDevice* device_;
  ManifestStore store_;
  Manifest m_;
  PipelineConfig cfg_;
  Comp comp_;
  IoThread* io_ = nullptr;  // valid only inside run()
  std::uint64_t steps_ = 0;
};

}  // namespace mp::pipeline
