#include "pram/baselines_sim.hpp"

#include <algorithm>

#include "baselines/akl_santoro.hpp"
#include "baselines/bitonic.hpp"
#include "baselines/deo_sarkar.hpp"
#include "baselines/shiloach_vishkin.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::pram {
namespace {

using Element = std::int32_t;
constexpr std::uint64_t kElem = sizeof(Element);

/// Prices one run whose per-lane counts were accumulated across
/// `barrier_count` fork-join phases, with one streaming pass of
/// `mem_bytes`. The compute critical path is the slowest lane's total —
/// exact for single-phase algorithms, and for multi-phase ones an
/// under-approximation that the callers correct by pricing rounds
/// individually where the dependency structure matters (Akl-Santoro).
SimResult price_run(const MachineModel& model,
                    std::span<const OpCounts> counts, unsigned lanes,
                    std::uint64_t barrier_count, std::uint64_t mem_bytes) {
  SimResult result;
  result.lanes = lanes;
  double slowest = 0.0;
  for (const OpCounts& ops : counts) {
    slowest = std::max(slowest, model.lane_ns(ops));
    result.critical_ops = std::max(result.critical_ops, ops.total());
    result.work_ops += ops.total();
    result.totals += ops;
  }
  result.compute_ns = slowest;
  result.barrier_ns = static_cast<double>(barrier_count) *
                      model.barrier_ns(lanes);
  const std::uint64_t excess =
      mem_bytes > model.llc_bytes ? mem_bytes - model.llc_bytes : 0;
  result.memory_ns = model.memory_ns(excess, lanes);
  result.phases = barrier_count;
  result.time_ns = result.compute_ns + result.barrier_ns + result.memory_ns;
  return result;
}

}  // namespace

SimResult simulate_shiloach_vishkin(const std::vector<Element>& a,
                                    const std::vector<Element>& b,
                                    unsigned lanes,
                                    const MachineModel& model) {
  MP_CHECK(lanes >= 1);
  ThreadPool serial(0);
  std::vector<Element> out(a.size() + b.size());
  std::vector<OpCounts> counts(lanes);
  baselines::shiloach_vishkin_merge(a.data(), a.size(), b.data(), b.size(),
                                    out.data(), Executor{&serial, lanes},
                                    std::less<>{},
                                    std::span<OpCounts>(counts));
  return price_run(model, counts, lanes, /*barriers=*/2,
                   2 * kElem * out.size());
}

SimResult simulate_akl_santoro(const std::vector<Element>& a,
                               const std::vector<Element>& b, unsigned lanes,
                               const MachineModel& model) {
  MP_CHECK(lanes >= 1);
  unsigned rounds = 0;
  while ((1u << rounds) < lanes) ++rounds;

  SimResult result;
  result.lanes = lanes;

  // Dependent partition rounds, priced individually: round r runs 2^r
  // concurrent median searches on at most `lanes` processors.
  std::vector<baselines::AsSegment> segments{
      baselines::AsSegment{0, a.size(), 0, b.size(), 0}};
  for (unsigned r = 0; r < rounds; ++r) {
    std::vector<OpCounts> counts(lanes);
    std::vector<baselines::AsSegment> next(2 * segments.size());
    for (std::size_t idx = 0; idx < segments.size(); ++idx) {
      OpCounts& ops = counts[idx % lanes];
      const auto seg = segments[idx];
      const std::size_t sm = seg.a_end - seg.a_begin;
      const std::size_t sn = seg.b_end - seg.b_begin;
      const std::size_t half = (sm + sn) / 2;
      const PathPoint mid = path_point_on_diagonal(
          a.data() + seg.a_begin, sm, b.data() + seg.b_begin, sn, half,
          std::less<>{}, &ops);
      next[2 * idx] = {seg.a_begin, seg.a_begin + mid.i, seg.b_begin,
                       seg.b_begin + mid.j, seg.out_begin};
      next[2 * idx + 1] = {seg.a_begin + mid.i, seg.a_end,
                           seg.b_begin + mid.j, seg.b_end,
                           seg.out_begin + half};
    }
    segments = std::move(next);
    const SimResult round = price_run(model, counts, lanes, 1, 0);
    result.compute_ns += round.compute_ns;
    result.barrier_ns += round.barrier_ns;
    result.critical_ops += round.critical_ops;
    result.work_ops += round.work_ops;
    result.totals += round.totals;
    ++result.phases;
  }

  // Merge phase: leaves round-robin over lanes.
  {
    std::vector<OpCounts> counts(lanes);
    std::vector<Element> out(a.size() + b.size());
    for (std::size_t s = 0; s < segments.size(); ++s) {
      OpCounts& ops = counts[s % lanes];
      const auto& seg = segments[s];
      const std::size_t sm = seg.a_end - seg.a_begin;
      const std::size_t sn = seg.b_end - seg.b_begin;
      std::size_t i = 0, j = 0;
      merge_steps(a.data() + seg.a_begin, sm, b.data() + seg.b_begin, sn, &i,
                  &j, out.data() + seg.out_begin, sm + sn, std::less<>{},
                  &ops);
    }
    const SimResult merge_phase = price_run(
        model, counts, lanes, 1, 2 * kElem * (a.size() + b.size()));
    result.compute_ns += merge_phase.compute_ns;
    result.barrier_ns += merge_phase.barrier_ns;
    result.memory_ns += merge_phase.memory_ns;
    result.critical_ops += merge_phase.critical_ops;
    result.work_ops += merge_phase.work_ops;
    result.totals += merge_phase.totals;
    ++result.phases;
  }
  result.time_ns = result.compute_ns + result.barrier_ns + result.memory_ns;
  return result;
}

SimResult simulate_deo_sarkar(const std::vector<Element>& a,
                              const std::vector<Element>& b, unsigned lanes,
                              const MachineModel& model) {
  MP_CHECK(lanes >= 1);
  ThreadPool serial(0);
  std::vector<Element> out(a.size() + b.size());
  std::vector<OpCounts> counts(lanes);
  baselines::deo_sarkar_merge(a.data(), a.size(), b.data(), b.size(),
                              out.data(), Executor{&serial, lanes},
                              std::less<>{}, std::span<OpCounts>(counts));
  return price_run(model, counts, lanes, 1, 2 * kElem * out.size());
}

SimResult simulate_bitonic_merge(const std::vector<Element>& a,
                                 const std::vector<Element>& b,
                                 unsigned lanes, const MachineModel& model) {
  MP_CHECK(lanes >= 1);
  ThreadPool serial(0);
  std::vector<Element> out(a.size() + b.size());
  std::vector<OpCounts> counts(lanes);
  baselines::bitonic_merge(a.data(), a.size(), b.data(), b.size(),
                           out.data(), Executor{&serial, lanes},
                           std::less<>{}, std::span<OpCounts>(counts));
  std::size_t n2 = 1;
  while (n2 < out.size()) n2 <<= 1;
  std::uint64_t passes = 0;
  for (std::size_t j = n2 >> 1; j > 0; j >>= 1) ++passes;
  // Each pass streams the whole buffer and ends in a barrier.
  SimResult result =
      price_run(model, counts, lanes, passes, 0);
  for (std::uint64_t p = 0; p < passes; ++p) {
    const std::uint64_t bytes = 2 * kElem * n2;
    const std::uint64_t excess =
        bytes > model.llc_bytes ? bytes - model.llc_bytes : 0;
    result.memory_ns += model.memory_ns(excess, lanes);
  }
  result.time_ns = result.compute_ns + result.barrier_ns + result.memory_ns;
  return result;
}

MachineModel hypercore_model() {
  // Plurality Hypercore (Section VI): many simple cores sharing an L1-level
  // cache, with a hardware synchronizer/scheduler — per-core throughput is
  // a fraction of a Xeon's, but barriers are near-free and the fabric
  // feeds many more lanes before saturating.
  MachineModel m;
  m.ns_per_compare = 3.0;
  m.ns_per_move = 2.0;
  m.ns_per_search_step = 9.0;
  m.ns_per_stage = 2.0;
  m.barrier_base_ns = 40.0;
  m.barrier_per_lane_ns = 1.0;
  m.llc_bytes = 2u << 20;  // the shared cache is small
  m.bytes_per_ns_per_lane = 0.8;
  m.bw_saturation_lanes = 48;
  return m;
}

}  // namespace mp::pram
