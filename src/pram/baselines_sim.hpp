#pragma once
/// \file baselines_sim.hpp
/// PRAM cost-model drivers for the related-work baselines (S11-S14), the
/// modelled-time counterpart of the balance experiment E7: Section V's
/// "such a load imbalance can cause a 2X increase in latency!" is a claim
/// about *time*, so we price the instrumented baseline runs with the same
/// machine model as Algorithm 1 and compare.
///
/// Phase structure per algorithm:
///  - Shiloach-Vishkin: one rank phase + one merge phase (2 barriers);
///    the merge phase's critical path carries the imbalance.
///  - Akl-Santoro: ceil(lg p) DEPENDENT partition rounds (one barrier
///    each) + one merge phase — the log·log term made visible.
///  - Deo-Sarkar: one phase, like Merge Path (only the search differs).
///  - Bitonic merge: log2(N) dependent half-cleaner passes, one barrier
///    each, O(N log N) total work.

#include <cstdint>
#include <vector>

#include "pram/machine.hpp"
#include "pram/simulate.hpp"

namespace mp::pram {

SimResult simulate_shiloach_vishkin(const std::vector<std::int32_t>& a,
                                    const std::vector<std::int32_t>& b,
                                    unsigned lanes,
                                    const MachineModel& model);

SimResult simulate_akl_santoro(const std::vector<std::int32_t>& a,
                               const std::vector<std::int32_t>& b,
                               unsigned lanes, const MachineModel& model);

SimResult simulate_deo_sarkar(const std::vector<std::int32_t>& a,
                              const std::vector<std::int32_t>& b,
                              unsigned lanes, const MachineModel& model);

SimResult simulate_bitonic_merge(const std::vector<std::int32_t>& a,
                                 const std::vector<std::int32_t>& b,
                                 unsigned lanes, const MachineModel& model);

/// The Plurality Hypercore shape the paper's Section VI/VII mentions: many
/// lightweight cores behind a shared cache with hardware fine-grain task
/// dispatch — slower per operation, dramatically cheaper barriers, more
/// lanes. Used by bench/fig_hypercore.
MachineModel hypercore_model();

}  // namespace mp::pram
