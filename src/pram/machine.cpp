#include "pram/machine.hpp"

#include <algorithm>

namespace mp::pram {

MachineModel MachineModel::paper_x5670() {
  // Calibration notes:
  //  - X5670 @ 2.93 GHz: a guarded merge step (compare + move + loop
  //    bookkeeping, streaming access) retires in ~2 ns => split across
  //    compare/move costs below.
  //  - Diagonal search steps hit two random cache lines => ~6 ns.
  //  - OpenMP fork-join on 12 threads across two sockets ~1 us.
  //  - Per-core streaming bandwidth ~3 GB/s with triad-like access,
  //    saturating the two IMCs near 11 active cores (DDR3-1333, 3 ch/skt).
  MachineModel m;
  m.ns_per_compare = 1.0;
  m.ns_per_move = 0.75;
  m.ns_per_search_step = 6.0;
  m.ns_per_stage = 0.75;
  m.barrier_base_ns = 300.0;
  m.barrier_per_lane_ns = 50.0;
  m.llc_bytes = 2ull * 12 * 1024 * 1024;
  m.bytes_per_ns_per_lane = 3.0;
  m.bw_saturation_lanes = 11;
  return m;
}

double phase_ns(const MachineModel& model, std::span<const OpCounts> lanes,
                unsigned active_lanes) {
  double slowest = 0.0;
  for (const OpCounts& ops : lanes)
    slowest = std::max(slowest, model.lane_ns(ops));
  return slowest + model.barrier_ns(active_lanes);
}

}  // namespace mp::pram
