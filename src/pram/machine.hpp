#pragma once
/// \file machine.hpp
/// CREW PRAM machine cost model.
///
/// Purpose (DESIGN.md section 2): the paper's Figure 5 was measured on a
/// 12-core Xeon testbed we do not have; what the figure fundamentally
/// reports is the algorithm's load balance and parallelisation overhead,
/// which are hardware-independent. We therefore execute the real algorithms
/// with per-lane operation counting (core/instrument.hpp) and convert the
/// counts into modelled time under an explicit machine model:
///
///   T_phase(p) = max_lane( compares·c_cmp + moves·c_mov
///                          + search_steps·c_srch + stages·c_stg )
///                + barrier(p)
///   T(p)       = sum over phases + serial_ops·costs + memory_term(p)
///
/// The memory term models the one genuinely hardware-bound effect visible
/// in Figure 5 — the slight speedup loss for the largest inputs — as
/// bandwidth saturation: traffic beyond the last-level cache streams at a
/// per-core bandwidth that stops scaling once `bw_saturation_lanes` lanes
/// are active.
///
/// All parameters are explicit and the paper_x5670() preset documents the
/// calibration; EXPERIMENTS.md compares the resulting curves against the
/// paper's.

#include <cstdint>
#include <span>

#include "core/instrument.hpp"

namespace mp::pram {

struct MachineModel {
  // Per-operation costs (nanoseconds). A merge step is one compare + one
  // move; a diagonal-search step is a dependent pair of random loads and
  // costs several times more — but there are only log N of them per lane.
  double ns_per_compare = 1.0;
  double ns_per_move = 0.75;
  double ns_per_search_step = 6.0;
  double ns_per_stage = 0.75;

  // Fork-join barrier cost as a function of lane count.
  double barrier_base_ns = 300.0;
  double barrier_per_lane_ns = 50.0;

  // Memory system: traffic beyond the LLC streams at per-core bandwidth
  // `bytes_per_ns_per_lane`, scaling with active lanes up to
  // `bw_saturation_lanes` (QPI/IMC saturation on the paper's machine).
  std::uint64_t llc_bytes = 2ull * 12 * 1024 * 1024;  // 2 sockets x 12 MiB
  double bytes_per_ns_per_lane = 3.0;
  unsigned bw_saturation_lanes = 11;

  double barrier_ns(unsigned lanes) const {
    return barrier_base_ns + barrier_per_lane_ns * lanes;
  }

  /// Time to move `bytes` of beyond-LLC traffic with `lanes` active lanes.
  double memory_ns(std::uint64_t bytes, unsigned lanes) const {
    const unsigned effective =
        lanes < bw_saturation_lanes ? lanes : bw_saturation_lanes;
    return static_cast<double>(bytes) /
           (bytes_per_ns_per_lane * static_cast<double>(effective));
  }

  /// Compute-time of one lane's operation counts.
  double lane_ns(const OpCounts& ops) const {
    return static_cast<double>(ops.compares) * ns_per_compare +
           static_cast<double>(ops.moves) * ns_per_move +
           static_cast<double>(ops.search_steps) * ns_per_search_step +
           static_cast<double>(ops.stages) * ns_per_stage;
  }

  /// The machine of the paper's Section VI (Dell T610, 2x Xeon X5670,
  /// HT and turbo disabled), with costs calibrated so that single-thread
  /// merge throughput and the ~11.7x 12-thread speedup match the paper.
  static MachineModel paper_x5670();
};

/// Cost of one fork-join phase: slowest lane plus the barrier.
double phase_ns(const MachineModel& model, std::span<const OpCounts> lanes,
                unsigned active_lanes);

}  // namespace mp::pram
