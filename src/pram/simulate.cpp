#include "pram/simulate.hpp"

#include <algorithm>
#include <cmath>

#include "core/mergepath.hpp"
#include "util/assert.hpp"
#include "util/threading.hpp"

namespace mp::pram {
namespace {

using Element = std::int32_t;
constexpr std::uint64_t kElem = sizeof(Element);

/// Accumulates phases into a SimResult, applying the machine model.
class Accumulator {
 public:
  Accumulator(const MachineModel& model, unsigned lanes)
      : model_(model), lanes_(lanes) {
    result_.lanes = lanes;
  }

  /// One fork-join phase over `counts` lanes.
  void phase(std::span<const OpCounts> counts) {
    double slowest = 0.0;
    std::uint64_t max_ops = 0;
    for (const OpCounts& ops : counts) {
      slowest = std::max(slowest, model_.lane_ns(ops));
      max_ops = std::max(max_ops, ops.total());
      result_.work_ops += ops.total();
      result_.totals += ops;
    }
    result_.compute_ns += slowest;
    result_.barrier_ns += model_.barrier_ns(lanes_);
    result_.critical_ops += max_ops;
    ++result_.phases;
  }

  /// Serial (single-lane, no barrier) work.
  void serial(const OpCounts& ops) {
    result_.compute_ns += model_.lane_ns(ops);
    result_.critical_ops += ops.total();
    result_.work_ops += ops.total();
    result_.totals += ops;
  }

  /// One streaming pass over `bytes` of memory; only the portion beyond
  /// the LLC is priced (capacity traffic). Lanes share bandwidth up to the
  /// saturation point.
  void memory_pass(std::uint64_t bytes) {
    const std::uint64_t excess =
        bytes > model_.llc_bytes ? bytes - model_.llc_bytes : 0;
    result_.memory_ns += model_.memory_ns(excess, lanes_);
  }

  SimResult finish() {
    result_.time_ns =
        result_.compute_ns + result_.memory_ns + result_.barrier_ns;
    return result_;
  }

 private:
  const MachineModel& model_;
  unsigned lanes_;
  SimResult result_;
};

/// Streaming passes a bottom-up sequential merge sort of `n` elements makes
/// over its data (insertion-sort pass plus one per width doubling).
std::uint64_t merge_sort_passes(std::size_t n) {
  std::uint64_t passes = 1;
  for (std::size_t width = 24; width < n; width *= 2) ++passes;
  return passes;
}

}  // namespace

SimResult simulate_sequential_merge(const std::vector<Element>& a,
                                    const std::vector<Element>& b,
                                    const MachineModel& model) {
  Accumulator acc(model, 1);
  std::vector<Element> out(a.size() + b.size());
  OpCounts ops;
  sequential_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                   std::less<>{}, &ops);
  acc.serial(ops);
  acc.memory_pass(2 * kElem * out.size());
  return acc.finish();
}

SimResult simulate_parallel_merge(const std::vector<Element>& a,
                                  const std::vector<Element>& b,
                                  unsigned lanes, const MachineModel& model) {
  MP_CHECK(lanes >= 1);
  ThreadPool serial_pool(0);
  Executor exec{&serial_pool, lanes};
  Accumulator acc(model, lanes);

  std::vector<Element> out(a.size() + b.size());
  std::vector<OpCounts> counts(lanes);
  parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(), exec,
                 std::less<>{}, std::span<OpCounts>(counts));
  acc.phase(counts);
  acc.memory_pass(2 * kElem * out.size());
  return acc.finish();
}

SimResult simulate_segmented_merge(const std::vector<Element>& a,
                                   const std::vector<Element>& b,
                                   unsigned lanes, const MachineModel& model,
                                   SegmentedConfig config) {
  MP_CHECK(lanes >= 1);
  ThreadPool serial_pool(0);
  Executor exec{&serial_pool, lanes};
  Accumulator acc(model, lanes);

  std::vector<Element> out(a.size() + b.size());
  std::vector<OpCounts> counts(lanes);
  const SegmentedStats stats = segmented_parallel_merge(
      a.data(), a.size(), b.data(), b.size(), out.data(), config, exec,
      std::less<>{}, std::span<OpCounts>(counts));

  // Approximation (documented in simulate.hpp): staging, partition+merge
  // and write-back are each balanced across lanes by construction, so the
  // accumulated per-lane totals price correctly as one max(); the
  // per-segment barriers are charged separately — three per segment (end
  // of staging, end of the parallel merge, end of the write-back).
  acc.phase(counts);
  for (std::size_t s = 1; s < 3 * stats.segments; ++s) {
    // phase() above already charged one barrier; charge the rest.
    const OpCounts empty{};
    acc.phase(std::span<const OpCounts>(&empty, 1));
  }
  acc.memory_pass(2 * kElem * out.size());
  return acc.finish();
}

SimResult simulate_merge_sort(std::vector<Element> data, unsigned lanes,
                              const MachineModel& model) {
  MP_CHECK(lanes >= 1);
  const std::size_t n = data.size();
  ThreadPool serial_pool(0);
  Executor exec{&serial_pool, lanes};
  Accumulator acc(model, lanes);
  if (n <= 1) return acc.finish();

  std::vector<Element> scratch(n);
  if (lanes == 1 || n <= lanes * 24) {
    OpCounts ops;
    sequential_merge_sort(data.data(), scratch.data(), n, std::less<>{},
                          &ops);
    acc.serial(ops);
    for (std::uint64_t p = 0; p < merge_sort_passes(n); ++p)
      acc.memory_pass(2 * kElem * n);
    return acc.finish();
  }

  // Phase 1: p block sorts (mirrors parallel_merge_sort's phase 1 exactly;
  // the real function is covered against this driver by tests).
  std::vector<Run> runs(lanes);
  {
    std::vector<OpCounts> counts(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const std::size_t begin = lane * n / lanes;
      const std::size_t end = (lane + 1ull) * n / lanes;
      runs[lane] = Run{begin, end};
      sequential_merge_sort(data.data() + begin, scratch.data() + begin,
                            end - begin, std::less<>{}, &counts[lane]);
    }
    acc.phase(counts);
    for (std::uint64_t p = 0; p < merge_sort_passes(n / lanes); ++p)
      acc.memory_pass(2 * kElem * n);
  }

  // Phase 2: flattened merge rounds.
  Element* src = data.data();
  Element* dst = scratch.data();
  while (runs.size() > 1) {
    std::vector<OpCounts> counts(lanes);
    runs = merge_round_balanced(src, dst, runs, exec, std::less<>{},
                                std::span<OpCounts>(counts));
    acc.phase(counts);
    acc.memory_pass(2 * kElem * n);
    std::swap(src, dst);
  }
  if (src != data.data()) {
    std::vector<OpCounts> counts(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane)
      counts[lane].move((lane + 1ull) * n / lanes - lane * n / lanes);
    acc.phase(counts);
    acc.memory_pass(2 * kElem * n);
  }
  return acc.finish();
}

SimResult simulate_multiway_sort(std::vector<Element> data, unsigned lanes,
                                 const MachineModel& model) {
  MP_CHECK(lanes >= 1);
  const std::size_t n = data.size();
  ThreadPool serial_pool(0);
  Executor exec{&serial_pool, lanes};
  Accumulator acc(model, lanes);
  if (n <= 1) return acc.finish();

  std::vector<Element> scratch(n);
  if (lanes == 1 || n <= lanes * 32) {
    OpCounts ops;
    sequential_merge_sort(data.data(), scratch.data(), n, std::less<>{},
                          &ops);
    acc.serial(ops);
    for (std::uint64_t p = 0; p < merge_sort_passes(n); ++p)
      acc.memory_pass(2 * kElem * n);
    return acc.finish();
  }

  // Phase 1: p block sorts.
  std::vector<std::span<const Element>> runs(lanes);
  {
    std::vector<OpCounts> counts(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const std::size_t begin = lane * n / lanes;
      const std::size_t end = (lane + 1ull) * n / lanes;
      sequential_merge_sort(data.data() + begin, scratch.data() + begin,
                            end - begin, std::less<>{}, &counts[lane]);
      runs[lane] = std::span<const Element>(data.data() + begin,
                                            end - begin);
    }
    acc.phase(counts);
    for (std::uint64_t p = 0; p < merge_sort_passes(n / lanes); ++p)
      acc.memory_pass(2 * kElem * n);
  }

  // Phase 2: one k-way merge (selection + loser tree), then copy-back.
  {
    std::vector<OpCounts> counts(lanes);
    parallel_multiway_merge(std::span<const std::span<const Element>>(runs),
                            scratch.data(), exec, std::less<>{},
                            std::span<OpCounts>(counts));
    acc.phase(counts);
    acc.memory_pass(2 * kElem * n);
  }
  {
    std::vector<OpCounts> counts(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane)
      counts[lane].move((lane + 1ull) * n / lanes - lane * n / lanes);
    acc.phase(counts);
    acc.memory_pass(2 * kElem * n);
  }
  return acc.finish();
}

SimResult simulate_cache_sort(std::vector<Element> data, unsigned lanes,
                              const MachineModel& model,
                              std::size_t cache_bytes) {
  MP_CHECK(lanes >= 1);
  const std::size_t n = data.size();
  ThreadPool serial_pool(0);
  Executor exec{&serial_pool, lanes};
  Accumulator acc(model, lanes);
  if (n <= 1) return acc.finish();

  CacheSortConfig config;
  config.cache_bytes = cache_bytes;
  std::vector<OpCounts> counts(lanes);
  cache_efficient_parallel_sort(data.data(), n, config, exec, std::less<>{},
                                std::span<OpCounts>(counts));

  // Coarse phase pricing (the per-phase structure is inside the algorithm):
  // charge the accumulated per-lane totals as one balanced phase, then add
  // the analytically known barrier count — stage 1 runs one parallel sort
  // per block (1 + ceil(log2 p) + 1 phases each), stage 2 runs two barriers
  // per merge segment per round.
  acc.phase(counts);
  const std::size_t block = config.resolve_block_elems<Element>();
  const std::size_t blocks = (n + block - 1) / block;
  const std::size_t seg =
      config.merge.resolve_segment_length<Element>();
  const double log2p = std::ceil(std::log2(static_cast<double>(lanes)));
  const double rounds = std::ceil(std::log2(static_cast<double>(
      std::max<std::size_t>(blocks, 1))));
  double extra_barriers = static_cast<double>(blocks) * (2.0 + log2p);
  extra_barriers += rounds * 2.0 * static_cast<double>(n) /
                    static_cast<double>(std::max<std::size_t>(seg, 1));
  OpCounts empty{};
  for (double s = 1; s < extra_barriers; s += 1.0)
    acc.phase(std::span<const OpCounts>(&empty, 1));

  const std::uint64_t passes =
      merge_sort_passes(block) + static_cast<std::uint64_t>(rounds);
  for (std::uint64_t p = 0; p < passes; ++p) acc.memory_pass(2 * kElem * n);
  return acc.finish();
}

}  // namespace mp::pram
