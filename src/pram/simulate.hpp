#pragma once
/// \file simulate.hpp
/// Drivers that execute the library's algorithms under the PRAM cost model.
///
/// Each simulate_* function runs the *real* algorithm (serially, with lanes
/// executed inline in lane order for determinism), collects per-lane
/// per-phase operation counts, and prices them with a MachineModel. The
/// returned SimResult carries both the modelled time and the raw work
/// measures, so the complexity-validation experiment (E3) and the speedup
/// experiment (E1) share these entry points.
///
/// Element type is the paper's: 32-bit integers.

#include <cstdint>
#include <vector>

#include "core/instrument.hpp"
#include "core/segmented_merge.hpp"
#include "pram/machine.hpp"

namespace mp::pram {

struct SimResult {
  double time_ns = 0.0;            ///< modelled wall time
  double compute_ns = 0.0;         ///< critical-path compute component
  double memory_ns = 0.0;          ///< bandwidth component
  double barrier_ns = 0.0;         ///< synchronisation component
  std::uint64_t work_ops = 0;      ///< total operations over all lanes
  std::uint64_t critical_ops = 0;  ///< sum over phases of max-lane ops
  OpCounts totals;                 ///< aggregate operation breakdown
  unsigned lanes = 1;
  std::uint64_t phases = 0;        ///< fork-join phase count
};

/// Plain sequential two-array merge (the Section VI baseline).
SimResult simulate_sequential_merge(const std::vector<std::int32_t>& a,
                                    const std::vector<std::int32_t>& b,
                                    const MachineModel& model);

/// Algorithm 1 with p lanes.
SimResult simulate_parallel_merge(const std::vector<std::int32_t>& a,
                                  const std::vector<std::int32_t>& b,
                                  unsigned lanes, const MachineModel& model);

/// Algorithm 2 (Segmented Parallel Merge) with p lanes.
/// Phase structure: per segment one parallel staging phase, one balanced
/// partition+merge phase and one write-back phase (3·segments barriers);
/// see the function's definition for the pricing approximation.
SimResult simulate_segmented_merge(const std::vector<std::int32_t>& a,
                                   const std::vector<std::int32_t>& b,
                                   unsigned lanes, const MachineModel& model,
                                   SegmentedConfig config = {});

/// Section III parallel merge sort of `data` (copied internally).
SimResult simulate_merge_sort(std::vector<std::int32_t> data, unsigned lanes,
                              const MachineModel& model);

/// One-pass multiway merge sort (multiway_merge_sort) of `data`:
/// p block sorts + a single k-way merge + copy-back.
SimResult simulate_multiway_sort(std::vector<std::int32_t> data,
                                 unsigned lanes, const MachineModel& model);

/// Section IV.C cache-efficient parallel sort of `data` (copied
/// internally).
SimResult simulate_cache_sort(std::vector<std::int32_t> data, unsigned lanes,
                              const MachineModel& model,
                              std::size_t cache_bytes = 0);

}  // namespace mp::pram
