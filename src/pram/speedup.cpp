#include "pram/speedup.hpp"

#include "util/assert.hpp"
#include "util/data_gen.hpp"

namespace mp::pram {

SpeedupCurve merge_speedup_curve(std::size_t per_array,
                                 const std::vector<unsigned>& threads,
                                 const MachineModel& model,
                                 std::uint64_t seed) {
  MP_CHECK(!threads.empty());
  const MergeInput input =
      make_merge_input(Dist::kUniform, per_array, per_array, seed);

  SpeedupCurve curve;
  curve.elements = per_array;
  const SimResult base = simulate_parallel_merge(input.a, input.b, 1, model);
  for (unsigned p : threads) {
    CurvePoint point;
    point.threads = p;
    point.sim = simulate_parallel_merge(input.a, input.b, p, model);
    point.speedup = base.time_ns / point.sim.time_ns;
    curve.points.push_back(point);
  }
  return curve;
}

SpeedupCurve sort_speedup_curve(std::size_t elements,
                                const std::vector<unsigned>& threads,
                                const MachineModel& model,
                                std::uint64_t seed) {
  MP_CHECK(!threads.empty());
  const std::vector<std::int32_t> values =
      make_unsorted_values(elements, seed);

  SpeedupCurve curve;
  curve.elements = elements;
  const SimResult base = simulate_merge_sort(values, 1, model);
  for (unsigned p : threads) {
    CurvePoint point;
    point.threads = p;
    point.sim = simulate_merge_sort(values, p, model);
    point.speedup = base.time_ns / point.sim.time_ns;
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace mp::pram
