#pragma once
/// \file speedup.hpp
/// Speedup-curve computation for the Figure 5 reproduction (experiment E1)
/// and the sort-speedup companion (E6).
///
/// Following Section VI of the paper, the baseline of every curve is the
/// same algorithm run with a single thread (not the plain sequential
/// merge — that comparison is experiment E2).

#include <cstdint>
#include <vector>

#include "pram/machine.hpp"
#include "pram/simulate.hpp"

namespace mp::pram {

struct CurvePoint {
  unsigned threads = 1;
  SimResult sim;
  double speedup = 1.0;
};

struct SpeedupCurve {
  std::size_t elements = 0;  ///< per input array (merge) or total (sort)
  std::vector<CurvePoint> points;
};

/// Modelled speedup of Algorithm 1 merging two uniform random arrays of
/// `per_array` elements each, for every thread count in `threads`.
SpeedupCurve merge_speedup_curve(std::size_t per_array,
                                 const std::vector<unsigned>& threads,
                                 const MachineModel& model,
                                 std::uint64_t seed);

/// Modelled speedup of the Section III parallel merge sort on `elements`
/// uniform random values.
SpeedupCurve sort_speedup_curve(std::size_t elements,
                                const std::vector<unsigned>& threads,
                                const MachineModel& model,
                                std::uint64_t seed);

}  // namespace mp::pram
