/// \file loadgen.cpp
/// Closed-loop driver: seeded request synthesis + built-in verification.

#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <type_traits>
#include <utility>

#include "obs/fastclock.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mp::serve {

namespace {

/// What a response must conserve: the element count and the wraparound
/// sum of the submitted payload (sorting and merging permute, never
/// rewrite).
struct Expect {
  std::size_t count = 0;
  std::uint64_t sum = 0;
};

struct SessionState {
  std::size_t outstanding = 0;
  std::uint64_t next_seq = 0;      ///< next sequence to submit
  std::uint64_t deliver_seq = 0;   ///< next sequence expected back (FIFO)
};

template <typename T>
void fill_payload(Xoshiro256& rng, std::size_t n, std::vector<T>& out,
                  Expect& ex) {
  out.resize(n);
  for (T& v : out) {
    v = static_cast<T>(rng());
    ex.sum += static_cast<std::uint64_t>(
        static_cast<std::int64_t>(v));  // sign-extended, wraparound
  }
  ex.count += n;
}

template <typename T>
bool check_payload(const std::vector<T>& keys, const Expect& ex) {
  if (keys.size() != ex.count) return false;
  if (!std::is_sorted(keys.begin(), keys.end())) return false;
  std::uint64_t sum = 0;
  for (const T& v : keys)
    sum += static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
  return sum == ex.sum;
}

std::size_t draw_size(Xoshiro256& rng, const LoadMix& mix) {
  const std::size_t lo = std::max<std::size_t>(1, mix.min_elements);
  const std::size_t hi = std::max(lo, mix.max_elements);
  double u = rng.uniform01();
  if (mix.size_skew > 0.0) u = std::pow(u, 1.0 + mix.size_skew);
  return lo + static_cast<std::size_t>(u * static_cast<double>(hi - lo));
}

/// Pure function of the RNG stream: size, kind, width, payload — in that
/// order, so a given (seed, request index) always synthesises the same
/// request whatever the server did in between.
Request make_request(Xoshiro256& rng, const LoadMix& mix,
                     std::uint64_t session, std::uint64_t seq, Expect& ex) {
  Request req;
  req.session = session;
  req.sequence = seq;
  const std::size_t n = draw_size(rng, mix);
  const bool merge = rng.uniform01() < mix.merge_fraction;
  const bool wide = rng.uniform01() < mix.width64_fraction;
  req.kind = merge ? RequestKind::kMerge : RequestKind::kSort;
  req.width = wide ? KeyWidth::k64 : KeyWidth::k32;
  const auto fill = [&](auto& keys, auto& other) {
    if (merge) {
      fill_payload(rng, n / 2, keys, ex);
      fill_payload(rng, n - n / 2, other, ex);
      std::sort(keys.begin(), keys.end());
      std::sort(other.begin(), other.end());
    } else {
      fill_payload(rng, n, keys, ex);
    }
  };
  if (wide)
    fill(req.keys64, req.other64);
  else
    fill(req.keys32, req.other32);
  return req;
}

}  // namespace

std::uint64_t LoadGenReport::latency_ns(double q) const {
  if (latencies_ns.empty()) return 0;
  std::vector<std::uint64_t> sorted = latencies_ns;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      clamped * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

double LoadGenReport::throughput_rps() const {
  return wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
}

double LoadGenReport::throughput_elems_s() const {
  return wall_s > 0.0 ? static_cast<double>(elements) / wall_s : 0.0;
}

LoadGenReport run_closed_loop(Server& server, const LoadGenConfig& cfg) {
  MP_CHECK(cfg.sessions >= 1);
  MP_CHECK(cfg.window >= 1);
  const bool manual = server.config().manual_pump;

  LoadGenReport rep;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<SessionState> sess(cfg.sessions);
  std::map<std::pair<std::uint64_t, std::uint64_t>, Expect> expect;
  std::size_t outstanding_total = 0;
  bool ordering_ok = true;
  bool payload_ok = true;

  const auto on_done = [&](Response&& r) {
    std::lock_guard lock(mu);
    SessionState& s = sess[static_cast<std::size_t>(r.session)];
    if (r.sequence != s.deliver_seq) ordering_ok = false;
    s.deliver_seq = r.sequence + 1;
    --s.outstanding;
    --outstanding_total;
    switch (r.outcome) {
      case Outcome::kOk:
        ++rep.completed;
        rep.latencies_ns.push_back(r.queue_wait_ns + r.service_ns);
        if (r.degraded) ++rep.degraded;
        if (r.batched) ++rep.batched;
        break;
      case Outcome::kCancelled: ++rep.cancelled; break;
      case Outcome::kFailed: ++rep.failed; break;
    }
    if (cfg.verify) {
      const auto it = expect.find({r.session, r.sequence});
      if (it == expect.end()) {
        payload_ok = false;
      } else {
        if (r.outcome == Outcome::kOk) {
          const bool good = r.keys64.empty()
                                ? check_payload(r.keys32, it->second)
                                : check_payload(r.keys64, it->second);
          if (!good) payload_ok = false;
        }
        expect.erase(it);
      }
    }
    cv.notify_all();
  };

  Xoshiro256 rng(cfg.seed);
  const std::uint64_t t0 = obs::FastClock::now_ns();
  const std::size_t cap_total = cfg.sessions * cfg.window;
  std::size_t next_session = 0;

  for (std::size_t submitted = 0; submitted < cfg.requests;) {
    // Pick the next session (round-robin) with window headroom.
    std::size_t target = static_cast<std::size_t>(-1);
    {
      std::unique_lock lock(mu);
      if (!manual)
        cv.wait(lock, [&] { return outstanding_total < cap_total; });
      for (std::size_t i = 0; i < cfg.sessions; ++i) {
        const std::size_t s = (next_session + i) % cfg.sessions;
        if (sess[s].outstanding < cfg.window) {
          target = s;
          break;
        }
      }
    }
    if (target == static_cast<std::size_t>(-1)) {
      // Manual mode with every window full: the caller is the server's
      // engine, so make progress by pumping one batch.
      server.pump(1);
      continue;
    }
    next_session = (target + 1) % cfg.sessions;

    Expect ex;
    std::uint64_t seq = 0;
    {
      std::lock_guard lock(mu);
      seq = sess[target].next_seq;
    }
    Request req = make_request(rng, cfg.mix, target, seq, ex);
    const std::size_t elems = req.elements();
    {
      std::lock_guard lock(mu);
      expect[{target, seq}] = ex;
      ++sess[target].outstanding;
      ++outstanding_total;
    }
    const SubmitResult res = server.submit(std::move(req), on_done);
    ++submitted;
    ++rep.submitted;
    if (res.accepted()) {
      ++rep.accepted;
      rep.elements += elems;
      std::lock_guard lock(mu);
      ++sess[target].next_seq;
    } else {
      ++rep.rejected;
      std::lock_guard lock(mu);
      --sess[target].outstanding;
      --outstanding_total;
      expect.erase({target, seq});
      // The sequence was never admitted; the session reuses it so FIFO
      // delivery stays gap-free.
    }
  }

  // Drain: every accepted request must be answered.
  if (manual) {
    for (;;) {
      {
        std::lock_guard lock(mu);
        if (outstanding_total == 0) break;
      }
      server.pump(1);
    }
  } else {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return outstanding_total == 0; });
  }

  rep.wall_s =
      static_cast<double>(obs::FastClock::now_ns() - t0) * 1e-9;
  {
    std::lock_guard lock(mu);
    rep.conservation_ok =
        rep.submitted == rep.accepted + rep.rejected &&
        rep.accepted == rep.completed + rep.cancelled + rep.failed &&
        (!cfg.verify || expect.empty());
    rep.ordering_ok = ordering_ok;
    rep.payload_ok = !cfg.verify || payload_ok;
  }
  return rep;
}

}  // namespace mp::serve
