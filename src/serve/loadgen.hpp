#pragma once
/// \file loadgen.hpp
/// Deterministic closed-loop load generator for the serving layer.
///
/// Closed-loop means every simulated session keeps a bounded window of
/// requests in flight and submits the next one only when a response comes
/// back — the arrival process adapts to the server, which is how real
/// request-per-connection clients behave and what makes throughput /
/// tail-latency numbers comparable across configurations (open-loop
/// arrival is available in bench_serve by raising the window far above
/// the queue capacity).
///
/// Determinism: the generator is seeded (Xoshiro256) and every payload,
/// size and kind decision is a pure function of (seed, request index).
/// Driving a manual_pump server makes the whole run single-threaded and
/// exactly replayable — the mode the deterministic serving test and the
/// replay property sweeps use. Driving a dispatcher-threaded server keeps
/// the same submission sequence; only timing varies.
///
/// Verification is built in rather than bolted on: the generator records
/// an expectation (element count + wraparound sum) per request before
/// submitting and checks every response against it (sorted, conserved
/// payload), asserts per-session FIFO delivery, and closes the
/// conservation law submitted == accepted + rejected,
/// accepted == completed + cancelled + failed.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/serve.hpp"

namespace mp::serve {

/// The request-size / request-kind mix.
struct LoadMix {
  std::size_t min_elements = std::size_t{4} << 10;
  std::size_t max_elements = std::size_t{64} << 10;
  /// 0 = uniform sizes; > 0 biases toward small requests (u^(1+skew)
  /// scaling), the regime where cross-request batching pays.
  double size_skew = 1.0;
  double merge_fraction = 0.0;    ///< probability a request is a kMerge
  double width64_fraction = 0.0;  ///< probability of 64-bit keys
};

struct LoadGenConfig {
  std::uint64_t seed = 1;
  std::size_t sessions = 4;
  std::size_t requests = 1024;  ///< total submissions across all sessions
  std::size_t window = 1;       ///< per-session in-flight cap
  LoadMix mix;
  bool verify = true;  ///< check payload conservation per response
};

/// Everything a run produced. latencies_ns holds one entry per completed
/// response (queue wait + service), unsorted.
struct LoadGenReport {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;  ///< responses flagged degraded
  std::uint64_t batched = 0;   ///< responses served from a coalesced batch
  std::uint64_t elements = 0;  ///< payload elements across submissions
  double wall_s = 0.0;
  std::vector<std::uint64_t> latencies_ns;
  bool conservation_ok = false;
  bool ordering_ok = false;
  bool payload_ok = false;

  bool ok() const { return conservation_ok && ordering_ok && payload_ok; }
  /// Exact quantile over latencies_ns (q in [0,1]); 0 when empty.
  std::uint64_t latency_ns(double q) const;
  double throughput_rps() const;       ///< completed responses per second
  double throughput_elems_s() const;   ///< payload elements per second
};

/// Runs the closed loop against `server` until cfg.requests have been
/// submitted and every accepted one has been answered. Works with both
/// manual_pump servers (deterministic, this thread pumps) and
/// dispatcher-threaded servers (waits on completions).
LoadGenReport run_closed_loop(Server& server, const LoadGenConfig& cfg);

}  // namespace mp::serve
