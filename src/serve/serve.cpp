/// \file serve.cpp
/// Server implementation: admission, batch assembly, execution, delivery.

#include "serve/serve.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <iterator>
#include <mutex>
#include <thread>
#include <utility>

#include "core/merge_sort.hpp"
#include "core/stream_merger.hpp"
#include "fault/fault.hpp"
#include "obs/fastclock.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/percentiles.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mp::serve {

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kCancelled: return "cancelled";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kShutdown: return "shutdown";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kBackpressure: return "backpressure";
    case RejectReason::kOversized: return "oversized";
    case RejectReason::kMalformed: return "malformed";
  }
  return "?";
}

namespace {

/// An accepted request waiting in (or popped from) the queue.
struct Pending {
  Request req;
  Server::Completion done;
  std::uint64_t id = 0;
  std::uint64_t enq_ns = 0;
  std::uint64_t streamed = 0;  ///< filled by the merge executor
};

/// A unit of execution: either one solo request or a coalesced run of
/// small same-width sorts.
struct Batch {
  std::vector<Pending> reqs;
  bool coalesced = false;
  std::uint64_t index = 0;
};

// Width-monomorphic accessors into a Request's payload lanes, so the
// execution paths can be written once over T in {int32_t, int64_t}.
template <typename T>
std::vector<T>& keys_of(Request& req);
template <>
std::vector<std::int32_t>& keys_of<std::int32_t>(Request& req) {
  return req.keys32;
}
template <>
std::vector<std::int64_t>& keys_of<std::int64_t>(Request& req) {
  return req.keys64;
}

template <typename T>
std::vector<T>& other_of(Request& req);
template <>
std::vector<std::int32_t>& other_of<std::int32_t>(Request& req) {
  return req.other32;
}
template <>
std::vector<std::int64_t>& other_of<std::int64_t>(Request& req) {
  return req.other64;
}

template <typename T>
std::function<void(std::span<const T>)>& sink_of(Request& req);
template <>
std::function<void(std::span<const std::int32_t>)>& sink_of<std::int32_t>(
    Request& req) {
  return req.sink32;
}
template <>
std::function<void(std::span<const std::int64_t>)>& sink_of<std::int64_t>(
    Request& req) {
  return req.sink64;
}

std::size_t high_watermark(const ServerConfig& cfg) {
  if (cfg.high_watermark != 0) return cfg.high_watermark;
  return std::max<std::size_t>(1, cfg.queue_capacity * 3 / 4);
}

std::size_t low_watermark(const ServerConfig& cfg) {
  const std::size_t hi = high_watermark(cfg);
  const std::size_t lo =
      cfg.low_watermark != 0 ? cfg.low_watermark : cfg.queue_capacity / 4;
  // Hysteresis needs lo < hi to mean anything; clamp misconfiguration.
  return hi > 0 ? std::min(lo, hi - 1) : 0;
}

/// Admission-time structural validation (no lock needed; the request is
/// still caller-owned). Merge inputs are checked for sortedness here so a
/// malformed request is refused with a typed reason instead of tripping
/// StreamMerger's MP_ASSERT deep inside a batch.
RejectReason validate(const Request& req, const ServerConfig& cfg) {
  if (req.elements() > cfg.max_request_elements)
    return RejectReason::kOversized;
  const bool w32 = req.width == KeyWidth::k32;
  if (w32 && (!req.keys64.empty() || !req.other64.empty()))
    return RejectReason::kMalformed;
  if (!w32 && (!req.keys32.empty() || !req.other32.empty()))
    return RejectReason::kMalformed;
  if (req.kind == RequestKind::kSort) {
    if (!req.other32.empty() || !req.other64.empty())
      return RejectReason::kMalformed;
  } else {
    if (w32) {
      if (!std::is_sorted(req.keys32.begin(), req.keys32.end()) ||
          !std::is_sorted(req.other32.begin(), req.other32.end()))
        return RejectReason::kMalformed;
    } else {
      if (!std::is_sorted(req.keys64.begin(), req.keys64.end()) ||
          !std::is_sorted(req.other64.begin(), req.other64.end()))
        return RejectReason::kMalformed;
    }
  }
  return RejectReason::kNone;
}

}  // namespace

struct Server::Impl {
  ServerConfig cfg;
  mutable std::mutex mu;
  std::condition_variable cv_work;
  std::deque<Pending> queue;
  bool accepting = true;
  bool stop = false;
  bool drain_on_stop = true;
  bool shedding = false;
  std::uint64_t next_id = 1;
  std::uint64_t next_batch = 0;
  ServerStats stats;
  std::mutex shutdown_mu;  ///< serialises concurrent shutdown() callers
  std::thread dispatcher;

  // ---- batch assembly (mu held) --------------------------------------

  /// True when a small sort is eligible to share a segmented batch.
  bool coalescable(const Pending& p) const {
    return p.req.kind == RequestKind::kSort &&
           p.req.elements() < cfg.solo_threshold;
  }

  /// Pops the front request plus any coalescable same-width followers.
  /// Returns false on an empty queue.
  bool assemble_locked(Batch& out) {
    if (queue.empty()) return false;
    out.index = next_batch++;
    out.reqs.clear();
    out.reqs.push_back(std::move(queue.front()));
    queue.pop_front();
    // Copies, not references: growing out.reqs reallocates.
    const KeyWidth width = out.reqs.front().req.width;
    std::size_t total = out.reqs.front().req.elements();
    out.coalesced = cfg.batching && coalescable(out.reqs.front());
    if (out.coalesced) {
      const std::size_t max_reqs = std::max<std::size_t>(
          std::size_t{1}, cfg.max_batch_requests);
      while (!queue.empty() && out.reqs.size() < max_reqs) {
        const Pending& next = queue.front();
        if (!coalescable(next)) break;
        if (next.req.width != width) break;
        if (total + next.req.elements() > cfg.max_batch_elements) break;
        total += next.req.elements();
        out.reqs.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    }
    // Exiting shedding happens only here — the drain side of the
    // hysteresis loop — never in submit().
    if (shedding && queue.size() <= low_watermark(cfg)) shedding = false;
    return true;
  }

  // ---- execution (mu NOT held) ---------------------------------------

  /// One pool job sorts every segment: lane k owns a contiguous run of
  /// whole request payloads, balanced by element count. Segments are
  /// disjoint and the sorts are in-place, so the Theorem 14 retry
  /// argument applies to the batch exactly as it does to merge slices.
  template <typename T>
  bool run_coalesced(Batch& batch) {
    std::vector<std::span<T>> segs;
    segs.reserve(batch.reqs.size());
    std::vector<std::size_t> prefix;
    prefix.reserve(batch.reqs.size() + 1);
    prefix.push_back(0);
    for (Pending& p : batch.reqs) {
      segs.emplace_back(keys_of<T>(p.req));
      prefix.push_back(prefix.back() + segs.back().size());
    }
    const std::size_t total = prefix.back();
    const unsigned want = cfg.exec.resolve_threads();
    const unsigned lanes = static_cast<unsigned>(std::max<std::size_t>(
        1, std::min<std::size_t>(want, segs.size())));

    // Contiguous cut points over the segment list, balanced by element
    // prefix: lane k sorts segs[cut[k], cut[k+1]).
    std::vector<std::size_t> cut(lanes + 1, segs.size());
    cut[0] = 0;
    for (unsigned k = 1; k < lanes; ++k) {
      const std::size_t target = k * total / lanes;
      const auto it =
          std::lower_bound(prefix.begin(), prefix.end(), target);
      cut[k] = std::clamp<std::size_t>(
          static_cast<std::size_t>(it - prefix.begin()), cut[k - 1],
          segs.size());
    }

    const RecoveryReport rep = run_lanes_with_recovery(
        cfg.exec.resolve_pool(), lanes,
        [&](unsigned lane) {
          for (std::size_t s = cut[lane]; s < cut[lane + 1]; ++s)
            sequential_merge_sort(segs[s]);
        },
        cfg.recovery);
    return rep.degraded();
  }

  /// Streams A and B through a StreamMerger in stream_chunk slices,
  /// emitting each determined prefix as it appears. A lane fault inside a
  /// large parallel pull degrades *this merger* to sequential pulls and
  /// retries the same pull (pull() advances no state on failure); the
  /// batch still answers.
  template <typename T>
  bool run_merge(Pending& p) {
    std::vector<T>& a = keys_of<T>(p.req);
    std::vector<T>& b = other_of<T>(p.req);
    auto& sink = sink_of<T>(p.req);
    const bool streaming = static_cast<bool>(sink);
    StreamMerger<T> sm({}, cfg.exec);
    bool degraded = false;
    std::vector<T> out;
    if (!streaming) out.reserve(a.size() + b.size());
    std::vector<T> pulled;
    const std::size_t chunk = std::max<std::size_t>(1, cfg.stream_chunk);

    auto pull_available = [&] {
      const std::size_t avail = sm.available();
      if (avail == 0) return;
      pulled.resize(avail);
      for (;;) {
        try {
          sm.pull(std::span<T>(pulled));
          break;
        } catch (const fault::LaneFault&) {
          // The pool faulted mid-pull; the merger's buffers are intact.
          // Finish this request sequentially, off the injection path.
          if (!degraded) {
            obs::Span::instant("serve.merge_fallback", "id", p.id);
            obs::flight_report_degraded("serve.merge_fallback");
          }
          degraded = true;
          sm.set_executor(Executor{&cfg.exec.resolve_pool(), 1});
        }
      }
      if (streaming) {
        sink(std::span<const T>(pulled));
        p.streamed += pulled.size();
      } else {
        out.insert(out.end(), pulled.begin(), pulled.end());
      }
    };

    if (a.empty()) sm.close_a();
    if (b.empty()) sm.close_b();
    std::size_t ia = 0, ib = 0;
    while (ia < a.size() || ib < b.size()) {
      if (ia < a.size()) {
        const std::size_t n = std::min(chunk, a.size() - ia);
        sm.push_a(std::span<const T>(a.data() + ia, n));
        ia += n;
        if (ia == a.size()) sm.close_a();
      }
      if (ib < b.size()) {
        const std::size_t n = std::min(chunk, b.size() - ib);
        sm.push_b(std::span<const T>(b.data() + ib, n));
        ib += n;
        if (ib == b.size()) sm.close_b();
      }
      pull_available();
    }
    pull_available();  // both streams closed: drains the remainder
    MP_ASSERT(sm.finished());
    if (streaming) {
      a.clear();
      b.clear();
    } else {
      a = std::move(out);  // result rides back in the keys lane
      b.clear();
    }
    return degraded;
  }

  template <typename T>
  bool run_solo_sort(Pending& p) {
    std::vector<T>& data = keys_of<T>(p.req);
    const RecoveryReport rep = resilient_parallel_merge_sort(
        std::span<T>(data), cfg.exec, std::less<>{}, cfg.recovery);
    return rep.degraded();
  }

  bool run_solo(Pending& p) {
    const bool w32 = p.req.width == KeyWidth::k32;
    if (p.req.kind == RequestKind::kSort)
      return w32 ? run_solo_sort<std::int32_t>(p)
                 : run_solo_sort<std::int64_t>(p);
    return w32 ? run_merge<std::int32_t>(p) : run_merge<std::int64_t>(p);
  }

  /// Executes a batch and delivers every completion exactly once —
  /// including when a genuine exception escapes (Outcome::kFailed), so
  /// the conservation law survives bugs in comparators and sinks alike.
  void execute_batch(Batch& batch) {
    auto& reg = obs::MetricsRegistry::instance();
    const std::uint64_t start_ns = obs::FastClock::now_ns();
    bool degraded = false;
    bool failed = false;
    std::string error;
    {
      obs::Span span("serve.batch", "requests", batch.reqs.size());
      try {
        if (batch.coalesced) {
          degraded = batch.reqs.front().req.width == KeyWidth::k32
                         ? run_coalesced<std::int32_t>(batch)
                         : run_coalesced<std::int64_t>(batch);
        } else {
          degraded = run_solo(batch.reqs.front());
        }
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      } catch (...) {
        failed = true;
        error = "unknown exception";
      }
    }
    const std::uint64_t end_ns = obs::FastClock::now_ns();

    const auto n = static_cast<std::uint64_t>(batch.reqs.size());
    {
      std::lock_guard lock(mu);
      ++stats.batches;
      if (cfg.record_batch_sizes)
        stats.batch_sizes.push_back(batch.reqs.size());
      if (batch.coalesced)
        stats.batched_requests += n;
      else
        stats.solo_requests += n;
      if (degraded) ++stats.degraded_batches;
      if (failed)
        stats.failed += n;
      else
        stats.completed += n;
    }
    reg.counter("serve.batches").add();
    reg.counter(batch.coalesced ? "serve.batched_requests"
                                : "serve.solo_requests")
        .add(n);
    if (degraded) reg.counter("serve.degraded_batches").add();
    reg.counter(failed ? "serve.failed" : "serve.completed").add(n);
    reg.gauge("serve.queue_depth")
        .set(static_cast<std::int64_t>(queue_depth_now()));

    for (Pending& p : batch.reqs) {
      Response r;
      r.id = p.id;
      r.session = p.req.session;
      r.sequence = p.req.sequence;
      r.outcome = failed ? Outcome::kFailed : Outcome::kOk;
      r.batched = batch.coalesced;
      r.degraded = degraded;
      r.batch = batch.index;
      r.queue_wait_ns = start_ns > p.enq_ns ? start_ns - p.enq_ns : 0;
      r.service_ns = end_ns - start_ns;
      r.streamed = p.streamed;
      r.error = error;
      if (!failed) {
        r.keys32 = std::move(p.req.keys32);
        r.keys64 = std::move(p.req.keys64);
      }
      obs::record_span_duration("serve.queue_wait", r.queue_wait_ns);
      obs::record_span_duration("serve.service", r.service_ns);
      obs::record_span_duration("serve.request",
                                r.service_ns + r.queue_wait_ns);
      p.done(std::move(r));
    }
  }

  std::size_t queue_depth_now() const {
    std::lock_guard lock(mu);
    return queue.size();
  }

  /// Answers a request that never executed (cancel / dropped by a
  /// non-draining shutdown).
  static void complete_cancelled(Pending& p) {
    Response r;
    r.id = p.id;
    r.session = p.req.session;
    r.sequence = p.req.sequence;
    r.outcome = Outcome::kCancelled;
    r.queue_wait_ns = obs::FastClock::now_ns() - p.enq_ns;
    p.done(std::move(r));
  }

  void dispatcher_loop() {
    for (;;) {
      Batch batch;
      std::vector<Pending> dropped;
      bool exiting = false;
      {
        std::unique_lock lock(mu);
        cv_work.wait(lock, [&] { return stop || !queue.empty(); });
        if (stop && !drain_on_stop) {
          // Non-draining shutdown: answer the queue with kCancelled.
          dropped.assign(std::make_move_iterator(queue.begin()),
                         std::make_move_iterator(queue.end()));
          queue.clear();
          stats.cancelled += dropped.size();
          shedding = false;
          exiting = true;
        } else if (queue.empty()) {
          exiting = true;  // stop && drain && drained
        } else {
          assemble_locked(batch);
        }
      }
      if (!dropped.empty()) {
        obs::MetricsRegistry::instance()
            .counter("serve.cancelled")
            .add(dropped.size());
        for (Pending& p : dropped) complete_cancelled(p);
      }
      if (exiting) break;
      execute_batch(batch);
      // The single maintenance point of the serving process: between
      // batches, with no in-flight timestamp users on this thread, heal
      // any TSC drift accumulated since the last calibration.
      obs::FastClock::maybe_recalibrate();
    }
  }
};

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>()) {
  MP_CHECK(cfg.queue_capacity >= 1);
  impl_->cfg = std::move(cfg);
  if (!impl_->cfg.manual_pump)
    impl_->dispatcher = std::thread([this] { impl_->dispatcher_loop(); });
}

Server::~Server() { shutdown(/*drain=*/true); }

SubmitResult Server::submit(Request req, Completion done) {
  MP_CHECK(done != nullptr);
  Impl& im = *impl_;
  const RejectReason bad = validate(req, im.cfg);
  RejectReason reason = RejectReason::kNone;
  std::uint64_t id = 0;
  std::size_t depth = 0;
  bool shed_edge = false;
  {
    std::lock_guard lock(im.mu);
    ++im.stats.submitted;
    if (!im.accepting)
      reason = RejectReason::kShutdown;
    else if (bad != RejectReason::kNone)
      reason = bad;
    else if (im.queue.size() >= im.cfg.queue_capacity)
      reason = RejectReason::kQueueFull;
    else if (im.shedding)
      reason = RejectReason::kBackpressure;
    if (reason != RejectReason::kNone) {
      ++im.stats.rejected;
      switch (reason) {
        case RejectReason::kShutdown: ++im.stats.rejected_shutdown; break;
        case RejectReason::kQueueFull: ++im.stats.rejected_queue_full; break;
        case RejectReason::kBackpressure:
          ++im.stats.rejected_backpressure;
          break;
        case RejectReason::kOversized: ++im.stats.rejected_oversized; break;
        case RejectReason::kMalformed: ++im.stats.rejected_malformed; break;
        case RejectReason::kNone: break;
      }
    } else {
      id = im.next_id++;
      Pending p;
      p.req = std::move(req);
      p.done = std::move(done);
      p.id = id;
      p.enq_ns = obs::FastClock::now_ns();
      im.queue.push_back(std::move(p));
      ++im.stats.accepted;
      depth = im.queue.size();
      // Entering shedding happens only here — the fill side of the
      // hysteresis loop.
      if (!im.shedding && depth >= high_watermark(im.cfg)) {
        im.shedding = true;
        ++im.stats.shed_transitions;
        shed_edge = true;
      }
    }
  }
  auto& reg = obs::MetricsRegistry::instance();
  if (reason != RejectReason::kNone) {
    obs::Span::instant("serve.reject", "reason",
                       static_cast<std::uint64_t>(reason));
    reg.counter("serve.rejected").add();
    return SubmitResult{0, reason};
  }
  if (shed_edge) {
    obs::Span::instant("serve.shed", "depth",
                       static_cast<std::uint64_t>(depth));
    reg.counter("serve.shed_transitions").add();
  }
  reg.counter("serve.accepted").add();
  reg.gauge("serve.queue_depth").set(static_cast<std::int64_t>(depth));
  im.cv_work.notify_one();
  return SubmitResult{id, RejectReason::kNone};
}

bool Server::cancel(std::uint64_t id) {
  Impl& im = *impl_;
  Pending victim;
  bool found = false;
  {
    std::lock_guard lock(im.mu);
    for (auto it = im.queue.begin(); it != im.queue.end(); ++it) {
      if (it->id != id) continue;
      victim = std::move(*it);
      im.queue.erase(it);
      found = true;
      ++im.stats.cancelled;
      if (im.shedding && im.queue.size() <= low_watermark(im.cfg))
        im.shedding = false;
      break;
    }
  }
  if (!found) return false;
  obs::MetricsRegistry::instance().counter("serve.cancelled").add();
  Impl::complete_cancelled(victim);
  return true;
}

std::size_t Server::pump(std::size_t max_batches) {
  Impl& im = *impl_;
  MP_CHECK(im.cfg.manual_pump);
  std::size_t ran = 0;
  while (ran < max_batches) {
    Batch batch;
    {
      std::lock_guard lock(im.mu);
      if (!im.assemble_locked(batch)) break;
    }
    im.execute_batch(batch);
    ++ran;
    obs::FastClock::maybe_recalibrate();
  }
  return ran;
}

void Server::shutdown(bool drain) {
  Impl& im = *impl_;
  std::lock_guard shut(im.shutdown_mu);
  {
    std::lock_guard lock(im.mu);
    im.accepting = false;
    im.stop = true;
    im.drain_on_stop = drain;
  }
  im.cv_work.notify_all();
  if (im.dispatcher.joinable()) im.dispatcher.join();
  if (im.cfg.manual_pump) {
    if (drain) {
      pump();
    } else {
      std::vector<Pending> dropped;
      {
        std::lock_guard lock(im.mu);
        dropped.assign(std::make_move_iterator(im.queue.begin()),
                       std::make_move_iterator(im.queue.end()));
        im.queue.clear();
        im.stats.cancelled += dropped.size();
        im.shedding = false;
      }
      if (!dropped.empty())
        obs::MetricsRegistry::instance()
            .counter("serve.cancelled")
            .add(dropped.size());
      for (Pending& p : dropped) Impl::complete_cancelled(p);
    }
  }
}

ServerStats Server::stats() const {
  std::lock_guard lock(impl_->mu);
  return impl_->stats;
}

std::size_t Server::queue_depth() const {
  std::lock_guard lock(impl_->mu);
  return impl_->queue.size();
}

bool Server::shedding() const {
  std::lock_guard lock(impl_->mu);
  return impl_->shedding;
}

const ServerConfig& Server::config() const { return impl_->cfg; }

}  // namespace mp::serve
