#pragma once
/// \file serve.hpp
/// Merge-as-a-service: an async batching sort/merge server.
///
/// The paper's thesis is that Merge Path makes parallel merging cheap
/// enough to be a drop-in primitive; this layer tests that claim at
/// service scale. The expensive part of serving many *small* requests is
/// not the merging — it is the fork-join control plane: PR 2 measured
/// ~44 ns of barrier cost per pool job plus ~50-60 ns of checkout, and a
/// 4 Ki-element sort simply cannot amortise a whole job by itself under
/// heavy traffic. The server therefore practices what the Gamma-style
/// merge-forest literature preaches for k-way hardware: *cross-request
/// batching*. Many small sort requests are coalesced into one segmented
/// job — each pool lane sequentially sorts a contiguous run of whole
/// request payloads — so one barrier is paid per batch instead of per
/// request, while large requests keep their individual parallel treatment
/// (a 1 Mi-element sort amortises the barrier fine on its own).
///
/// Architecture (one dispatcher, shared pool):
///
///   submit() ──admission──> bounded FIFO queue ──> dispatcher thread
///                               │                      │ assemble batch
///   typed rejection <───────────┘                      │ execute on
///   (kQueueFull, kBackpressure,                        │ ThreadPool via
///    kOversized, kMalformed,                           │ resilient_* /
///    kShutdown)                                        │ run_lanes_with_
///                                                      │ recovery
///   completion callback <──────────────────────────────┘
///
/// Admission control and backpressure: the queue is bounded
/// (ServerConfig::queue_capacity, hard kQueueFull at the rim) and sheds
/// load with hysteresis before that ever happens — crossing the high
/// watermark enters shedding (new submits get kBackpressure) and only
/// draining below the low watermark exits it, so a server hovering at the
/// boundary does not flap between accept and reject on every request.
///
/// Ordering: the queue is strictly FIFO and batches are executed in
/// assembly order by a single dispatcher, so responses for any one
/// session (a single submitter) are delivered in submission order —
/// the property the load generator asserts.
///
/// Fault story: batched segments are disjoint per request, so the
/// Theorem 14 argument applies verbatim — an injected lane fault
/// mid-batch is retried/hedged by core/recovery.hpp and at worst degrades
/// *that batch* to the sequential caller fallback; the server never drops
/// a request and never dies. Merge requests stream through StreamMerger;
/// a lane fault in a large parallel pull degrades that one merger to
/// sequential pulls (StreamMerger::set_executor) and retries. Degraded
/// batches trip the flight recorder exactly like every other permanent
/// degrade in the tree (docs/OBSERVABILITY.md).
///
/// Observability: every batch runs under a "serve.batch" span; per
/// request the queue-wait / service-time split is folded into the span
/// percentile surface ("serve.request", "serve.queue_wait",
/// "serve.service") so --metrics-json reports serving p50/p95/p99
/// directly; admission decisions emit "serve.reject"/"serve.shed"
/// instants and serve.* counters. The dispatcher also calls
/// obs::FastClock::maybe_recalibrate() between batches — the single
/// maintenance point that keeps a long-running server's TSC timeline
/// anchored to steady_clock.
///
/// Threading contract: submit()/cancel() are safe from any thread.
/// Execution happens on the dispatcher thread (or the caller of pump()
/// when ServerConfig::manual_pump is set — the deterministic mode tests
/// and the simulated-clock load generator use), which is the pool's
/// single fork-join caller. Completions are invoked on that thread,
/// outside the queue lock; they must not call back into submit() of the
/// same server from a completion if manual_pump is false and the queue is
/// full (it would be rejected, not deadlock — the lock is not held).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/recovery.hpp"
#include "util/threading.hpp"

namespace mp::serve {

/// What a request asks for: sort my payload, or merge my two sorted runs.
enum class RequestKind : std::uint8_t { kSort, kMerge };

/// Key width of the payload. Mixed-width requests never share a batch
/// (the segmented job is monomorphic over the key type).
enum class KeyWidth : std::uint8_t { k32, k64 };

/// How an accepted request ended.
enum class Outcome : std::uint8_t {
  kOk,         ///< payload processed, result delivered
  kCancelled,  ///< cancelled (or dropped by a non-draining shutdown)
  kFailed,     ///< a genuine exception escaped the execution path
};

/// Why a submit() was refused. Every reason is typed so callers can
/// distinguish "retry later" (kBackpressure, kQueueFull) from "fix your
/// request" (kOversized, kMalformed) from "give up" (kShutdown).
enum class RejectReason : std::uint8_t {
  kNone,          ///< not rejected (SubmitResult::accepted())
  kShutdown,      ///< server no longer accepts work
  kQueueFull,     ///< hard capacity rim reached
  kBackpressure,  ///< shedding between the watermarks (hysteresis)
  kOversized,     ///< payload exceeds max_request_elements
  kMalformed,     ///< merge inputs unsorted, or payload in the wrong lane
};

const char* to_string(Outcome outcome);
const char* to_string(RejectReason reason);

/// One sort/merge request. Exactly one key-width lane is used (keys32/
/// other32 for k32, keys64/other64 for k64); kSort uses only keys*,
/// kMerge treats keys* as sorted stream A and other* as sorted stream B.
/// session/sequence are caller-chosen labels echoed into the Response —
/// the load generator uses them to assert per-session FIFO delivery.
/// When a sink is set, merge results are streamed through it in
/// determined-prefix chunks (ServerConfig::stream_chunk) instead of being
/// returned in the Response payload.
struct Request {
  RequestKind kind = RequestKind::kSort;
  KeyWidth width = KeyWidth::k32;
  std::vector<std::int32_t> keys32;
  std::vector<std::int64_t> keys64;
  std::vector<std::int32_t> other32;
  std::vector<std::int64_t> other64;
  std::uint64_t session = 0;
  std::uint64_t sequence = 0;
  std::function<void(std::span<const std::int32_t>)> sink32;
  std::function<void(std::span<const std::int64_t>)> sink64;

  /// Total payload elements (both streams for kMerge).
  std::size_t elements() const {
    return keys32.size() + keys64.size() + other32.size() + other64.size();
  }
};

/// Delivered to the completion callback exactly once per accepted
/// request — also for cancellations and failures, so
/// accepted == responses always holds (the conservation law the load
/// generator asserts).
struct Response {
  std::uint64_t id = 0;        ///< the id submit() returned
  std::uint64_t session = 0;   ///< echoed from the request
  std::uint64_t sequence = 0;  ///< echoed from the request
  Outcome outcome = Outcome::kOk;
  bool batched = false;   ///< executed inside a coalesced segmented job
  bool degraded = false;  ///< recovery had to fall back to sequential
  std::uint64_t batch = 0;          ///< batch ordinal (execution order)
  std::uint64_t queue_wait_ns = 0;  ///< admission -> batch start
  std::uint64_t service_ns = 0;     ///< batch start -> completion
  std::vector<std::int32_t> keys32;  ///< result payload (k32, no sink)
  std::vector<std::int64_t> keys64;  ///< result payload (k64, no sink)
  std::uint64_t streamed = 0;        ///< elements delivered via sink
  std::string error;                 ///< kFailed: what() of the exception

  bool ok() const { return outcome == Outcome::kOk; }
};

/// What submit() hands back immediately.
struct SubmitResult {
  std::uint64_t id = 0;  ///< nonzero iff accepted
  RejectReason rejected = RejectReason::kNone;
  bool accepted() const { return rejected == RejectReason::kNone; }
};

/// Serving knobs. Watermarks of 0 derive defaults from the capacity
/// (high = 3/4, low = 1/4). solo_threshold is the batching cut: requests
/// at or above it amortise a pool job on their own and run solo through
/// resilient_parallel_merge_sort; smaller sorts coalesce.
struct ServerConfig {
  std::size_t queue_capacity = 1024;
  std::size_t high_watermark = 0;  ///< 0: 3/4 of capacity
  std::size_t low_watermark = 0;   ///< 0: 1/4 of capacity
  std::size_t max_batch_requests = 64;
  std::size_t max_batch_elements = std::size_t{1} << 20;
  std::size_t solo_threshold = std::size_t{1} << 16;
  std::size_t max_request_elements = std::size_t{1} << 26;
  std::size_t stream_chunk = std::size_t{1} << 14;
  bool batching = true;     ///< false: every request dispatched solo
  bool manual_pump = false; ///< no dispatcher thread; caller drives pump()
  bool record_batch_sizes = false;  ///< keep per-batch sizes in stats()
  Executor exec{};                  ///< pool + lane count for execution
  RecoveryConfig recovery{};        ///< retry/hedge budget per batch
};

/// Monotonic serving counters (a consistent snapshot under the queue
/// lock). submitted == accepted + rejected; accepted == completed +
/// cancelled + failed once the server has drained.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t rejected_oversized = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  ///< ran inside a segmented batch
  std::uint64_t solo_requests = 0;     ///< ran as their own pool job
  std::uint64_t degraded_batches = 0;
  std::uint64_t shed_transitions = 0;  ///< accept->shed edges
  std::vector<std::size_t> batch_sizes;  ///< only when record_batch_sizes
};

class Server {
 public:
  using Completion = std::function<void(Response&&)>;

  explicit Server(ServerConfig cfg = {});
  ~Server();  ///< shutdown(/*drain=*/true)

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission: validates, applies backpressure, enqueues. On acceptance
  /// the request is answered exactly once through `done` (from the
  /// dispatcher/pump thread). On rejection `done` is never invoked.
  SubmitResult submit(Request req, Completion done);

  /// Cancels a still-queued request: it completes immediately (on the
  /// calling thread) with Outcome::kCancelled. Returns false when the id
  /// is unknown or already executing/executed.
  bool cancel(std::uint64_t id);

  /// Manual-pump mode: assembles and executes up to max_batches batches
  /// on the calling thread; returns how many ran. MP_CHECKs that the
  /// server was built with manual_pump.
  std::size_t pump(std::size_t max_batches = static_cast<std::size_t>(-1));

  /// Stops admission. drain=true executes everything still queued;
  /// drain=false answers the queue with kCancelled. Idempotent; joins the
  /// dispatcher thread before returning.
  void shutdown(bool drain = true);

  ServerStats stats() const;
  std::size_t queue_depth() const;
  bool shedding() const;
  const ServerConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mp::serve
