#include "simt/gpu_merge.hpp"

#include <algorithm>

#include "core/merge_path.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mp::simt {
namespace {

constexpr std::uint64_t kElem = 4;

/// Virtual memory layout: the three arrays at widely separated, aligned
/// bases (alignment to the transaction size keeps the coalescing counts
/// clean and deterministic).
struct Layout {
  std::uint64_t a_base = 0;
  std::uint64_t b_base = 1ull << 32;
  std::uint64_t out_base = 2ull << 32;
};

/// Per-lane bounded merge cursor (global or shared window, caller maps
/// addresses).
struct LaneCursor {
  std::size_t i = 0, j = 0;  // window-relative
  std::size_t out = 0;       // absolute output element index
  std::size_t left = 0;
};

/// Runs the per-lane binary searches of one CTA warp-synchronously:
/// every probe round issues one warp access for the A-side probes and one
/// for the B-side probes. `addr_a`/`addr_b` map window-relative element
/// indices to byte addresses; `access` is CtaContext::warp_global_access
/// or warp_shared_access bound by the caller.
template <typename ValA, typename ValB, typename AddrA, typename AddrB,
          typename Access>
std::vector<std::size_t> warp_synchronous_search(
    CtaContext& cta, unsigned threads, std::size_t win_a, std::size_t win_b,
    const std::vector<std::size_t>& diags, ValA val_a, ValB val_b,
    AddrA addr_a, AddrB addr_b, Access access) {
  struct Lane {
    std::size_t lo = 0, hi = 0, diag = 0;
  };
  std::vector<Lane> lanes(threads);
  for (unsigned t = 0; t < threads; ++t) {
    lanes[t].diag = diags[t];
    lanes[t].lo = diags[t] > win_b ? diags[t] - win_b : 0;
    lanes[t].hi = std::min(diags[t], win_a);
  }
  const unsigned warp = cta.config().warp_size;
  std::vector<std::uint64_t> probes_a, probes_b;
  bool any = true;
  while (any) {
    any = false;
    for (unsigned w = 0; w < threads; w += warp) {
      probes_a.clear();
      probes_b.clear();
      for (unsigned t = w; t < std::min(threads, w + warp); ++t) {
        Lane& lane = lanes[t];
        if (lane.lo >= lane.hi) continue;
        const std::size_t mid = lane.lo + (lane.hi - lane.lo) / 2;
        const std::size_t bj = lane.diag - mid - 1;
        probes_a.push_back(addr_a(mid));
        probes_b.push_back(addr_b(bj));
        if (!(val_b(bj) < val_a(mid)))
          lane.lo = mid + 1;
        else
          lane.hi = mid;
        any = true;
      }
      if (!probes_a.empty()) {
        access(std::span<const std::uint64_t>(probes_a));
        access(std::span<const std::uint64_t>(probes_b));
      }
    }
    if (any) cta.step();
  }
  std::vector<std::size_t> result(threads);
  for (unsigned t = 0; t < threads; ++t) result[t] = lanes[t].lo;
  return result;
}

/// Runs the per-lane bounded merges of one CTA warp-synchronously, writing
/// real output values into `out_values` (absolute element indices).
/// Access patterns are reported through the supplied accessors.
template <typename ValA, typename ValB, typename AddrA, typename AddrB,
          typename AddrOut, typename AccessIn, typename AccessOut>
void warp_synchronous_merge(CtaContext& cta, unsigned threads,
                            std::vector<LaneCursor>& lanes,
                            std::size_t win_a, std::size_t win_b, ValA val_a,
                            ValB val_b, AddrA addr_a, AddrB addr_b,
                            AddrOut addr_out, AccessIn access_in,
                            AccessOut access_out,
                            std::vector<std::int32_t>& out_values,
                            std::size_t out_value_offset) {
  const unsigned warp = cta.config().warp_size;
  std::vector<std::uint64_t> reads_a, reads_b, writes;
  bool any = true;
  while (any) {
    any = false;
    for (unsigned w = 0; w < threads; w += warp) {
      reads_a.clear();
      reads_b.clear();
      writes.clear();
      for (unsigned t = w; t < std::min(threads, w + warp); ++t) {
        LaneCursor& lane = lanes[t];
        if (lane.left == 0) continue;
        const bool has_a = lane.i < win_a;
        const bool has_b = lane.j < win_b;
        MP_ASSERT(has_a || has_b);
        bool take_b;
        if (has_a && has_b) {
          reads_a.push_back(addr_a(lane.i));
          reads_b.push_back(addr_b(lane.j));
          take_b = val_b(lane.j) < val_a(lane.i);
        } else if (has_a) {
          reads_a.push_back(addr_a(lane.i));
          take_b = false;
        } else {
          reads_b.push_back(addr_b(lane.j));
          take_b = true;
        }
        const std::int32_t value = take_b ? val_b(lane.j) : val_a(lane.i);
        if (take_b)
          ++lane.j;
        else
          ++lane.i;
        out_values[lane.out - out_value_offset] = value;
        writes.push_back(addr_out(lane.out));
        ++lane.out;
        --lane.left;
        any = true;
      }
      if (!reads_a.empty())
        access_in(std::span<const std::uint64_t>(reads_a));
      if (!reads_b.empty())
        access_in(std::span<const std::uint64_t>(reads_b));
      if (!writes.empty())
        access_out(std::span<const std::uint64_t>(writes));
    }
    if (any) cta.step();
  }
}

/// Tile bounds: the grid-level partition (in real deployments a separate
/// tiny kernel; simulated as single-lane global probes charged to the CTA).
std::pair<PathPoint, PathPoint> tile_bounds(
    CtaContext& cta, const std::vector<std::int32_t>& a,
    const std::vector<std::int32_t>& b, std::size_t d0, std::size_t d1,
    const Layout& layout) {
  OpCounts probes;
  const PathPoint lo = path_point_on_diagonal(a.data(), a.size(), b.data(),
                                              b.size(), d0, std::less<>{},
                                              &probes);
  const PathPoint hi = path_point_on_diagonal(a.data(), a.size(), b.data(),
                                              b.size(), d1, std::less<>{},
                                              &probes);
  // Each probe touched one element of each array, one lane wide.
  for (std::uint64_t p = 0; p < probes.search_steps; ++p) {
    const std::uint64_t addr_a = layout.a_base;  // representative lines
    const std::uint64_t addr_b = layout.b_base;
    cta.warp_global_access(std::span<const std::uint64_t>(&addr_a, 1));
    cta.warp_global_access(std::span<const std::uint64_t>(&addr_b, 1));
    cta.step();
  }
  return {lo, hi};
}

}  // namespace

GpuMergeResult gpu_merge_direct(const std::vector<std::int32_t>& a,
                                const std::vector<std::int32_t>& b,
                                const GpuMergeConfig& config) {
  MP_CHECK(config.simt.valid() && config.items_per_thread >= 1);
  const Layout layout;
  const std::size_t m = a.size(), n = b.size(), total = m + n;
  const std::size_t tile_elems =
      std::size_t{config.simt.cta_threads} * config.items_per_thread;
  GpuMergeResult result;
  result.output.resize(total);
  if (total == 0) return result;
  obs::Span kernel_span("simt.direct", "n", total);

  const std::size_t tiles = (total + tile_elems - 1) / tile_elems;
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    obs::Span tile_span("simt.tile", "tile", tile);
    CtaContext cta(config.simt);
    const std::size_t d0 = tile * tile_elems;
    const std::size_t d1 = std::min(total, d0 + tile_elems);
    const auto [lo, hi] = tile_bounds(cta, a, b, d0, d1, layout);
    const std::size_t win_a = hi.i - lo.i;
    const std::size_t win_b = hi.j - lo.j;

    auto val_a = [&](std::size_t i) { return a[lo.i + i]; };
    auto val_b = [&](std::size_t j) { return b[lo.j + j]; };
    auto addr_a = [&](std::size_t i) {
      return layout.a_base + (lo.i + i) * kElem;
    };
    auto addr_b = [&](std::size_t j) {
      return layout.b_base + (lo.j + j) * kElem;
    };
    auto addr_out = [&](std::size_t o) {
      return layout.out_base + o * kElem;
    };
    auto global = [&](std::span<const std::uint64_t> addrs) {
      cta.warp_global_access(addrs);
    };

    const unsigned threads = config.simt.cta_threads;
    std::vector<std::size_t> diags(threads);
    for (unsigned t = 0; t < threads; ++t)
      diags[t] = std::min<std::size_t>(
          std::size_t{t} * config.items_per_thread, d1 - d0);
    // Per-thread partition: searches on GLOBAL memory (scattered probes).
    const auto starts = warp_synchronous_search(
        cta, threads, win_a, win_b, diags, val_a, val_b, addr_a, addr_b,
        global);

    // Per-thread serial merges, global in, global out (both scattered).
    std::vector<LaneCursor> lanes(threads);
    for (unsigned t = 0; t < threads; ++t) {
      lanes[t].i = starts[t];
      lanes[t].j = diags[t] - starts[t];
      lanes[t].out = d0 + diags[t];
      const std::size_t next =
          t + 1 < threads ? diags[t + 1] : d1 - d0;
      lanes[t].left = next - diags[t];
    }
    std::vector<std::int32_t> tile_out(d1 - d0);
    warp_synchronous_merge(cta, threads, lanes, win_a, win_b, val_a, val_b,
                           addr_a, addr_b, addr_out, global, global,
                           tile_out, d0);
    std::copy(tile_out.begin(), tile_out.end(),
              result.output.begin() + static_cast<std::ptrdiff_t>(d0));
    result.kernel.absorb(cta);
  }
  return result;
}

GpuMergeResult gpu_merge_staged(const std::vector<std::int32_t>& a,
                                const std::vector<std::int32_t>& b,
                                const GpuMergeConfig& config) {
  MP_CHECK(config.simt.valid() && config.items_per_thread >= 1);
  const Layout layout;
  const std::size_t m = a.size(), n = b.size(), total = m + n;
  const std::size_t tile_elems =
      std::size_t{config.simt.cta_threads} * config.items_per_thread;
  GpuMergeResult result;
  result.output.resize(total);
  if (total == 0) return result;
  obs::Span kernel_span("simt.staged", "n", total);

  const std::uint64_t shared_in = 0;     // shared-memory window base
  const std::size_t tiles = (total + tile_elems - 1) / tile_elems;
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    obs::Span tile_span("simt.tile", "tile", tile);
    CtaContext cta(config.simt);
    const std::size_t d0 = tile * tile_elems;
    const std::size_t d1 = std::min(total, d0 + tile_elems);
    const auto [lo, hi] = tile_bounds(cta, a, b, d0, d1, layout);
    const std::size_t win_a = hi.i - lo.i;
    const std::size_t win_b = hi.j - lo.j;
    const std::uint64_t shared_b = shared_in + win_a * kElem;
    const std::uint64_t shared_out = shared_in + (win_a + win_b) * kElem;

    const unsigned threads = config.simt.cta_threads;
    const unsigned warp = config.simt.warp_size;

    // Cooperative load: lane k of each round loads element base + k —
    // consecutive addresses, one transaction per warp per segment.
    {
      const std::size_t to_load = win_a + win_b;
      std::vector<std::uint64_t> gaddrs, saddrs;
      for (std::size_t base = 0; base < to_load; base += threads) {
        for (unsigned w = 0; w < threads; w += warp) {
          gaddrs.clear();
          saddrs.clear();
          for (unsigned t = w; t < std::min<std::size_t>(threads, w + warp);
               ++t) {
            const std::size_t e = base + t;
            if (e >= to_load) break;
            // Window A first, then window B (both contiguous in global).
            const std::uint64_t gaddr =
                e < win_a ? layout.a_base + (lo.i + e) * kElem
                          : layout.b_base + (lo.j + (e - win_a)) * kElem;
            gaddrs.push_back(gaddr);
            saddrs.push_back(shared_in + e * kElem);
          }
          if (!gaddrs.empty()) {
            cta.warp_global_access(std::span<const std::uint64_t>(gaddrs));
            cta.warp_shared_access(std::span<const std::uint64_t>(saddrs));
          }
        }
        cta.step();
      }
    }

    auto val_a = [&](std::size_t i) { return a[lo.i + i]; };
    auto val_b = [&](std::size_t j) { return b[lo.j + j]; };
    auto saddr_a = [&](std::size_t i) { return shared_in + i * kElem; };
    auto saddr_b = [&](std::size_t j) { return shared_b + j * kElem; };
    auto saddr_out = [&](std::size_t o) {
      return shared_out + (o - d0) * kElem;
    };
    auto shared = [&](std::span<const std::uint64_t> addrs) {
      cta.warp_shared_access(addrs);
    };

    std::vector<std::size_t> diags(threads);
    for (unsigned t = 0; t < threads; ++t)
      diags[t] = std::min<std::size_t>(
          std::size_t{t} * config.items_per_thread, d1 - d0);
    // Per-thread partition and merge entirely inside shared memory.
    const auto starts = warp_synchronous_search(
        cta, threads, win_a, win_b, diags, val_a, val_b, saddr_a, saddr_b,
        shared);
    std::vector<LaneCursor> lanes(threads);
    for (unsigned t = 0; t < threads; ++t) {
      lanes[t].i = starts[t];
      lanes[t].j = diags[t] - starts[t];
      lanes[t].out = d0 + diags[t];
      const std::size_t next = t + 1 < threads ? diags[t + 1] : d1 - d0;
      lanes[t].left = next - diags[t];
    }
    std::vector<std::int32_t> tile_out(d1 - d0);
    warp_synchronous_merge(cta, threads, lanes, win_a, win_b, val_a, val_b,
                           saddr_a, saddr_b, saddr_out, shared, shared,
                           tile_out, d0);
    std::copy(tile_out.begin(), tile_out.end(),
              result.output.begin() + static_cast<std::ptrdiff_t>(d0));

    // Cooperative store: merged tile leaves shared memory coalesced.
    {
      const std::size_t to_store = d1 - d0;
      std::vector<std::uint64_t> gaddrs, saddrs;
      for (std::size_t base = 0; base < to_store; base += threads) {
        for (unsigned w = 0; w < threads; w += warp) {
          gaddrs.clear();
          saddrs.clear();
          for (unsigned t = w; t < std::min<std::size_t>(threads, w + warp);
               ++t) {
            const std::size_t e = base + t;
            if (e >= to_store) break;
            saddrs.push_back(shared_out + e * kElem);
            gaddrs.push_back(layout.out_base + (d0 + e) * kElem);
          }
          if (!gaddrs.empty()) {
            cta.warp_shared_access(std::span<const std::uint64_t>(saddrs));
            cta.warp_global_access(std::span<const std::uint64_t>(gaddrs));
          }
        }
        cta.step();
      }
    }
    result.kernel.absorb(cta);
  }
  return result;
}

GpuSortResult gpu_merge_sort(const std::vector<std::int32_t>& values,
                             const GpuMergeConfig& config) {
  MP_CHECK(config.simt.valid() && config.items_per_thread >= 1);
  const Layout layout;
  const std::size_t n = values.size();
  const std::size_t tile_elems =
      std::size_t{config.simt.cta_threads} * config.items_per_thread;
  GpuSortResult result;
  result.output = values;
  if (n <= 1) return result;
  obs::Span kernel_span("simt.sort", "n", n);

  // --- Phase 1: CTA blocksort. Each tile: coalesced load, bitonic sort in
  // shared memory (traffic modelled from the network's structure; the
  // values are sorted with std::sort since the network's data movement is
  // value-independent), coalesced store.
  const unsigned threads = config.simt.cta_threads;
  const unsigned warp = config.simt.warp_size;
  for (std::size_t begin = 0; begin < n; begin += tile_elems) {
    obs::Span tile_span("simt.blocksort", "tile", begin / tile_elems);
    const std::size_t end = std::min(n, begin + tile_elems);
    const std::size_t len = end - begin;
    CtaContext cta(config.simt);

    // Coalesced load + store bracket the sort.
    for (int dir = 0; dir < 2; ++dir) {
      std::vector<std::uint64_t> gaddrs, saddrs;
      for (std::size_t base = 0; base < len; base += threads) {
        for (unsigned w = 0; w < threads; w += warp) {
          gaddrs.clear();
          saddrs.clear();
          for (unsigned t = w; t < std::min<std::size_t>(threads, w + warp);
               ++t) {
            const std::size_t e = base + t;
            if (e >= len) break;
            gaddrs.push_back(layout.a_base + (begin + e) * kElem);
            saddrs.push_back(e * kElem);
          }
          if (!gaddrs.empty()) {
            cta.warp_global_access(std::span<const std::uint64_t>(gaddrs));
            cta.warp_shared_access(std::span<const std::uint64_t>(saddrs));
          }
        }
        cta.step();
      }
    }

    // Bitonic network in shared memory: pad to a power of two; per pass,
    // n2/2 compare-exchanges (each 2 reads + up to 2 writes), spread over
    // the CTA's threads.
    std::size_t n2 = 1;
    while (n2 < len) n2 <<= 1;
    std::uint64_t passes = 0;
    for (std::size_t k = 2; k <= n2; k <<= 1)
      for (std::size_t j = k >> 1; j > 0; j >>= 1) ++passes;
    const std::uint64_t exchanges_per_pass = n2 / 2;
    // Consecutive threads handle consecutive pairs: stride-j partners keep
    // shared access conflict-light; model 4 conflict-free accesses per
    // exchange.
    cta.step(passes * ((exchanges_per_pass + threads - 1) / threads));
    for (std::uint64_t e = 0; e < passes * exchanges_per_pass; e += warp) {
      // One synthetic warp-wide access per 32 exchanges x 4 touches.
      std::vector<std::uint64_t> addrs;
      for (unsigned l = 0; l < warp && e + l < passes * exchanges_per_pass;
           ++l)
        addrs.push_back(((e + l) % n2) * kElem);
      for (int touch = 0; touch < 4; ++touch)
        cta.warp_shared_access(std::span<const std::uint64_t>(addrs));
    }

    std::sort(result.output.begin() + static_cast<std::ptrdiff_t>(begin),
              result.output.begin() + static_cast<std::ptrdiff_t>(end));
    result.blocksort.absorb(cta);
  }

  // --- Phase 2: staged merge tree over the sorted tiles.
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  for (std::size_t begin = 0; begin < n; begin += tile_elems)
    runs.emplace_back(begin, std::min(n, begin + tile_elems));
  while (runs.size() > 1) {
    obs::Span round_span("simt.round", "runs", runs.size());
    std::vector<std::pair<std::size_t, std::size_t>> next;
    std::vector<std::int32_t> merged(result.output.size());
    for (std::size_t t = 0; 2 * t < runs.size(); ++t) {
      const auto [a0, a1] = runs[2 * t];
      if (2 * t + 1 >= runs.size()) {
        std::copy(result.output.begin() + static_cast<std::ptrdiff_t>(a0),
                  result.output.begin() + static_cast<std::ptrdiff_t>(a1),
                  merged.begin() + static_cast<std::ptrdiff_t>(a0));
        next.emplace_back(a0, a1);
        continue;
      }
      const auto [b0, b1] = runs[2 * t + 1];
      const std::vector<std::int32_t> lhs(
          result.output.begin() + static_cast<std::ptrdiff_t>(a0),
          result.output.begin() + static_cast<std::ptrdiff_t>(a1));
      const std::vector<std::int32_t> rhs(
          result.output.begin() + static_cast<std::ptrdiff_t>(b0),
          result.output.begin() + static_cast<std::ptrdiff_t>(b1));
      const GpuMergeResult pair = gpu_merge_staged(lhs, rhs, config);
      result.merge_rounds.totals += pair.kernel.totals;
      result.merge_rounds.modeled_time =
          std::max(result.merge_rounds.modeled_time,
                   pair.kernel.modeled_time);
      result.merge_rounds.ctas += pair.kernel.ctas;
      std::copy(pair.output.begin(), pair.output.end(),
                merged.begin() + static_cast<std::ptrdiff_t>(a0));
      next.emplace_back(a0, b1);
    }
    result.output = std::move(merged);
    runs = std::move(next);
    ++result.rounds;
  }
  return result;
}

}  // namespace mp::simt
