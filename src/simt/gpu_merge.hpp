#pragma once
/// \file gpu_merge.hpp
/// Simulated GPU merge kernels: the Merge Path partition under the SIMT
/// memory model (experiment E14).
///
/// Two kernels, mirroring the design space of GPU Merge Path / ModernGPU:
///
///  - gpu_merge_direct(): grid-level tile partition, then every thread
///    searches its own sub-diagonal and merges ITEMS_PER_THREAD elements
///    reading/writing GLOBAL memory directly. Each lane of a warp walks
///    its own cursor ~VT elements away from its neighbour's, so warp
///    accesses scatter and coalescing collapses.
///
///  - gpu_merge_staged(): the tile's A/B windows are first loaded into
///    shared memory COOPERATIVELY (lane k of a warp loads element base+k —
///    perfectly coalesced), threads then partition and merge inside shared
///    memory, and the merged tile is written back cooperatively. Global
///    traffic drops to ~one transaction per 32 elements; the scattered
///    traffic moves into shared memory where it is cheap.
///
/// Both kernels produce the real merged output (verified by tests) while
/// the CtaContext records the traffic that distinguishes them.

#include <cstdint>
#include <vector>

#include "simt/simt_machine.hpp"

namespace mp::simt {

struct GpuMergeConfig {
  SimtConfig simt;
  unsigned items_per_thread = 7;  ///< VT; tile = cta_threads * VT elements
};

struct GpuMergeResult {
  KernelResult kernel;
  std::vector<std::int32_t> output;

  double transactions_per_element() const {
    return output.empty() ? 0.0
                          : static_cast<double>(
                                kernel.totals.global_transactions) /
                                static_cast<double>(output.size());
  }
};

GpuMergeResult gpu_merge_direct(const std::vector<std::int32_t>& a,
                                const std::vector<std::int32_t>& b,
                                const GpuMergeConfig& config = {});

GpuMergeResult gpu_merge_staged(const std::vector<std::int32_t>& a,
                                const std::vector<std::int32_t>& b,
                                const GpuMergeConfig& config = {});

/// Full GPU merge sort: CTA blocksort (tile loaded coalesced, sorted with
/// a bitonic network in shared memory, stored coalesced), then a binary
/// tree of staged merge kernels — the GPU Merge Path sort pipeline.
/// Reports the two phases separately.
struct GpuSortResult {
  KernelResult blocksort;
  KernelResult merge_rounds;
  std::size_t rounds = 0;
  std::vector<std::int32_t> output;

  double merge_transactions_per_element() const {
    return output.empty()
               ? 0.0
               : static_cast<double>(
                     merge_rounds.totals.global_transactions) /
                     static_cast<double>(output.size());
  }
};

GpuSortResult gpu_merge_sort(const std::vector<std::int32_t>& values,
                             const GpuMergeConfig& config = {});

}  // namespace mp::simt
