#include "simt/simt_machine.hpp"

#include <algorithm>

namespace mp::simt {

void CtaContext::warp_global_access(
    std::span<const std::uint64_t> addresses) {
  if (addresses.empty()) return;
  MP_ASSERT(addresses.size() <= config_.warp_size);
  stats_.global_requests += addresses.size();
  // One transaction per distinct aligned segment. Warp width is <= 32 and
  // segments are few; a small sorted scan beats hashing here.
  std::vector<std::uint64_t> segments;
  segments.reserve(addresses.size());
  for (std::uint64_t addr : addresses)
    segments.push_back(addr / config_.transaction_bytes);
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()),
                 segments.end());
  stats_.global_transactions += segments.size();
}

void CtaContext::warp_shared_access(
    std::span<const std::uint64_t> addresses) {
  if (addresses.empty()) return;
  MP_ASSERT(addresses.size() <= config_.warp_size);
  stats_.shared_accesses += addresses.size();
  // Bank conflicts: lanes mapping to one bank but different words
  // serialise; lanes reading the SAME word broadcast for free.
  // Cost of the access = max over banks of distinct words in that bank;
  // the extra beyond 1 is recorded separately.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> lanes;  // bank, word
  lanes.reserve(addresses.size());
  for (std::uint64_t addr : addresses) {
    const std::uint64_t word = addr / config_.bank_word_bytes;
    lanes.emplace_back(static_cast<std::uint32_t>(word %
                                                  config_.shared_banks),
                       word);
  }
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  std::uint64_t worst = 1;
  std::size_t i = 0;
  while (i < lanes.size()) {
    std::size_t j = i;
    while (j < lanes.size() && lanes[j].first == lanes[i].first) ++j;
    worst = std::max<std::uint64_t>(worst, j - i);
    i = j;
  }
  stats_.bank_conflict_extra += worst - 1;
}

}  // namespace mp::simt
