#pragma once
/// \file simt_machine.hpp
/// A minimal SIMT (GPU-style) execution and memory model.
///
/// Why this exists: the Merge Path partition's most influential deployment
/// is on GPUs (GPU Merge Path; ModernGPU; the merge kernels in Thrust and
/// CUB). The paper's Section V cites the GPU sorting line of work
/// ([8], [9]) and its partitioning idea transfers directly — but what
/// changes on a GPU is the *memory system*: DRAM is reached through wide
/// transactions shared by a warp, so the difference between a scattered
/// per-thread access pattern and a coalesced cooperative one is an order
/// of magnitude in traffic. This model makes that measurable
/// (DESIGN.md S20 / experiment E14).
///
/// Model contents:
///  - warps of `warp_size` lanes execute in lockstep; a CTA is
///    `cta_threads` lanes (warp_size-multiple), with `shared_bytes` of
///    scratch;
///  - a global-memory access by a warp costs one *transaction* per
///    distinct `transaction_bytes`-aligned segment touched by its lanes;
///  - shared-memory accesses are counted per lane, with bank conflicts
///    (lanes of a warp hitting the same bank at different words)
///    multiplying cost;
///  - modelled kernel time = max over CTAs of
///    (transactions·t_txn + shared·t_sh + steps·t_step), a deliberately
///    coarse latency model — the experiments report the traffic counts
///    first and the modelled ratio second.

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"

namespace mp::simt {

struct SimtConfig {
  unsigned warp_size = 32;
  unsigned cta_threads = 128;
  std::uint32_t transaction_bytes = 128;
  unsigned shared_banks = 32;
  std::uint32_t bank_word_bytes = 4;

  /// Latency weights for the coarse time model (arbitrary units).
  double cost_transaction = 32.0;  ///< one DRAM transaction
  double cost_shared = 1.0;        ///< one conflict-free shared access
  double cost_step = 1.0;          ///< one lockstep compute step

  bool valid() const {
    return warp_size > 0 && cta_threads % warp_size == 0 &&
           transaction_bytes > 0 && shared_banks > 0;
  }
};

struct SimtStats {
  std::uint64_t global_requests = 0;    ///< lane-level global accesses
  std::uint64_t global_transactions = 0;  ///< warp-level DRAM transactions
  std::uint64_t shared_accesses = 0;
  std::uint64_t bank_conflict_extra = 0;  ///< serialised extra shared cycles
  std::uint64_t steps = 0;                ///< lockstep compute steps

  SimtStats& operator+=(const SimtStats& other) {
    global_requests += other.global_requests;
    global_transactions += other.global_transactions;
    shared_accesses += other.shared_accesses;
    bank_conflict_extra += other.bank_conflict_extra;
    steps += other.steps;
    return *this;
  }
};

/// Per-CTA accounting context handed to simulated kernels.
class CtaContext {
 public:
  explicit CtaContext(const SimtConfig& config) : config_(config) {
    MP_CHECK(config_.valid());
  }

  const SimtConfig& config() const { return config_; }
  const SimtStats& stats() const { return stats_; }

  /// One warp-wide global access: `addresses` holds the byte address of
  /// every participating lane (inactive lanes omitted). Counts one
  /// transaction per distinct aligned segment.
  void warp_global_access(std::span<const std::uint64_t> addresses);

  /// One warp-wide shared-memory access; bank = (addr / word) % banks.
  /// Lanes hitting the same bank at different words serialise.
  void warp_shared_access(std::span<const std::uint64_t> addresses);

  /// One lockstep compute step for the CTA (whatever its width).
  void step(std::uint64_t count = 1) { stats_.steps += count; }

  /// Modelled time of this CTA's recorded activity.
  double modeled_time() const {
    return static_cast<double>(stats_.global_transactions) *
               config_.cost_transaction +
           static_cast<double>(stats_.shared_accesses +
                               stats_.bank_conflict_extra) *
               config_.cost_shared +
           static_cast<double>(stats_.steps) * config_.cost_step;
  }

 private:
  SimtConfig config_;
  SimtStats stats_;
};

/// Aggregates CTA results: total traffic, and kernel time = max over CTAs
/// (they run concurrently; DRAM contention is deliberately not modelled —
/// the traffic totals carry that story).
struct KernelResult {
  SimtStats totals;
  double modeled_time = 0.0;
  std::size_t ctas = 0;

  void absorb(const CtaContext& cta) {
    totals += cta.stats();
    modeled_time = std::max(modeled_time, cta.modeled_time());
    ++ctas;
  }
};

}  // namespace mp::simt
