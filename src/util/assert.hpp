#pragma once
/// \file assert.hpp
/// Lightweight always-on and debug-only assertion macros.
///
/// MP_CHECK is evaluated in every build type and is used to validate
/// user-supplied arguments at public API boundaries (e.g. "p >= 1").
/// MP_ASSERT compiles away in NDEBUG builds and guards internal invariants
/// on hot paths (e.g. partition-point monotonicity inside the diagonal
/// search).

#include <cstdio>
#include <cstdlib>

namespace mp::detail {

[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line) {
  std::fprintf(stderr, "mergepath: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace mp::detail

#define MP_CHECK(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                        \
          : ::mp::detail::assert_fail("check", #expr, __FILE__, __LINE__))

#ifdef NDEBUG
#define MP_ASSERT(expr) static_cast<void>(0)
#else
#define MP_ASSERT(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                         \
          : ::mp::detail::assert_fail("assert", #expr, __FILE__, __LINE__))
#endif
