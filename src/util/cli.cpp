#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

namespace mp {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return;
    }
    arg = arg.substr(2);
    std::string value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";
    }
    if (arg.empty()) {
      error_ = "empty flag name";
      return;
    }
    values_[arg] = value;
    consumed_[arg] = false;
  }
}

bool Cli::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[name] = true;
  return true;
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  errno = 0;
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    if (error_.empty())
      error_ = "invalid integer for --" + name + ": '" + it->second + "'";
    return fallback;
  }
  return parsed;
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    if (error_.empty())
      error_ = "invalid number for --" + name + ": '" + it->second + "'";
    return fallback;
  }
  return parsed;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> Cli::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [name, used] : consumed_)
    if (!used) out.push_back(name);
  return out;
}

}  // namespace mp
