#pragma once
/// \file cli.hpp
/// Minimal command-line flag parser shared by the benchmark harnesses and
/// examples.
///
/// Flags take the forms `--name value` and `--name=value`; bare `--name` is a
/// boolean true. Unknown flags are an error (harnesses should fail loudly
/// rather than silently ignore a typo'd parameter sweep).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mp {

class Cli {
 public:
  /// Parses argv. On error records a message retrievable via error().
  Cli(int argc, const char* const* argv);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const std::string& program() const { return program_; }

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  /// Numeric getters are strict: a value that is not entirely a number (or a
  /// bare `--flag` with no value) records an error retrievable via error()
  /// and returns the fallback. Callers re-check ok() after the last get.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Flags seen but never queried; harnesses call this last to reject typos.
  std::vector<std::string> unconsumed() const;

 private:
  std::string program_;
  // Mutable so the const getters can record a malformed-value error lazily.
  mutable std::string error_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace mp
