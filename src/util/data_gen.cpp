#include "util/data_gen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mp {
namespace {

std::vector<std::int32_t> sorted_uniform(std::size_t n, Xoshiro256& rng,
                                         std::int32_t lo, std::int32_t hi) {
  MP_ASSERT(lo <= hi);
  const auto range =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
  std::vector<std::int32_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int32_t>(static_cast<std::int64_t>(lo) +
                                  static_cast<std::int64_t>(rng.bounded(range)));
  std::sort(v.begin(), v.end());
  return v;
}

// Random-length alternating bursts: one array receives a run of values from
// the current window while the other is starved, then roles swap. Windows
// advance monotonically so each array stays sorted without a final sort.
void fill_clustered(std::size_t size_a, std::size_t size_b, Xoshiro256& rng,
                    std::vector<std::int32_t>& a,
                    std::vector<std::int32_t>& b) {
  a.reserve(size_a);
  b.reserve(size_b);
  std::int64_t value = 0;
  bool a_turn = true;
  while (a.size() < size_a || b.size() < size_b) {
    auto& dst = (a_turn && a.size() < size_a) || b.size() >= size_b ? a : b;
    const std::uint64_t burst = 1 + rng.bounded(64);
    const std::size_t capacity = (&dst == &a ? size_a - a.size()
                                             : size_b - b.size());
    const std::size_t take = std::min<std::size_t>(burst, capacity);
    for (std::size_t i = 0; i < take; ++i) {
      value += static_cast<std::int64_t>(rng.bounded(3));
      dst.push_back(static_cast<std::int32_t>(value));
    }
    a_turn = !a_turn;
  }
}

}  // namespace

std::string to_string(Dist dist) {
  switch (dist) {
    case Dist::kUniform: return "uniform";
    case Dist::kDisjointLow: return "disjoint_low";
    case Dist::kDisjointHigh: return "disjoint_high";
    case Dist::kInterleaved: return "interleaved";
    case Dist::kClustered: return "clustered";
    case Dist::kAllEqual: return "all_equal";
    case Dist::kFewDuplicates: return "few_duplicates";
    case Dist::kOrganPipe: return "organ_pipe";
  }
  return "unknown";
}

bool parse_dist(const std::string& name, Dist& out) {
  for (Dist d : kAllDists) {
    if (to_string(d) == name) {
      out = d;
      return true;
    }
  }
  return false;
}

MergeInput make_merge_input(Dist dist, std::size_t size_a, std::size_t size_b,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  MergeInput input;
  input.seed = seed;
  auto& a = input.a;
  auto& b = input.b;

  constexpr std::int32_t kIntMax = std::numeric_limits<std::int32_t>::max();
  switch (dist) {
    case Dist::kUniform:
      a = sorted_uniform(size_a, rng, 0, kIntMax);
      b = sorted_uniform(size_b, rng, 0, kIntMax);
      break;
    case Dist::kDisjointLow:
      a = sorted_uniform(size_a, rng, 0, kIntMax / 2 - 1);
      b = sorted_uniform(size_b, rng, kIntMax / 2, kIntMax);
      break;
    case Dist::kDisjointHigh:
      a = sorted_uniform(size_a, rng, kIntMax / 2, kIntMax);
      b = sorted_uniform(size_b, rng, 0, kIntMax / 2 - 1);
      break;
    case Dist::kInterleaved:
      a.resize(size_a);
      b.resize(size_b);
      for (std::size_t i = 0; i < size_a; ++i)
        a[i] = static_cast<std::int32_t>(2 * i);
      for (std::size_t j = 0; j < size_b; ++j)
        b[j] = static_cast<std::int32_t>(2 * j + 1);
      break;
    case Dist::kClustered:
      fill_clustered(size_a, size_b, rng, a, b);
      break;
    case Dist::kAllEqual:
      a.assign(size_a, 42);
      b.assign(size_b, 42);
      break;
    case Dist::kFewDuplicates: {
      const std::int32_t universe =
          static_cast<std::int32_t>(std::max<std::size_t>(
              2, (size_a + size_b) / 64));
      a = sorted_uniform(size_a, rng, 0, universe);
      b = sorted_uniform(size_b, rng, 0, universe);
      break;
    }
    case Dist::kOrganPipe:
      // Long alternating runs: A holds blocks of consecutive evens, B the
      // interleaving odd blocks, so the merge path alternates long straight
      // strokes — the worst case for branch predictors in the merge kernel.
      a.resize(size_a);
      b.resize(size_b);
      for (std::size_t i = 0; i < size_a; ++i) {
        const std::size_t block = i / 128;
        a[i] = static_cast<std::int32_t>(block * 512 + (i % 128));
      }
      for (std::size_t j = 0; j < size_b; ++j) {
        const std::size_t block = j / 128;
        b[j] = static_cast<std::int32_t>(block * 512 + 256 + (j % 128));
      }
      break;
  }
  MP_ASSERT(std::is_sorted(a.begin(), a.end()));
  MP_ASSERT(std::is_sorted(b.begin(), b.end()));
  MP_ASSERT(a.size() == size_a && b.size() == size_b);
  return input;
}

std::vector<std::int32_t> make_uniform_values(std::size_t n,
                                              std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return sorted_uniform(n, rng, 0, std::numeric_limits<std::int32_t>::max());
}

std::vector<std::int32_t> make_unsorted_values(std::size_t n,
                                               std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(
                        std::numeric_limits<std::int32_t>::max()) +
                    1));
  return v;
}

std::vector<std::int32_t> make_zipf_values(std::size_t n,
                                           std::int32_t universe,
                                           double exponent,
                                           std::uint64_t seed) {
  MP_CHECK(universe >= 1 && exponent > 0.0);
  Xoshiro256 rng(seed);
  // Inverse-CDF sampling over the truncated zeta distribution. The CDF is
  // precomputed once (O(universe)); draws are then binary searches.
  std::vector<double> cdf(static_cast<std::size_t>(universe));
  double total = 0.0;
  for (std::size_t r = 0; r < cdf.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf[r] = total;
  }
  std::vector<std::int32_t> values(n);
  for (auto& v : values) {
    const double u = rng.uniform01() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    v = static_cast<std::int32_t>(it - cdf.begin());
  }
  std::sort(values.begin(), values.end());
  return values;
}

KeyedMergeInput make_keyedinput_impl(std::size_t size_a, std::size_t size_b,
                                     std::int32_t key_universe,
                                     std::uint64_t seed) {
  MP_CHECK(key_universe >= 1);
  Xoshiro256 rng(seed);
  KeyedMergeInput input;
  auto fill = [&](std::vector<KeyedRecord>& v, std::size_t n,
                  std::uint32_t origin_tag) {
    v.resize(n);
    for (auto& r : v)
      r.key = static_cast<std::int32_t>(
          rng.bounded(static_cast<std::uint64_t>(key_universe)));
    std::sort(v.begin(), v.end(),
              [](const KeyedRecord& x, const KeyedRecord& y) {
                return x.key < y.key;
              });
    // Payload is assigned after sorting so it encodes the element's final
    // position within its source array: (origin << 28) | index. Stability
    // checks then reduce to "payload indices of equal keys stay ascending,
    // A-origin before B-origin".
    for (std::size_t i = 0; i < n; ++i)
      v[i].payload = (origin_tag << 28) | static_cast<std::uint32_t>(i);
  };
  fill(input.a, size_a, 0u);
  fill(input.b, size_b, 1u);
  return input;
}

KeyedMergeInput make_keyed_input(std::size_t size_a, std::size_t size_b,
                                 std::int32_t key_universe,
                                 std::uint64_t seed) {
  return make_keyedinput_impl(size_a, size_b, key_universe, seed);
}

}  // namespace mp
