#pragma once
/// \file data_gen.hpp
/// Sorted-input workload generators for the merge experiments.
///
/// The paper's evaluation (Section VI) merges two sorted arrays of uniform
/// random 32-bit integers. Correctness and load-balance behaviour, however,
/// depend heavily on the *interleaving* of the two inputs, so the test and
/// benchmark suites additionally exercise adversarial shapes:
///
///  - kUniform:      i.i.d. uniform values, the paper's workload; the merge
///                   path hugs the main diagonal.
///  - kDisjointLow:  every element of A is smaller than every element of B;
///                   the merge path runs along the left edge then the bottom.
///                   This is the input from the paper's introduction that
///                   breaks the naive equal-split partition.
///  - kDisjointHigh: every element of A is greater than every element of B.
///  - kInterleaved:  perfectly alternating values (A gets evens, B odds);
///                   the path is a staircase touching every diagonal cell.
///  - kClustered:    values arrive in random-length runs drawn alternately
///                   from A-heavy and B-heavy ranges, modelling merged
///                   time-series with bursts.
///  - kAllEqual:     every element equals the same constant — the pure
///                   tie-breaking stress case.
///  - kFewDuplicates: values drawn from a tiny universe (heavy duplication).
///  - kOrganPipe:    A ascends through even residues while B's values mirror
///                   them, producing long alternating runs.
///
/// Generators return already-sorted vectors and are deterministic in the
/// seed. Element type is templated; 32-bit int and 64-bit key/value records
/// are the instantiations used in the suites.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mp {

enum class Dist {
  kUniform,
  kDisjointLow,
  kDisjointHigh,
  kInterleaved,
  kClustered,
  kAllEqual,
  kFewDuplicates,
  kOrganPipe,
};

/// All distributions, in a fixed order usable by parameterized tests.
inline constexpr Dist kAllDists[] = {
    Dist::kUniform,      Dist::kDisjointLow,   Dist::kDisjointHigh,
    Dist::kInterleaved,  Dist::kClustered,     Dist::kAllEqual,
    Dist::kFewDuplicates, Dist::kOrganPipe,
};

/// Human-readable name ("uniform", "disjoint_low", ...).
std::string to_string(Dist dist);

/// Parses the names produced by to_string. Returns false on unknown name.
bool parse_dist(const std::string& name, Dist& out);

/// A pair of sorted input arrays plus the seed that produced them.
struct MergeInput {
  std::vector<std::int32_t> a;
  std::vector<std::int32_t> b;
  std::uint64_t seed = 0;
};

/// Generates sorted arrays |a|=size_a, |b|=size_b with the requested
/// interleaving shape. Deterministic in (dist, size_a, size_b, seed).
MergeInput make_merge_input(Dist dist, std::size_t size_a, std::size_t size_b,
                            std::uint64_t seed);

/// Generates one sorted vector of uniform random values (for sort inputs,
/// pre-sorting them is the caller's choice).
std::vector<std::int32_t> make_uniform_values(std::size_t n,
                                              std::uint64_t seed);

/// Generates an unsorted vector of uniform random values (sort workloads).
std::vector<std::int32_t> make_unsorted_values(std::size_t n,
                                               std::uint64_t seed);

/// Zipf-distributed sorted keys: rank r of `universe` drawn with
/// probability proportional to 1/r^exponent — the key-frequency shape of
/// text corpora, access logs and join columns. Heavily skewed duplicate
/// structure stresses the tie handling of merges, set operations and
/// partition snapping more realistically than kFewDuplicates' uniform
/// small universe. Deterministic in the seed; returned sorted.
std::vector<std::int32_t> make_zipf_values(std::size_t n,
                                           std::int32_t universe,
                                           double exponent,
                                           std::uint64_t seed);

/// 64-bit record with a 32-bit key: exercises stability (payload identifies
/// the origin of an element even when keys collide).
struct KeyedRecord {
  std::int32_t key;
  std::uint32_t payload;

  friend bool operator<(const KeyedRecord& lhs, const KeyedRecord& rhs) {
    return lhs.key < rhs.key;
  }
  friend bool operator==(const KeyedRecord& lhs,
                         const KeyedRecord& rhs) = default;
};

/// Sorted keyed records with heavy key duplication; payload encodes
/// (origin array, original index) so tests can verify stability exactly.
struct KeyedMergeInput {
  std::vector<KeyedRecord> a;
  std::vector<KeyedRecord> b;
};
KeyedMergeInput make_keyed_input(std::size_t size_a, std::size_t size_b,
                                 std::int32_t key_universe,
                                 std::uint64_t seed);

}  // namespace mp
