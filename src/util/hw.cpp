#include "util/hw.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace mp {
namespace {

// Parses "32K" / "256K" / "12288K" / "12M" sysfs size strings.
std::size_t parse_size(const std::string& text) {
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    if (text[i] == 'K' || text[i] == 'k') value <<= 10;
    if (text[i] == 'M' || text[i] == 'm') value <<= 20;
  }
  return value;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::string text;
  std::getline(in, text);
  return text;
}

HostInfo probe_host() {
  HostInfo info;
  info.logical_cpus = std::max(1u, std::thread::hardware_concurrency());

  const std::string base = "/sys/devices/system/cpu/cpu0/cache/";
  for (int index = 0; index < 8; ++index) {
    const std::string dir = base + "index" + std::to_string(index) + "/";
    const std::string type = read_file(dir + "type");
    if (type.empty()) break;
    if (type != "Data" && type != "Unified") continue;
    CacheLevel level;
    level.level = std::stoi("0" + read_file(dir + "level"));
    level.size_bytes = parse_size(read_file(dir + "size"));
    const std::string line = read_file(dir + "coherency_line_size");
    if (!line.empty()) level.line_bytes = parse_size(line);
    const std::string ways = read_file(dir + "ways_of_associativity");
    if (!ways.empty()) level.associativity =
        static_cast<unsigned>(std::stoul(ways));
    // Heuristic: a cache listed with >1 CPU in shared_cpu_list is shared.
    level.shared = read_file(dir + "shared_cpu_list").find_first_of(",-") !=
                   std::string::npos;
    if (level.level > 0 && level.size_bytes > 0) info.caches.push_back(level);
  }
  std::sort(info.caches.begin(), info.caches.end(),
            [](const CacheLevel& x, const CacheLevel& y) {
              return x.level < y.level;
            });
  return info;
}

CpuFeatures probe_cpu() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  features.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.avx512f = __builtin_cpu_supports("avx512f") != 0;
  features.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
  // Invariant TSC lives in the extended power-management leaf, which
  // __builtin_cpu_supports does not expose.
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) != 0) {
    features.invariant_tsc = (edx & (1u << 8)) != 0;
  }
#endif
  return features;
}

}  // namespace

std::size_t HostInfo::l1d_bytes() const {
  for (const auto& c : caches)
    if (c.level == 1) return c.size_bytes;
  return 32u << 10;
}

std::size_t HostInfo::llc_bytes() const {
  if (!caches.empty()) return caches.back().size_bytes;
  return 12u << 20;
}

const HostInfo& host_info() {
  static const HostInfo info = probe_host();
  return info;
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe_cpu();
  return features;
}

HostInfo paper_machine() {
  HostInfo info;
  info.logical_cpus = 12;  // 2 sockets x 6 cores, HT disabled per Section VI
  info.caches = {
      CacheLevel{1, 32u << 10, 64, 8, false},
      CacheLevel{2, 256u << 10, 64, 8, false},
      CacheLevel{3, 12u << 20, 64, 16, true},
  };
  return info;
}

std::string isa_string(const CpuFeatures& features) {
  std::string isa;
  auto append = [&](const char* name) {
    if (!isa.empty()) isa += '+';
    isa += name;
  };
  if (features.sse42) append("sse4.2");
  if (features.avx2) append("avx2");
  if (features.avx512f && features.avx512bw) append("avx512");
  return isa.empty() ? "baseline" : isa;
}

std::string describe(const HostInfo& info) {
  std::ostringstream os;
  os << info.logical_cpus << " logical CPU(s)";
  for (const auto& c : info.caches) {
    os << ", L" << c.level << (c.shared ? " shared " : " ")
       << (c.size_bytes >> 10) << "KiB/" << c.associativity << "-way";
  }
  return os.str();
}

}  // namespace mp
