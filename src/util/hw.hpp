#pragma once
/// \file hw.hpp
/// Host hardware introspection: core count and data-cache geometry.
///
/// Cache sizes feed the Segmented Parallel Merge default (L = C/3, Section
/// IV.B of the paper) and the cache-simulator presets. On Linux we read
/// sysfs; when unavailable we fall back to the geometry of the paper's
/// evaluation machine (Xeon X5670: 32 KiB L1d / 256 KiB L2 / 12 MiB L3).

#include <cstddef>
#include <string>
#include <vector>

namespace mp {

/// Geometry of one cache level.
struct CacheLevel {
  int level = 0;               ///< 1, 2, 3...
  std::size_t size_bytes = 0;  ///< total capacity
  std::size_t line_bytes = 64;
  unsigned associativity = 8;
  bool shared = false;  ///< shared between cores (vs private per core)
};

struct HostInfo {
  unsigned logical_cpus = 1;
  std::vector<CacheLevel> caches;  ///< ascending by level, data/unified only

  /// First-level data cache size (bytes); paper-machine fallback 32 KiB.
  std::size_t l1d_bytes() const;
  /// Last-level cache size (bytes); paper-machine fallback 12 MiB.
  std::size_t llc_bytes() const;
};

/// ISA feature bits consumed by the vectorized merge kernels
/// (src/kernels): the dispatcher picks the widest supported kernel at
/// startup. Non-x86 hosts report everything false and dispatch stays on
/// the scalar kernels.
struct CpuFeatures {
  bool sse42 = false;  ///< SSE4.2 (pcmpgtq — the 64-bit kernels need it)
  bool avx2 = false;   ///< AVX2 (256-bit integer min/max/permute)
  /// AVX-512 Foundation (512-bit integer min/max/permute, mask compares)
  /// and Byte+Word; the avx512 merge kernel TU is compiled with
  /// -mavx512f -mavx512bw and dispatch requires both bits.
  bool avx512f = false;
  bool avx512bw = false;
  /// Invariant TSC (CPUID 8000_0007h EDX bit 8): the timestamp counter
  /// ticks at a constant rate across P-/C-state transitions, which is the
  /// precondition for obs::FastClock to stamp spans with rdtsc instead of
  /// a full steady_clock read. Non-x86 hosts (and pre-Nehalem parts)
  /// report false and the clock stays on steady_clock.
  bool invariant_tsc = false;
};

/// Queries the host (cached after the first call).
const HostInfo& host_info();

/// Queries CPU ISA features via cpuid (cached after the first call).
const CpuFeatures& cpu_features();

/// Short ISA summary for harness banners: "sse4.2+avx2+avx512",
/// "sse4.2+avx2", "sse4.2", or "baseline" when no extension is present
/// (avx512 is listed only when both the F and BW subsets are there — what
/// the widest merge kernel needs).
std::string isa_string(const CpuFeatures& features);

/// The evaluation machine from the paper (Dell T610, 2x Xeon X5670) as a
/// HostInfo, used by the PRAM/cache simulators' "paper preset".
HostInfo paper_machine();

/// One-line description for harness banners.
std::string describe(const HostInfo& info);

}  // namespace mp
