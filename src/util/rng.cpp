#include "util/rng.hpp"

namespace mp {

// __int128 is a GNU extension; the __extension__ marker keeps it legal
// under -Wpedantic -Werror.
__extension__ typedef unsigned __int128 mp_uint128;

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method: multiply-shift with a rejection
  // loop that runs only when the 128-bit product lands in the biased zone.
  std::uint64_t x = (*this)();
  mp_uint128 m = static_cast<mp_uint128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<mp_uint128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

}  // namespace mp
