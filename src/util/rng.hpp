#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation.
///
/// All experiments in this repository must be reproducible from a single
/// seed, so we use our own xoshiro256** generator (public-domain algorithm by
/// Blackman & Vigna) rather than std::mt19937 whose streams differ between
/// standard-library implementations. The generator satisfies
/// std::uniform_random_bit_generator and can be plugged into <random>
/// distributions, but we also provide the small set of helpers the workload
/// generators need directly.

#include <cstdint>
#include <limits>

namespace mp {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state.
/// Also a decent standalone hash/mixing function.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — all-purpose 64-bit generator, period 2^256 - 1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9035856e6bd2a853ULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Jump function: advances the state by 2^128 steps. Used to derive
  /// independent per-thread streams from one seed.
  void jump();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace mp
