#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mp {

Summary summarize(const std::vector<double>& sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;

  double sum = 0.0;
  s.min = sample.front();
  s.max = sample.front();
  for (double x : sample) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.count);

  double sq = 0.0;
  for (double x : sample) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));

  s.p50 = percentile(sample, 50.0);
  s.p95 = percentile(sample, 95.0);
  return s;
}

double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  MP_CHECK(q >= 0.0 && q <= 100.0);
  std::sort(sample.begin(), sample.end());
  // Nearest-rank: smallest index i with 100*(i+1)/n >= q.
  const auto n = sample.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return sample[rank - 1];
}

double geomean(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : sample) {
    MP_CHECK(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace mp
