#pragma once
/// \file stats.hpp
/// Small descriptive-statistics helpers used when reporting measurements.

#include <cstddef>
#include <vector>

namespace mp {

/// Summary of a sample: count, mean, min/max, population standard deviation,
/// and selected percentiles (computed by nearest-rank on a sorted copy).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Computes the summary of `sample`. An empty sample yields all-zero fields.
Summary summarize(const std::vector<double>& sample);

/// Nearest-rank percentile (q in [0,100]) of `sample`; 0 for empty input.
double percentile(std::vector<double> sample, double q);

/// Geometric mean; 0 for empty input. Values must be positive.
double geomean(const std::vector<double>& sample);

}  // namespace mp
