#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace mp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MP_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MP_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << "  ";
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_ratio(double value) { return fmt_double(value, 2) + "x"; }

std::string fmt_percent(double value) {
  return fmt_double(value * 100.0, 1) + "%";
}

std::string fmt_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fmt_bytes(std::uint64_t n) {
  static constexpr const char* kUnit[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(n);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < std::size(kUnit)) {
    v /= 1024.0;
    ++u;
  }
  return fmt_double(v, u == 0 ? 0 : 1) + " " + kUnit[u];
}

}  // namespace mp
