#pragma once
/// \file table.hpp
/// Fixed-width table and CSV emitters for the benchmark harnesses.
///
/// Every experiment binary prints a paper-style table to stdout; passing
/// --csv to the harness switches the same data to comma-separated output so
/// the series can be re-plotted.

#include <iosfwd>
#include <string>
#include <vector>

namespace mp {

/// Column-aligned text table with an optional CSV rendering.
///
/// Usage:
///   Table t({"threads", "speedup"});
///   t.add_row({"2", "1.97"});
///   t.print(std::cout);             // aligned text
///   t.print_csv(std::cout);         // CSV
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers used when filling tables.
std::string fmt_double(double value, int precision = 2);
std::string fmt_ratio(double value);      // "1.97x"
std::string fmt_percent(double value);    // fraction 0.061 -> "6.1%"
std::string fmt_count(std::uint64_t n);   // 1048576 -> "1,048,576"
std::string fmt_bytes(std::uint64_t n);   // 12582912 -> "12.0 MiB"

}  // namespace mp
