#include "util/tasksched.hpp"

#include <array>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mp {
namespace detail_ws {

// ---------------------------------------------------------------------------
// Chase-Lev-style work-stealing deque, fixed capacity.
//
// Owner pushes/pops at the bottom; thieves take from the top (oldest
// first). Because a par_do joins before its frame unwinds, a worker's
// pending tasks form a stack whose depth is the live par_do nesting depth,
// so a fixed power-of-two buffer is plenty (overflow degrades to serial
// execution in par_do, never to an error). Memory ordering follows the
// fence-free formulation — seq_cst on the top/bottom races, acquire/
// release on the publication edge — because TSan does not model
// standalone atomic_thread_fence; every ordering here lives on the atomic
// itself, which TSan checks precisely.
class Deque {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 12;
  static constexpr std::size_t kMask = kCapacity - 1;

  // Owner only. False when full.
  bool push(TaskNode* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    slots_[static_cast<std::size_t>(b) & kMask].store(
        task, std::memory_order_relaxed);
    // Publishes the slot AND the task's fields (written by this thread
    // before push) to any thief that acquires this bottom value.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  // Owner only. Null when empty or when a thief won the last entry.
  TaskNode* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    TaskNode* task =
        slots_[static_cast<std::size_t>(b) & kMask].load(
            std::memory_order_relaxed);
    if (t != b) return task;  // >= 2 entries: bottom and top are disjoint
    // Single entry: race the thieves for it via the CAS on top.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won ? task : nullptr;
  }

  // Any thread. Null when empty or on a lost race (caller just moves on).
  TaskNode* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    TaskNode* task =
        slots_[static_cast<std::size_t>(t) & kMask].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;  // lost to the owner or another thief; task is stale
    return task;
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::array<std::atomic<TaskNode*>, kCapacity> slots_{};
};

/// Per-slot state: one deque plus a cheap xorshift for victim selection.
struct Worker {
  Deque deque;
  struct SchedState* sched = nullptr;
  unsigned index = 0;
  std::uint64_t rng = 0;
  std::atomic<bool> claimed{false};  ///< external slots only

  std::uint64_t next_random() {
    // xorshift64: victim order only, no statistical burden.
    std::uint64_t x = rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return rng = x;
  }
};

/// Shared scheduler state, one per TaskScheduler. Lives outside
/// TaskScheduler::Impl so the thread-local helpers below need no access
/// to the private class.
struct SchedState {
  std::vector<std::unique_ptr<Worker>> slots;  // workers first, externals last
  unsigned worker_count = 0;

  std::atomic<bool> shutdown{false};
  // Wake protocol (no missed wakeups): a sleeper publishes itself in
  // `idle` (seq_cst) then re-reads `work_epoch` under the mutex; a pusher
  // bumps `work_epoch` (seq_cst) then checks `idle`. Dekker-style: at
  // least one side sees the other, and the empty lock_guard in wake()
  // orders the notify after the sleeper committed to waiting.
  std::atomic<std::uint64_t> work_epoch{0};
  std::atomic<unsigned> idle{0};
  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;
  std::vector<std::thread> threads;

  std::atomic<std::uint64_t> spawns{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> max_depth{0};

  void note_depth(std::uint64_t depth) {
    std::uint64_t seen = max_depth.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_depth.compare_exchange_weak(seen, depth,
                                            std::memory_order_relaxed))
      ;
  }

  void wake_one() {
    if (idle.load(std::memory_order_seq_cst) == 0) return;
    { std::lock_guard lock(sleep_mutex); }
    sleep_cv.notify_one();
  }
};

namespace {

/// Calling thread's scheduler context; null outside any task/run().
thread_local Worker* g_worker = nullptr;
/// par_do nesting depth of the code currently executing on this thread.
thread_local std::uint32_t g_depth = 0;

obs::Counter& spawn_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("sched.spawn");
  return c;
}

obs::Counter& steal_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("sched.steal");
  return c;
}

obs::Gauge& depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("sched.max_depth");
  return g;
}

void execute(Worker* self, TaskNode* task) {
  // A task runs at its spawn depth regardless of which thread picked it
  // up, so max_depth measures the fork tree, not steal luck.
  const std::uint32_t saved = g_depth;
  g_depth = task->depth;
  self->sched->note_depth(task->depth);
  {
    obs::Span span("sched.task", "depth", task->depth);
    task->invoke(task);
    // `task` lives on the spawner's stack and dies once `done` is
    // observed — nothing may touch it after invoke() set the flag.
  }
  g_depth = saved;
}

/// Pop-own-then-steal sweep over every other slot, random start. Returns
/// null when nothing was runnable this pass.
TaskNode* find_task(Worker* self) {
  if (TaskNode* task = self->deque.pop()) return task;
  SchedState& sched = *self->sched;
  const unsigned n = static_cast<unsigned>(sched.slots.size());
  const unsigned start = static_cast<unsigned>(self->next_random() % n);
  for (unsigned k = 0; k < n; ++k) {
    Worker* victim = sched.slots[(start + k) % n].get();
    if (victim == self) continue;
    if (TaskNode* task = victim->deque.steal()) {
      sched.steals.fetch_add(1, std::memory_order_relaxed);
      steal_counter().add();
      obs::Span::instant("sched.steal", "victim", victim->index);
      return task;
    }
  }
  return nullptr;
}

void worker_main(SchedState* sched, Worker* self) {
  g_worker = self;
  for (;;) {
    if (sched->shutdown.load(std::memory_order_acquire)) break;
    if (TaskNode* task = find_task(self)) {
      execute(self, task);
      continue;
    }
    // Publish intent to sleep, then re-scan once: a spawn that raced the
    // scan either bumped the epoch we are about to record (predicate
    // fails, no sleep) or finds idle > 0 and wakes us.
    const std::uint64_t epoch =
        sched->work_epoch.load(std::memory_order_seq_cst);
    sched->idle.fetch_add(1, std::memory_order_seq_cst);
    if (TaskNode* task = find_task(self)) {
      sched->idle.fetch_sub(1, std::memory_order_seq_cst);
      execute(self, task);
      continue;
    }
    {
      // The idle span closes at wake-up; a span that straddles a trace
      // re-arm is discarded by the recorder's epoch guard, so sleeping
      // across control-plane operations is safe.
      obs::Span idle_span("sched.idle");
      std::unique_lock lock(sched->sleep_mutex);
      sched->sleep_cv.wait(lock, [&] {
        return sched->shutdown.load(std::memory_order_relaxed) ||
               sched->work_epoch.load(std::memory_order_relaxed) != epoch;
      });
    }
    sched->idle.fetch_sub(1, std::memory_order_seq_cst);
  }
  g_worker = nullptr;
}

}  // namespace

bool spawn(TaskNode* node) {
  Worker* self = g_worker;
  if (self == nullptr) return false;
  node->depth = g_depth + 1;
  if (!self->deque.push(node)) return false;
  SchedState& sched = *self->sched;
  sched.spawns.fetch_add(1, std::memory_order_relaxed);
  spawn_counter().add();
  obs::Span::instant("sched.spawn", "depth", node->depth);
  sched.work_epoch.fetch_add(1, std::memory_order_seq_cst);
  sched.wake_one();
  return true;
}

bool unspawn([[maybe_unused]] TaskNode* node) {
  TaskNode* popped = g_worker->deque.pop();
  if (popped == nullptr) return false;
  // LIFO discipline: anything f() pushed above `node` was consumed before
  // f returned, so our bottom entry is exactly the node we spawned.
  MP_ASSERT(popped == node);
  return true;
}

void join(TaskNode* node) {
  Worker* self = g_worker;
  unsigned idle_passes = 0;
  while (!node->done.load(std::memory_order_acquire)) {
    if (TaskNode* task = find_task(self)) {
      // Help-first: run whatever is ready (typically a descendant of the
      // stolen task we are waiting on) instead of blocking a thread.
      execute(self, task);
      idle_passes = 0;
      continue;
    }
    // Nothing runnable anywhere: the stolen branch is still in flight on
    // another thread. Back off gently — the joiner must keep polling
    // `done` (no condvar covers it), but must not starve the thread
    // actually running the work under oversubscription.
    if (++idle_passes < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

DepthGuard::DepthGuard() {
  ++g_depth;
  if (Worker* self = g_worker) self->sched->note_depth(g_depth);
}

DepthGuard::~DepthGuard() { --g_depth; }

}  // namespace detail_ws

// ---------------------------------------------------------------------------
// TaskScheduler

struct TaskScheduler::Impl {
  detail_ws::SchedState state;
};

TaskScheduler::TaskScheduler(int workers) : impl_(std::make_unique<Impl>()) {
  unsigned count;
  if (workers < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    count = hw > 1 ? hw - 1 : 0;
  } else {
    count = static_cast<unsigned>(workers);
  }
  detail_ws::SchedState& state = impl_->state;
  state.worker_count = count;
  const unsigned total = count + kExternalSlots;
  state.slots.reserve(total);
  for (unsigned i = 0; i < total; ++i) {
    auto slot = std::make_unique<detail_ws::Worker>();
    slot->sched = &state;
    slot->index = i;
    slot->rng = 0x9e3779b97f4a7c15ULL * (i + 1) + 0x2545f4914f6cdd1dULL;
    state.slots.push_back(std::move(slot));
  }
  state.threads.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    state.threads.emplace_back(detail_ws::worker_main, &state,
                               state.slots[i].get());
}

TaskScheduler::~TaskScheduler() {
  detail_ws::SchedState& state = impl_->state;
  state.shutdown.store(true, std::memory_order_release);
  {
    std::lock_guard lock(state.sleep_mutex);
  }
  state.sleep_cv.notify_all();
  for (auto& thread : state.threads) thread.join();
}

unsigned TaskScheduler::workers() const { return impl_->state.worker_count; }

unsigned TaskScheduler::slots() const {
  return static_cast<unsigned>(impl_->state.slots.size());
}

void TaskScheduler::run(const std::function<void()>& root) {
  detail_ws::SchedState& state = impl_->state;
  // Claim an external slot: the caller becomes a stealing peer. run()
  // from inside another scheduler context stacks cleanly — the previous
  // context is saved and restored around the root.
  detail_ws::Worker* slot = nullptr;
  for (unsigned i = state.worker_count; i < state.slots.size(); ++i) {
    bool expected = false;
    if (state.slots[i]->claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      slot = state.slots[i].get();
      break;
    }
  }
  MP_CHECK(slot != nullptr);  // > kExternalSlots concurrent run() callers

  detail_ws::Worker* saved_worker = detail_ws::g_worker;
  const std::uint32_t saved_depth = detail_ws::g_depth;
  detail_ws::g_worker = slot;
  detail_ws::g_depth = 0;

  std::exception_ptr error;
  {
    obs::Span span("sched.run");
    try {
      root();
    } catch (...) {
      error = std::current_exception();
    }
  }
  // Every par_do joins before unwinding, so the root leaves our deque
  // empty — nothing of this task tree survives the call.
  MP_ASSERT(slot->deque.pop() == nullptr);

  detail_ws::g_worker = saved_worker;
  detail_ws::g_depth = saved_depth;
  slot->claimed.store(false, std::memory_order_release);
  detail_ws::depth_gauge().set(static_cast<std::int64_t>(
      state.max_depth.load(std::memory_order_relaxed)));
  if (error) std::rethrow_exception(error);
}

bool TaskScheduler::in_task() { return detail_ws::g_worker != nullptr; }

unsigned TaskScheduler::current_slot() {
  MP_CHECK(detail_ws::g_worker != nullptr);
  return detail_ws::g_worker->index;
}

TaskScheduler::Stats TaskScheduler::stats() const {
  const detail_ws::SchedState& state = impl_->state;
  Stats stats;
  stats.spawns = state.spawns.load(std::memory_order_relaxed);
  stats.steals = state.steals.load(std::memory_order_relaxed);
  stats.max_depth = state.max_depth.load(std::memory_order_relaxed);
  return stats;
}

void TaskScheduler::reset_stats() {
  detail_ws::SchedState& state = impl_->state;
  state.spawns.store(0, std::memory_order_relaxed);
  state.steals.store(0, std::memory_order_relaxed);
  state.max_depth.store(0, std::memory_order_relaxed);
}

TaskScheduler& TaskScheduler::shared() {
  static TaskScheduler scheduler;
  return scheduler;
}

}  // namespace mp
