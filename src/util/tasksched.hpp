#pragma once
/// \file tasksched.hpp
/// Work-stealing task scheduler with nested fork-join — the second
/// scheduling shape next to ThreadPool's static equispaced lanes.
///
/// ThreadPool (threading.hpp) is an *engine*: one flat fork-join job at a
/// time, lanes fixed at fork, nested invocation rejected with MP_CHECK.
/// That matches Algorithm 1's shape exactly, but it cannot express the
/// nested parallelism the ROADMAP needs (concurrent requests x sort
/// rounds x lane splits), nor the PAM/pbbslib recursive-splitting merge.
/// TaskScheduler is a *scheduler*: per-worker Chase-Lev-style deques, a
/// par_do(f, g) fork-join primitive callable from any depth, and
/// help-first stealing — a thread blocked on a join executes other ready
/// tasks instead of sleeping, so arbitrarily deep recursion cannot
/// deadlock a bounded worker set.
///
/// Structure of a computation (fully strict, cactus-stack shaped):
///  - run(root) enters the scheduler from an outside thread; the caller
///    claims an external deque slot and becomes a work-stealing peer for
///    the duration (several threads may run() concurrently — each root is
///    an independent task tree over the shared workers).
///  - par_do(f, g) pushes g onto the calling worker's deque, runs f
///    inline, then pops g back (the common, allocation-free case) or —
///    when a thief took it — helps by stealing other tasks until g's
///    stack-allocated task node is marked done.
///  - Exceptions: both halves always execute to their join, then the
///    first error (f's before g's) is rethrown exactly once per par_do;
///    a root-task error is rethrown by run(). Nothing is ever lost or
///    double-thrown, and a throwing task cannot wedge the scheduler.
///
/// Determinism: with zero workers every par_do pops its own push, so the
/// whole tree runs f-then-g depth-first on the calling thread — the
/// deterministic mode mirrors ThreadPool(0) and is what seeded tests and
/// the PRAM instrumentation rely on.
///
/// Observability: spans `sched.run` (root) and `sched.task` (every task
/// executed off a deque), instants `sched.spawn` / `sched.steal`, and
/// MetricsRegistry counters `sched.spawn` / `sched.steal` plus the
/// `sched.max_depth` gauge keep Figure-5-style curves honest across both
/// schedulers (same arming rules as the pool's `pool.*` spans).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace mp {

namespace detail_ws {

/// One forked task, allocated on the spawning par_do's stack frame (the
/// join completes before the frame unwinds, so no heap allocation is ever
/// needed). `error` is written by whichever thread runs the task, before
/// the release store of `done`; the joiner reads it after the acquire
/// load, so the pair needs no further synchronisation.
struct TaskNode {
  void (*invoke)(TaskNode*) = nullptr;
  void* fn = nullptr;              ///< address of the callable (caller's stack)
  std::uint32_t depth = 0;         ///< nesting depth the task runs at
  std::atomic<bool> done{false};
  std::exception_ptr error;
};

/// Pushes `node` onto the calling worker's deque and records the spawn.
/// Returns false when the calling thread is not inside any scheduler
/// context (or its deque is full) — par_do then degrades to serial.
bool spawn(TaskNode* node);

/// Owner-side pop: true iff `node` came back unstolen (then the caller
/// runs it inline; its `invoke` has not fired).
bool unspawn(TaskNode* node);

/// Helps until `node` is done: steals and executes other ready tasks
/// while waiting (help-first), yielding when the whole system is idle.
void join(TaskNode* node);

/// RAII nesting-depth bump around the inline halves of a par_do; keeps
/// the scheduler's max-depth statistic honest for unstolen subtrees.
struct DepthGuard {
  DepthGuard();
  ~DepthGuard();
};

}  // namespace detail_ws

/// Work-stealing fork-join scheduler. Thread-safe: any number of threads
/// may call run() concurrently (up to kExternalSlots at once), and par_do
/// composes at any depth inside. See file comment for the model.
class TaskScheduler {
 public:
  /// Deque slots reserved for concurrent external run() callers on top of
  /// the worker slots.
  static constexpr unsigned kExternalSlots = 8;

  /// Creates `workers` stealing worker threads. Negative: use
  /// hardware_concurrency() - 1 (the run() caller is the extra peer).
  /// Zero: no workers — every task runs inline, depth-first f-then-g on
  /// the calling thread (deterministic mode).
  explicit TaskScheduler(int workers = -1);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Number of stealing worker threads (excluding run() callers).
  unsigned workers() const;

  /// Total deque slots: workers() + kExternalSlots. The valid range of
  /// current_slot(), and the span length instrumented recursive
  /// algorithms size their per-slot OpCounts by.
  unsigned slots() const;

  /// Runs `root` on the scheduler with the calling thread participating
  /// as a stealing peer until the whole task tree joins. Rethrows the
  /// root's (single) exception. May be called from several threads at
  /// once and even from inside another scheduler's task; at most
  /// kExternalSlots callers can be inside one scheduler simultaneously
  /// (checked).
  void run(const std::function<void()>& root);

  /// Fork-join: executes f and g, both exactly once, potentially in
  /// parallel; returns after both complete. Inside a scheduler context g
  /// is made stealable while the caller runs f; outside any context both
  /// run serially on the caller. If both halves throw, f's exception
  /// propagates and g's is dropped — every par_do rethrows at most one
  /// error, so an exception propagates exactly once up the join tree.
  template <typename F, typename G>
  static void par_do(F&& f, G&& g);

  /// True when the calling thread is currently executing inside some
  /// TaskScheduler (worker or run() participant).
  static bool in_task();

  /// Deque-slot index of the calling thread; valid only when in_task().
  static unsigned current_slot();

  /// Scheduler-lifetime counters (relaxed; exact once quiescent).
  struct Stats {
    std::uint64_t spawns = 0;     ///< par_do forks pushed onto a deque
    std::uint64_t steals = 0;     ///< tasks taken from another slot's deque
    std::uint64_t max_depth = 0;  ///< deepest par_do nesting observed
  };
  Stats stats() const;
  void reset_stats();

  /// Process-wide default scheduler, sized to the host, created on first
  /// use (mirrors ThreadPool::shared()).
  static TaskScheduler& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

template <typename F, typename G>
void TaskScheduler::par_do(F&& f, G&& g) {
  using GFn = std::remove_reference_t<G>;
  detail_ws::TaskNode node;
  node.fn = const_cast<void*>(static_cast<const void*>(std::addressof(g)));
  node.invoke = [](detail_ws::TaskNode* n) {
    try {
      (*static_cast<GFn*>(n->fn))();
    } catch (...) {
      n->error = std::current_exception();
    }
    n->done.store(true, std::memory_order_release);
  };

  if (!detail_ws::spawn(&node)) {
    // No scheduler context (or a pathologically deep deque): serial
    // execution with the same both-always-run, f-error-first contract.
    std::exception_ptr f_error, g_error;
    try {
      f();
    } catch (...) {
      f_error = std::current_exception();
    }
    try {
      g();
    } catch (...) {
      g_error = std::current_exception();
    }
    if (f_error) std::rethrow_exception(f_error);
    if (g_error) std::rethrow_exception(g_error);
    return;
  }

  std::exception_ptr f_error;
  {
    detail_ws::DepthGuard depth;
    try {
      f();
    } catch (...) {
      f_error = std::current_exception();
    }
  }
  if (detail_ws::unspawn(&node)) {
    // Fast path: g never left our deque — run it inline, no atomics
    // beyond the pop itself.
    detail_ws::DepthGuard depth;
    node.invoke(&node);
  } else {
    detail_ws::join(&node);
  }
  if (f_error) std::rethrow_exception(f_error);
  if (node.error) std::rethrow_exception(node.error);
}

}  // namespace mp
