#include "util/threading.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mp {

struct ThreadPool::Impl {
  // Job: run lanes [1, lanes) of `task`; lane 0 is the caller's. Workers
  // claim lane indices from `next_lane` so imbalanced lanes (e.g. the final
  // ragged segment of a merge) do not idle the other workers.
  std::mutex mutex;
  std::condition_variable wake_workers;
  std::condition_variable job_done;
  const std::function<void(unsigned)>* task = nullptr;
  unsigned job_lanes = 0;
  std::uint64_t job_id = 0;
  std::atomic<unsigned> next_lane{0};
  unsigned lanes_remaining = 0;
  unsigned workers_in_job = 0;
  std::exception_ptr first_error;
  bool shutting_down = false;
  bool job_active = false;
  std::vector<std::thread> threads;

  bool job_quiescent() const {
    return lanes_remaining == 0 && workers_in_job == 0;
  }

  void worker_main() {
    std::uint64_t last_seen_job = 0;
    for (;;) {
      const std::function<void(unsigned)>* my_task = nullptr;
      unsigned my_lanes = 0;
      {
        std::unique_lock lock(mutex);
        wake_workers.wait(lock, [&] {
          return shutting_down || (job_active && job_id != last_seen_job);
        });
        if (shutting_down) return;
        last_seen_job = job_id;
        my_task = task;
        my_lanes = job_lanes;
        // Check in: parallel_for_lanes must not return (and the next job
        // must not recycle `task`/`next_lane`) while this worker can still
        // claim lanes. Without this a worker that picked up job N but lost
        // the race for its lanes could survive into job N+1, grab a fresh
        // lane index from the reset counter and run job N's *destroyed*
        // task — a use-after-scope the old lanes-only wait left open.
        ++workers_in_job;
      }
      run_lanes(*my_task, my_lanes);
      {
        // Check out. The time spent acquiring this lock is the per-worker
        // share of the fork-join teardown cost ROADMAP asks about; it is
        // timed (when lane metrics are armed) and traced so the answer
        // comes from measurement, not guesswork.
        std::unique_lock lock(mutex, std::defer_lock);
        {
          obs::Span span("pool.checkout");
          const bool timed = obs::lane_metrics_armed();
          const std::uint64_t t0 = timed ? obs::detail::monotonic_ns() : 0;
          lock.lock();
          if (timed)
            obs::LaneMetrics::instance().record_checkout(
                obs::detail::monotonic_ns() - t0);
          // ~Span pushes into this worker's trace ring HERE, while the pool
          // mutex is still held: the push must happen-before the caller
          // observes quiescence, or a trace_snapshot() taken right after
          // parallel_for_lanes returns races with it.
        }
        --workers_in_job;
        if (job_quiescent()) job_done.notify_all();
      }
    }
  }

  // Claims and executes lanes until the job is exhausted, then reports the
  // lanes it completed.
  void run_lanes(const std::function<void(unsigned)>& fn, unsigned lanes) {
    unsigned completed = 0;
    std::exception_ptr error;
    const bool timed = obs::lane_metrics_armed();
    for (;;) {
      const unsigned lane = next_lane.fetch_add(1, std::memory_order_relaxed);
      if (lane >= lanes) break;
      {
        obs::Span span("pool.lane", "lane", lane);
        const std::uint64_t t0 = timed ? obs::detail::monotonic_ns() : 0;
        try {
          fn(lane);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
        if (timed)
          obs::LaneMetrics::instance().record_lane(
              lane, obs::detail::monotonic_ns() - t0);
      }
      ++completed;
    }
    if (completed > 0 || error) {
      std::lock_guard lock(mutex);
      if (error && !first_error) first_error = error;
      lanes_remaining -= completed;
      if (job_quiescent()) job_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int workers) : impl_(std::make_unique<Impl>()) {
  unsigned count;
  if (workers < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    count = hw > 1 ? hw - 1 : 0;
  } else {
    count = static_cast<unsigned>(workers);
  }
  impl_->threads.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    impl_->threads.emplace_back([this] { impl_->worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->wake_workers.notify_all();
  for (auto& t : impl_->threads) t.join();
}

unsigned ThreadPool::workers() const {
  return static_cast<unsigned>(impl_->threads.size());
}

void ThreadPool::parallel_for_lanes(
    unsigned lanes, const std::function<void(unsigned)>& task) {
  if (lanes == 0) return;
  obs::Span job_span("pool.job", "lanes", lanes);
  const bool timed = obs::lane_metrics_armed();
  if (timed) obs::LaneMetrics::instance().record_job(lanes);
  if (lanes == 1 || impl_->threads.empty()) {
    // No parallel machinery needed; run inline (still exercises the same
    // lane function). Lane spans/timings are still recorded so single-
    // threaded runs produce the same trace shape as pooled ones.
    for (unsigned lane = 0; lane < lanes; ++lane) {
      obs::Span span("pool.lane", "lane", lane);
      const std::uint64_t t0 = timed ? obs::detail::monotonic_ns() : 0;
      task(lane);
      if (timed)
        obs::LaneMetrics::instance().record_lane(
            lane, obs::detail::monotonic_ns() - t0);
    }
    return;
  }

  {
    std::lock_guard lock(impl_->mutex);
    MP_CHECK(!impl_->job_active);  // no nested / concurrent fork-join
    impl_->task = &task;
    impl_->job_lanes = lanes;
    impl_->lanes_remaining = lanes;
    impl_->next_lane.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    impl_->job_active = true;
    ++impl_->job_id;
  }
  impl_->wake_workers.notify_all();

  // The caller participates as a claimer too, so lanes <= workers+1 all run
  // concurrently and excess lanes are work-shared.
  impl_->run_lanes(task, lanes);

  std::exception_ptr error;
  {
    // Caller-side barrier: how long lane 0 idles after its own lanes are
    // done is the join half of the fork-join overhead (see
    // docs/OBSERVABILITY.md and the ROADMAP check-in/out question).
    obs::Span barrier_span("pool.barrier", "lanes", lanes);
    const std::uint64_t b0 = timed ? obs::detail::monotonic_ns() : 0;
    std::unique_lock lock(impl_->mutex);
    // Wait for every lane to finish *and* every checked-in worker to leave
    // run_lanes: only then is it safe to invalidate `task` and let the next
    // job reset `next_lane`.
    impl_->job_done.wait(lock, [&] { return impl_->job_quiescent(); });
    impl_->job_active = false;
    error = impl_->first_error;
    if (timed)
      obs::LaneMetrics::instance().record_barrier_wait(
          obs::detail::monotonic_ns() - b0);
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

unsigned Executor::resolve_threads() const {
  if (threads > 0) return threads;
  return resolve_pool().workers() + 1;
}

ThreadPool& Executor::resolve_pool() const {
  return pool ? *pool : ThreadPool::shared();
}

}  // namespace mp
