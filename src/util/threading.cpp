#include "util/threading.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mp {

const char* to_string(LaneStatus status) {
  switch (status) {
    case LaneStatus::kOk: return "ok";
    case LaneStatus::kThrew: return "threw";
    case LaneStatus::kAbandoned: return "abandoned";
  }
  return "?";
}

std::exception_ptr LaneReport::first_error() const {
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    const LaneOutcome& outcome = lanes[lane];
    if (outcome.status == LaneStatus::kThrew) return outcome.error;
    if (outcome.status == LaneStatus::kAbandoned)
      return std::make_exception_ptr(fault::LaneFault(
          fault::FaultKind::kLaneAbandon, static_cast<unsigned>(lane)));
  }
  return nullptr;
}

struct ThreadPool::Impl {
  // Job: run lanes [1, lanes) of `task`; lane 0 is the caller's. Workers
  // claim lane indices from `next_lane` so imbalanced lanes (e.g. the final
  // ragged segment of a merge) do not idle the other workers.
  std::mutex mutex;
  std::condition_variable wake_workers;
  std::condition_variable job_done;
  // Wakes lanes sleeping off an injected kLaneDelay stall: the hedger
  // notifies after claiming a straggler's ticket so the cancelled sleeper
  // returns immediately instead of finishing its nap.
  std::condition_variable delay_cv;
  const std::function<void(unsigned)>* task = nullptr;
  unsigned job_lanes = 0;
  std::uint64_t job_id = 0;
  std::atomic<unsigned> next_lane{0};
  unsigned lanes_remaining = 0;
  unsigned workers_in_job = 0;
  std::exception_ptr first_error;
  bool shutting_down = false;
  bool job_active = false;
  // True while the current job tracks per-lane outcomes (fault plan
  // attached or try_parallel_for_lanes). Read by workers under the mutex
  // at check-in.
  bool job_faulty = false;
  std::chrono::microseconds job_delay{0};
  std::vector<std::thread> threads;

  // Per-lane state of a faulty job. All fields are written and read under
  // `mutex` (the executing thread and the caller's hedger both touch
  // them), except `injected`, which is written once by the caller before
  // the job starts.
  struct LaneSlot {
    bool started = false;  ///< a claimer reached this lane
    bool ticket = false;   ///< someone owns the right to run the task
    bool done = false;     ///< outcome fields below are final
    bool hedged = false;   ///< the ticket was claimed by the hedger thread
    std::uint64_t start_ns = 0;
    std::uint64_t wall_ns = 0;
    LaneStatus status = LaneStatus::kOk;
    std::exception_ptr error;
  };
  std::vector<LaneSlot> slots;
  std::vector<fault::FaultKind> decisions;  // per-lane, drawn at fork time
  fault::FaultPlan* plan = nullptr;

  // Dedicated hedger thread (spawned lazily on the first hedged job, one
  // per pool). Running the straggler scan off the caller's thread is what
  // lets a stall on the *caller's own* lane be hedged: the caller sleeps
  // in its lane's cancellable delay wait while the hedger claims the
  // ticket from outside — previously the scan ran in the caller's barrier
  // loop, so a caller stuck in its own lane could never reach it.
  std::thread hedger_thread;
  std::condition_variable wake_hedger;
  bool hedger_spawned = false;
  bool hedger_armed = false;  ///< a hedge-enabled job is in flight
  bool hedger_busy = false;   ///< hedger is executing a stolen task
  HedgePolicy hedge_policy{};
  unsigned hedge_lanes = 0;
  const std::function<void(unsigned)>* hedge_task = nullptr;
  bool hedge_timed = false;

  bool job_quiescent() const {
    return lanes_remaining == 0 && workers_in_job == 0;
  }

  // Must be called with `mutex` held.
  void arm_hedger(const HedgePolicy& hedge, unsigned lanes,
                  const std::function<void(unsigned)>& fn, bool timed) {
    if (!hedger_spawned) {
      hedger_spawned = true;
      hedger_thread = std::thread([this] { hedger_main(); });
    }
    hedge_policy = hedge;
    hedge_lanes = lanes;
    hedge_task = &fn;
    hedge_timed = timed;
    hedger_armed = true;
    wake_hedger.notify_one();
  }

  void hedger_main() {
    std::unique_lock lock(mutex);
    for (;;) {
      wake_hedger.wait(lock, [&] { return hedger_armed || shutting_down; });
      if (shutting_down) return;
      while (hedger_armed) {
        // Re-read the interval each pass: a disarm + re-arm can slip by
        // entirely while we sleep, swapping the policy under us.
        const auto interval = std::chrono::microseconds(static_cast<
            std::int64_t>(std::max(1.0, hedge_policy.check_interval_us)));
        if (wake_hedger.wait_for(lock, interval, [&] {
              return !hedger_armed || shutting_down;
            })) {
          break;
        }
        const int victim = find_straggler(hedge_policy, hedge_lanes);
        if (victim < 0) continue;
        // Claim the straggler's ticket: from here exactly one thread (us)
        // will ever run its task, so speculative re-execution is safe for
        // in-place tasks too, not just disjoint-output merges. Wake the
        // sleeping claimer so the barrier is not held hostage by its nap.
        const auto lane = static_cast<unsigned>(victim);
        LaneSlot& slot = slots[lane];
        slot.ticket = true;
        slot.hedged = true;
        hedger_busy = true;
        const std::function<void(unsigned)>& fn = *hedge_task;
        const bool timed = hedge_timed;
        delay_cv.notify_all();
        lock.unlock();

        obs::Span::instant("pool.hedge", "lane", lane);
        LaneStatus status = LaneStatus::kOk;
        std::exception_ptr error;
        {
          obs::Span span("pool.lane", "lane", lane);
          try {
            fn(lane);
          } catch (...) {
            status = LaneStatus::kThrew;
            error = std::current_exception();
          }
        }
        lock.lock();
        slot.wall_ns = obs::detail::monotonic_ns() - slot.start_ns;
        slot.status = status;
        slot.error = std::move(error);
        slot.done = true;
        hedger_busy = false;
        if (timed)
          obs::LaneMetrics::instance().record_lane(lane, slot.wall_ns);
        // The caller's barrier also waits for !hedger_busy.
        job_done.notify_all();
      }
      if (shutting_down) return;
    }
  }

  void worker_main() {
    std::uint64_t last_seen_job = 0;
    for (;;) {
      const std::function<void(unsigned)>* my_task = nullptr;
      unsigned my_lanes = 0;
      bool my_faulty = false;
      {
        std::unique_lock lock(mutex);
        wake_workers.wait(lock, [&] {
          return shutting_down || (job_active && job_id != last_seen_job);
        });
        if (shutting_down) return;
        last_seen_job = job_id;
        my_task = task;
        my_lanes = job_lanes;
        my_faulty = job_faulty;
        // Check in: parallel_for_lanes must not return (and the next job
        // must not recycle `task`/`next_lane`) while this worker can still
        // claim lanes. Without this a worker that picked up job N but lost
        // the race for its lanes could survive into job N+1, grab a fresh
        // lane index from the reset counter and run job N's *destroyed*
        // task — a use-after-scope the old lanes-only wait left open.
        ++workers_in_job;
      }
      if (my_faulty)
        run_lanes_faulty(*my_task, my_lanes);
      else
        run_lanes(*my_task, my_lanes);
      {
        // Check out. The time spent acquiring this lock is the per-worker
        // share of the fork-join teardown cost ROADMAP asks about; it is
        // timed (when lane metrics are armed) and traced so the answer
        // comes from measurement, not guesswork.
        std::unique_lock lock(mutex, std::defer_lock);
        {
          obs::Span span("pool.checkout");
          const bool timed = obs::lane_metrics_armed();
          const std::uint64_t t0 = timed ? obs::detail::monotonic_ns() : 0;
          lock.lock();
          if (timed)
            obs::LaneMetrics::instance().record_checkout(
                obs::detail::monotonic_ns() - t0);
          // ~Span pushes into this worker's trace ring HERE, while the pool
          // mutex is still held: the push must happen-before the caller
          // observes quiescence, or a trace_snapshot() taken right after
          // parallel_for_lanes returns races with it.
        }
        --workers_in_job;
        if (job_quiescent()) job_done.notify_all();
      }
    }
  }

  // Claims and executes lanes until the job is exhausted, then reports the
  // lanes it completed. The no-plan fast path: no per-lane bookkeeping, no
  // extra lock traffic.
  void run_lanes(const std::function<void(unsigned)>& fn, unsigned lanes) {
    unsigned completed = 0;
    std::exception_ptr error;
    const bool timed = obs::lane_metrics_armed();
    for (;;) {
      const unsigned lane = next_lane.fetch_add(1, std::memory_order_relaxed);
      if (lane >= lanes) break;
      {
        obs::Span span("pool.lane", "lane", lane);
        const std::uint64_t t0 = timed ? obs::detail::monotonic_ns() : 0;
        try {
          fn(lane);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
        if (timed)
          obs::LaneMetrics::instance().record_lane(
              lane, obs::detail::monotonic_ns() - t0);
      }
      ++completed;
    }
    if (completed > 0 || error) {
      std::lock_guard lock(mutex);
      if (error && !first_error) first_error = error;
      lanes_remaining -= completed;
      if (job_quiescent()) job_done.notify_all();
    }
  }

  // The outcome-tracking twin of run_lanes, used whenever the job needs a
  // LaneReport: injected faults fire here (before the task), stalled lanes
  // sleep cancellably, and every outcome lands in its slot instead of the
  // shared first_error.
  void run_lanes_faulty(const std::function<void(unsigned)>& fn,
                        unsigned lanes) {
    unsigned completed = 0;
    for (;;) {
      const unsigned lane = next_lane.fetch_add(1, std::memory_order_relaxed);
      if (lane >= lanes) break;
      execute_faulty_lane(fn, lane);
      ++completed;
    }
    if (completed > 0) {
      std::lock_guard lock(mutex);
      lanes_remaining -= completed;
      if (job_quiescent()) job_done.notify_all();
    }
  }

  // Runs (or injects into) one claimed lane. The claimer still owns the
  // lane's barrier accounting even when the caller's hedge stole the task:
  // the ticket decides who *runs*, the claim decides who *reports*.
  void execute_faulty_lane(const std::function<void(unsigned)>& fn,
                           unsigned lane) {
    const fault::FaultKind decision = decisions[lane];
    const bool timed = obs::lane_metrics_armed();
    {
      std::unique_lock lock(mutex);
      LaneSlot& slot = slots[lane];
      slot.started = true;
      slot.start_ns = obs::detail::monotonic_ns();
      if (decision == fault::FaultKind::kLaneDelay &&
          job_delay.count() > 0) {
        // Injected straggler: a real stall, but cancellable — the hedger
        // claims the ticket and notifies, so the barrier never waits out
        // the full nap once the work has been re-executed elsewhere.
        LaneSlot* s = &slot;
        delay_cv.wait_for(lock, job_delay,
                          [&] { return s->ticket || shutting_down; });
      }
      if (slot.ticket) return;  // hedged away: outcome recorded by the hedger
      slot.ticket = true;
    }

    LaneStatus status = LaneStatus::kOk;
    std::exception_ptr error;
    {
      obs::Span span("pool.lane", "lane", lane);
      if (decision == fault::FaultKind::kLaneThrow) {
        status = LaneStatus::kThrew;
        error = std::make_exception_ptr(fault::LaneFault(decision, lane));
        obs::Span::instant("pool.lane_fault", "lane", lane);
      } else if (decision == fault::FaultKind::kLaneAbandon) {
        status = LaneStatus::kAbandoned;
        obs::Span::instant("pool.lane_fault", "lane", lane);
      } else {
        try {
          fn(lane);
        } catch (...) {
          status = LaneStatus::kThrew;
          error = std::current_exception();
        }
      }
    }

    std::lock_guard lock(mutex);
    LaneSlot& slot = slots[lane];
    slot.wall_ns = obs::detail::monotonic_ns() - slot.start_ns;
    slot.status = status;
    slot.error = std::move(error);
    slot.done = true;
    if (timed) obs::LaneMetrics::instance().record_lane(lane, slot.wall_ns);
  }

  // Caller-side straggler scan (holding `lock`): a started lane whose
  // ticket is unclaimed and whose elapsed time exceeds the hedge threshold
  // is a hedge candidate. Returns the lane index or -1.
  int find_straggler(const HedgePolicy& hedge, unsigned lanes) {
    std::vector<std::uint64_t> walls;
    walls.reserve(lanes);
    for (const LaneSlot& slot : slots)
      if (slot.done) walls.push_back(slot.wall_ns);
    std::uint64_t threshold_ns =
        static_cast<std::uint64_t>(hedge.min_lane_us * 1000.0);
    if (!walls.empty()) {
      const auto mid = walls.begin() + static_cast<std::ptrdiff_t>(
                                           walls.size() / 2);
      std::nth_element(walls.begin(), mid, walls.end());
      threshold_ns = std::max(
          threshold_ns,
          static_cast<std::uint64_t>(hedge.factor *
                                     static_cast<double>(*mid)));
    }
    const std::uint64_t now = obs::detail::monotonic_ns();
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const LaneSlot& slot = slots[lane];
      if (slot.started && !slot.ticket && now - slot.start_ns > threshold_ns)
        return static_cast<int>(lane);
    }
    return -1;
  }
};

ThreadPool::ThreadPool(int workers) : impl_(std::make_unique<Impl>()) {
  unsigned count;
  if (workers < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    count = hw > 1 ? hw - 1 : 0;
  } else {
    count = static_cast<unsigned>(workers);
  }
  impl_->threads.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    impl_->threads.emplace_back([this] { impl_->worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->wake_workers.notify_all();
  impl_->delay_cv.notify_all();
  impl_->wake_hedger.notify_all();
  for (auto& t : impl_->threads) t.join();
  if (impl_->hedger_spawned) impl_->hedger_thread.join();
}

unsigned ThreadPool::workers() const {
  return static_cast<unsigned>(impl_->threads.size());
}

void ThreadPool::set_fault_plan(fault::FaultPlan* plan) {
  std::lock_guard lock(impl_->mutex);
  MP_CHECK(!impl_->job_active);  // quiescent control plane, like tracing
  impl_->plan = plan;
}

fault::FaultPlan* ThreadPool::fault_plan() const { return impl_->plan; }

void ThreadPool::parallel_for_lanes(
    unsigned lanes, const std::function<void(unsigned)>& task) {
  if (lanes == 0) return;
  bool faulty = false;
  if constexpr (fault::kFaultCompiledIn) faulty = impl_->plan != nullptr;
  if (faulty) {
    // A plan is armed: run through the outcome-tracking machinery so the
    // barrier survives whatever the schedule injects, then surface the
    // first failure as the typed exception (fault::LaneFault for injected
    // throws/abandons, the task's own exception otherwise).
    const LaneReport report = try_parallel_for_lanes(lanes, task);
    if (auto error = report.first_error()) std::rethrow_exception(error);
    return;
  }
  obs::Span job_span("pool.job", "lanes", lanes);
  const bool timed = obs::lane_metrics_armed();
  if (timed) obs::LaneMetrics::instance().record_job(lanes);
  if (lanes == 1 || impl_->threads.empty()) {
    // No parallel machinery needed; run inline (still exercises the same
    // lane function). Lane spans/timings are still recorded so single-
    // threaded runs produce the same trace shape as pooled ones.
    for (unsigned lane = 0; lane < lanes; ++lane) {
      obs::Span span("pool.lane", "lane", lane);
      const std::uint64_t t0 = timed ? obs::detail::monotonic_ns() : 0;
      task(lane);
      if (timed)
        obs::LaneMetrics::instance().record_lane(
            lane, obs::detail::monotonic_ns() - t0);
    }
    return;
  }

  {
    std::lock_guard lock(impl_->mutex);
    MP_CHECK(!impl_->job_active);  // no nested / concurrent fork-join
    impl_->task = &task;
    impl_->job_lanes = lanes;
    impl_->lanes_remaining = lanes;
    impl_->next_lane.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    impl_->job_active = true;
    impl_->job_faulty = false;
    ++impl_->job_id;
  }
  impl_->wake_workers.notify_all();

  // The caller participates as a claimer too, so lanes <= workers+1 all run
  // concurrently and excess lanes are work-shared.
  impl_->run_lanes(task, lanes);

  std::exception_ptr error;
  {
    // Caller-side barrier: how long lane 0 idles after its own lanes are
    // done is the join half of the fork-join overhead (see
    // docs/OBSERVABILITY.md and the ROADMAP check-in/out question).
    obs::Span barrier_span("pool.barrier", "lanes", lanes);
    const std::uint64_t b0 = timed ? obs::detail::monotonic_ns() : 0;
    std::unique_lock lock(impl_->mutex);
    // Wait for every lane to finish *and* every checked-in worker to leave
    // run_lanes: only then is it safe to invalidate `task` and let the next
    // job reset `next_lane`.
    impl_->job_done.wait(lock, [&] { return impl_->job_quiescent(); });
    impl_->job_active = false;
    error = impl_->first_error;
    if (timed)
      obs::LaneMetrics::instance().record_barrier_wait(
          obs::detail::monotonic_ns() - b0);
  }
  if (error) std::rethrow_exception(error);
}

LaneReport ThreadPool::try_parallel_for_lanes(
    unsigned lanes, const std::function<void(unsigned)>& task,
    const HedgePolicy& hedge) {
  LaneReport report;
  if (lanes == 0) return report;
  obs::Span job_span("pool.job", "lanes", lanes);
  const bool timed = obs::lane_metrics_armed();
  if (timed) obs::LaneMetrics::instance().record_job(lanes);

  // Draw the whole job's fault schedule up front on the calling thread:
  // one decision per lane, in lane order. Concurrent claimers would
  // consult the (single-stream) plan in a nondeterministic order; drawing
  // at fork time keeps the schedule — and schedule_hash — a pure function
  // of the seed and the job sequence.
  impl_->decisions.assign(lanes, fault::FaultKind::kNone);
  std::chrono::microseconds delay{0};
  if constexpr (fault::kFaultCompiledIn) {
    if (impl_->plan != nullptr) {
      for (unsigned lane = 0; lane < lanes; ++lane)
        impl_->decisions[lane] = impl_->plan->decide(fault::OpClass::kLane);
      delay = std::chrono::microseconds(static_cast<std::int64_t>(
          impl_->plan->config().lane_delay_us));
    }
  }
  impl_->job_delay = delay;
  impl_->slots.assign(lanes, Impl::LaneSlot{});

  if (lanes == 1 || impl_->threads.empty()) {
    // Inline path: lanes run in order on the caller through the same
    // ticket/delay machinery as pooled claimers, so an injected stall
    // sleeps *cancellably* and the hedger thread (armed below) can claim
    // it — including a stall on the caller's own lane, which the old
    // caller-side hedge scan could never reach.
    if (hedge.enabled) {
      std::lock_guard lock(impl_->mutex);
      impl_->arm_hedger(hedge, lanes, task, timed);
    }
    for (unsigned lane = 0; lane < lanes; ++lane)
      impl_->execute_faulty_lane(task, lane);
    {
      std::unique_lock lock(impl_->mutex);
      impl_->job_done.wait(lock, [&] { return !impl_->hedger_busy; });
      impl_->hedger_armed = false;
      impl_->wake_hedger.notify_one();
    }
  } else {
    {
      std::lock_guard lock(impl_->mutex);
      MP_CHECK(!impl_->job_active);  // no nested / concurrent fork-join
      impl_->task = &task;
      impl_->job_lanes = lanes;
      impl_->lanes_remaining = lanes;
      impl_->next_lane.store(0, std::memory_order_relaxed);
      impl_->first_error = nullptr;
      impl_->job_active = true;
      impl_->job_faulty = true;
      ++impl_->job_id;
      if (hedge.enabled) impl_->arm_hedger(hedge, lanes, task, timed);
    }
    impl_->wake_workers.notify_all();

    impl_->run_lanes_faulty(task, lanes);

    {
      obs::Span barrier_span("pool.barrier", "lanes", lanes);
      const std::uint64_t b0 = timed ? obs::detail::monotonic_ns() : 0;
      std::unique_lock lock(impl_->mutex);
      // Wait for every lane (and checked-in worker) to retire *and* for
      // the hedger to finish any stolen task it is still running: a
      // hedged lane's claimer retires as soon as its ticket is stolen, so
      // quiescence alone no longer implies the slots are final.
      impl_->job_done.wait(lock, [&] {
        return impl_->job_quiescent() && !impl_->hedger_busy;
      });
      impl_->job_active = false;
      impl_->job_faulty = false;
      impl_->hedger_armed = false;
      impl_->wake_hedger.notify_one();
      if (timed)
        obs::LaneMetrics::instance().record_barrier_wait(
            obs::detail::monotonic_ns() - b0);
    }
  }

  // Workers are all checked out: the slots are quiescent and safe to
  // harvest without the lock.
  report.lanes.resize(lanes);
  for (unsigned lane = 0; lane < lanes; ++lane) {
    Impl::LaneSlot& slot = impl_->slots[lane];
    LaneOutcome& outcome = report.lanes[lane];
    outcome.status = slot.status;
    outcome.hedged = slot.hedged;
    outcome.injected = impl_->decisions[lane];
    outcome.error = std::move(slot.error);
    outcome.wall_ns = slot.wall_ns;
    if (outcome.status != LaneStatus::kOk) ++report.failures;
    if (outcome.injected != fault::FaultKind::kNone) ++report.injected_faults;
    if (outcome.hedged) ++report.hedges;
  }
  return report;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

unsigned Executor::resolve_threads() const {
  if (threads > 0) return threads;
  return resolve_pool().workers() + 1;
}

ThreadPool& Executor::resolve_pool() const {
  return pool ? *pool : ThreadPool::shared();
}

}  // namespace mp
