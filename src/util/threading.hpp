#pragma once
/// \file threading.hpp
/// Fork-join execution engine used by all parallel algorithms in this
/// repository.
///
/// The paper's algorithms are pure fork-join: partition, run p independent
/// lanes, barrier (Algorithm 1's trailing "Barrier"). We provide a reusable
/// pool of blocking workers rather than spawning std::thread per call —
/// correctness tests run thousands of small parallel merges at thread counts
/// far above the host's core count, and spawn cost would dominate.
///
/// Exceptions thrown by a lane are captured and rethrown on the calling
/// thread after every lane has finished, so a failing comparator cannot
/// leave the pool wedged.

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace mp {

/// Fixed-size pool of worker threads executing fork-join lane tasks.
///
/// Thread-safety: parallel_for_lanes may only be invoked from one thread at
/// a time (the pool is an engine, not a scheduler); this matches the
/// paper's single-merge-at-a-time structure. Nested invocation from inside
/// a lane is rejected with MP_CHECK.
class ThreadPool {
 public:
  /// Creates `workers` persistent worker threads. Negative means "use
  /// std::thread::hardware_concurrency() - 1" (the calling thread is the
  /// extra lane runner). Zero creates no workers: every lane then runs
  /// inline on the calling thread, in lane order — the deterministic mode
  /// the PRAM cost-model simulator relies on.
  explicit ThreadPool(int workers = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding the caller).
  unsigned workers() const;

  /// Runs task(lane) for every lane in [0, lanes). Lane 0 executes on the
  /// calling thread; remaining lanes are distributed over the workers (a
  /// worker runs multiple lanes when lanes > workers+1). Returns after all
  /// lanes complete; rethrows the first lane exception, if any.
  void parallel_for_lanes(unsigned lanes,
                          const std::function<void(unsigned)>& task);

  /// Process-wide default pool, sized to the host, created on first use.
  /// Suitable for the public convenience entry points.
  static ThreadPool& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Execution context handed to the parallel algorithms: a pool plus the
/// number of lanes ("p" in the paper) to use.
struct Executor {
  ThreadPool* pool = nullptr;  ///< nullptr => ThreadPool::shared()
  unsigned threads = 0;        ///< 0 => workers()+1 of the pool

  /// Resolved lane count, >= 1.
  unsigned resolve_threads() const;
  /// Pool to submit to (shared pool if unset).
  ThreadPool& resolve_pool() const;
};

}  // namespace mp
