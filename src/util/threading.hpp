#pragma once
/// \file threading.hpp
/// Fork-join execution engine used by all parallel algorithms in this
/// repository.
///
/// The paper's algorithms are pure fork-join: partition, run p independent
/// lanes, barrier (Algorithm 1's trailing "Barrier"). We provide a reusable
/// pool of blocking workers rather than spawning std::thread per call —
/// correctness tests run thousands of small parallel merges at thread counts
/// far above the host's core count, and spawn cost would dominate.
///
/// Exceptions thrown by a lane are captured and rethrown on the calling
/// thread after every lane has finished, so a failing comparator cannot
/// leave the pool wedged.
///
/// Fault tolerance (src/fault): a fault::FaultPlan attached via
/// set_fault_plan() (or the RAII fault::ScopedInjector) gives every lane a
/// seeded chance to throw, be abandoned, or stall before its task runs —
/// the compute-fault surface mirroring the extmem/dist injectors. The
/// try_parallel_for_lanes() entry point reports per-lane outcomes in a
/// LaneReport instead of throwing, completes the barrier no matter what
/// the lanes did, and (optionally) hedges stragglers: a lane whose
/// elapsed time exceeds HedgePolicy::factor x the median completed lane
/// wall-time, and whose task has not started yet, is re-claimed and run by
/// a dedicated hedger thread — MapReduce-style speculative re-execution,
/// safe because
/// exactly one thread ever runs a lane's task (a claim "ticket" under the
/// pool mutex) and lane output segments are disjoint (Theorem 14).
/// With no plan attached, parallel_for_lanes is byte-for-byte the old
/// allocation-free fast path; under MP_FAULT=0 the injection points do
/// not exist at all.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace mp::fault {
// Forward declarations (fault/fault.hpp): the pool only stores a plan
// pointer and per-lane decisions; only threading.cpp needs the full types.
enum class FaultKind : std::uint8_t;
class FaultPlan;
}  // namespace mp::fault

namespace mp {

/// What ultimately happened to one lane of a try_parallel_for_lanes job.
enum class LaneStatus : std::uint8_t {
  kOk,         ///< task ran to completion (possibly by the hedger)
  kThrew,      ///< task (or the injector) threw; error holds the exception
  kAbandoned,  ///< injected dead worker: the task never ran
};

const char* to_string(LaneStatus status);

/// Per-lane record of a try_parallel_for_lanes job.
struct LaneOutcome {
  LaneStatus status = LaneStatus::kOk;
  bool hedged = false;  ///< task was run by the pool's hedger thread
  /// Injected fault decided for this lane (kNone when the schedule spared
  /// it — a kThrew lane with kNone means the task itself threw).
  fault::FaultKind injected = {};
  std::exception_ptr error;    ///< set when status == kThrew
  std::uint64_t wall_ns = 0;   ///< lane wall time incl. any injected stall
};

/// What a whole fork-join job did, lane by lane. The barrier always
/// completes; failures are data, not control flow.
struct LaneReport {
  std::vector<LaneOutcome> lanes;
  unsigned failures = 0;        ///< lanes with status != kOk
  unsigned injected_faults = 0; ///< lanes whose schedule drew a fault
  unsigned hedges = 0;          ///< lanes completed by the straggler hedge

  bool all_ok() const { return failures == 0; }
  /// First failed lane's exception; synthesizes a fault::LaneFault for
  /// abandoned lanes (which have no exception of their own). Null when
  /// all_ok().
  std::exception_ptr first_error() const;
};

/// Straggler-hedging knobs for try_parallel_for_lanes. Disabled by
/// default: hedging pays a periodic wakeup of a dedicated hedger thread
/// (spawned lazily, one per pool), so it is opt-in (the recovery layer and
/// benches turn it on). Because the scan runs off the caller's thread, a
/// stall on the caller's own claimed lane is hedgeable too — including on
/// a 0-worker pool, where lanes run inline on the caller.
struct HedgePolicy {
  bool enabled = false;
  /// Hedge a lane once its elapsed time exceeds `factor` x the median
  /// wall-time of the job's already-completed lanes.
  double factor = 4.0;
  /// Never hedge before this much elapsed time (guards tiny jobs where
  /// the median is noise).
  double min_lane_us = 200.0;
  /// Hedger wakeup period while a hedge-enabled job is outstanding.
  double check_interval_us = 100.0;
};

/// Fixed-size pool of worker threads executing fork-join lane tasks.
///
/// Thread-safety: parallel_for_lanes may only be invoked from one thread at
/// a time (the pool is an engine, not a scheduler); this matches the
/// paper's single-merge-at-a-time structure. Nested invocation from inside
/// a lane is rejected with MP_CHECK.
class ThreadPool {
 public:
  /// Creates `workers` persistent worker threads. Negative means "use
  /// std::thread::hardware_concurrency() - 1" (the calling thread is the
  /// extra lane runner). Zero creates no workers: every lane then runs
  /// inline on the calling thread, in lane order — the deterministic mode
  /// the PRAM cost-model simulator relies on.
  explicit ThreadPool(int workers = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding the caller).
  unsigned workers() const;

  /// Runs task(lane) for every lane in [0, lanes). Lane 0 executes on the
  /// calling thread; remaining lanes are distributed over the workers (a
  /// worker runs multiple lanes when lanes > workers+1). Returns after all
  /// lanes complete; rethrows the first lane exception, if any.
  void parallel_for_lanes(unsigned lanes,
                          const std::function<void(unsigned)>& task);

  /// Fault-tolerant variant: runs task(lane) for every lane, captures
  /// every outcome (including injected faults from an attached FaultPlan)
  /// and returns them instead of throwing. The barrier always completes —
  /// a throwing, abandoned or stalled lane can not wedge the pool. With
  /// `hedge.enabled`, the caller speculatively re-executes lanes that
  /// straggle past factor x the median completed lane wall-time and whose
  /// task has not started (first-claimer-wins via a per-lane ticket).
  /// Same single-caller rule as parallel_for_lanes.
  LaneReport try_parallel_for_lanes(unsigned lanes,
                                    const std::function<void(unsigned)>& task,
                                    const HedgePolicy& hedge = {});

  /// Attaches (or detaches, with nullptr) a compute-fault schedule: each
  /// subsequent job draws one decision per lane (OpClass::kLane) at fork
  /// time on the calling thread, so the schedule stays a pure function of
  /// the seed regardless of worker interleaving. Prefer the RAII
  /// fault::ScopedInjector over calling this directly. Must not be called
  /// while a job is in flight.
  void set_fault_plan(fault::FaultPlan* plan);
  fault::FaultPlan* fault_plan() const;

  /// Process-wide default pool, sized to the host, created on first use.
  /// Suitable for the public convenience entry points.
  static ThreadPool& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Execution context handed to the parallel algorithms: a pool plus the
/// number of lanes ("p" in the paper) to use.
struct Executor {
  ThreadPool* pool = nullptr;  ///< nullptr => ThreadPool::shared()
  unsigned threads = 0;        ///< 0 => workers()+1 of the pool

  /// Resolved lane count, >= 1.
  unsigned resolve_threads() const;
  /// Pool to submit to (shared pool if unset).
  ThreadPool& resolve_pool() const;
};

}  // namespace mp
