#pragma once
/// \file timer.hpp
/// Wall-clock timing helpers for the benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace mp {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly until at least `min_seconds` have elapsed (and at
/// least `min_reps` repetitions have run), returning the best-of per-rep
/// time in seconds. Best-of is the right statistic for cold-start-free
/// kernels on a noisy shared host.
template <typename Fn>
double time_best_of(Fn&& fn, int min_reps = 3, double min_seconds = 0.05) {
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (reps < min_reps || total < min_seconds) {
    Timer t;
    fn();
    const double s = t.seconds();
    best = s < best ? s : best;
    total += s;
    ++reps;
    if (reps > 1000) break;  // degenerate sub-microsecond bodies
  }
  return best;
}

}  // namespace mp
