// Inconsistent-comparator torture. A comparator that violates strict weak
// ordering voids the *ordering* guarantees, but not the *memory-safety*
// ones: Algorithm 1 derives every lane's output slice from the diagonal
// arithmetic (lane * (m+n) / p), which is comparator-independent, and
// merge_steps bounds every read by (m, n). So for ANY sequence of
// comparator verdicts the merge must terminate, write every output
// position exactly once, and read/write strictly in bounds (the sanitizer
// presets check the last part mechanically — this binary is the designated
// ASan/UBSan payload for the lying-comparator attack surface).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/mergepath.hpp"
#include "../test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

// Deterministic pseudo-random verdict per (x, y, salt): typically violates
// antisymmetry, transitivity and irreflexivity all at once.
struct LyingComparator {
  std::uint64_t salt;
  bool operator()(std::int32_t x, std::int32_t y) const {
    std::uint64_t h = salt ^ (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(x))
                              << 32) ^
                      static_cast<std::uint32_t>(y);
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 33;
    return (h & 1) != 0;
  }
};

constexpr std::int32_t kSentinel = -1;

// All inputs are drawn non-negative so the sentinel cannot collide.
std::vector<std::int32_t> nonneg(std::vector<std::int32_t> v) {
  for (auto& x : v) x &= 0x7fffffff;
  std::sort(v.begin(), v.end());
  return v;
}

void expect_written_from_inputs(const std::vector<std::int32_t>& out,
                                std::vector<std::int32_t> universe) {
  std::sort(universe.begin(), universe.end());
  for (std::size_t k = 0; k < out.size(); ++k) {
    ASSERT_NE(out[k], kSentinel) << "output position " << k << " not written";
    ASSERT_TRUE(std::binary_search(universe.begin(), universe.end(), out[k]))
        << "output position " << k << " holds value " << out[k]
        << " absent from the inputs";
  }
}

TEST(ComparatorMisuse, LyingComparatorCannotEscapeTheOutputSlice) {
  Xoshiro256 rng(0x11a45ULL);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t m = rng.bounded(5000);
    const std::size_t n = rng.bounded(5000);
    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(16));
    const std::uint64_t salt = rng();
    SCOPED_TRACE(::testing::Message() << "m=" << m << " n=" << n
                                      << " p=" << threads << " salt=" << salt);
    const auto a = nonneg(make_uniform_values(m, rng()));
    const auto b = nonneg(make_uniform_values(n, rng()));
    std::vector<std::int32_t> universe = a;
    universe.insert(universe.end(), b.begin(), b.end());
    const Executor exec{nullptr, threads};
    const LyingComparator comp{salt};

    std::vector<std::int32_t> out(m + n, kSentinel);
    parallel_merge(a.data(), m, b.data(), n, out.data(), exec, comp);
    expect_written_from_inputs(out, universe);

    std::fill(out.begin(), out.end(), kSentinel);
    tiled_parallel_merge(a.data(), m, b.data(), n, out.data(),
                         std::size_t{1 + rng.bounded(512)}, exec, comp);
    expect_written_from_inputs(out, universe);
  }
}

TEST(ComparatorMisuse, LyingComparatorSortTerminatesInBounds) {
  Xoshiro256 rng(0x11a46ULL);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = rng.bounded(20000);
    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(12));
    const std::uint64_t salt = rng();
    SCOPED_TRACE(::testing::Message() << "n=" << n << " p=" << threads
                                      << " salt=" << salt);
    auto data = make_unsorted_values(n, rng());
    for (auto& x : data) x &= 0x7fffffff;
    auto universe = data;
    // A structurally-bounded merge sort must terminate and permute... at
    // minimum, keep every value it emits drawn from the input multiset and
    // stay in bounds. (std::sort with this comparator is outright UB; the
    // guarantee tested here is deliberately stronger than the STL's.)
    parallel_merge_sort(data.data(), n, Executor{nullptr, threads},
                        LyingComparator{salt});
    std::sort(universe.begin(), universe.end());
    for (std::size_t k = 0; k < data.size(); ++k)
      ASSERT_TRUE(
          std::binary_search(universe.begin(), universe.end(), data[k]))
          << "position " << k;
  }
}

// The diagonal search must stay within its clamped window even when the
// comparator's verdicts are maximally biased (always-true / always-false
// are the extreme points of the lying-comparator family).
TEST(ComparatorMisuse, ConstantComparatorsKeepSearchWindowsClamped) {
  Xoshiro256 rng(0x11a47ULL);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t m = rng.bounded(64);
    const std::size_t n = rng.bounded(64);
    const auto a = nonneg(make_uniform_values(m, rng()));
    const auto b = nonneg(make_uniform_values(n, rng()));
    for (std::size_t diag = 0; diag <= m + n; ++diag) {
      const std::size_t lo = diag > n ? diag - n : 0;
      const std::size_t hi = diag < m ? diag : m;
      const std::size_t always = diagonal_intersection(
          a.data(), m, b.data(), n, diag,
          [](std::int32_t, std::int32_t) { return true; });
      const std::size_t never = diagonal_intersection(
          a.data(), m, b.data(), n, diag,
          [](std::int32_t, std::int32_t) { return false; });
      ASSERT_GE(always, lo);
      ASSERT_LE(always, hi);
      ASSERT_GE(never, lo);
      ASSERT_LE(never, hi);
    }
  }
}

}  // namespace
}  // namespace mp
