// Diagonal-search boundary properties, checked against the materialised
// Merge Matrix (merge_matrix.hpp — the paper's reference model).
//
// For every cross diagonal of randomized small inputs:
//   * Corollary 12 — the matrix entries along the diagonal, read from the
//     bottom-left end, are monotonically non-increasing (all 1s then 0s);
//   * Proposition 13 — the binary search lands exactly on the 1 -> 0
//     transition, i.e. on the simulated path's d'th point (Lemma 8);
//   * the split point returned for every lane of every lane count is that
//     same path point, its output slice comes from pure diagonal
//     arithmetic, and adjacent slices tile the output exactly.
// These are the invariants every future optimisation of the search (SIMD,
// galloping, mixed precision) must preserve.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/merge_matrix.hpp"
#include "core/mergepath.hpp"
#include "../test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

class DiagonalProperties : public ::testing::TestWithParam<Dist> {};

TEST_P(DiagonalProperties, SearchMatchesMergeMatrixGroundTruth) {
  const Dist dist = GetParam();
  Xoshiro256 rng(0xd1a6ULL);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t m = rng.bounded(20);
    const std::size_t n = rng.bounded(20);
    const std::uint64_t seed = rng();
    SCOPED_TRACE(::testing::Message() << to_string(dist) << " m=" << m
                                      << " n=" << n << " seed=" << seed);
    const auto input = make_merge_input(dist, m, n, seed);
    const MergeMatrix<std::int32_t> matrix(input.a, input.b);
    const auto path = matrix.build_path();
    ASSERT_EQ(path.size(), m + n + 1);

    // Corollary 12: every matrix cross diagonal is all-1s-then-all-0s when
    // read from the bottom-left end.
    if (m > 0 && n > 0) {
      for (std::size_t d = 0; d + 1 < m + n; ++d) {
        const auto entries = matrix.diagonal_entries(d);
        for (std::size_t k = 1; k < entries.size(); ++k)
          ASSERT_LE(entries[k], entries[k - 1])
              << "diagonal " << d << " not non-increasing at entry " << k;
      }
    }

    // Proposition 13 / Theorem 14: the O(log) search finds the simulated
    // path's point on every grid diagonal, and that point sits on the
    // 1 -> 0 transition of the matrix.
    for (std::size_t d = 0; d <= m + n; ++d) {
      const PathPoint pt = path_point_on_diagonal(
          input.a.data(), m, input.b.data(), n, d);
      ASSERT_EQ(pt.diagonal(), d);
      ASSERT_EQ(pt, path[d]) << "diagonal " << d;
      // Transition structure in matrix terms: the cell left of the point
      // (if any) is a 1 (B[j-1] < A[i]) and the cell above it (if any) is
      // a 0 (A[i-1] <= B[j]).
      if (pt.j > 0 && pt.i < m) {
        ASSERT_TRUE(matrix.at(pt.i, pt.j - 1)) << "diagonal " << d;
      }
      if (pt.i > 0 && pt.j < n) {
        ASSERT_FALSE(matrix.at(pt.i - 1, pt.j)) << "diagonal " << d;
      }
    }
  }
}

TEST_P(DiagonalProperties, LaneSlicesTileTheOutputAtPathPoints) {
  const Dist dist = GetParam();
  Xoshiro256 rng(0x51edULL);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t m = rng.bounded(24);
    const std::size_t n = rng.bounded(24);
    const std::uint64_t seed = rng();
    const std::size_t total = m + n;
    SCOPED_TRACE(::testing::Message() << to_string(dist) << " m=" << m
                                      << " n=" << n << " seed=" << seed);
    const auto input = make_merge_input(dist, m, n, seed);
    const MergeMatrix<std::int32_t> matrix(input.a, input.b);
    const auto path = matrix.build_path();

    for (unsigned lanes = 1; lanes <= 12; ++lanes) {
      std::size_t covered = 0;
      for (unsigned lane = 0; lane < lanes; ++lane) {
        const MergeSlice slice = merge_slice_for_lane(
            input.a.data(), m, input.b.data(), n, lane, lanes);
        const std::size_t diag_lo = lane * total / lanes;
        const std::size_t diag_hi = (lane + 1ull) * total / lanes;
        ASSERT_EQ(slice.out_begin, diag_lo) << "lane " << lane << "/" << lanes;
        ASSERT_EQ(slice.steps, diag_hi - diag_lo)
            << "lane " << lane << "/" << lanes;
        ASSERT_EQ(slice.out_begin, covered)
            << "slices must tile [0, m+n) with no gap or overlap";
        covered += slice.steps;
        // The lane's start is the true path point of its diagonal.
        ASSERT_EQ((PathPoint{slice.a_begin, slice.b_begin}), path[diag_lo])
            << "lane " << lane << "/" << lanes;
      }
      ASSERT_EQ(covered, total) << "lanes=" << lanes;

      // partition_merge_path agrees and passes the official validator;
      // a corrupted copy must be rejected.
      const auto points = partition_merge_path(input.a.data(), m,
                                               input.b.data(), n, lanes);
      ASSERT_TRUE(validate_partition(input.a.data(), m, input.b.data(), n,
                                     points));
      for (std::size_t k = 0; k < points.size(); ++k)
        ASSERT_EQ(points[k], path[k * total / lanes]) << "point " << k;
      if (lanes >= 2) {
        // Shifting a real path point one cell along its own diagonal is
        // guaranteed off-path (the stability-aware conditions admit exactly
        // one point per diagonal), so the validator must reject it.
        const std::size_t k = lanes / 2;  // interior: 1 <= k < lanes
        const PathPoint pt = points[k];
        auto corrupted = points;
        if (pt.i < m && pt.j > 0)
          corrupted[k] = PathPoint{pt.i + 1, pt.j - 1};
        else if (pt.i > 0 && pt.j < n)
          corrupted[k] = PathPoint{pt.i - 1, pt.j + 1};
        if (corrupted[k] != pt) {
          ASSERT_FALSE(validate_partition(input.a.data(), m, input.b.data(),
                                          n, corrupted))
              << "lanes=" << lanes << " corrupted point " << k;
        }
      }
    }
  }
}

// The same ground-truth agreement under a custom ordering: descending
// inputs with std::greater. Guards against accidental std::less
// assumptions creeping into the search.
TEST_P(DiagonalProperties, SearchMatchesGroundTruthUnderGreater) {
  const Dist dist = GetParam();
  Xoshiro256 rng(0x6e47ULL);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t m = rng.bounded(16);
    const std::size_t n = rng.bounded(16);
    auto input = make_merge_input(dist, m, n, rng());
    std::reverse(input.a.begin(), input.a.end());
    std::reverse(input.b.begin(), input.b.end());
    SCOPED_TRACE(::testing::Message() << to_string(dist) << " m=" << m
                                      << " n=" << n << " seed=" << input.seed);
    const MergeMatrix<std::int32_t, std::greater<>> matrix(
        input.a, input.b, std::greater<>{});
    const auto path = matrix.build_path();
    for (std::size_t d = 0; d <= m + n; ++d)
      ASSERT_EQ(path_point_on_diagonal(input.a.data(), m, input.b.data(), n,
                                       d, std::greater<>{}),
                path[d])
          << "diagonal " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dists, DiagonalProperties, ::testing::ValuesIn(kAllDists),
    [](const ::testing::TestParamInfo<Dist>& param_info) {
      return test::dist_name(param_info.param);
    });

}  // namespace
}  // namespace mp
